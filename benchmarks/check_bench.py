#!/usr/bin/env python
"""Benchmark-regression gate: fresh BENCH_*.json vs committed baselines.

The benches under ``benchmarks/`` persist machine-readable results as
``benchmarks/output/BENCH_<name>.json`` — solve counts, accuracy
figures, speedups, grid bookkeeping.  Those files are committed, which
makes them a perf *trajectory*; this script is the guard that keeps
the trajectory honest.  CI snapshots the committed JSONs before
running the benches, then compares the freshly produced ones against
the snapshot:

* **exact fields** — integers (solve counts, grid/zero-weight points,
  dims, basis sizes), booleans (``bitwise_identical``) and strings
  (``termination``, ``profile``) must match the baseline exactly.  A
  changed solve count is a changed algorithm and must arrive together
  with a refreshed, reviewed baseline.
* **error fields** (name contains ``rel_err`` / ``gap`` / ``drift`` /
  ``mismatch`` / ``error``) — the fresh value may not exceed
  ``max(2 x baseline, 1e-12)``; the floor absorbs roundoff-scale
  jitter, the factor catches real accuracy regressions.
* **speedup fields** — wall-clock-derived and therefore machine-
  dependent; the fresh value must stay above 30% of the baseline
  (a collapsed speedup means a hot path got slow).
* **overhead fields** (name contains ``overhead``) — ratios of
  instrumented to uninstrumented wall time; gated against an absolute
  ceiling (1.05) rather than the baseline, because the contract is
  "observability stays near-free", not "costs what it cost
  yesterday".  The ceiling is the 2% contract plus measured
  per-process scheduler/layout noise (±3% on millisecond-scale warm
  paths); the exact <2% bound is asserted noise-free inside the bench
  itself from component costs.
* **ignored fields** — raw wall times, CPU counts, timestamps.
* other floats fall back to a tight relative tolerance.

Fields missing from a fresh document, or whole missing documents, are
regressions; *new* fields and new documents are reported but allowed
(they appear when a PR adds a bench, together with its baseline).

Usage::

    python benchmarks/check_bench.py --baseline /tmp/bench-baseline \
        [--fresh benchmarks/output]

Exit status 0 when everything holds, 1 on any regression.  Pure
stdlib, importable for tests (``compare_documents``, ``main``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Substrings marking fields that are never compared.
IGNORE_TOKENS = ("wall", "cpu_count", "created")
#: Substrings marking accuracy fields (smaller is better).
ERROR_TOKENS = ("rel_err", "gap", "drift", "mismatch", "error")
#: Accuracy fields may grow to this multiple of the baseline ...
ERROR_SLACK = 2.0
#: ... or to this absolute floor, whichever is larger (roundoff noise).
ERROR_FLOOR = 1e-12
#: Wall-derived speedups must keep this fraction of the baseline.
SPEEDUP_FLOOR = 0.3
#: Overhead ratios (instrumented / uninstrumented wall) must stay
#: below this absolute ceiling — the baseline value is irrelevant.
#: 1.05 = the 2% observability contract plus the ±3% wall-clock noise
#: floor that per-process layout/hash-seed bias imposes on
#: millisecond-scale A/B comparisons; the strict <2% contract is
#: asserted componentwise (noise-free) in the bench that produces
#: these fields.
OVERHEAD_CEILING = 1.05
#: Default relative tolerance for unclassified float fields.
FLOAT_RTOL = 1e-9


def classify(name: str) -> str:
    """Comparison rule of a field, by its (dotted-path) leaf name."""
    leaf = name.rsplit(".", 1)[-1]
    if any(token in leaf for token in IGNORE_TOKENS):
        return "ignore"
    if "speedup" in leaf:
        return "speedup"
    if "overhead" in leaf:
        return "overhead"
    if any(token in leaf for token in ERROR_TOKENS):
        return "error"
    return "default"


def _compare_number(path: str, fresh, base, problems: list) -> None:
    rule = classify(path)
    if rule == "ignore":
        return
    if isinstance(base, bool) or isinstance(fresh, bool):
        if fresh is not base:
            problems.append(f"{path}: {fresh!r} != baseline {base!r}")
        return
    if rule == "error":
        ceiling = max(ERROR_SLACK * abs(base), ERROR_FLOOR)
        if abs(fresh) > ceiling:
            problems.append(
                f"{path}: {fresh:.6g} exceeds {ceiling:.6g} "
                f"(baseline {base:.6g} x {ERROR_SLACK}, "
                f"floor {ERROR_FLOOR})")
        return
    if rule == "speedup":
        floor = SPEEDUP_FLOOR * base
        if fresh < floor:
            problems.append(
                f"{path}: speedup {fresh:.3g} fell below {floor:.3g} "
                f"(baseline {base:.3g} x {SPEEDUP_FLOOR})")
        return
    if rule == "overhead":
        if fresh > OVERHEAD_CEILING:
            problems.append(
                f"{path}: overhead ratio {fresh:.4g} exceeds the "
                f"absolute ceiling {OVERHEAD_CEILING} (instrumentation "
                f"must stay near-free on the uninstrumented wall)")
        return
    if isinstance(base, int) and isinstance(fresh, int):
        if fresh != base:
            problems.append(f"{path}: {fresh} != baseline {base}")
        return
    tolerance = FLOAT_RTOL * max(abs(base), 1e-300)
    if abs(fresh - base) > tolerance + 1e-300:
        problems.append(
            f"{path}: {fresh!r} != baseline {base!r} "
            f"(rtol {FLOAT_RTOL})")


def _compare_values(path: str, fresh, base, problems: list,
                    notes: list) -> None:
    if isinstance(base, dict):
        if not isinstance(fresh, dict):
            problems.append(
                f"{path}: expected a mapping, got "
                f"{type(fresh).__name__}")
            return
        for key in sorted(base):
            child = f"{path}.{key}"
            if key not in fresh:
                if classify(child) != "ignore":
                    problems.append(f"{child}: missing from fresh "
                                    f"result")
                continue
            _compare_values(child, fresh[key], base[key], problems,
                            notes)
        for key in sorted(set(fresh) - set(base)):
            notes.append(f"{path}.{key}: new field (no baseline)")
        return
    if isinstance(base, (int, float)) and not isinstance(base, bool) \
            and isinstance(fresh, (int, float)) \
            and not isinstance(fresh, bool):
        _compare_number(path, fresh, base, problems)
        return
    if classify(path) == "ignore":
        return
    if fresh != base:
        problems.append(f"{path}: {fresh!r} != baseline {base!r}")


def compare_documents(name: str, fresh: dict, base: dict) -> tuple:
    """``(problems, notes)`` of one BENCH document pair."""
    problems, notes = [], []
    _compare_values(name, fresh, base, problems, notes)
    return problems, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare fresh BENCH_*.json against committed "
                    "baselines; exit 1 on regression")
    parser.add_argument("--baseline", required=True,
                        help="directory holding the baseline "
                             "BENCH_*.json files (e.g. a pre-bench "
                             "snapshot of benchmarks/output)")
    parser.add_argument("--fresh",
                        default=str(Path(__file__).parent / "output"),
                        help="directory holding the freshly produced "
                             "BENCH_*.json files "
                             "(default: benchmarks/output)")
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline)
    fresh_dir = Path(args.fresh)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines under {baseline_dir}")
        return 1

    problems, notes = [], []
    for base_path in baselines:
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.exists():
            problems.append(f"{base_path.name}: not produced by this "
                            f"bench run")
            continue
        try:
            base = json.loads(base_path.read_text())
            fresh = json.loads(fresh_path.read_text())
        except ValueError as exc:
            problems.append(f"{base_path.name}: unreadable JSON "
                            f"({exc})")
            continue
        doc_problems, doc_notes = compare_documents(
            base_path.stem, fresh, base)
        problems.extend(doc_problems)
        notes.extend(doc_notes)
    for fresh_path in sorted(fresh_dir.glob("BENCH_*.json")):
        if not (baseline_dir / fresh_path.name).exists():
            notes.append(f"{fresh_path.name}: new bench (no baseline)")

    for note in notes:
        print(f"note: {note}")
    if problems:
        print(f"\n{len(problems)} benchmark regression(s):")
        for problem in problems:
            print(f"  FAIL {problem}")
        return 1
    print(f"benchmark gate: {len(baselines)} baseline document(s) "
          f"hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
