"""ADAPTIVE: dimension-adaptive collocation vs the fixed level-2 grid.

The paper's SSCM always spends ``2 d^2 + 4 d + 1`` solves, however the
variance is actually distributed over the reduced directions.  The
adaptive engine (``repro.adaptive``) makes that spend proportional to
measured anisotropy instead.  Three comparisons, all at matched
mean/std accuracy (relative error <= 1e-3 against the fixed grid):

* **table1 / table2 presets** — the paper's own settings.  Table I's
  capped wPFA directions are deliberately balanced, so the adaptive
  build converges at (not below) the fixed solve count — it certifies
  the level-2 grid and never costs more.  Table II's capacitance QoI
  turns out strongly anisotropic across its many facet groups: the
  adaptive build reaches matched accuracy at a fraction of the solves.
* **anisotropic physical case** — the Table I doping study with a long
  RDF correlation length (strong eigen-decay): the adaptive build
  reaches the same statistics with measurably fewer solves.
* **anisotropic synthetic** — a quadratic QoI where two of eight
  directions carry the variance: >= 2x fewer solves, asserted.

Results land in ``output/bench_adaptive.txt`` and machine-readable in
``output/BENCH_adaptive.json``.
"""

import time

import numpy as np

from repro.adaptive import AdaptiveConfig, run_adaptive_sscm
from repro.analysis import run_sscm_analysis
from repro.experiments import table1_problem, table2_problem
from repro.reporting import format_kv_block
from repro.stochastic import smolyak_sparse_grid
from repro.units import um

from conftest import write_bench_json, write_report

#: Stopping controls used throughout: confined to the level-2 simplex
#: (so the fixed grid is a hard ceiling) at a 1e-3 relative tolerance.
ADAPTIVE = AdaptiveConfig(tol=1e-3, max_level=2)


def _compare(problem, **analysis_kwargs):
    """Fixed level-2 vs adaptive on one problem; returns the stats."""
    start = time.perf_counter()
    fixed = run_sscm_analysis(problem, **analysis_kwargs)
    t_fixed = time.perf_counter() - start
    start = time.perf_counter()
    adaptive = run_sscm_analysis(problem, refinement=ADAPTIVE,
                                 **analysis_kwargs)
    t_adaptive = time.perf_counter() - start
    scale = np.maximum(np.abs(fixed.mean), 1e-30)
    sscale = np.maximum(np.abs(fixed.std), 1e-30)
    metadata = adaptive.refinement_metadata()
    return {
        "dim": int(fixed.dim),
        "solves_fixed": int(fixed.num_runs),
        "solves_adaptive": int(adaptive.num_runs),
        "wall_fixed_s": t_fixed,
        "wall_adaptive_s": t_adaptive,
        "solve_reduction": fixed.num_runs / adaptive.num_runs,
        "mean_rel_err": float(np.max(
            np.abs(adaptive.mean - fixed.mean) / scale)),
        "std_rel_err": float(np.max(
            np.abs(adaptive.std - fixed.std) / sscale)),
        "termination": metadata["termination"],
        # Grid efficiency: points that were solved but cancelled out
        # of the final combined rule (ROADMAP "level-2 weight
        # cancellation") — tracked across PRs via the BENCH JSON.
        "grid_points": metadata["grid_points"],
        "zero_weight_points": metadata["zero_weight_points"],
    }


def _synthetic_anisotropic(d=8, eps=1e-6):
    """Quadratic QoI: directions 0 and 1 carry the variance."""
    A = np.zeros((d, d))
    A[0, 0], A[1, 1] = 1.5, 0.8
    A[0, 1] = A[1, 0] = 0.4
    b = np.zeros(d)
    b[0], b[1] = 1.0, 0.5
    for i in range(2, d):
        A[i, i] = eps
        b[i] = eps

    def f(z):
        return np.array([3.0 + b @ z + z @ A @ z])

    mean = 3.0 + np.trace(A)
    std = np.sqrt(b @ b + 2.0 * np.sum(A * A))
    return f, mean, std


def test_adaptive_matches_level2_on_presets(profile, output_dir):
    """Acceptance: both presets reach fixed-grid accuracy (rel err
    <= 1e-3) with no more than the fixed level-2 solve count."""
    cases = {}

    t1 = profile["table1"]
    cases["table1"] = _compare(
        table1_problem("both", t1["config"]()),
        max_variables_by_group=t1["caps"])

    srv = profile["serving"]
    t2 = profile["table2"]
    problem2 = table2_problem(t2["config"]())
    caps2 = {}
    for group in problem2.groups:
        if group.kind == "doping":
            caps2[group.name] = srv["cap_doping"]
        elif "+" in group.name:
            caps2[group.name] = srv["cap_merged"]
        else:
            caps2[group.name] = srv["cap_small"]
    cases["table2"] = _compare(problem2,
                               max_variables_by_group=caps2)

    rows = []
    for name, stats in cases.items():
        rows.append((f"{name} (d={stats['dim']})",
                     f"fixed {stats['solves_fixed']} solves "
                     f"{stats['wall_fixed_s']:.1f}s -> adaptive "
                     f"{stats['solves_adaptive']} solves "
                     f"{stats['wall_adaptive_s']:.1f}s "
                     f"[{stats['termination']}]"))
        rows.append((f"{name} rel err (mean / std)",
                     f"{stats['mean_rel_err']:.1e} / "
                     f"{stats['std_rel_err']:.1e}"))
    write_report(output_dir, "bench_adaptive_presets",
                 format_kv_block(rows, title="adaptive vs fixed "
                                             "level-2: paper presets"))
    write_bench_json(output_dir, "adaptive_presets", {"cases": cases})

    for name, stats in cases.items():
        assert stats["solves_adaptive"] <= stats["solves_fixed"], name
        assert stats["mean_rel_err"] <= 1e-3, name
        assert stats["std_rel_err"] <= 1e-3, name


def test_adaptive_beats_level2_on_anisotropic(profile, output_dir):
    """Anisotropy pays: fewer solves at matched accuracy — measured on
    a physical long-correlation doping study and asserted >= 2x on the
    synthetic two-active-direction quadratic."""
    from repro.experiments import Table1Config
    from repro.geometry import MetalPlugDesign

    # Physical: long RDF correlation length -> strong eigen-decay in
    # the reduced doping space.
    design = MetalPlugDesign(max_step=um(2.0))
    config = Table1Config(design=design, rdf_nodes=16, eta_m=um(6.0))
    physical = _compare(
        table1_problem("doping", config),
        energy=1.0, max_variables_by_group={"doping": 8})

    # Synthetic: exact reference statistics, deterministic >= 2x.
    d = 8
    f, exact_mean, exact_std = _synthetic_anisotropic(d)
    start = time.perf_counter()
    result = run_adaptive_sscm(f, d,
                               AdaptiveConfig(tol=1e-4, max_level=2))
    t_synthetic = time.perf_counter() - start
    fixed_count = smolyak_sparse_grid(d).num_points
    synthetic_meta = result.refinement_metadata()
    synthetic = {
        "dim": d,
        "solves_fixed": int(fixed_count),
        "solves_adaptive": int(result.num_runs),
        "wall_adaptive_s": t_synthetic,
        "solve_reduction": fixed_count / result.num_runs,
        "mean_rel_err": float(abs(result.mean[0] - exact_mean)
                              / abs(exact_mean)),
        "std_rel_err": float(abs(result.std[0] - exact_std)
                             / exact_std),
        "termination": result.termination,
        "grid_points": synthetic_meta["grid_points"],
        "zero_weight_points": synthetic_meta["zero_weight_points"],
    }

    rows = [
        (f"physical doping eta=6um (d={physical['dim']})",
         f"fixed {physical['solves_fixed']} -> adaptive "
         f"{physical['solves_adaptive']} solves "
         f"({physical['solve_reduction']:.2f}x) "
         f"[{physical['termination']}]"),
        ("physical rel err (mean / std)",
         f"{physical['mean_rel_err']:.1e} / "
         f"{physical['std_rel_err']:.1e}"),
        (f"synthetic 2-of-{d} directions",
         f"fixed {synthetic['solves_fixed']} -> adaptive "
         f"{synthetic['solves_adaptive']} solves "
         f"({synthetic['solve_reduction']:.2f}x) "
         f"[{synthetic['termination']}]"),
        ("synthetic rel err vs exact (mean / std)",
         f"{synthetic['mean_rel_err']:.1e} / "
         f"{synthetic['std_rel_err']:.1e}"),
    ]
    write_report(output_dir, "bench_adaptive_anisotropic",
                 format_kv_block(rows, title="adaptive vs fixed "
                                             "level-2: anisotropy"))
    write_bench_json(output_dir, "adaptive_anisotropic", {
        "physical": physical, "synthetic": synthetic})

    # Physical case: strictly fewer solves at matched accuracy.
    assert physical["solves_adaptive"] < physical["solves_fixed"]
    assert physical["mean_rel_err"] <= 1e-3
    assert physical["std_rel_err"] <= 1e-3
    # Synthetic case: the headline >= 2x, at exact-reference accuracy.
    assert 2 * synthetic["solves_adaptive"] <= synthetic["solves_fixed"]
    assert synthetic["mean_rel_err"] <= 1e-3
    assert synthetic["std_rel_err"] <= 1e-3
