"""FACTOR REUSE: batched multi-port sweeps vs the per-port rebuild.

The paper closes by naming runtime — "several hours" per variational
study — as the main obstacle.  The factorization-reuse layer attacks
the deterministic-solver side of that cost: a multi-port frequency
sweep now solves one DC equilibrium for the whole sweep and one LU per
frequency shared by all ``P`` port drives (multi-RHS), instead of the
seed's ``P x F`` equilibria and factorizations.

This bench times both paths on the paper's two structures.  The
rebuild path is a faithful replica of the seed ``frequency_sweep``:
per frequency a fresh solver (links + FVM geometry), per port a fresh
equilibrium, assembly and factorization.  Expected shape: speedup
grows with the port count (the TSV's six ports gain the most; the
two-plug structure is capped near 2x-2.5x because the per-frequency
factorization itself is irreducible), and both paths agree to machine
precision.
"""

import time

import numpy as np
import pytest

from repro.extraction import port_current
from repro.geometry import (
    MetalPlugDesign,
    TsvDesign,
    build_metalplug_structure,
    build_tsv_structure,
)
from repro.mesh import compute_geometry
from repro.mesh.entities import LinkSet
from repro.solver.ac import ACSystem
from repro.solver.dc import solve_equilibrium
from repro.solver.sweep import frequency_sweep
from repro.units import um

from conftest import write_bench_json, write_report

FREQUENCIES = tuple(f * 1.0e9 for f in (0.5, 1.0, 2.0, 5.0, 10.0))


def _sweep_rebuild(structure, frequencies, ports):
    """The seed's sweep: rebuild everything per (port, frequency)."""
    admittance = np.zeros((len(frequencies), len(ports), len(ports)),
                          dtype=complex)
    for k, frequency in enumerate(frequencies):
        links = LinkSet(structure.grid)
        geometry = compute_geometry(structure.grid, links=links)
        for j, driven in enumerate(ports):
            equilibrium = solve_equilibrium(structure, geometry)
            system = ACSystem(structure, geometry, equilibrium,
                              frequency)
            solution = system.solve(
                {name: (1.0 if name == driven else 0.0)
                 for name in ports})
            for i, port in enumerate(ports):
                admittance[k, i, j] = port_current(solution, port)
    return admittance


def _compare_paths(structure, ports):
    start = time.perf_counter()
    y_rebuild = _sweep_rebuild(structure, FREQUENCIES, ports)
    t_rebuild = time.perf_counter() - start
    start = time.perf_counter()
    result = frequency_sweep(structure, FREQUENCIES, ports=ports)
    t_batched = time.perf_counter() - start
    mismatch = (np.abs(result.admittance - y_rebuild).max()
                / np.abs(y_rebuild).max())
    return {
        "ports": len(ports),
        "frequencies": len(FREQUENCIES),
        "t_rebuild": t_rebuild,
        "t_batched": t_batched,
        "speedup": t_rebuild / t_batched,
        "mismatch": mismatch,
    }


@pytest.mark.benchmark(group="factor-reuse")
def test_factor_reuse_speedup(benchmark, output_dir):
    holder = {}

    def run():
        plug = build_metalplug_structure(
            MetalPlugDesign(max_step=um(1.25)))
        holder["metal-plug"] = _compare_paths(plug, ["plug1", "plug2"])
        tsv = build_tsv_structure(
            TsvDesign(max_step=um(2.5), margin=um(2.5)))
        holder["tsv"] = _compare_paths(tsv,
                                       sorted(tsv.contacts))
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["FACTOR REUSE: batched multi-port sweep vs per-port "
             "rebuild",
             f"  frequencies: {len(FREQUENCIES)}"]
    for name, stats in holder.items():
        lines.append(
            f"  {name}: P={stats['ports']} "
            f"rebuild {stats['t_rebuild']:.2f}s -> "
            f"batched {stats['t_batched']:.2f}s "
            f"({stats['speedup']:.1f}x), "
            f"max rel mismatch {stats['mismatch']:.2e}")
    write_report(output_dir, "factor_reuse", "\n".join(lines))
    write_bench_json(output_dir, "factor_reuse", {
        "frequencies": len(FREQUENCIES),
        "structures": {name: {
            "ports": stats["ports"],
            "wall_time_rebuild_s": stats["t_rebuild"],
            "wall_time_batched_s": stats["t_batched"],
            "speedup": stats["speedup"],
            "max_rel_mismatch": stats["mismatch"],
        } for name, stats in holder.items()},
    })

    # --- shape assertions -------------------------------------------
    for stats in holder.values():
        # Identical physics: both paths factor the same restricted
        # matrix, so agreement is machine precision, not tolerance.
        assert stats["mismatch"] < 1e-12
    # The six-port TSV is the headline: every extra port rides the
    # same factorization (P >= 2, F >= 5, >= 3x required; ~9x
    # measured, so the bound holds even on noisy shared runners).
    # The 2-port plug's ~2x is timing-noise-sensitive and is reported
    # rather than asserted.
    assert holder["tsv"]["speedup"] > 3.0
