"""CAMPAIGN: chained sweep vs independent cold builds.

PR 4 benched one warm-started build against its cold twin; this bench
measures the full ``repro.campaign`` pipeline on the acceptance sweep:
a 4-point ``sigma_m`` doping sweep of the table2 preset at the
fast-profile mesh.  The campaign planner chains the members along the
nearest-neighbor order, so only the chain root pays the cold adaptive
build and every other member certifies from its predecessor's
accepted index set.

Measured and gated:

* **total solves** — the chained campaign must finish with strictly
  fewer PDE solves than building each member independently from a
  cold store (the ISSUE acceptance gate).
* **accuracy** — every warm-started member's surrogate is compared
  against its independently cold-built twin; scaled mean/std gaps
  must stay within the same bounds PR 4's warm-start bench asserts.

Results land in ``output/BENCH_campaign.json``.
"""

import time

import numpy as np

from repro.campaign import run_campaign
from repro.experiments import table2_spec
from repro.reporting import format_kv_block
from repro.serving import SurrogateStore, ensure_surrogate

from conftest import write_bench_json, write_report

#: The swept doping parameter values: 0.001-wide steps keep every hop
#: inside the warm-start drift budget, so the chain stays certified.
SIGMA_M_VALUES = (0.1, 0.101, 0.102, 0.103)
#: Adaptive tolerance of every member build (PR 4's warm-start tol).
TOL = 1e-5


def _table2_caps(problem, serving):
    caps = {}
    for group in problem.groups:
        if group.kind == "doping":
            caps[group.name] = serving["cap_doping"]
        elif "+" in group.name:
            caps[group.name] = serving["cap_merged"]
        else:
            caps[group.name] = serving["cap_small"]
    return caps


def _member_spec(profile, caps, sigma_m):
    params = dict(profile["serving"]["params"])
    return table2_spec(sigma_m=sigma_m, reduction={"caps": caps},
                       adaptive={"tol": TOL, "max_level": 2}, **params)


def test_campaign_vs_independent_builds(profile, output_dir, tmp_path):
    """Chained campaign: strictly fewer solves than 4 cold builds."""
    params = dict(profile["serving"]["params"])
    probe = table2_spec(**params).build_problem()
    caps = _table2_caps(probe, profile["serving"])

    # Independent baseline: each sweep point cold-built in its own
    # store, exactly what a user without campaigns would run.
    cold = {}
    start = time.perf_counter()
    for index, sigma_m in enumerate(SIGMA_M_VALUES):
        spec = _member_spec(profile, caps, sigma_m)
        store = SurrogateStore(tmp_path / f"cold{index}")
        cold[sigma_m] = ensure_surrogate(spec, store, warm_start=False)
    wall_independent = time.perf_counter() - start

    grid = {
        "preset": "table2",
        "base_params": params,
        "axes": {"sigma_m": list(SIGMA_M_VALUES)},
        "reduction": {"caps": caps,
                      "adaptive": {"tol": TOL, "max_level": 2}},
        "name": "bench-sigma-sweep",
    }
    campaign_store = SurrogateStore(tmp_path / "campaign")
    start = time.perf_counter()
    catalog = run_campaign(grid, campaign_store)
    wall_chained = time.perf_counter() - start

    solves_independent = sum(r.num_solves for r in cold.values())
    totals = catalog["totals"]
    members = {}
    for row in catalog["members"]:
        sigma_m = row["params"]["sigma_m"]
        twin = cold[sigma_m].record
        record = campaign_store.get(row["key"])
        scale = float(np.max(np.abs(twin.pce.mean)))
        members[f"{sigma_m:g}"] = {
            "solves_cold": int(cold[sigma_m].num_solves),
            "solves_chained": int(row["num_solves"]),
            "termination": row["termination"],
            "warm": row["warm_source"] is not None,
            "mean_scaled_gap": float(np.max(np.abs(
                record.pce.mean - twin.pce.mean)) / scale),
            "std_scaled_gap": float(np.max(np.abs(
                record.pce.std - twin.pce.std)) / scale),
        }

    stats = {
        "points": len(SIGMA_M_VALUES),
        "tol": TOL,
        "sigma_m_values": list(SIGMA_M_VALUES),
        "solves_independent": int(solves_independent),
        "solves_chained": int(totals["total_solves"]),
        "solve_speedup": solves_independent / totals["total_solves"],
        "warm_started": int(totals["warm_started"]),
        "failed": int(totals["failed"]),
        "wall_independent_s": wall_independent,
        "wall_chained_s": wall_chained,
        "members": members,
    }

    rows = [
        (f"independent cold builds ({stats['points']} points)",
         f"{stats['solves_independent']} solves "
         f"{wall_independent:.1f}s"),
        ("chained campaign",
         f"{stats['solves_chained']} solves {wall_chained:.1f}s "
         f"({stats['solve_speedup']:.2f}x fewer, "
         f"{stats['warm_started']} warm-started)"),
    ]
    for label in sorted(members, key=float):
        member = members[label]
        rows.append(
            (f"sigma_m={label}",
             f"{member['solves_cold']} cold -> "
             f"{member['solves_chained']} chained "
             f"[{member['termination']}], gaps "
             f"{member['mean_scaled_gap']:.1e} / "
             f"{member['std_scaled_gap']:.1e}"))
    write_report(output_dir, "bench_campaign",
                 format_kv_block(rows, title="campaign sweep"))
    write_bench_json(output_dir, "campaign", stats)

    # The ISSUE acceptance gate: chaining must beat independent cold
    # builds on total solves, not just wall time.
    assert stats["solves_chained"] < stats["solves_independent"]
    assert stats["warm_started"] >= 1
    assert stats["failed"] == 0
    for row in catalog["members"]:
        if row["warm_source"] is not None:
            assert (row["warm_source"].split(":")[0]
                    == row["planned_warm_source"])
    for member in members.values():
        assert member["mean_scaled_gap"] <= 1e-4
        assert member["std_scaled_gap"] <= 1e-3
