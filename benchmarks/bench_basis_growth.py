"""BASIS GROWTH: order-adaptive chaos vs the fixed order-2 fit.

Before this bench's feature, `max_level > 2` bought *certification*
only: the grid refined anisotropically but every build was projected
onto the fixed order-2 chaos, so higher-order content the refined
rules already resolved was simply thrown away at the fit.  With
``AdaptiveConfig(basis="adaptive")`` the accepted index set drives the
truncation (Conrad-Marzouk per-tensor boxes), so refinement effort and
representational power grow together.

Two cases:

* **synthetic anisotropic** — one of eight directions carries known
  Hermite content up to order 6 (exact reference statistics).  At the
  *same solve budget as the fixed level-2 grid*, the `max_level=3`
  order-adaptive build recovers the std to roundoff while the fixed
  level-2/order-2 build (and the order-2 fit of the very same adaptive
  grid) is ~40% off — asserted strictly.
* **table2 preset sanity** — at `max_level=2` the refinement path is
  basis-independent (identical grids and solve counts, asserted) and
  the order-adaptive fit reproduces the order-2 statistics on the
  paper's near-quadratic QoI.

Results land in ``output/bench_basis_growth.txt`` and machine-readable
in ``output/BENCH_basis_growth.json`` (guarded by
``benchmarks/check_bench.py`` in CI).
"""

import math
import time

import numpy as np

from repro.adaptive import AdaptiveConfig
from repro.adaptive import run_adaptive_sscm
from repro.analysis import run_sscm_analysis
from repro.experiments import table2_problem
from repro.reporting import format_kv_block
from repro.stochastic import hermite_value, run_sscm

from conftest import write_bench_json, write_report

#: Known 1-D Hermite content of the dominant direction: cubic through
#: sixth-order terms the quadratic chaos cannot represent.
HIGH_ORDER = {1: 1.2, 2: 0.5, 3: 0.35, 4: 0.15, 5: 0.12, 6: 0.05}


def _anisotropic_high_order(d=8, b_minor=0.01, a_minor=0.005):
    """QoI with order-6 content in direction 0, exact statistics."""

    def f(z):
        main = 3.0 + sum(c * float(hermite_value(k, z[0]))
                         for k, c in HIGH_ORDER.items())
        minor = sum(b_minor * z[i] + a_minor * (z[i] ** 2 - 1.0)
                    for i in range(1, d))
        return np.array([main + minor])

    variance = sum(c * c * math.factorial(k)
                   for k, c in HIGH_ORDER.items()) \
        + (d - 1) * (b_minor ** 2 + 2.0 * a_minor ** 2)
    return f, 3.0, math.sqrt(variance)


def test_order_adaptive_beats_fixed_order2(output_dir):
    """Acceptance: strictly lower std error than the fixed
    level-2/order-2 build at the same solve budget."""
    d = 8
    f, exact_mean, exact_std = _anisotropic_high_order(d)

    start = time.perf_counter()
    fixed = run_sscm(f, d, level=2)
    wall_fixed = time.perf_counter() - start

    # Same budget as the fixed grid; max_level=3 lets the dominant
    # direction refine past the level-2 simplex.
    config = {"tol": 1e-4, "max_level": 3, "max_solves": fixed.num_runs}
    start = time.perf_counter()
    grown = run_adaptive_sscm(
        f, d, AdaptiveConfig(basis="adaptive", **config))
    wall_grown = time.perf_counter() - start
    order2 = run_adaptive_sscm(f, d, AdaptiveConfig(**config))

    def rel_err(result):
        return (float(abs(result.mean[0] - exact_mean)
                      / abs(exact_mean)),
                float(abs(result.std[0] - exact_std) / exact_std))

    mean_err_fixed, std_err_fixed = rel_err(fixed)
    mean_err_order2, std_err_order2 = rel_err(order2)
    mean_err_grown, std_err_grown = rel_err(grown)
    stats = {
        "dim": d,
        "solves_fixed": int(fixed.num_runs),
        "solves_adaptive": int(grown.num_runs),
        "termination": grown.termination,
        "wall_fixed_s": wall_fixed,
        "wall_adaptive_s": wall_grown,
        "mean_rel_err_fixed": mean_err_fixed,
        "std_rel_err_fixed": std_err_fixed,
        "std_rel_err_order2_fit": std_err_order2,
        "mean_rel_err_adaptive": mean_err_grown,
        "std_rel_err_adaptive": std_err_grown,
        "basis_size_order2": int(order2.pce.basis.size),
        "basis_size_adaptive": int(grown.pce.basis.size),
        "basis_order_adaptive": int(grown.pce.basis.order),
    }

    rows = [
        (f"fixed level-2 / order-2 (d={d})",
         f"{stats['solves_fixed']} solves, std rel err "
         f"{std_err_fixed:.2e}"),
        ("adaptive max_level=3, order-2 fit",
         f"{stats['solves_adaptive']} solves, std rel err "
         f"{std_err_order2:.2e}"),
        ("adaptive max_level=3, basis=adaptive",
         f"{stats['solves_adaptive']} solves, std rel err "
         f"{std_err_grown:.2e}"),
        ("adaptive basis (size / max order)",
         f"{stats['basis_size_adaptive']} terms / order "
         f"{stats['basis_order_adaptive']}"),
    ]
    write_report(output_dir, "bench_basis_growth",
                 format_kv_block(rows, title="order-adaptive basis "
                                             "vs fixed order-2"))
    write_bench_json(output_dir, "basis_growth", {"synthetic": stats})

    # The acceptance bar: same budget, strictly lower std error — by
    # orders of magnitude, not by luck.
    assert stats["solves_adaptive"] <= stats["solves_fixed"]
    assert std_err_grown < std_err_fixed
    assert std_err_grown < std_err_order2
    assert std_err_grown <= 1e-9
    assert std_err_fixed >= 1e-2  # the gap is real, not roundoff
    assert mean_err_grown <= 1e-9 and mean_err_fixed <= 1e-9


def test_basis_growth_is_stable_on_table2(profile, output_dir):
    """Physical sanity: identical grids either way, and the
    order-adaptive fit reproduces the order-2 statistics on the
    paper's near-quadratic capacitance QoI."""
    srv = profile["serving"]
    t2 = profile["table2"]
    problem = table2_problem(t2["config"]())
    caps = {}
    for group in problem.groups:
        if group.kind == "doping":
            caps[group.name] = srv["cap_doping"]
        elif "+" in group.name:
            caps[group.name] = srv["cap_merged"]
        else:
            caps[group.name] = srv["cap_small"]

    stopping = {"tol": 1e-3, "max_level": 2}
    order2 = run_sscm_analysis(
        problem, max_variables_by_group=caps,
        refinement=AdaptiveConfig(**stopping))
    grown = run_sscm_analysis(
        problem, max_variables_by_group=caps,
        refinement=AdaptiveConfig(basis="adaptive", **stopping))

    scale = np.maximum(np.abs(order2.std), 1e-30)
    std_shift = float(np.max(np.abs(grown.std - order2.std) / scale))
    mean_scale = np.maximum(np.abs(order2.mean), 1e-30)
    mean_shift = float(np.max(np.abs(grown.mean - order2.mean)
                              / mean_scale))
    stats = {
        "dim": int(order2.dim),
        "solves_order2": int(order2.num_runs),
        "solves_adaptive_basis": int(grown.num_runs),
        "std_rel_err_vs_order2": std_shift,
        "mean_rel_err_vs_order2": mean_shift,
        "basis_size": int(grown.sscm.pce.basis.size),
    }
    rows = [
        (f"table2 d={stats['dim']} solves",
         f"order2 {stats['solves_order2']} == adaptive-basis "
         f"{stats['solves_adaptive_basis']}"),
        ("max rel shift (mean / std)",
         f"{mean_shift:.1e} / {std_shift:.1e}"),
    ]
    write_report(output_dir, "bench_basis_growth_table2",
                 format_kv_block(rows, title="basis growth sanity: "
                                             "table2 preset"))
    write_bench_json(output_dir, "basis_growth_table2",
                     {"table2": stats})

    # Basis choice must never change the refinement path...
    assert stats["solves_adaptive_basis"] == stats["solves_order2"]
    # ...and on a near-quadratic QoI it must not move the statistics.
    assert std_shift <= 1e-3
    assert mean_shift <= 1e-6
