"""TAB2: Table II — TSV capacitance statistics, MC vs SSCM.

Regenerates the six-entry capacitance column of the paper's Table II
for the two-TSV structure with lateral-wall roughness + RDF.  Shape
expectations asserted:

* the Maxwell sign pattern (positive self, negative couplings);
* the magnitude ordering of the paper
  (C_T1 dominant; far-wire coupling ~2 orders smaller);
* SSCM means within 2 % of the MC reference (C_T1W2 excluded: its
  near-zero mean makes the relative error ill-conditioned);
* SSCM std within 20 % of a Monte Carlo over the *same reduced
  variables* (the quadratic-model agreement; the full-covariance MC
  additionally carries the (w)PFA truncation error);
* SSCM run count matches the paper's O(d^2) collocation economy.
"""

import numpy as np
import pytest

from repro.analysis import (
    ComparisonTable,
    run_mc_analysis,
    run_sscm_analysis,
)
from repro.experiments import (
    TABLE2_PAPER_VALUES,
    TABLE2_ROW_NAMES,
    table2_problem,
)
from repro.stochastic.sparse_grid import paper_point_count

from conftest import write_report


@pytest.mark.benchmark(group="table2")
def test_table2_tsv_capacitance(benchmark, profile, output_dir):
    settings = profile["table2"]
    problem = table2_problem(settings["config"]())
    caps = {}
    for group in problem.geometry_groups:
        caps[group.name] = (settings["caps_merged"]
                            if "+tsv" in group.name
                            else settings["caps_small"])
    caps["doping"] = settings["caps_doping"]

    holder = {}

    def run():
        holder["sscm"] = run_sscm_analysis(
            problem, energy=0.99, max_variables_by_group=caps)
        holder["mc"] = run_mc_analysis(
            problem, num_runs=settings["mc_runs"],
            seed=profile["mc_seed"])
        # Reduced-space MC: the quadratic-model-only comparison.
        rng = np.random.default_rng(profile["mc_seed"])
        space = holder["sscm"].reduced_space
        values = np.vstack([problem.evaluate_sample(
            space.split(rng.standard_normal(space.dim)))
            for _ in range(settings["mc_runs"])])
        holder["red_mean"] = values.mean(axis=0)
        holder["red_std"] = values.std(axis=0, ddof=1)
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)
    sscm, mc = holder["sscm"], holder["mc"]
    table = ComparisonTable.from_results(mc, sscm, unit_scale=1e-15,
                                         unit_label="fF")

    reduced_rows = "\n".join(
        f"  {name}: reduced-MC mean {holder['red_mean'][i] / 1e-15:+.4f}"
        f" fF, std {holder['red_std'][i] / 1e-15:.4f} fF"
        for i, name in enumerate(TABLE2_ROW_NAMES))
    lines = ["TABLE II reproduction: TSV capacitance column "
             "[1e-15 F]",
             f"paper reference (MAGWEL testbed): "
             f"{TABLE2_PAPER_VALUES}", "",
             table.render("roughness + RDF (vs full-covariance MC)"),
             "reduced-space MC (same variables as SSCM):",
             reduced_rows,
             f"reduction: {sscm.reduced_space.summary()}",
             f"paper sparse-grid count at d={sscm.dim}: "
             f"{paper_point_count(sscm.dim)} (ours: {sscm.num_runs})"]
    write_report(output_dir, "table2", "\n".join(lines))

    # --- shape assertions -------------------------------------------
    means = dict(zip(TABLE2_ROW_NAMES, mc.mean))
    assert means["C_T1"] > 0.0
    for name in TABLE2_ROW_NAMES[1:]:
        assert means[name] < 0.0, name
    # Dominance and far-wire ordering as in the paper.
    assert means["C_T1"] > max(abs(means[n])
                               for n in TABLE2_ROW_NAMES[1:])
    assert abs(means["C_T1W2"]) < 0.1 * abs(means["C_T1W1"])
    # W3 / W4 flank TSV1 symmetrically.
    assert abs(means["C_T1W3"]) == pytest.approx(
        abs(means["C_T1W4"]), rel=0.3)
    # SSCM mean accuracy (C_T1W2 excluded: near-zero denominator).
    errors = table.mean_errors()
    for i, name in enumerate(TABLE2_ROW_NAMES):
        if name == "C_T1W2":
            continue
        assert errors[i] < 0.02, (name, errors[i])
        # Quadratic-model std agreement on the reduced space.
        assert (abs(sscm.std[i] - holder["red_std"][i])
                < 0.2 * holder["red_std"][i] + 1e-18), name
    # Same O(d^2) collocation economy as the paper (2415 runs at d=34).
    assert sscm.num_runs <= paper_point_count(sscm.dim) + sscm.dim
