"""SPEEDUP: the paper's "about 10X" SSCM-vs-MC claim.

Counts deterministic solver runs and wall time for the SSCM against a
Monte Carlo of the paper's 10000-run reference size (wall time is
extrapolated from the measured per-sample cost so the fast profile
stays fast).  Expected shape: at the paper's dimensions (d = 22 and
d = 34) the sparse grid needs 4x-10x fewer runs than a 10000-run MC —
the paper reports "about 10X" for example A.
"""

import time

import numpy as np
import pytest

from repro.analysis import run_sscm_analysis
from repro.analysis.speedup import SpeedupReport
from repro.experiments import table1_problem
from repro.stochastic.sparse_grid import paper_point_count
from repro.variation.random_field import stable_cholesky

from conftest import write_report

PAPER_MC_RUNS = 10000


@pytest.mark.benchmark(group="speedup")
def test_speedup_vs_monte_carlo(benchmark, profile, output_dir):
    settings = profile["table1"]
    problem = table1_problem("both", settings["config"]())
    holder = {}

    def run():
        holder["sscm"] = run_sscm_analysis(
            problem, energy=0.95,
            max_variables_by_group=settings["caps"])
        # Measure the raw per-sample MC cost on a handful of samples.
        factors = {g.name: stable_cholesky(g.covariance)
                   for g in problem.groups}
        rng = np.random.default_rng(profile["mc_seed"])
        start = time.perf_counter()
        probe = 5
        for _ in range(probe):
            xi = {g.name: factors[g.name]
                  @ rng.standard_normal(g.size)
                  for g in problem.groups}
            problem.evaluate_sample(xi)
        holder["mc_per_sample"] = (time.perf_counter() - start) / probe
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)
    sscm = holder["sscm"]
    mc_time = holder["mc_per_sample"] * PAPER_MC_RUNS
    report = SpeedupReport(
        mc_runs=PAPER_MC_RUNS,
        sscm_runs=sscm.num_runs,
        mc_time=mc_time,
        sscm_time=sscm.sscm.wall_time,
        dim=sscm.dim,
    )
    lines = [
        "SPEEDUP reproduction (paper: 'about 10X' for example A)",
        report.render(),
        "",
        "paper dimensions:",
        f"  example A: d=22 -> {paper_point_count(22)} runs vs "
        f"{PAPER_MC_RUNS} MC -> {PAPER_MC_RUNS / paper_point_count(22):.1f}x",
        f"  example B: d=34 -> {paper_point_count(34)} runs vs "
        f"{PAPER_MC_RUNS} MC -> {PAPER_MC_RUNS / paper_point_count(34):.1f}x",
    ]
    write_report(output_dir, "speedup", "\n".join(lines))

    # --- shape assertions -------------------------------------------
    assert report.run_ratio > 3.0
    assert report.time_ratio > 3.0
    # The paper's own ratios are pinned by the formula.
    assert PAPER_MC_RUNS / paper_point_count(22) == pytest.approx(
        9.66, abs=0.05)
    assert PAPER_MC_RUNS / paper_point_count(34) == pytest.approx(
        4.14, abs=0.05)
