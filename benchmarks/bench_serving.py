"""SERVING: warm-store statistical queries vs rebuilding the surrogate.

The paper's closing argument is economic: the SSCM costs a sparse grid
of deterministic solves *once*, after which the quadratic chaos answers
statistical questions for free (the ~10x headline vs 10000-run MC).
The serving layer pushes that to its logical end — build once, persist,
then answer mean/std/quantiles on the stored surrogate at vectorized-
NumPy cost.

This bench builds the TSV (Table II) preset cold through
``ensure_surrogate``, then times a full warm round trip: spec hash ->
store hit -> load -> mean + std + three quantiles from
``query_samples`` surrogate samples.  Expected shape: the warm query is
orders of magnitude (>= 50x asserted) faster than the cold build, and
the second ``ensure_surrogate`` call performs *zero* deterministic
solves — the instrumented solver count stays at 0.
"""

import statistics
import time

import numpy as np
import pytest

from repro.experiments import table2_spec
from repro.reporting import format_kv_block
from repro.serving import QueryEngine, SurrogateStore, ensure_surrogate
from repro.solver.avsolver import AVSolver

from conftest import write_bench_json, write_report

QUANTILES = (0.01, 0.5, 0.99)


@pytest.fixture()
def solve_counter(monkeypatch):
    counter = {"count": 0}
    for name in ("solve", "solve_ports"):
        original = getattr(AVSolver, name)

        def counting(self, *args, _original=original, **kwargs):
            counter["count"] += 1
            return _original(self, *args, **kwargs)

        monkeypatch.setattr(AVSolver, name, counting)
    return counter


def _serving_spec(profile):
    cfg = profile["serving"]
    # Group names depend on the facet layout; probe the problem once
    # (structure build only, no solves) to address the caps.
    probe = table2_spec(**cfg["params"]).build_problem()
    caps = {}
    for group in probe.groups:
        if group.kind == "doping":
            caps[group.name] = cfg["cap_doping"]
        elif "+" in group.name:
            caps[group.name] = cfg["cap_merged"]
        else:
            caps[group.name] = cfg["cap_small"]
    return table2_spec(reduction={"caps": caps}, **cfg["params"])


def test_warm_query_vs_cold_build(profile, output_dir, tmp_path,
                                  solve_counter):
    spec = _serving_spec(profile)
    store = SurrogateStore(tmp_path / "store")
    samples = profile["serving"]["query_samples"]

    start = time.perf_counter()
    cold = ensure_surrogate(spec, store)
    cold_time = time.perf_counter() - start
    assert cold.built
    cold_solves = solve_counter["count"]
    assert cold_solves == cold.num_solves > 0

    # Warm round trip: hash -> hit -> load -> mean/std/quantiles.
    solve_counter["count"] = 0
    start = time.perf_counter()
    warm = ensure_surrogate(spec, store)
    engine = QueryEngine(warm.record, num_samples=samples)
    mean = engine.mean()
    std = engine.std()
    quantiles = engine.quantiles(QUANTILES)
    warm_time = time.perf_counter() - start

    assert not warm.built
    assert warm.num_solves == 0
    assert solve_counter["count"] == 0, \
        "second ensure_surrogate ran deterministic solves"
    np.testing.assert_array_equal(warm.record.pce.coefficients,
                                  cold.record.pce.coefficients)
    assert np.all(std > 0.0)
    assert np.all(quantiles[0] <= quantiles[-1])

    speedup = cold_time / warm_time
    rows = [
        ("cache key", spec.cache_key()[:16] + "..."),
        ("reduced dim d", str(sum(g["reduced_size"]
                                  for g in cold.record.reduction))),
        ("cold build solves", str(cold_solves)),
        ("cold build [s]", f"{cold_time:.3f}"),
        ("warm solves", "0"),
        (f"warm query [s] (mean/std/q x {samples} samples)",
         f"{warm_time:.4f}"),
        ("speedup", f"{speedup:.1f}x"),
        ("C_T1 mean/std [F]", f"{mean[0]:.4e} / {std[0]:.4e}"),
        ("C_T1 q01/q50/q99 [F]",
         " / ".join(f"{q:.4e}" for q in quantiles[:, 0])),
    ]
    write_report(output_dir, "bench_serving",
                 format_kv_block(rows, title="surrogate serving: warm "
                                             "store vs cold build"))
    write_bench_json(output_dir, "serving", {
        "cold_build_solves": int(cold_solves),
        "wall_time_cold_s": cold_time,
        "wall_time_warm_s": warm_time,
        "speedup": speedup,
        "query_samples": int(samples),
    })
    assert speedup >= 50.0


def test_observability_zero_overhead(profile, output_dir, tmp_path):
    """Default-on metrics must not tax the warm serving path.

    The obs contract is zero overhead when nobody is looking: the
    tracer is off by default, the hit path is untraced, and the only
    instrumentation it runs is counter increments.  Three layers, from
    exact to end-to-end:

    1. *structural* — a warm hit activates no tracer (``timings`` is
       ``None``) and touches nothing in the registry beyond the
       store-traffic counters;
    2. *direct <2% gate* — counter-increment cost (timed over 100k
       calls) times the increments one warm trip performs must stay
       under 2% of the trip's wall time.  This is the contract's
       number, measured where it is statistically clean: the true
       fraction is ~1e-4, and the estimator's noise is microseconds.
    3. *end-to-end sanity* — interleaved A/B wall ratio (registry
       enabled vs disabled), min-of-reps per round, median across
       rounds.  Gated at 5%, not 2%: per-process layout/hash-seed
       bias on this ~1.5 ms disk-touching path measures ±3% for
       *identical* true cost (verified with pinned PYTHONHASHSEED),
       so a tighter wall gate would flake without measuring anything.
       ``check_bench`` applies the same absolute ceiling.
    """
    from repro.obs.metrics import REGISTRY, counter

    spec = _serving_spec(profile)
    store = SurrogateStore(tmp_path / "store")
    ensure_surrogate(spec, store)
    samples = profile["serving"]["query_samples"]

    def warm_round_trip():
        report = ensure_surrogate(spec, store)
        engine = QueryEngine(report.record, num_samples=samples)
        engine.mean()
        engine.std()
        return report

    def observe(batch=12):
        # One observation = a batch of round trips: a single trip is
        # ~2 ms dominated by disk jitter (store.touch rewrites the
        # sidecar), so batching averages the noise.
        start = time.perf_counter()
        for _ in range(batch):
            warm_round_trip()
        return time.perf_counter() - start

    # --- structural: the hit path is untraced and touches only the
    # store-traffic counters.
    before = {m["name"]: m for m in REGISTRY.snapshot()}
    report = warm_round_trip()
    assert report.timings is None, "warm hit ran under a tracer"
    after = {m["name"]: m for m in REGISTRY.snapshot()}
    changed = {name for name in after
               if after[name] != before.get(name)}
    assert changed <= {"repro_store_hits_total"}, \
        f"warm hit moved unexpected metrics: {sorted(changed)}"

    # --- direct: increments per trip x cost per increment < 2% of
    # the trip wall.
    scratch = counter("repro_bench_scratch_total", "overhead probe")
    calls = 100_000
    start = time.perf_counter()
    for _ in range(calls):
        scratch.inc()
    inc_cost = (time.perf_counter() - start) / calls
    hits = REGISTRY.counter("repro_store_hits_total",
                            "ensure_surrogate store hits")
    base = hits.total()
    trips = 12
    trip_wall = observe(trips) / trips
    incs_per_trip = (hits.total() - base) / trips
    direct_fraction = incs_per_trip * inc_cost / trip_wall
    assert direct_fraction < 0.02, \
        f"counter increments cost {direct_fraction:.2%} of a warm trip"

    # --- end-to-end: A/B wall ratio, alternating lead, min-of-reps,
    # median-of-rounds.
    rounds, reps = 8, 3
    ratios = []
    for index in range(rounds):
        pair = {"enabled": [], "disabled": []}
        order = (True, False) if index % 2 else (False, True)
        for _ in range(reps):
            for mode in order:
                if mode:
                    pair["enabled"].append(observe())
                else:
                    REGISTRY.disable()
                    try:
                        pair["disabled"].append(observe())
                    finally:
                        REGISTRY.enable()
        ratios.append(min(pair["enabled"]) / min(pair["disabled"]))
    overhead = statistics.median(ratios)

    write_bench_json(output_dir, "serving_overhead", {
        "warm_obs_overhead": overhead,
        "warm_obs_direct_overhead": 1.0 + direct_fraction,
        "wall_ratio_spread": max(ratios) - min(ratios),
        "rounds": rounds,
        "query_samples": int(samples),
    })
    assert overhead < 1.05, \
        f"observability overhead on the warm path: {overhead:.4f}x"


def test_batch_queries_share_the_store(profile, tmp_path, solve_counter):
    """A multi-query batch against a warm store runs solve-free."""
    from repro.serving import serve_batch

    spec = _serving_spec(profile)
    store = SurrogateStore(tmp_path / "store")
    ensure_surrogate(spec, store)
    solve_counter["count"] = 0

    samples = profile["serving"]["query_samples"]
    request = {"spec": spec.to_dict(),
               "queries": [{"kind": "mean"}, {"kind": "std"},
                           {"kind": "quantiles", "q": list(QUANTILES),
                            "num_samples": samples},
                           {"kind": "yield_below", "limit": 0.0,
                            "num_samples": samples}]}
    result = serve_batch({"requests": [request, request]}, store)
    assert solve_counter["count"] == 0
    for response in result["responses"]:
        assert not response["built"]
        assert len(response["answers"]) == 4
