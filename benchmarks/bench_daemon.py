"""DAEMON: always-on serving — single-flight builds and indexed listings.

The daemon's economics extend the serving layer's: the store already
makes each surrogate a one-time cost, the daemon makes the *process*
a one-time cost and bounds the marginal price of everything else.
Three claims, each measured:

* **single-flight** — K concurrent misses on one spec run exactly one
  solve campaign (`builds == 1` in the daemon's own counters; the
  other K-1 requests are served from the leader's flight or the
  store).  Solve counts are deterministic and gated exactly.
* **indexed listings** — at ~1k synthetic store entries the sqlite
  sidecar index answers `store ls` from one directory scan plus one
  query instead of ~1k validated JSON reads, with output *identical*
  to the scan's (gated as a boolean).
* **warm HTTP queries** — a warm `/query` round trip through the
  HTTP stack stays within an order of magnitude of calling
  `serve_batch` in-process; both are reported (wall fields, not
  gated) with the overhead ratio.

Entries are fabricated through the real `SurrogateStore.save` path
(valid checksums, 1-D payloads), so the scan side pays its true
per-sidecar validation cost.
"""

import json
import threading
import time
import urllib.request

import numpy as np

from repro.daemon import IndexedSurrogateStore, ReproDaemon
from repro.experiments import table1_spec
from repro.reporting import format_kv_block
from repro.serving import (
    ProblemSpec,
    SurrogateRecord,
    SurrogateStore,
    serve_batch,
)
from repro.stochastic.hermite import HermiteBasis
from repro.stochastic.pce import QuadraticPCE

from conftest import write_bench_json, write_report

#: Deliberately profile-independent: the daemon bench measures serving
#: mechanics (coalescing, index lookups, HTTP overhead), not solver
#: scale, so the build spec stays tiny in both profiles.
TINY_PARAMS = {"max_step_um": 2.0, "rdf_nodes": 6}
TINY_REDUCTION = {"caps": {"doping": 1}, "energy": 0.9}


def _fabricate_entries(root, count: int) -> None:
    basis = HermiteBasis(1, order=2)
    pce = QuadraticPCE(basis, np.zeros((basis.size, 1)),
                       output_names=["q"])
    store = SurrogateStore(root)
    for i in range(count):
        spec = ProblemSpec(preset="table2",
                           params={"margin_um": 1.0 + 0.001 * i},
                           reduction={})
        store.save(SurrogateRecord(pce=pce, spec=spec))


def _post_query(url: str, document: dict) -> dict:
    body = json.dumps(document).encode()
    request = urllib.request.Request(
        f"{url}/query", data=body,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=300.0) as response:
        return json.load(response)


def test_daemon_singleflight_and_index(profile, output_dir, tmp_path):
    cfg = profile["daemon"]
    store_root = tmp_path / "store"

    # -- indexed vs scanning `store ls` at cfg["store_entries"] -------
    _fabricate_entries(store_root, cfg["store_entries"])
    scan_store = SurrogateStore(store_root)
    start = time.perf_counter()
    scan_rows = scan_store.inventory()
    scan_wall = time.perf_counter() - start

    start = time.perf_counter()
    indexed_store = IndexedSurrogateStore(store_root)
    index_build_wall = time.perf_counter() - start
    start = time.perf_counter()
    indexed_rows = indexed_store.inventory()
    indexed_wall = time.perf_counter() - start

    identical_listing = indexed_rows == scan_rows
    assert identical_listing and len(scan_rows) == cfg["store_entries"]

    # -- K concurrent misses on one spec through the daemon -----------
    daemon = ReproDaemon(store_path=store_root, port=0)
    daemon.start()
    host, port = daemon.address
    url = f"http://{host}:{port}"
    spec = table1_spec("doping", reduction=dict(TINY_REDUCTION),
                       **TINY_PARAMS)
    document = {"spec": spec.to_dict(), "queries": [{"kind": "mean"}]}
    results = []
    workers = [
        threading.Thread(
            target=lambda: results.append(_post_query(url, document)))
        for _ in range(cfg["concurrent_queries"])]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=600.0)
    stampede_wall = time.perf_counter() - start
    stats = daemon.stats()
    assert len(results) == cfg["concurrent_queries"]
    assert all("answers" in r["responses"][0] for r in results)

    # -- warm query: HTTP round trip vs in-process serve_batch --------
    repeats = 20
    start = time.perf_counter()
    for _ in range(repeats):
        _post_query(url, document)
    http_warm_wall = (time.perf_counter() - start) / repeats
    daemon.shutdown()

    start = time.perf_counter()
    for _ in range(repeats):
        serve_batch(document, indexed_store)
    direct_warm_wall = (time.perf_counter() - start) / repeats

    served_without_build = (stats["coalesced_builds"] + stats["hits"])
    payload = {
        "store_entries": cfg["store_entries"],
        "identical_listing": identical_listing,
        "ls_scan_wall_s": scan_wall,
        "ls_indexed_wall_s": indexed_wall,
        "index_build_wall_s": index_build_wall,
        "ls_speedup": scan_wall / indexed_wall,
        "concurrent_queries": cfg["concurrent_queries"],
        "singleflight_builds": stats["builds"],
        "singleflight_build_solves": stats["build_solves"],
        "singleflight_served_without_build": served_without_build,
        "stampede_wall_s": stampede_wall,
        "http_warm_query_wall_s": http_warm_wall,
        "direct_warm_query_wall_s": direct_warm_wall,
        "http_overhead_wall_ratio": http_warm_wall / direct_warm_wall,
    }
    assert stats["builds"] == 1
    assert served_without_build == cfg["concurrent_queries"] - 1
    assert payload["ls_speedup"] > 1.0

    write_bench_json(output_dir, "daemon", payload)
    write_report(output_dir, "bench_daemon", format_kv_block([
        ("store entries", str(cfg["store_entries"])),
        ("ls: sidecar scan [ms]", f"{scan_wall * 1e3:.1f}"),
        ("ls: indexed [ms]", f"{indexed_wall * 1e3:.1f}"),
        ("ls: speedup", f"{payload['ls_speedup']:.1f}x"),
        ("ls: identical output", str(identical_listing)),
        ("concurrent misses", str(cfg["concurrent_queries"])),
        ("solve campaigns run", str(stats["builds"])),
        ("served without build", str(served_without_build)),
        ("warm query: HTTP [ms]", f"{http_warm_wall * 1e3:.2f}"),
        ("warm query: direct [ms]", f"{direct_warm_wall * 1e3:.2f}"),
    ], title="daemon: single-flight builds + indexed store"))
