"""PARALLEL+WARM: adaptive builds as the production build pipeline.

PR 3 made the solve *count* proportional to measured anisotropy; this
bench measures the two follow-ons that make the adaptive path cheap in
*wall time* and in *re-runs*:

* **Parallel wave evaluation** — every refinement wave's never-seen
  collocation points fan out over the ``analysis.parallel`` process
  pool (``AdaptiveConfig(workers=N)``).  Asserted bitwise-identical to
  the serial build; the measured speedup is recorded (and asserted
  > 1 only when the machine actually has more than one core).
* **Warm-started refinement** — a perturbed sibling of a stored spec
  seeds its refinement from the stored accepted index set and, when
  the indicator drift stays small, certifies without re-exploring the
  frontier.  Asserted strictly fewer solves than the cold build of the
  same perturbed spec.

Results land in ``output/BENCH_parallel_adaptive.json`` (including the
``combined_quadrature`` zero-weight point counts, so grid-efficiency
regressions stay visible across PRs).
"""

import os
import time
from functools import partial

import numpy as np

from repro.adaptive import AdaptiveConfig
from repro.analysis import run_sscm_analysis
from repro.experiments import table2_problem, table2_spec
from repro.reporting import format_kv_block
from repro.serving import SurrogateStore, ensure_surrogate

from conftest import write_bench_json, write_report

WORKERS = 2

#: Cross-test scratch: the parallel test deposits its stats here so
#: the warm-start test can merge both sections into one BENCH JSON.
_RESULTS = {}


def _table2_caps(problem, serving):
    caps = {}
    for group in problem.groups:
        if group.kind == "doping":
            caps[group.name] = serving["cap_doping"]
        elif "+" in group.name:
            caps[group.name] = serving["cap_merged"]
        else:
            caps[group.name] = serving["cap_small"]
    return caps


def _adaptive_spec(profile, tol, **overrides):
    params = dict(profile["serving"]["params"])
    params.update(overrides)
    probe = table2_spec(**params).build_problem()
    caps = _table2_caps(probe, profile["serving"])
    return table2_spec(reduction={"caps": caps},
                       adaptive={"tol": tol, "max_level": 2}, **params)


def test_parallel_waves_bitwise_and_fast(profile, output_dir):
    """workers=N: bitwise-identical surrogate, measured speedup."""
    t2 = profile["table2"]
    config = t2["config"]()
    caps = _table2_caps(table2_problem(config), profile["serving"])
    # tol=0 exhausts the level-2 simplex: the heaviest wave schedule
    # this problem can produce, so the parallel path gets real work.
    stopping = {"tol": 0.0, "max_level": 2}
    builder = partial(table2_problem, config)

    start = time.perf_counter()
    serial = run_sscm_analysis(
        table2_problem(config), max_variables_by_group=caps,
        refinement=AdaptiveConfig(**stopping))
    wall_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_sscm_analysis(
        table2_problem(config), max_variables_by_group=caps,
        refinement=AdaptiveConfig(workers=WORKERS, **stopping),
        problem_builder=builder)
    wall_parallel = time.perf_counter() - start

    meta = parallel.refinement_metadata()
    stats = {
        "dim": int(serial.dim),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "num_solves": int(serial.num_runs),
        "wall_serial_s": wall_serial,
        "wall_parallel_s": wall_parallel,
        "speedup": wall_serial / wall_parallel,
        "bitwise_identical": bool(
            np.array_equal(serial.sscm.pce.coefficients,
                           parallel.sscm.pce.coefficients)),
        "termination": meta["termination"],
        "grid_points": meta["grid_points"],
        "zero_weight_points": meta["zero_weight_points"],
    }

    rows = [
        (f"table2 exhausted level-2 (d={stats['dim']})",
         f"{stats['num_solves']} solves; serial {wall_serial:.1f}s -> "
         f"{WORKERS} workers {wall_parallel:.1f}s "
         f"({stats['speedup']:.2f}x on {stats['cpu_count']} cpus)"),
        ("bitwise identical", str(stats["bitwise_identical"])),
        ("zero-weight grid points",
         f"{stats['zero_weight_points']} / {stats['grid_points']}"),
    ]
    write_report(output_dir, "bench_parallel_adaptive",
                 format_kv_block(rows, title="parallel adaptive waves"))
    _RESULTS["parallel"] = stats

    assert stats["bitwise_identical"]
    assert parallel.num_runs == serial.num_runs
    if (os.cpu_count() or 1) >= 2:
        # Only meaningful with real cores underneath; on a single-CPU
        # box the recorded speedup documents the overhead instead.
        assert stats["speedup"] > 1.05


def test_warm_start_solve_counts(profile, output_dir, tmp_path):
    """Warm-started perturbed build: strictly fewer solves than cold."""
    tol = 1e-5
    base = _adaptive_spec(profile, tol)
    margin = profile["serving"]["params"]["margin_um"]
    perturbed = _adaptive_spec(profile, tol, margin_um=margin + 0.1)

    store = SurrogateStore(tmp_path / "warm")
    start = time.perf_counter()
    source = ensure_surrogate(base, store)
    wall_source = time.perf_counter() - start

    cold_store = SurrogateStore(tmp_path / "cold")
    start = time.perf_counter()
    cold = ensure_surrogate(perturbed, cold_store, warm_start=False)
    wall_cold = time.perf_counter() - start

    start = time.perf_counter()
    warm = ensure_surrogate(perturbed, store)
    wall_warm = time.perf_counter() - start

    refinement = warm.record.refinement
    scale = float(np.max(np.abs(cold.record.pce.mean)))
    warm_stats = {
        "tol": tol,
        "solves_source": int(source.num_solves),
        "solves_cold": int(cold.num_solves),
        "solves_warm": int(warm.num_solves),
        "solve_reduction": cold.num_solves / warm.num_solves,
        "wall_source_s": wall_source,
        "wall_cold_s": wall_cold,
        "wall_warm_s": wall_warm,
        "termination": refinement["termination"],
        "warm_start_source": refinement["warm_start_source"],
        "drift": (refinement.get("warm_start") or {}).get("drift"),
        "mean_scaled_gap": float(np.max(np.abs(
            warm.record.pce.mean - cold.record.pce.mean)) / scale),
        "std_scaled_gap": float(np.max(np.abs(
            warm.record.pce.std - cold.record.pce.std)) / scale),
        "zero_weight_points": refinement["zero_weight_points"],
        "grid_points": refinement["grid_points"],
    }

    rows = [
        ("source build (margin nominal)",
         f"{warm_stats['solves_source']} solves "
         f"{wall_source:.1f}s"),
        ("cold build (perturbed margin)",
         f"{warm_stats['solves_cold']} solves {wall_cold:.1f}s"),
        ("warm build (perturbed margin)",
         f"{warm_stats['solves_warm']} solves {wall_warm:.1f}s "
         f"({warm_stats['solve_reduction']:.1f}x fewer, "
         f"drift {warm_stats['drift']:.3f}, "
         f"[{warm_stats['termination']}])"
         if warm_stats["drift"] is not None else
         f"{warm_stats['solves_warm']} solves {wall_warm:.1f}s "
         f"(NOT warm-started: [{warm_stats['termination']}])"),
        ("scaled mean / std gap vs cold",
         f"{warm_stats['mean_scaled_gap']:.1e} / "
         f"{warm_stats['std_scaled_gap']:.1e}"),
    ]
    write_report(output_dir, "bench_warm_start",
                 format_kv_block(rows, title="warm-started refinement"))
    write_bench_json(output_dir, "parallel_adaptive", {
        "parallel": _RESULTS.get("parallel"),
        "warm": warm_stats,
    })

    assert warm.warm_start_source == base.cache_key()
    assert warm_stats["solves_warm"] < warm_stats["solves_cold"]
    assert warm_stats["mean_scaled_gap"] <= 1e-4
    assert warm_stats["std_scaled_gap"] <= 1e-3
