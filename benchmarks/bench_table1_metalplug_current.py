"""TAB1: Table I — interface current statistics, MC vs SSCM.

Regenerates all three rows of the paper's Table I (geometry-only,
doping-only, combined variations) for the metal-plug structure.

Two Monte-Carlo references are reported:

* **full MC** — samples the complete correlated covariance of every
  group (includes the (w)PFA truncation error in the comparison);
* **reduced MC** — samples the same reduced variables the SSCM
  collocates on (isolates the quadratic-chaos error; the paper's
  "Variational A-V solver + MC" column, which agrees with SSCM to
  <1 %, is consistent with this reference).

Shape expectations asserted:

* SSCM mean within 2 % of both MC references for every row;
* SSCM std within 15 % of the *reduced* MC std (quadratic-model
  agreement, the paper's headline);
* SSCM needs O(d^2) runs, far fewer than a converged MC.
"""

import numpy as np
import pytest

from repro.analysis import (
    ComparisonTable,
    run_mc_analysis,
    run_sscm_analysis,
)
from repro.experiments import TABLE1_PAPER_VALUES, table1_problem

from conftest import write_report

VARIANTS = ("geometry", "doping", "both")


def reduced_space_mc(problem, reduced_space, num_runs, seed):
    """MC over the reduced variables zeta ~ N(0, I_d)."""
    rng = np.random.default_rng(seed)
    values = [problem.evaluate_sample(
        reduced_space.split(rng.standard_normal(reduced_space.dim)))
        for _ in range(num_runs)]
    values = np.vstack(values)
    return values.mean(axis=0), values.std(axis=0, ddof=1)


def _run_variant(variant, settings, seed):
    problem = table1_problem(variant, settings["config"]())
    sscm = run_sscm_analysis(problem, energy=0.95,
                             max_variables_by_group=settings["caps"])
    mc = run_mc_analysis(problem, num_runs=settings["mc_runs"],
                         seed=seed)
    red_mean, red_std = reduced_space_mc(problem, sscm.reduced_space,
                                         settings["mc_runs"], seed)
    table = ComparisonTable.from_results(mc, sscm, unit_scale=1e-6,
                                         unit_label="uA")
    return table, sscm, (red_mean, red_std)


@pytest.mark.benchmark(group="table1")
def test_table1_interface_current(benchmark, profile, output_dir):
    settings = profile["table1"]
    results = {}

    def run():
        for variant in VARIANTS:
            results[variant] = _run_variant(variant, settings,
                                            profile["mc_seed"])
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["TABLE I reproduction: current through the "
             "metal-semiconductor interface [uA]",
             f"paper reference (MAGWEL testbed): "
             f"{TABLE1_PAPER_VALUES}", ""]
    for variant in VARIANTS:
        table, sscm, (red_mean, red_std) = results[variant]
        lines.append(table.render(f"variant: {variant}"))
        lines.append(
            f"  reduced-space MC (same variables as SSCM): mean "
            f"{red_mean[0] / 1e-6:.4f} uA, std {red_std[0] / 1e-6:.4f} uA")
        lines.append(f"  reduction: {sscm.reduced_space.summary()}")
        lines.append("")
    write_report(output_dir, "table1", "\n".join(lines))

    # --- shape assertions -------------------------------------------
    for variant in VARIANTS:
        table, sscm, (red_mean, red_std) = results[variant]
        # Mean agreement against both references.
        assert table.mean_errors()[0] < 0.02, variant
        assert abs(sscm.mean[0] - red_mean[0]) < 0.02 * red_mean[0]
        # Quadratic-model agreement on the reduced space (the paper's
        # <1% claim corresponds to this comparison; MC noise at the
        # fast profile's run count widens the tolerance).
        assert abs(sscm.std[0] - red_std[0]) < 0.15 * red_std[0], variant
    # Run-count economy: SSCM uses O(d^2) deterministic solves, far
    # fewer than the paper's 10000-run MC reference it replaces.
    _, sscm_both, _ = results["both"]
    assert sscm_both.num_runs < 10000 / 3.0
    # The combined-variation std is at least as large as the smaller
    # single-source std (variances add for independent sources).
    stds = {v: results[v][0].mc_std[0] for v in VARIANTS}
    assert stds["both"] >= 0.8 * min(stds["geometry"], stds["doping"])
