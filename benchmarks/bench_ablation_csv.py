"""ABL-CSV: the CSV model's effect on solvable statistics.

Quantifies what Fig. 1 implies for the statistics pipeline: under the
traditional model a growing fraction of Monte-Carlo samples destroys
the mesh and cannot be solved at all (the paper's "destruction of mesh
and the error of calculation"), while the CSV model solves every
sample.  Expected shape: at sigma_G comparable to the mesh step, the
traditional model loses a large fraction of samples; CSV loses none.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.experiments import Table1Config, table1_problem
from repro.geometry import MetalPlugDesign
from repro.reporting import format_table
from repro.units import um
from repro.variation.random_field import stable_cholesky

from conftest import write_report


def _solvable_fraction(problem, num_samples, seed):
    factors = {g.name: stable_cholesky(g.covariance)
               for g in problem.groups}
    rng = np.random.default_rng(seed)
    solved = 0
    for _ in range(num_samples):
        xi = {g.name: factors[g.name] @ rng.standard_normal(g.size)
              for g in problem.groups}
        try:
            problem.evaluate_sample(xi)
        except ReproError:
            continue
        solved += 1
    return solved / num_samples


@pytest.mark.benchmark(group="ablation")
def test_csv_vs_naive_solvability(benchmark, profile, output_dir):
    design = MetalPlugDesign(max_step=um(2.0))
    sigma = um(1.5)  # below the step: naive survives sometimes
    samples = max(20, profile["fig1_samples"] // 2)
    holder = {}

    def run():
        for model in ("csv", "naive"):
            config = Table1Config(design=design, sigma_g=sigma,
                                  rdf_nodes=8, surface_model=model)
            problem = table1_problem("geometry", config)
            holder[model] = _solvable_fraction(problem, samples,
                                               profile["mc_seed"])
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        ["model", "solvable sample fraction"],
        [["CSV (paper)", holder["csv"]],
         ["traditional", holder["naive"]]],
        title=(f"ABL-CSV: fraction of MC samples that solve at "
               f"sigma_G = {sigma * 1e6:.2f} um "
               f"(mesh step {um(2.0) * 1e6:.2f} um)"))
    write_report(output_dir, "ablation_csv", text)

    # --- shape assertions -------------------------------------------
    assert holder["csv"] == 1.0
    assert holder["naive"] < holder["csv"]
