"""SOLVER BACKENDS: factor-reuse-preconditioned Krylov vs cold LU.

A frequency sweep solves a *sequence* of nearby systems: between two
closely spaced frequencies the coupled A-V matrix barely moves, so the
previous frequency's LU factorization is a nearly perfect
preconditioner for the next one.  The ``krylov`` backend
(docs/SOLVER.md) exploits exactly that — one LU at the first
frequency, then a handful of certified GMRES iterations per subsequent
frequency — while the default ``lu`` backend pays a fresh
factorization every time.

This bench sweeps a dense frequency comb (2% steps, the shape of a
resonance scan) over the paper's two structures with both backends.
Expected shape: the Krylov path wins on the factorization-dominated
metal plug and holds its certified accuracy everywhere; every warm
solve must actually converge (a fallback would silently re-pay the
LU and erase the speedup without failing the accuracy check).  The
coarse six-port TSV is kept as the honest counter-example — its
factorization is cheap and its 6 ports each pay an iterative solve,
so krylov *loses* there (docs/SOLVER.md, "when Krylov wins"); only
its accuracy and convergence are asserted, and its reported speedup
documents the regime boundary.
"""

import time

import numpy as np
import pytest

from repro.geometry import (
    MetalPlugDesign,
    TsvDesign,
    build_metalplug_structure,
    build_tsv_structure,
)
from repro.solver.backends import _KRYLOV_SOLVES
from repro.solver.sweep import frequency_sweep
from repro.units import um

from conftest import write_bench_json, write_report

#: A tight comb around 2 GHz: consecutive matrices differ only in
#: their (small) frequency-dependent terms, the regime the
#: preconditioner-reuse path is built for.
FREQUENCIES = tuple(2.0e9 * (1.0 + 0.02 * i) for i in range(8))


def _outcome_counts():
    return {sample["labels"]["outcome"]: sample["value"]
            for sample in _KRYLOV_SOLVES.snapshot()["samples"]}


def _compare_backends(structure):
    start = time.perf_counter()
    lu = frequency_sweep(structure, FREQUENCIES, backend="lu")
    t_lu = time.perf_counter() - start
    before = _outcome_counts()
    start = time.perf_counter()
    krylov = frequency_sweep(structure, FREQUENCIES, backend="krylov")
    t_krylov = time.perf_counter() - start
    after = _outcome_counts()
    mismatch = (np.abs(krylov.admittance - lu.admittance).max()
                / np.abs(lu.admittance).max())
    return {
        "frequencies": len(FREQUENCIES),
        "t_lu": t_lu,
        "t_krylov": t_krylov,
        "speedup": t_lu / t_krylov,
        "mismatch": mismatch,
        "converged": after.get("converged", 0) - before.get(
            "converged", 0),
        "fallbacks": after.get("fallback", 0) - before.get(
            "fallback", 0),
    }


@pytest.mark.benchmark(group="solver-backends")
def test_krylov_backend_speedup(benchmark, output_dir):
    holder = {}

    def run():
        plug = build_metalplug_structure(
            MetalPlugDesign(max_step=um(1.25)))
        holder["metal-plug"] = _compare_backends(plug)
        tsv = build_tsv_structure(
            TsvDesign(max_step=um(2.5), margin=um(2.5)))
        holder["tsv"] = _compare_backends(tsv)
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["SOLVER BACKENDS: preconditioned krylov sweep vs cold-LU "
             "sweep",
             f"  frequencies: {len(FREQUENCIES)} (2% comb at 2 GHz)"]
    for name, stats in holder.items():
        lines.append(
            f"  {name}: lu {stats['t_lu']:.2f}s -> "
            f"krylov {stats['t_krylov']:.2f}s "
            f"({stats['speedup']:.1f}x), "
            f"max rel mismatch {stats['mismatch']:.2e}, "
            f"{stats['converged']:.0f} converged / "
            f"{stats['fallbacks']:.0f} fallbacks")
    write_report(output_dir, "backends", "\n".join(lines))
    write_bench_json(output_dir, "backends", {
        "frequencies": len(FREQUENCIES),
        "structures": {name: {
            "wall_time_lu_s": stats["t_lu"],
            "wall_time_krylov_s": stats["t_krylov"],
            "speedup": stats["speedup"],
            "max_rel_mismatch": stats["mismatch"],
            "converged_solves": stats["converged"],
            "fallback_solves": stats["fallbacks"],
        } for name, stats in holder.items()},
    })

    # --- shape assertions -------------------------------------------
    for stats in holder.values():
        # Certified accuracy: the admittances agree far tighter than
        # any engineering use of a Y-parameter needs.
        assert stats["mismatch"] < 1e-6
        # Every warm solve converged: a fallback re-pays the LU and
        # silently turns the krylov path into a slower lu path.
        assert stats["fallbacks"] == 0
    # The dense comb is the headline: the metal plug's sweep time is
    # factorization-dominated, so replacing 7 of 8 factorizations
    # with a few preconditioned iterations must win clearly (~2.5x
    # measured; >1.3x required to absorb shared-runner noise).
    assert holder["metal-plug"]["speedup"] > 1.3
