"""ABL-WPFA: weighted vs plain PFA at an equal variable budget.

The design-choice ablation of Section III.C, run on the experiment the
paper defines the weights for: the random-doping problem, where eq. (9)
sets ``w_i = J0_i * nodeV_i`` (nominal current density times dual
volume).  Both reductions get the same reduced-variable budget; the
retained fraction of the Monte-Carlo QoI standard deviation is
compared.  Expected shape: wPFA retains clearly more QoI variance than
PFA at every budget — the weights rank the factors by *output*
influence, which is the paper's entire argument for the weighting.
"""

import numpy as np
import pytest

from repro.analysis import nominal_weights, run_mc_analysis
from repro.experiments import table1_problem
from repro.reporting import format_table
from repro.stochastic.reduction import reduce_groups

from conftest import write_report

BUDGETS = (1, 2, 3)


def _reduced_mc_std(problem, reduced_space, num_runs, seed):
    rng = np.random.default_rng(seed)
    values = [problem.evaluate_sample(
        reduced_space.split(rng.standard_normal(reduced_space.dim)))[0]
        for _ in range(num_runs)]
    return float(np.std(values, ddof=1))


@pytest.mark.benchmark(group="ablation")
def test_wpfa_vs_pfa(benchmark, profile, output_dir):
    settings = profile["table1"]
    problem = table1_problem("doping", settings["config"]())
    runs = max(60, settings["mc_runs"] // 3)
    holder = {}

    def run():
        weights = nominal_weights(problem)
        holder["full"] = run_mc_analysis(problem, num_runs=runs,
                                         seed=profile["mc_seed"]).std[0]
        rows = []
        for budget in BUDGETS:
            caps = {"doping": budget}
            pfa_space = reduce_groups(problem.groups, method="pfa",
                                      energy=1.0,
                                      max_variables_by_group=caps)
            wpfa_space = reduce_groups(problem.groups, method="wpfa",
                                       weights_by_group=weights,
                                       energy=1.0,
                                       max_variables_by_group=caps)
            pfa = _reduced_mc_std(problem, pfa_space, runs,
                                  profile["mc_seed"])
            wpfa = _reduced_mc_std(problem, wpfa_space, runs,
                                   profile["mc_seed"])
            rows.append([budget, pfa / holder["full"],
                         wpfa / holder["full"]])
        holder["rows"] = rows
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]
    text = format_table(
        ["variables kept", "PFA retained std", "wPFA retained std"],
        rows,
        title=("ABL-WPFA (doping problem, eq. 9 weights): fraction of "
               "the full-covariance MC std retained"))
    write_report(output_dir, "ablation_wpfa", text)

    # --- shape assertions -------------------------------------------
    # wPFA beats PFA at every budget, decisively at the smallest.
    for budget, pfa_frac, wpfa_frac in rows:
        assert wpfa_frac > pfa_frac, budget
    assert rows[0][2] > 1.3 * rows[0][1]
    # More budget never hurts either method (monotone retention, up to
    # MC noise).
    assert rows[-1][1] >= rows[0][1] - 0.05
    assert rows[-1][2] >= rows[0][2] - 0.05