"""FIG2: the metal-plug structure and its interface potential map.

Reproduces Fig. 2(a)'s structure statistics (node/link counts in the
range of the paper's 1300-node / 3540-link mesh) and Fig. 2(b)'s
potential distribution on the metal/silicon interface: maximum under
the driven plug, monotone decay toward the grounded one.
"""

import numpy as np
import pytest

from repro.extraction import potential_cross_section
from repro.geometry import MetalPlugDesign, build_metalplug_structure
from repro.reporting import format_kv_block
from repro.solver import AVSolver
from repro.units import um

from conftest import write_report


@pytest.mark.benchmark(group="fig2")
def test_fig2_interface_field(benchmark, profile, output_dir):
    structure = build_metalplug_structure(MetalPlugDesign())
    solver = AVSolver(structure, frequency=1.0e9)
    holder = {}

    def run():
        holder["solution"] = solver.solve({"plug1": 1.0, "plug2": 0.0})
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)
    solution = holder["solution"]
    xs, ys, values = potential_cross_section(solution, axis=2,
                                             coordinate=um(10.0))
    mags = np.abs(values)

    grid = structure.grid
    rows = [f"{x * 1e6:5.1f} | "
            + " ".join(f"{mags[i, j]:.3f}" for j in range(ys.size))
            for i, x in enumerate(xs)]
    text = "\n".join([
        format_kv_block([
            ("nodes", grid.num_nodes),
            ("links", grid.num_links),
            ("paper mesh", "1300 nodes / 3540 links"),
        ], title="FIG 2(a) reproduction: metal-plug structure"),
        "",
        "FIG 2(b) reproduction: |V| on the interface plane "
        "(rows = x [um])",
        *rows,
    ])
    write_report(output_dir, "fig2", text)

    # --- shape assertions -------------------------------------------
    # Same order of magnitude as the paper's mesh.
    assert 500 <= grid.num_nodes <= 6000
    assert 1500 <= grid.num_links <= 18000
    # Field shape: ~1 V under plug1, ~0 V under plug2, gradient between.
    i1 = int(np.argmin(np.abs(xs - um(2.5))))
    i2 = int(np.argmin(np.abs(xs - um(7.5))))
    jmid = int(np.argmin(np.abs(ys - um(5.0))))
    assert mags[i1, jmid] > 0.95
    assert mags[i2, jmid] < 0.05
    imid = int(np.argmin(np.abs(xs - um(5.0))))
    assert 0.2 < mags[imid, jmid] < 0.8
