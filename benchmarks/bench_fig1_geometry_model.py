"""FIG1: traditional vs CSV geometric variation model.

Reproduces the point of Fig. 1: sweep the roughness amplitude sigma_G
and measure the fraction of random samples whose perturbed mesh remains
valid under (a) the traditional direct-perturbation model and (b) the
continuous-surface-variation model.  Expected shape: the traditional
model collapses once sigma_G reaches the *local mesh step* (1.25 um
here), while the CSV model survives far beyond it — its own limit is
only reached when 3-sigma perturbations approach the distance between
*interfaces* (the 5 um TSV-to-TSV gap), which is the honest content of
the paper's "large-size variations" claim.
"""

import numpy as np
import pytest

from repro.geometry import TsvDesign, build_tsv_structure
from repro.reporting import Series, format_series
from repro.units import um
from repro.variation import (
    ContinuousSurfaceModel,
    NaiveSurfaceModel,
    geometry_groups_from_facets,
)
from repro.variation.random_field import stable_cholesky

from conftest import write_report

SIGMA_SWEEP_UM = (0.1, 0.25, 0.5, 1.0, 1.5)


def _survival(model, groups, factors, sigma, samples, seed):
    rng = np.random.default_rng(seed)
    survived = 0
    for _ in range(samples):
        anchors = {}
        for group in groups:
            values = sigma * (factors[group.name]
                              @ rng.standard_normal(group.size))
            if group.axis in anchors:
                ids, vals = anchors[group.axis]
                anchors[group.axis] = (
                    np.concatenate([ids, group.node_ids]),
                    np.concatenate([vals, values]))
            else:
                anchors[group.axis] = (group.node_ids, values)
        if model.perturbed_grid(anchors).validity().valid:
            survived += 1
    return survived / samples


@pytest.mark.benchmark(group="fig1")
def test_fig1_mesh_survival(benchmark, profile, output_dir):
    design = TsvDesign(max_step=um(1.25))
    structure = build_tsv_structure(design)
    groups = geometry_groups_from_facets(structure.grid,
                                         design.lateral_facets(),
                                         sigma=1.0, eta=um(0.7))
    factors = {g.name: stable_cholesky(g.covariance) for g in groups}
    naive = NaiveSurfaceModel(structure.grid)
    csv = ContinuousSurfaceModel(structure.grid)
    samples = profile["fig1_samples"]
    results = {}

    def run():
        naive_rates = []
        csv_rates = []
        for k, sigma_um in enumerate(SIGMA_SWEEP_UM):
            sigma = um(sigma_um)
            naive_rates.append(_survival(naive, groups, factors, sigma,
                                         samples, seed=100 + k))
            csv_rates.append(_survival(csv, groups, factors, sigma,
                                       samples, seed=100 + k))
        results["naive"] = np.array(naive_rates)
        results["csv"] = np.array(csv_rates)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    sweep = np.array(SIGMA_SWEEP_UM)
    text = format_series(
        [Series("traditional", sweep, results["naive"]),
         Series("CSV (paper)", sweep, results["csv"])],
        x_label="sigma_G [um]",
        title=("FIG 1 reproduction: mesh survival fraction "
               "(local step 1.25 um)"))
    write_report(output_dir, "fig1", text)

    # --- shape assertions -------------------------------------------
    # CSV survives every sample well past the mesh step (first three
    # sweep points span 0.1 to 0.5 um against a 1.25 um step).
    assert np.all(results["csv"][:3] == 1.0)
    # The traditional model survives small roughness but collapses
    # once sigma_G is comparable to the mesh step.
    assert results["naive"][0] > 0.9
    assert results["naive"][-1] < 0.05
    assert np.all(np.diff(results["naive"]) <= 1e-9)
    # CSV strictly dominates the traditional model at every amplitude.
    assert np.all(results["csv"] >= results["naive"])
    # CSV's own limit appears only at interface-gap scale (~5 um / 3).
    assert results["csv"][2] == 1.0 and results["naive"][2] == 0.0
