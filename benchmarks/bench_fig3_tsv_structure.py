"""FIG3: the two-TSV test structure.

Reproduces Fig. 3's structure inventory: two 5x5x20 um TSVs at 10 um
pitch through a 5 um silicon substrate with two 2 um metal trace
layers, wires of 1 um width / 2 um height, and the 8 perturbable
lateral facets grouped as in Section IV.B.  The paper's mesh is 4032
nodes / 11332 links; the default design lands in the same range.
"""

import pytest

from repro.geometry import TsvDesign, build_tsv_structure
from repro.reporting import format_kv_block
from repro.units import um
from repro.variation import geometry_groups_from_facets

from conftest import write_report


@pytest.mark.benchmark(group="fig3")
def test_fig3_structure(benchmark, profile, output_dir):
    design = TsvDesign()
    holder = {}

    def run():
        holder["structure"] = build_tsv_structure(design)
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)
    structure = holder["structure"]
    grid = structure.grid
    kinds = structure.node_kinds()
    groups = geometry_groups_from_facets(grid, design.lateral_facets(),
                                         sigma=um(0.15), eta=um(0.7))

    text = format_kv_block([
        ("nodes", grid.num_nodes),
        ("links", grid.num_links),
        ("paper mesh", "4032 nodes / 11332 links"),
        ("metal nodes", kinds.num_metal),
        ("semiconductor nodes", kinds.num_semiconductor),
        ("contacts", sorted(structure.contacts)),
        ("roughness groups",
         {g.name: g.size for g in groups}),
    ], title="FIG 3 reproduction: TSV structure inventory")
    write_report(output_dir, "fig3", text)

    # --- shape assertions -------------------------------------------
    assert 2000 <= grid.num_nodes <= 16000
    assert sorted(structure.contacts) == ["tsv1", "tsv2", "w1", "w2",
                                          "w3", "w4"]
    # 8 facets merge into 2 big + 4 small groups; the merged groups are
    # exactly twice the single-facet size (identical coplanar facets).
    assert len(groups) == 6
    sizes = sorted(g.size for g in groups)
    assert sizes[-1] == sizes[-2] == 2 * sizes[0]
    # TSV geometry figures from the paper.
    boxes = design.tsv_boxes()
    assert boxes[0].size == (um(5.0), um(5.0), um(20.0))
    assert boxes[1].lo[0] - boxes[0].hi[0] == pytest.approx(um(10.0))
