"""Benchmark profiles.

Every bench regenerates one of the paper's tables or figures.  Two
profiles are selectable with the ``REPRO_BENCH_PROFILE`` environment
variable:

* ``fast`` (default) — coarse meshes, reduced variable budgets and a
  few hundred Monte-Carlo runs: the whole suite finishes in minutes and
  still shows every qualitative shape the paper reports.
* ``paper`` — the paper's mesh scale, its reduced-variable counts
  (d = 22 for Table I, d = 34 for Table II) and a 10000-run Monte
  Carlo.  Expect hours, as the paper itself reports.

Rendered tables are also written to ``benchmarks/output/`` so the
numbers survive the pytest run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import Table1Config, Table2Config
from repro.geometry import MetalPlugDesign, TsvDesign
from repro.units import um

OUTPUT_DIR = Path(__file__).parent / "output"

PROFILES = {
    "fast": {
        "table1": {
            "config": lambda: Table1Config(
                design=MetalPlugDesign(max_step=um(2.0)), rdf_nodes=16),
            "caps": {"plug1_interface": 2, "plug2_interface": 2,
                     "doping": 3},
            "mc_runs": 150,
        },
        "table2": {
            "config": lambda: Table2Config(
                design=TsvDesign(max_step=um(2.5), margin=um(2.5)),
                rdf_nodes=24),
            "caps_small": 2, "caps_merged": 2, "caps_doping": 2,
            "mc_runs": 150,
        },
        "fig1_samples": 30,
        "mc_seed": 20120316,  # DATE'12 started March 12-16, 2012
        "serving": {
            "params": {"max_step_um": 2.5, "margin_um": 2.5,
                       "rdf_nodes": 8},
            "cap_small": 1, "cap_merged": 1, "cap_doping": 1,
            "query_samples": 100000,
        },
        "daemon": {"store_entries": 1000, "concurrent_queries": 4},
    },
    "paper": {
        "table1": {
            # Paper scale: 32 interface + 72 RDF variables reduced to
            # 12 + 10 -> d = 22 (1035 paper runs / 1057 here).
            "config": lambda: Table1Config(
                design=MetalPlugDesign(max_step=um(1.0)), rdf_nodes=72),
            "caps": {"plug1_interface": 6, "plug2_interface": 6,
                     "doping": 10},
            "mc_runs": 10000,
        },
        "table2": {
            # Paper scale: groups reduced to 6 (merged/doping) and 4
            # (single facets) -> d = 34 (2415 paper runs / 2449 here).
            "config": lambda: Table2Config(
                design=TsvDesign(max_step=um(1.0)), rdf_nodes=128),
            "caps_small": 4, "caps_merged": 6, "caps_doping": 6,
            "mc_runs": 10000,
        },
        "fig1_samples": 200,
        "mc_seed": 20120316,
        "serving": {
            "params": {"max_step_um": 1.0, "margin_um": 3.0,
                       "rdf_nodes": 128},
            "cap_small": 4, "cap_merged": 6, "cap_doping": 6,
            "query_samples": 1000000,
        },
        "daemon": {"store_entries": 4000, "concurrent_queries": 8},
    },
}


@pytest.fixture(scope="session")
def profile():
    name = os.environ.get("REPRO_BENCH_PROFILE", "fast")
    if name not in PROFILES:
        raise ValueError(
            f"REPRO_BENCH_PROFILE must be one of {sorted(PROFILES)}, "
            f"got {name!r}")
    return PROFILES[name]


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_report(output_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table and echo it to the captured stdout."""
    path = output_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print("\n" + text)


def write_bench_json(output_dir: Path, name: str, payload: dict) -> Path:
    """Persist machine-readable benchmark results as ``BENCH_<name>.json``.

    The JSON sits next to the rendered ``.txt`` report so the perf
    trajectory (solve counts, wall times, speedups) can be diffed
    across PRs by tooling instead of by eye.  ``payload`` must be
    JSON-serializable; ``name`` and the active profile are stamped in.
    """
    path = output_dir / f"BENCH_{name}.json"
    document = {
        "name": name,
        "profile": os.environ.get("REPRO_BENCH_PROFILE", "fast"),
        **payload,
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True)
                    + "\n")
    return path
