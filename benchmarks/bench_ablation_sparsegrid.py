"""ABL-GRID: sparse grid vs tensor grid vs Monte Carlo convergence.

The design choice behind the SSCM (after Zhu et al.): a level-2
Smolyak grid reaches quadratic-chaos accuracy with O(d^2) points while
the full tensor grid needs 3^d and plain MC converges as 1/sqrt(N).
Measured on the fitted PCE surrogate of the Table I problem (so the
study itself costs d^2 coupled solves once, then every estimator is
exact-function evaluation).
"""

import numpy as np
import pytest

from repro.analysis import run_sscm_analysis
from repro.experiments import table1_problem
from repro.reporting import format_table
from repro.stochastic import run_sscm, smolyak_sparse_grid, tensor_grid

from conftest import write_report


@pytest.mark.benchmark(group="ablation")
def test_sparse_vs_tensor_vs_mc(benchmark, profile, output_dir):
    settings = profile["table1"]
    problem = table1_problem("both", settings["config"]())
    holder = {}

    def run():
        analysis = run_sscm_analysis(
            problem, energy=0.95,
            max_variables_by_group=settings["caps"])
        holder["analysis"] = analysis
        surrogate = analysis.sscm.pce
        d = analysis.dim

        def f(zeta):
            return surrogate.evaluate(zeta)

        # Reference statistics of the surrogate (exact for a quadratic).
        ref = run_sscm(f, d)
        sparse = smolyak_sparse_grid(d)
        rows = [["sparse grid", sparse.num_points, 0.0, 0.0]]
        if 3 ** d <= 200000:
            tg = tensor_grid(d, 3)
            res_t = run_sscm(f, d, grid=tg)
            rows.append(["tensor grid", tg.num_points,
                         abs(res_t.mean[0] - ref.mean[0])
                         / abs(ref.mean[0]),
                         abs(res_t.std[0] - ref.std[0]) / ref.std[0]])
        rng = np.random.default_rng(profile["mc_seed"])
        for n in (sparse.num_points, 10 * sparse.num_points):
            z = rng.standard_normal((n, d))
            vals = f(z)[:, 0]
            rows.append([f"MC n={n}", n,
                         abs(vals.mean() - ref.mean[0])
                         / abs(ref.mean[0]),
                         abs(vals.std(ddof=1) - ref.std[0])
                         / ref.std[0]])
        holder["rows"] = rows
        holder["ref"] = ref
        return holder

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = holder["rows"]
    text = format_table(
        ["estimator", "evaluations", "rel mean err", "rel std err"],
        rows,
        title=("ABL-GRID: estimator accuracy on the quadratic "
               f"surrogate (d = {holder['analysis'].dim})"))
    write_report(output_dir, "ablation_sparsegrid", text)

    # --- shape assertions -------------------------------------------
    # The sparse grid is exact on the quadratic surrogate (row 0 holds
    # zeros by construction); MC at the same budget is notably worse.
    mc_same_budget = rows[-2]
    assert mc_same_budget[3] > 1e-4
    # Tensor grid (when feasible) matches the sparse grid's exactness
    # at exponentially higher cost.
    tensor_rows = [r for r in rows if r[0] == "tensor grid"]
    if tensor_rows:
        assert tensor_rows[0][1] >= rows[0][1]
        assert tensor_rows[0][3] < 1e-8
