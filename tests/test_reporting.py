"""Tests for table/series rendering and the comparison table."""

import numpy as np
import pytest

from repro.analysis.results import ComparisonTable
from repro.analysis.speedup import SpeedupReport
from repro.errors import StochasticError
from repro.reporting import Series, format_kv_block, format_series, format_table


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["a", "b"], [[1.0, "x"], [2.5, "y"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "2.5" in text

    def test_column_alignment(self):
        text = format_table(["name", "value"],
                            [["long-name-here", 1.0], ["x", 123456.0]])
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equally padded

    def test_kv_block(self):
        text = format_kv_block([("alpha", 1), ("b", "two")], title="H")
        assert text.splitlines()[0] == "H"
        assert "alpha : 1" in text


class TestSeries:
    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            Series("s", np.arange(3), np.arange(4))

    def test_csv_export(self):
        s = Series("y", np.array([0.0, 1.0]), np.array([2.0, 3.0]))
        csv = s.to_csv()
        assert csv.splitlines()[0] == "x,y"
        assert "1,3" in csv

    def test_format_series_shared_axis(self):
        x = np.array([0.0, 1.0])
        text = format_series([Series("a", x, x), Series("b", x, 2 * x)],
                             x_label="t", title="S")
        assert "t" in text and "a" in text and "b" in text

    def test_format_series_axis_mismatch(self):
        with pytest.raises(ValueError):
            format_series([Series("a", np.arange(2.0), np.arange(2.0)),
                           Series("b", np.arange(3.0), np.arange(3.0))])


class TestComparisonTable:
    def _table(self):
        return ComparisonTable(
            names=["q1", "q2"],
            mc_mean=np.array([1.0, -2.0]),
            mc_std=np.array([0.1, 0.2]),
            sscm_mean=np.array([1.01, -1.98]),
            sscm_std=np.array([0.11, 0.19]),
            mc_runs=10000,
            sscm_runs=1000,
            mc_time=100.0,
            sscm_time=10.0,
        )

    def test_errors(self):
        table = self._table()
        np.testing.assert_allclose(table.mean_errors(), [0.01, 0.01])
        np.testing.assert_allclose(table.std_errors(), [0.1, 0.05])

    def test_speedup(self):
        assert self._table().speedup == pytest.approx(10.0)

    def test_render_contains_rows(self):
        text = self._table().render("My Table")
        assert "My Table" in text
        assert "q1" in text and "q2" in text
        assert "10.0x" in text

    def test_from_results_requires_names(self):
        class Dummy:
            mean = np.zeros(1)
            std = np.ones(1)
            num_runs = 3
            wall_time = 0.0
            output_names = None

        class DummyAnalysis:
            mean = np.zeros(1)
            std = np.ones(1)
            num_runs = 5

            class sscm:
                output_names = None
                wall_time = 0.0

        with pytest.raises(StochasticError):
            ComparisonTable.from_results(Dummy(), DummyAnalysis())


class TestSpeedupReport:
    def test_ratios(self):
        report = SpeedupReport(mc_runs=10000, sscm_runs=1035,
                               mc_time=1000.0, sscm_time=100.0, dim=22)
        assert report.run_ratio == pytest.approx(10000 / 1035)
        assert report.time_ratio == pytest.approx(10.0)
        assert "d=22" in report.render()

    def test_zero_time_guard(self):
        report = SpeedupReport(1, 1, 1.0, 0.0, 2)
        assert np.isnan(report.time_ratio)
