"""Tests for the factorization-reuse solve layer.

Covers :class:`SparseFactor` multi-RHS solves, the per-contact-set
factor cache and ``solve_ports`` batching of :class:`ACSystem`, the
per-sample equilibrium cache of :class:`AVSolver`, the batched
frequency sweep, the multi-port QoI mode of the stochastic layer, and
the parallel-MC seed-derivation fix.
"""

import numpy as np
import pytest
import scipy.sparse as sp

import repro.solver.avsolver as avsolver_module
from repro.errors import GeometryError, SingularSystemError
from repro.mesh import compute_geometry
from repro.mesh.entities import LinkSet
from repro.solver import AVSolver, SparseFactor, solve_sparse
from repro.solver.ac import ACSystem
from repro.solver.dc import solve_equilibrium
from repro.solver.sweep import frequency_sweep


def _random_complex_system(rng, n=40, k=5):
    matrix = (sp.random(n, n, density=0.25, random_state=7)
              + sp.eye(n) * (3.0 + 0.5j)).tocsr()
    rhs = rng.standard_normal((n, k)) + 1j * rng.standard_normal((n, k))
    return matrix, rhs


class TestSparseFactor:
    def test_multi_rhs_matches_column_solves(self, rng):
        matrix, rhs = _random_complex_system(rng)
        factor = SparseFactor(matrix)
        block = factor.solve(rhs)
        for j in range(rhs.shape[1]):
            np.testing.assert_array_equal(block[:, j],
                                          factor.solve(rhs[:, j]))

    def test_matches_solve_sparse(self, rng):
        matrix, rhs = _random_complex_system(rng)
        np.testing.assert_array_equal(SparseFactor(matrix).solve(rhs),
                                      solve_sparse(matrix, rhs))

    def test_reuse_across_rhs(self, rng):
        matrix, _ = _random_complex_system(rng)
        factor = SparseFactor(matrix)
        for _ in range(3):
            x_true = rng.standard_normal(matrix.shape[0])
            x = factor.solve(matrix @ x_true)
            np.testing.assert_allclose(x, x_true, rtol=1e-8)

    def test_complex_rhs_real_factor(self, rng):
        n = 30
        matrix = (sp.random(n, n, density=0.3, random_state=3)
                  + sp.eye(n) * 2.0).tocsr()
        factor = SparseFactor(matrix)
        x_true = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = factor.solve(matrix @ x_true)
        assert np.iscomplexobj(x)
        np.testing.assert_allclose(x, x_true, rtol=1e-8)

    def test_validation(self):
        with pytest.raises(SingularSystemError):
            SparseFactor(sp.csr_matrix((2, 3)))
        empty_row = sp.csr_matrix((3, 3))
        empty_row[0, 0] = 1.0
        with pytest.raises(SingularSystemError):
            SparseFactor(empty_row.tocsr())
        factor = SparseFactor(sp.eye(3, format="csr"))
        with pytest.raises(SingularSystemError):
            factor.solve(np.ones(4))


class TestEmptySystemDtype:
    """The ``n == 0`` early return promotes to the result dtype."""

    def test_complex_matrix_real_rhs(self):
        x = solve_sparse(sp.csr_matrix((0, 0), dtype=complex),
                         np.zeros(0))
        assert x.dtype == np.complex128

    def test_real_matrix_complex_rhs(self):
        x = solve_sparse(sp.csr_matrix((0, 0)), np.zeros(0, complex))
        assert x.dtype == np.complex128

    def test_real_everywhere_stays_real(self):
        x = solve_sparse(sp.csr_matrix((0, 0)), np.zeros((0, 4)))
        assert x.dtype == np.float64
        assert x.shape == (0, 4)


@pytest.fixture(scope="module")
def plug_system(coarse_plug_structure):
    links = LinkSet(coarse_plug_structure.grid)
    geometry = compute_geometry(coarse_plug_structure.grid, links=links)
    equilibrium = solve_equilibrium(coarse_plug_structure, geometry)
    return coarse_plug_structure, geometry, equilibrium


class TestSolvePorts:
    def test_bitwise_matches_independent_solves(self, plug_system):
        structure, geometry, equilibrium = plug_system
        batched = ACSystem(structure, geometry, equilibrium, 1e9)
        fresh = ACSystem(structure, geometry, equilibrium, 1e9)
        ports = ["plug1", "plug2"]
        solutions = batched.solve_ports(ports)
        for j, driven in enumerate(ports):
            excitation = {name: (1.0 if name == driven else 0.0)
                          for name in ports}
            single = fresh.solve(excitation)
            np.testing.assert_array_equal(solutions[j].potential,
                                          single.potential)
            np.testing.assert_array_equal(solutions[j].n, single.n)
            np.testing.assert_array_equal(solutions[j].p, single.p)
            assert solutions[j].excitations == excitation

    def test_factor_shared_across_excitations(self, plug_system):
        structure, geometry, equilibrium = plug_system
        system = ACSystem(structure, geometry, equilibrium, 1e9)
        system.solve({"plug1": 1.0, "plug2": 0.0})
        system.solve({"plug1": 0.0, "plug2": 2.5})
        system.solve_ports(["plug1", "plug2"])
        # One pinned-contact set -> one cached restriction.
        assert len(system._factor_cache) == 1

    def test_port_validation(self, plug_system):
        structure, geometry, equilibrium = plug_system
        system = ACSystem(structure, geometry, equilibrium, 1e9)
        with pytest.raises(GeometryError):
            system.solve_ports([])
        with pytest.raises(GeometryError):
            system.solve_ports(["plug1", "plug1"])


class TestEquilibriumCache:
    def _counting_solver(self, structure, monkeypatch):
        calls = {"count": 0}
        real = avsolver_module.solve_equilibrium

        def counted(*args, **kwargs):
            calls["count"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(avsolver_module, "solve_equilibrium",
                            counted)
        return AVSolver(structure, frequency=1e9), calls

    def test_same_sample_reuses_equilibrium(self, coarse_plug_structure,
                                            monkeypatch):
        solver, calls = self._counting_solver(coarse_plug_structure,
                                              monkeypatch)
        solver.solve({"plug1": 1.0, "plug2": 0.0})
        solver.solve({"plug1": 0.0, "plug2": 1.0})
        solver.solve_ports(["plug1", "plug2"])
        assert calls["count"] == 1

    def test_new_sample_invalidates(self, coarse_plug_structure,
                                    monkeypatch):
        from repro.materials import UniformDoping

        solver, calls = self._counting_solver(coarse_plug_structure,
                                              monkeypatch)
        excitation = {"plug1": 1.0, "plug2": 0.0}
        solver.solve(excitation)
        doping = UniformDoping(2.0e21)
        solver.solve(excitation, doping_profile=doping)
        assert calls["count"] == 2
        # Same doping object again: cache hit.
        solver.solve(excitation, doping_profile=doping)
        assert calls["count"] == 2
        # A distinct geometry sample invalidates too.
        geometry = compute_geometry(coarse_plug_structure.grid,
                                    links=solver.links)
        solver.solve(excitation, geometry=geometry,
                     doping_profile=doping)
        assert calls["count"] == 3

    def test_matches_uncached_solution(self, coarse_plug_structure):
        excitation = {"plug1": 1.0, "plug2": 0.0}
        solver = AVSolver(coarse_plug_structure, frequency=1e9)
        first = solver.solve(excitation)
        second = solver.solve(excitation)
        reference = AVSolver(coarse_plug_structure,
                             frequency=1e9).solve(excitation)
        np.testing.assert_array_equal(first.potential, second.potential)
        np.testing.assert_array_equal(first.potential,
                                      reference.potential)


class TestBatchedSweep:
    def test_duplicate_frequencies_deduped(self, coarse_plug_structure):
        result = frequency_sweep(coarse_plug_structure,
                                 [1.0e9, 1.0e9, 5.0e8])
        np.testing.assert_allclose(result.frequencies, [5.0e8, 1.0e9])
        assert result.admittance.shape == (2, 2, 2)

    def test_matches_per_port_rebuild(self, coarse_plug_structure):
        frequency = 1.0e9
        result = frequency_sweep(coarse_plug_structure, [frequency])
        from repro.extraction import port_current

        solver = AVSolver(coarse_plug_structure, frequency=frequency)
        for j, driven in enumerate(result.ports):
            excitation = {name: (1.0 if name == driven else 0.0)
                          for name in result.ports}
            solution = solver.solve(excitation)
            for i, port in enumerate(result.ports):
                np.testing.assert_allclose(
                    result.admittance[0, i, j],
                    port_current(solution, port), rtol=1e-12)


class TestMultiPortProblem:
    def test_table1_multi_port_matches_single(self):
        from repro.experiments import Table1Config, table1_problem
        from repro.geometry import MetalPlugDesign
        from repro.units import um

        config = Table1Config(design=MetalPlugDesign(max_step=um(2.0)),
                              rdf_nodes=8)
        single = table1_problem("doping", config)
        multi = table1_problem("doping", config, multi_port=True)
        assert multi.qoi_names == ["J_interface@plug1",
                                   "J_interface@plug2"]
        xi = {"doping": np.full(8, 0.05)}
        values = multi.evaluate_sample(xi)
        assert values.shape == (2,)
        np.testing.assert_allclose(values[0],
                                   single.evaluate_sample(xi)[0],
                                   rtol=1e-12)

    def test_table2_multi_port_contains_column(self):
        from repro.experiments import (
            TABLE2_CONTACTS,
            Table2Config,
            table2_problem,
        )
        from repro.geometry import TsvDesign
        from repro.units import um

        config = Table2Config(
            design=TsvDesign(max_step=um(2.5), margin=um(2.5)),
            rdf_nodes=8)
        single = table2_problem(config)
        multi = table2_problem(config, multi_port=True)
        assert len(multi.qoi_names) == 36
        xi_groups = {g.name: np.zeros(g.size) for g in multi.groups}
        matrix = multi.evaluate_sample(xi_groups).reshape(6, 6)
        column = single.evaluate_sample(xi_groups)
        np.testing.assert_allclose(matrix[:, 0], column, rtol=1e-10)
        assert multi.qoi_names[0] == f"C_{TABLE2_CONTACTS[0]}" \
                                     f"_{TABLE2_CONTACTS[0]}"


class TestSeedDerivation:
    def test_no_cross_seed_collision(self):
        """Regression: ``seed + k`` made seed=0/worker 1 replay
        seed=1/worker 0; spawned sequences must not."""
        from repro.analysis.parallel import worker_seed_sequences

        stream_a = np.random.default_rng(
            worker_seed_sequences(0, 2)[1]).random(64)
        stream_b = np.random.default_rng(
            worker_seed_sequences(1, 2)[0]).random(64)
        assert not np.array_equal(stream_a, stream_b)

    def test_reproducible_for_fixed_worker_count(self):
        from repro.analysis.parallel import worker_seed_sequences

        first = np.random.default_rng(
            worker_seed_sequences(3, 4)[2]).random(16)
        again = np.random.default_rng(
            worker_seed_sequences(3, 4)[2]).random(16)
        np.testing.assert_array_equal(first, again)

    def test_workers_get_distinct_streams(self):
        from repro.analysis.parallel import worker_seed_sequences

        seqs = worker_seed_sequences(0, 4)
        streams = [np.random.default_rng(s).random(32) for s in seqs]
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                assert not np.array_equal(streams[i], streams[j])
