"""Tests for the experiment presets (paper parameter bookkeeping)."""

import pytest

from repro.experiments import (
    TABLE1_PAPER_VALUES,
    TABLE2_CONTACTS,
    TABLE2_PAPER_VALUES,
    TABLE2_ROW_NAMES,
    Table1Config,
    Table2Config,
    table1_problem,
    table2_problem,
)
from repro.geometry import MetalPlugDesign, TsvDesign
from repro.stochastic.sparse_grid import paper_point_count
from repro.units import um


class TestPaperValues:
    def test_table1_rows_present(self):
        assert set(TABLE1_PAPER_VALUES) == {"deterministic", "geometry",
                                            "doping", "both"}
        # The ordering the paper reports: geometry-driven spread is the
        # largest, doping the smallest, combined in between.
        g = TABLE1_PAPER_VALUES["geometry"]["std"]
        d = TABLE1_PAPER_VALUES["doping"]["std"]
        b = TABLE1_PAPER_VALUES["both"]["std"]
        assert g > b > d

    def test_table2_rows_match_contacts(self):
        assert len(TABLE2_ROW_NAMES) == len(TABLE2_CONTACTS) == 6
        assert set(TABLE2_PAPER_VALUES) == set(TABLE2_ROW_NAMES)
        # Sign pattern of the Maxwell matrix column.
        assert TABLE2_PAPER_VALUES["C_T1"]["mean"] > 0
        for name in TABLE2_ROW_NAMES[1:]:
            assert TABLE2_PAPER_VALUES[name]["mean"] < 0

    def test_paper_run_counts(self):
        """Section IV quotes 1035 runs at d=22 and 2415 at d=34."""
        assert paper_point_count(22) == 1035
        assert paper_point_count(34) == 2415


class TestConfigs:
    def test_table1_defaults_match_paper(self):
        config = Table1Config()
        assert config.sigma_g == pytest.approx(um(0.5))
        assert config.eta_g == pytest.approx(um(0.7))
        assert config.sigma_m == pytest.approx(0.1)
        assert config.eta_m == pytest.approx(um(0.5))
        assert config.rdf_nodes == 72
        assert config.frequency == pytest.approx(1.0e9)

    def test_table2_defaults(self):
        config = Table2Config()
        assert config.rdf_nodes == 128
        assert config.sigma_m == pytest.approx(0.1)
        # sigma_G is a documented choice (unstated in the paper): it
        # must keep 3-sigma perturbations inside the 1 um wire gap.
        assert 3.0 * config.sigma_g < um(1.0)

    def test_table1_paper_interface_node_count(self):
        """At the paper's mesh scale the two interfaces carry ~32
        perturbed nodes (16 per plug interface)."""
        problem = table1_problem(
            "geometry", Table1Config(design=MetalPlugDesign(
                max_step=um(1.0))))
        total = sum(g.size for g in problem.geometry_groups)
        assert 24 <= total <= 50

    def test_table1_rdf_node_cap_respected(self):
        problem = table1_problem("doping", Table1Config(
            design=MetalPlugDesign(max_step=um(1.0)), rdf_nodes=72))
        assert problem.doping_group.size <= 72

    def test_table2_excitation_drives_tsv1_only(self):
        config = Table2Config(design=TsvDesign(max_step=um(2.5),
                                               margin=um(2.5)),
                              rdf_nodes=8)
        problem = table2_problem(config)
        assert problem.excitations["tsv1"] == 1.0
        assert all(problem.excitations[name] == 0.0
                   for name in TABLE2_CONTACTS if name != "tsv1")
