"""Tests for shapes, structures and the paper's two builders."""

import numpy as np
import pytest

from repro.errors import GeometryError, MaterialError
from repro.geometry import (
    Box,
    MetalPlugDesign,
    Structure,
    TsvDesign,
    build_metalplug_structure,
    build_tsv_structure,
    facet_nodes,
    interface_links,
    metal_semiconductor_interface_nodes,
)
from repro.materials import doped_silicon, silicon_dioxide, tungsten
from repro.mesh import CartesianGrid, LinkSet
from repro.units import um


class TestBox:
    def test_basic_properties(self):
        box = Box((0.0, 0.0, 0.0), (1.0, 2.0, 3.0))
        assert box.size == (1.0, 2.0, 3.0)
        assert box.center == (0.5, 1.0, 1.5)
        assert box.volume == pytest.approx(6.0)

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Box((0.0, 0.0, 0.0), (1.0, 0.0, 1.0))
        with pytest.raises(GeometryError):
            Box((0.0, 0.0), (1.0, 1.0))

    def test_contains(self):
        box = Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        pts = np.array([[0.5, 0.5, 0.5], [1.5, 0.5, 0.5]])
        np.testing.assert_array_equal(box.contains(pts), [True, False])

    def test_overlaps(self):
        a = Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        b = Box((0.5, 0.5, 0.5), (2.0, 2.0, 2.0))
        c = Box((1.0, 0.0, 0.0), (2.0, 1.0, 1.0))  # touching face
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_face_box(self):
        box = Box((0.0, 0.0, 0.0), (1.0, 1.0, 2.0))
        top = box.face_box("z+")
        assert top.lo[2] == pytest.approx(2.0, abs=1e-9)
        assert top.hi[0] == pytest.approx(1.0)
        with pytest.raises(GeometryError):
            box.face_box("q-")


class TestStructure:
    def _structure(self):
        grid = CartesianGrid(np.linspace(0, 4e-6, 5),
                             np.linspace(0, 4e-6, 5),
                             np.linspace(0, 4e-6, 5))
        s = Structure(grid, background=silicon_dioxide())
        s.add_box(doped_silicon(1e21), Box((0, 0, 0), (4e-6, 4e-6, 2e-6)))
        s.add_box(tungsten(), Box((1e-6, 1e-6, 2e-6),
                                  (3e-6, 3e-6, 4e-6)))
        return s

    def test_paint_order_overrides(self):
        s = self._structure()
        # Metal painted last wins in its cells.
        metal_cells, semi_cells, _ = s.cell_kind_masks()
        assert metal_cells.sum() == 2 * 2 * 2
        assert semi_cells.sum() == 4 * 4 * 2

    def test_empty_box_rejected(self):
        s = self._structure()
        with pytest.raises(GeometryError):
            s.add_box(tungsten("w2"), Box((10e-6, 10e-6, 10e-6),
                                          (11e-6, 11e-6, 11e-6)))

    def test_node_classification(self):
        s = self._structure()
        kinds = s.node_kinds()
        total = (kinds.num_metal + kinds.num_semiconductor
                 + kinds.num_insulator)
        assert total == s.grid.num_nodes
        # Metal and semiconductor are disjoint by construction.
        assert not np.any(kinds.metal & kinds.semiconductor)
        # Ohmic contacts exist: metal box sits on the silicon slab.
        assert np.any(kinds.ohmic_contact)
        assert np.all(kinds.metal[kinds.ohmic_contact])

    def test_contacts(self):
        s = self._structure()
        s.add_contact("top", s.grid.boundary_node_ids("z+"))
        assert s.contact_node_ids("top").size == 25
        with pytest.raises(GeometryError):
            s.add_contact("top", [0])  # duplicate name
        with pytest.raises(GeometryError):
            s.add_contact("empty", [])
        with pytest.raises(GeometryError):
            s.contact_node_ids("missing")

    def test_net_doping_at_nodes(self):
        s = self._structure()
        doping = s.net_doping_at_nodes()
        kinds = s.node_kinds()
        semi = kinds.semiconductor | kinds.ohmic_contact
        assert np.all(doping[semi] == 1e21)
        assert np.all(doping[~semi] == 0.0)

    def test_primary_semiconductor(self):
        s = self._structure()
        assert s.primary_semiconductor().name == "silicon"

    def test_no_semiconductor_raises(self):
        grid = CartesianGrid(np.linspace(0, 1e-6, 3),
                             np.linspace(0, 1e-6, 3),
                             np.linspace(0, 1e-6, 3))
        s = Structure(grid, background=silicon_dioxide())
        with pytest.raises(MaterialError):
            s.primary_semiconductor()


class TestInterfaces:
    def test_facet_nodes_plane(self, small_grid):
        ids = facet_nodes(small_grid, axis=2, coordinate=1.0e-6)
        assert ids.size == small_grid.nx * small_grid.ny
        coords = small_grid.node_coords()
        np.testing.assert_allclose(coords[ids, 2], 1.0e-6)

    def test_facet_nodes_restricted(self, small_grid):
        ids = facet_nodes(small_grid, axis=2, coordinate=1.0e-6,
                          lo=(0.0, 0.0, 0.0), hi=(1.0e-6, 0.5e-6, 0.0))
        assert ids.size == 4

    def test_facet_nodes_missing_plane(self, small_grid):
        with pytest.raises(GeometryError):
            facet_nodes(small_grid, axis=0, coordinate=9.0e-6)

    def test_interface_links_orientation(self):
        grid = CartesianGrid(np.linspace(0, 2e-6, 3),
                             np.linspace(0, 1e-6, 2),
                             np.linspace(0, 1e-6, 2))
        links = LinkSet(grid)
        s = Structure(grid, background=silicon_dioxide())
        left = np.zeros(grid.num_nodes, dtype=bool)
        left[grid.node_coords()[:, 0] < 0.5e-6] = True
        mid = np.zeros(grid.num_nodes, dtype=bool)
        coords = grid.node_coords()
        mid[np.isclose(coords[:, 0], 1e-6)] = True
        link_ids, orient = interface_links(s, links, left, mid)
        assert link_ids.size == 4  # 2x2 nodes on each plane
        assert np.all(orient == 1)  # node_a (lower x) is on the left


class TestMetalPlugBuilder:
    def test_structure_inventory(self, coarse_plug_structure):
        s = coarse_plug_structure
        names = [m.name for m in s.materials.materials]
        assert names[0] == "ild"
        assert "silicon" in names and "plug_metal" in names
        assert sorted(s.contacts) == ["plug1", "plug2"]

    def test_interface_exists(self, coarse_plug_structure):
        ids = metal_semiconductor_interface_nodes(coarse_plug_structure)
        assert ids.size > 0
        coords = coarse_plug_structure.grid.node_coords()
        np.testing.assert_allclose(coords[ids, 2], 10e-6)

    def test_interface_facets_cover_plugs(self, coarse_plug_design,
                                          coarse_plug_structure):
        facets = coarse_plug_design.interface_facets()
        assert len(facets) == 2
        for facet in facets:
            ids = facet.node_ids(coarse_plug_structure.grid)
            assert ids.size >= 4
            assert facet.axis == 2

    def test_grid_hits_interfaces(self, coarse_plug_structure):
        assert np.any(np.isclose(coarse_plug_structure.grid.zs, 10e-6))

    def test_default_node_count_near_paper(self):
        # Paper example A: 1300 nodes; the default design lands within
        # a factor of ~2 of that.
        s = build_metalplug_structure(MetalPlugDesign())
        assert 600 <= s.grid.num_nodes <= 3000


class TestTsvBuilder:
    def test_structure_inventory(self, coarse_tsv_structure):
        s = coarse_tsv_structure
        assert sorted(s.contacts) == ["tsv1", "tsv2", "w1", "w2", "w3",
                                      "w4"]
        names = [m.name for m in s.materials.materials]
        assert "tsv_metal" in names and "liner" in names

    def test_liner_separates_tsv_from_silicon(self, coarse_tsv_structure):
        """With the liner painted, no TSV metal node touches silicon."""
        kinds = coarse_tsv_structure.node_kinds()
        assert not np.any(kinds.ohmic_contact)

    def test_eight_lateral_facets(self, coarse_tsv_design,
                                  coarse_tsv_structure):
        facets = coarse_tsv_design.lateral_facets()
        assert len(facets) == 8
        axes = sorted(f.axis for f in facets)
        assert axes == [0, 0, 0, 0, 1, 1, 1, 1]
        for facet in facets:
            assert facet.node_ids(coarse_tsv_structure.grid).size >= 4

    def test_coplanar_y_facets(self, coarse_tsv_design):
        """The y-walls of the two TSVs are coplanar (mergeable)."""
        facets = coarse_tsv_design.lateral_facets()
        y_minus = [f for f in facets if f.name.endswith("y-")]
        assert len(y_minus) == 2
        assert y_minus[0].coordinate == pytest.approx(
            y_minus[1].coordinate)

    def test_default_node_count_near_paper(self):
        # Paper example B: 4032 nodes; the default design is within a
        # factor of ~3.
        s = build_tsv_structure(TsvDesign())
        assert 3000 <= s.grid.num_nodes <= 14000

    def test_tsv_dimensions(self):
        d = TsvDesign()
        boxes = d.tsv_boxes()
        assert boxes[0].size[0] == pytest.approx(um(5.0))
        assert boxes[0].size[2] == pytest.approx(um(20.0))
        # Edge-to-edge pitch of 10 um.
        assert boxes[1].lo[0] - boxes[0].hi[0] == pytest.approx(um(10.0))

    def test_wires_have_paper_dimensions(self):
        d = TsvDesign()
        for box in d.wire_boxes().values():
            assert box.size[0] == pytest.approx(um(1.0))  # width
            assert box.size[2] == pytest.approx(um(2.0))  # height
