"""Tests for PCE, PFA/wPFA reduction, SSCM and Monte Carlo drivers."""

import numpy as np
import pytest

from repro.errors import StochasticError
from repro.stochastic import (
    HermiteBasis,
    QuadraticPCE,
    pfa_reduce,
    reduce_groups,
    run_monte_carlo,
    run_sscm,
    smolyak_sparse_grid,
    tensor_grid,
    wpfa_reduce,
)
from repro.variation.covariance import covariance_matrix
from repro.variation.groups import PerturbationGroup


def _quadratic_problem(d, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(d, d))
    A = 0.25 * (A + A.T)
    b = rng.normal(size=d)
    c = float(rng.normal())

    def f(z):
        return np.array([c + b @ z + z @ A @ z])

    mean = c + np.trace(A)
    var = b @ b + 2.0 * np.sum(A * A)
    return f, mean, var


class TestQuadraticPCE:
    def test_exact_quadratic_recovery_quadrature(self):
        d = 5
        f, mean, var = _quadratic_problem(d)
        res = run_sscm(f, d)
        assert res.mean[0] == pytest.approx(mean, rel=1e-10)
        assert res.std[0] == pytest.approx(np.sqrt(var), rel=1e-10)

    def test_exact_quadratic_recovery_regression(self):
        d = 4
        f, mean, var = _quadratic_problem(d, seed=3)
        res = run_sscm(f, d, fit="regression")
        assert res.mean[0] == pytest.approx(mean, rel=1e-8)
        assert res.std[0] == pytest.approx(np.sqrt(var), rel=1e-8)

    def test_tensor_grid_agrees_with_sparse(self):
        d = 3
        f, mean, var = _quadratic_problem(d, seed=7)
        sparse = run_sscm(f, d)
        tensor = run_sscm(f, d, grid=tensor_grid(d, 3))
        assert tensor.mean[0] == pytest.approx(sparse.mean[0], rel=1e-9)
        assert tensor.std[0] == pytest.approx(sparse.std[0], rel=1e-9)

    def test_surrogate_evaluation(self):
        d = 3
        f, _, _ = _quadratic_problem(d, seed=1)
        res = run_sscm(f, d)
        z = np.array([0.3, -1.2, 0.8])
        assert res.pce.evaluate(z)[0] == pytest.approx(f(z)[0], rel=1e-9)

    def test_surrogate_sampling_statistics(self, rng):
        d = 3
        f, mean, var = _quadratic_problem(d, seed=2)
        res = run_sscm(f, d)
        s_mean, s_std = res.pce.sample_statistics(rng, num_samples=200000)
        assert s_mean[0] == pytest.approx(mean, rel=0.05)
        assert s_std[0] == pytest.approx(np.sqrt(var), rel=0.05)

    def test_vector_output(self):
        d = 2
        f = lambda z: np.array([z[0], z[0] + z[1] ** 2])
        res = run_sscm(f, d, output_names=["a", "b"])
        np.testing.assert_allclose(res.mean, [0.0, 1.0], atol=1e-12)
        np.testing.assert_allclose(res.std, [1.0, np.sqrt(1 + 2)],
                                   rtol=1e-10)
        assert res.output_names == ["a", "b"]

    def test_coefficient_shape_checked(self):
        basis = HermiteBasis(2)
        with pytest.raises(StochasticError):
            QuadraticPCE(basis, np.zeros((3, 1)))

    def test_regression_underdetermined_rejected(self):
        basis = HermiteBasis(4)
        pts = np.zeros((3, 4))
        with pytest.raises(StochasticError):
            QuadraticPCE.fit_regression(basis, pts, np.zeros(3))


class TestPFA:
    def _cov(self, n=20, eta=3.0):
        coords = np.arange(n, dtype=float)[:, None] * np.ones((1, 3))
        return covariance_matrix(coords, sigma=1.0, eta=eta)

    def test_full_rank_reconstructs_covariance(self):
        cov = self._cov(10)
        red = pfa_reduce(cov, energy=1.0)
        np.testing.assert_allclose(red.reduced_covariance(), cov,
                                   atol=1e-10)

    def test_truncation_monotone_energy(self):
        cov = self._cov(20)
        r3 = pfa_reduce(cov, energy=1.0, max_variables=3)
        r6 = pfa_reduce(cov, energy=1.0, max_variables=6)
        assert r3.reduced_size == 3
        assert r6.reduced_size == 6
        assert r6.energy_captured > r3.energy_captured

    def test_long_correlation_reduces_hard(self):
        """Strong correlation => few factors carry most energy."""
        cov = self._cov(30, eta=50.0)
        red = pfa_reduce(cov, energy=0.95)
        assert red.reduced_size <= 5

    def test_truncated_variance_below_original(self):
        cov = self._cov(15)
        red = pfa_reduce(cov, energy=1.0, max_variables=4)
        recon = red.reduced_covariance()
        assert np.all(np.diag(recon) <= np.diag(cov) + 1e-12)

    def test_reconstruct_shapes(self, rng):
        cov = self._cov(8)
        red = pfa_reduce(cov, max_variables=3)
        xi = red.reconstruct(rng.standard_normal(3))
        assert xi.shape == (8,)
        batch = red.reconstruct(rng.standard_normal((5, 3)))
        assert batch.shape == (5, 8)
        with pytest.raises(StochasticError):
            red.reconstruct(np.zeros(4))

    def test_validation(self):
        with pytest.raises(StochasticError):
            pfa_reduce(np.zeros((2, 3)))
        with pytest.raises(StochasticError):
            pfa_reduce(np.eye(3), energy=0.0)


class TestWPFA:
    def _cov(self, n=20):
        coords = np.arange(n, dtype=float)[:, None] * np.ones((1, 3))
        return covariance_matrix(coords, sigma=1.0, eta=3.0)

    def test_full_rank_reconstructs_covariance(self, rng):
        cov = self._cov(8)
        weights = rng.uniform(0.5, 2.0, 8)
        red = wpfa_reduce(cov, weights, energy=1.0)
        np.testing.assert_allclose(red.reduced_covariance(), cov,
                                   atol=1e-8)

    def test_uniform_weights_match_pfa(self):
        cov = self._cov(12)
        w = np.ones(12)
        red_w = wpfa_reduce(cov, w, max_variables=4)
        red_p = pfa_reduce(cov, max_variables=4)
        np.testing.assert_allclose(red_w.reduced_covariance(),
                                   red_p.reduced_covariance(), atol=1e-10)

    def test_weighting_prioritizes_influential_nodes(self):
        """A heavily weighted node keeps its variance under truncation
        where plain PFA distributes the budget uniformly."""
        n = 20
        cov = np.eye(n)  # independent nodes: PFA has no structure
        weights = np.ones(n)
        weights[7] = 100.0
        red = wpfa_reduce(cov, weights, max_variables=1)
        recon = np.diag(red.reduced_covariance())
        assert recon[7] == pytest.approx(1.0, rel=1e-6)
        assert recon.sum() == pytest.approx(recon[7], rel=1e-3)

    def test_zero_weights_floored(self):
        cov = self._cov(6)
        weights = np.zeros(6)
        weights[0] = 1.0
        red = wpfa_reduce(cov, weights, max_variables=2)
        assert np.all(np.isfinite(red.matrix))

    def test_validation(self):
        cov = self._cov(4)
        with pytest.raises(StochasticError):
            wpfa_reduce(cov, np.ones(3))
        with pytest.raises(StochasticError):
            wpfa_reduce(cov, -np.ones(4))
        with pytest.raises(StochasticError):
            wpfa_reduce(cov, np.zeros(4))


class TestReducedSpace:
    def _groups(self):
        coords = np.arange(6, dtype=float)[:, None] * np.ones((1, 3))
        cov = covariance_matrix(coords, 1.0, 3.0)
        g1 = PerturbationGroup(name="a", kind="geometry",
                               node_ids=np.arange(6), coords=coords,
                               covariance=cov, axis=0)
        g2 = PerturbationGroup(name="doping", kind="doping",
                               node_ids=np.arange(6), coords=coords,
                               covariance=cov)
        return [g1, g2]

    def test_split_concatenation(self):
        groups = self._groups()
        rs = reduce_groups(groups, method="pfa", energy=1.0,
                           max_variables_by_group={"a": 2, "doping": 3})
        assert rs.dim == 5
        zeta = np.arange(5, dtype=float)
        xi = rs.split(zeta)
        assert set(xi) == {"a", "doping"}
        assert xi["a"].shape == (6,)
        # Group slices act on disjoint parts of zeta.
        zeta2 = zeta.copy()
        zeta2[:2] = 0.0
        xi2 = rs.split(zeta2)
        np.testing.assert_allclose(xi2["doping"], xi["doping"])
        assert not np.allclose(xi2["a"], xi["a"])

    def test_wpfa_needs_weights_falls_back(self):
        groups = self._groups()
        rs = reduce_groups(groups, method="wpfa", weights_by_group=None,
                           energy=0.9)
        assert rs.dim >= 2  # silently fell back to PFA per group

    def test_summary_mentions_groups(self):
        groups = self._groups()
        rs = reduce_groups(groups, method="pfa", energy=0.9)
        text = rs.summary()
        assert "a:" in text and "doping:" in text and "total d" in text

    def test_bad_method(self):
        with pytest.raises(StochasticError):
            reduce_groups(self._groups(), method="magic")

    def test_zeta_shape_checked(self):
        rs = reduce_groups(self._groups(), method="pfa", energy=0.9)
        with pytest.raises(StochasticError):
            rs.split(np.zeros(rs.dim + 1))


class TestMonteCarlo:
    def test_gaussian_statistics(self):
        def sample(rng):
            return np.array([3.0 + 2.0 * rng.standard_normal()])

        res = run_monte_carlo(sample, num_runs=4000, seed=1)
        assert res.mean[0] == pytest.approx(3.0, abs=0.15)
        assert res.std[0] == pytest.approx(2.0, rel=0.08)
        assert res.standard_error()[0] == pytest.approx(
            2.0 / np.sqrt(4000), rel=0.1)

    def test_seed_reproducibility(self):
        def sample(rng):
            return np.array([rng.standard_normal()])

        a = run_monte_carlo(sample, 50, seed=9)
        b = run_monte_carlo(sample, 50, seed=9)
        assert a.mean[0] == b.mean[0]

    def test_keep_samples(self):
        def sample(rng):
            return np.array([rng.standard_normal(), 1.0])

        res = run_monte_carlo(sample, 25, seed=0, keep_samples=True)
        assert res.samples.shape == (25, 2)

    def test_validation(self):
        with pytest.raises(StochasticError):
            run_monte_carlo(lambda rng: np.zeros(1), num_runs=1)


class TestSSCMDriver:
    def test_progress_callback(self):
        calls = []
        run_sscm(lambda z: np.array([z @ z]), 2,
                 progress=lambda k, n: calls.append((k, n)))
        assert calls[-1][0] == calls[-1][1] == smolyak_sparse_grid(
            2).num_points

    def test_grid_dim_mismatch(self):
        with pytest.raises(StochasticError):
            run_sscm(lambda z: np.zeros(1), 3,
                     grid=smolyak_sparse_grid(2))

    def test_unknown_fit(self):
        with pytest.raises(StochasticError):
            run_sscm(lambda z: np.zeros(1), 2, fit="spline")
