"""Tests for the Bernoulli function and Scharfetter-Gummel fluxes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import NI_SILICON, VT_ROOM
from repro.materials import equilibrium_carriers
from repro.semiconductor import (
    bernoulli,
    bernoulli_derivative,
    electron_flux,
    electron_flux_linearization,
    hole_flux,
    hole_flux_linearization,
)


class TestBernoulli:
    def test_value_at_zero(self):
        assert float(bernoulli(0.0)) == pytest.approx(1.0)

    def test_known_value(self):
        assert float(bernoulli(1.0)) == pytest.approx(
            1.0 / (np.e - 1.0), rel=1e-12)

    def test_large_negative_asymptote(self):
        assert float(bernoulli(-50.0)) == pytest.approx(50.0, rel=1e-10)

    def test_large_positive_decays(self):
        assert float(bernoulli(50.0)) < 1e-18

    def test_series_matches_closed_form_at_cutover(self):
        # Both branches agree with the expm1 closed form (which is
        # itself accurate in this range) on either side of the switch.
        for x in (0.5e-4, 0.99e-4, 1.01e-4, 5e-4):
            assert float(bernoulli(x)) == pytest.approx(
                x / np.expm1(x), rel=1e-12)
            assert float(bernoulli(-x)) == pytest.approx(
                -x / np.expm1(-x), rel=1e-12)

    def test_no_overflow_at_extremes(self):
        values = bernoulli(np.array([-1e6, -700.0, 700.0, 1e6]))
        assert np.all(np.isfinite(values))

    @given(st.floats(min_value=-100.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_reflection_identity(self, x):
        """B(-x) = B(x) + x for all x."""
        assert float(bernoulli(-x)) == pytest.approx(
            float(bernoulli(x)) + x, rel=1e-9, abs=1e-12)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_positivity(self, x):
        assert float(bernoulli(x)) >= 0.0

    def test_derivative_at_zero(self):
        assert float(bernoulli_derivative(0.0)) == pytest.approx(-0.5)

    @given(st.floats(min_value=-30.0, max_value=30.0))
    @settings(max_examples=80, deadline=None)
    def test_derivative_matches_finite_difference(self, x):
        h = 1e-6 * max(1.0, abs(x))
        fd = (float(bernoulli(x + h)) - float(bernoulli(x - h))) / (2 * h)
        assert float(bernoulli_derivative(x)) == pytest.approx(
            fd, rel=1e-4, abs=1e-9)

    def test_derivative_finite_at_extremes(self):
        values = bernoulli_derivative(np.array([-1e6, 700.0, 1e6]))
        assert np.all(np.isfinite(values))


class TestScharfetterGummel:
    MU = 0.14
    L = 1.0e-6

    def test_pure_diffusion(self):
        """At zero field the flux reduces to Fick's law."""
        f = electron_flux(2.0e21, 1.0e21, 0.0, self.MU, VT_ROOM, self.L)
        diff = self.MU * VT_ROOM / self.L * (2.0e21 - 1.0e21)
        assert float(f) == pytest.approx(diff, rel=1e-9)
        fp = hole_flux(2.0e21, 1.0e21, 0.0, self.MU, VT_ROOM, self.L)
        assert float(fp) == pytest.approx(diff, rel=1e-9)

    @given(st.floats(min_value=-0.5, max_value=0.5))
    @settings(max_examples=60, deadline=None)
    def test_equilibrium_flux_vanishes(self, v_b):
        """The defining SG property: Boltzmann equilibrium => zero flux."""
        v_a = 0.05
        n_a, p_a = equilibrium_carriers(v_a, NI_SILICON, VT_ROOM)
        n_b, p_b = equilibrium_carriers(v_b, NI_SILICON, VT_ROOM)
        u = (v_b - v_a) / VT_ROOM
        f_n = electron_flux(n_a, n_b, u, self.MU, VT_ROOM, self.L)
        f_p = hole_flux(p_a, p_b, u, self.MU, VT_ROOM, self.L)
        scale = self.MU * VT_ROOM / self.L * max(float(n_a), float(n_b))
        assert abs(float(f_n)) < 1e-8 * scale
        scale_p = self.MU * VT_ROOM / self.L * max(float(p_a), float(p_b))
        assert abs(float(f_p)) < 1e-8 * scale_p

    def test_drift_dominated_upwinding(self):
        """Strong field: flux follows the *upwind* carrier density.

        With V_b << V_a electrons drift toward the higher potential a,
        so the a->b flux is negative and proportional to the upwind
        (b-side) density.
        """
        u = -20.0  # (V_b - V_a)/VT
        f = electron_flux(1.0e21, 1.0e15, u, self.MU, VT_ROOM, self.L)
        expected = -self.MU * VT_ROOM / self.L * 1.0e15 * 20.0
        # The downwind term contributes n_a B(20) ~ 0.2% here.
        assert float(f) == pytest.approx(expected, rel=5e-3)
        # And the reverse field direction pulls from the a side.
        f2 = electron_flux(1.0e21, 1.0e15, 20.0, self.MU, VT_ROOM,
                           self.L)
        expected2 = self.MU * VT_ROOM / self.L * 1.0e21 * 20.0
        assert float(f2) == pytest.approx(expected2, rel=5e-3)

    def test_linearization_matches_finite_difference(self):
        n_a, n_b = 2.0e21, 1.5e21
        u0 = 0.8
        lin = electron_flux_linearization(n_a, n_b, u0, self.MU, VT_ROOM,
                                          self.L)
        base = float(electron_flux(n_a, n_b, u0, self.MU, VT_ROOM, self.L))
        h = 1e12
        fd_a = (float(electron_flux(n_a + h, n_b, u0, self.MU, VT_ROOM,
                                    self.L)) - base) / h
        assert float(lin.coef_a) == pytest.approx(fd_a, rel=1e-6)
        fd_b = (float(electron_flux(n_a, n_b + h, u0, self.MU, VT_ROOM,
                                    self.L)) - base) / h
        assert float(lin.coef_b) == pytest.approx(fd_b, rel=1e-6)
        hv = 1e-7
        fd_v = (float(electron_flux(n_a, n_b, u0 + hv / VT_ROOM, self.MU,
                                    VT_ROOM, self.L)) - base) / hv
        assert float(lin.coef_dv) == pytest.approx(fd_v, rel=1e-4)

    def test_hole_linearization_matches_finite_difference(self):
        p_a, p_b = 3.0e20, 4.0e20
        u0 = -0.5
        lin = hole_flux_linearization(p_a, p_b, u0, self.MU, VT_ROOM,
                                      self.L)
        base = float(hole_flux(p_a, p_b, u0, self.MU, VT_ROOM, self.L))
        h = 1e12
        fd_a = (float(hole_flux(p_a + h, p_b, u0, self.MU, VT_ROOM,
                                self.L)) - base) / h
        assert float(lin.coef_a) == pytest.approx(fd_a, rel=1e-6)
        hv = 1e-7
        fd_v = (float(hole_flux(p_a, p_b, u0 + hv / VT_ROOM, self.MU,
                                VT_ROOM, self.L)) - base) / hv
        assert float(lin.coef_dv) == pytest.approx(fd_v, rel=1e-4)

    def test_flux_antisymmetry(self):
        """Swapping endpoints and the voltage sign flips the flux."""
        f_ab = electron_flux(2e21, 1e21, 0.7, self.MU, VT_ROOM, self.L)
        f_ba = electron_flux(1e21, 2e21, -0.7, self.MU, VT_ROOM, self.L)
        assert float(f_ab) == pytest.approx(-float(f_ba), rel=1e-12)
