"""Tests for mesh validity checks and axis generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeshDestroyedError, MeshError
from repro.mesh import (
    check_mesh_validity,
    graded_axis,
    uniform_axis,
)
from repro.mesh.refine import axis_from_breakpoints


class TestValidity:
    def test_nominal_grid_is_valid(self, small_grid):
        report = check_mesh_validity(small_grid, small_grid.node_coords())
        assert report.valid
        assert report.num_violations == 0
        assert report.violation_fraction == 0.0
        assert report.min_spacing > 0.0
        report.require_valid()  # must not raise

    def test_inverted_node_detected(self, small_grid):
        coords = small_grid.node_coords().copy()
        nid = small_grid.node_id(1, 1, 1)
        coords[nid, 0] = small_grid.xs[3]  # past the i=2 neighbour
        report = check_mesh_validity(small_grid, coords)
        assert not report.valid
        assert report.num_violations >= 1
        assert report.violations_per_axis[0] >= 1
        assert report.violations_per_axis[1] == 0
        with pytest.raises(MeshDestroyedError):
            report.require_valid()

    def test_min_spacing_reported(self, small_grid):
        coords = small_grid.node_coords().copy()
        nid = small_grid.node_id(1, 0, 0)
        # Move within 10% of the neighbour: still valid but tight.
        coords[nid, 0] = small_grid.xs[2] - 0.05e-6
        report = check_mesh_validity(small_grid, coords)
        assert report.valid
        assert report.min_spacing == pytest.approx(0.05e-6, rel=1e-6)

    def test_shape_checked(self, small_grid):
        with pytest.raises(MeshError):
            check_mesh_validity(small_grid, np.zeros((4, 3)))


class TestUniformAxis:
    def test_basic(self):
        axis = uniform_axis(0.0, 1.0e-5, 10)
        assert axis.size == 11
        np.testing.assert_allclose(np.diff(axis), 1.0e-6)

    def test_validation(self):
        with pytest.raises(MeshError):
            uniform_axis(1.0, 0.0, 10)
        with pytest.raises(MeshError):
            uniform_axis(0.0, 1.0, 0)


class TestBreakpointAxis:
    def test_hits_every_breakpoint(self):
        bps = [0.0, 1.0e-6, 3.5e-6, 1.0e-5]
        axis = axis_from_breakpoints(bps, max_step=1.0e-6)
        for bp in bps:
            assert np.any(np.isclose(axis, bp, atol=1e-15))

    def test_max_step_respected(self):
        axis = axis_from_breakpoints([0.0, 1.0e-5], max_step=1.3e-6)
        assert np.all(np.diff(axis) <= 1.3e-6 * (1 + 1e-9))

    def test_duplicates_merged(self):
        axis = axis_from_breakpoints([0.0, 1e-6, 1e-6, 2e-6],
                                     max_step=1e-6)
        assert np.all(np.diff(axis) > 0.0)

    def test_validation(self):
        with pytest.raises(MeshError):
            axis_from_breakpoints([0.0], max_step=1e-6)
        with pytest.raises(MeshError):
            axis_from_breakpoints([0.0, 1.0], max_step=0.0)


class TestGradedAxis:
    def test_endpoints_exact(self):
        axis = graded_axis(0.0, 1.0e-5, 20, focus=[5.0e-6])
        assert axis[0] == 0.0
        assert axis[-1] == 1.0e-5
        assert axis.size == 21
        assert np.all(np.diff(axis) > 0.0)

    def test_refines_near_focus(self):
        axis = graded_axis(0.0, 1.0e-5, 30, focus=[5.0e-6],
                           strength=5.0, width=1.0e-6)
        spacing = np.diff(axis)
        centers = 0.5 * (axis[:-1] + axis[1:])
        near = spacing[np.abs(centers - 5.0e-6) < 1.5e-6].mean()
        far = spacing[np.abs(centers - 5.0e-6) > 3.0e-6].mean()
        assert near < 0.6 * far

    def test_zero_strength_is_uniform(self):
        axis = graded_axis(0.0, 1.0e-5, 10, focus=[5.0e-6], strength=0.0)
        np.testing.assert_allclose(np.diff(axis), 1.0e-6, rtol=1e-6)

    def test_validation(self):
        with pytest.raises(MeshError):
            graded_axis(0.0, 1.0, 10, focus=[2.0])  # focus outside
        with pytest.raises(MeshError):
            graded_axis(0.0, 1.0, 10, focus=[0.5], strength=-1.0)
        with pytest.raises(MeshError):
            graded_axis(0.0, 1.0, 10, focus=[0.5], width=0.0)


@given(num_cells=st.integers(2, 40),
       focus_frac=st.floats(0.1, 0.9),
       strength=st.floats(0.0, 10.0))
@settings(max_examples=30, deadline=None)
def test_graded_axis_always_monotone(num_cells, focus_frac, strength):
    axis = graded_axis(0.0, 1.0e-5, num_cells,
                       focus=[focus_frac * 1.0e-5], strength=strength)
    assert axis.size == num_cells + 1
    assert np.all(np.diff(axis) > 0.0)
