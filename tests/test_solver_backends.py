"""Backend-conformance harness for the ``SolverBackend`` seam.

One matrix of contracts runs against *every* registered backend —
residual bounds, multi-RHS == stacked single-RHS, complex/real dtype
promotion, the ``n == 0`` early return, the singular-matrix error
shape — so a backend added later (the module registers a throwaway one
itself to prove it) is enrolled automatically at collection time.

Beyond the shared contracts: the ``"lu"`` backend must stay
bitwise-identical to the pre-seam :func:`repro.solver.solve_sparse`
path, the ``"krylov"`` backend's seed reuse / certified fallback are
exercised directly, and the end-to-end identity rule is checked
through real store builds (explicit ``"lu"`` == omitted byte-for-byte;
``"krylov"`` hashes apart with its tolerance in the sidecar, immune to
the ``REPRO_SOLVER_BACKEND`` environment variable).
"""

import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SingularSystemError, SolverBackendError
from repro.experiments import table1_spec
from repro.serving import SurrogateStore, ensure_surrogate
from repro.solver import (
    KrylovBackend,
    LUBackend,
    SolverBackend,
    SolverConfig,
    SparseFactor,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    solve_sparse,
    unregister_backend,
)
from repro.solver.backends import _KrylovFactor


class _PlainLUBackend(SolverBackend):
    """Unequilibrated LU, registered here to prove auto-enrollment."""

    name = "plainlu-test"

    def factorize(self, matrix, key=None):
        return SparseFactor(matrix, equilibrate=False)


register_backend("plainlu-test", _PlainLUBackend)

#: Snapshot at collection time: every backend registered by now —
#: including the module's own throwaway — gets the full contract
#: matrix below, with no per-backend test code.
BACKENDS = list_backends()


def teardown_module(module):
    unregister_backend("plainlu-test")


# ----------------------------------------------------------------------
# Test systems
# ----------------------------------------------------------------------
def _system(n=40, complex_matrix=False, seed=3):
    """A diagonally dominant sparse system (uniquely solvable)."""
    state = np.random.RandomState(seed)
    matrix = sp.random(n, n, density=0.15, random_state=state,
                       format="csr")
    row_sums = np.asarray(abs(matrix).sum(axis=1)).ravel()
    matrix = (matrix + sp.diags(row_sums + 1.0)).tocsr()
    rng = np.random.default_rng(seed)
    rhs = rng.standard_normal(n)
    if complex_matrix:
        matrix = (matrix
                  + 1j * sp.diags(0.1 * rng.standard_normal(n))).tocsr()
        rhs = rhs + 1j * rng.standard_normal(n)
    return matrix, rhs


def _relative_residual(matrix, x, rhs):
    return (np.linalg.norm(matrix @ x - rhs)
            / np.linalg.norm(rhs))


# ----------------------------------------------------------------------
# The shared contract matrix (parametrized over every backend)
# ----------------------------------------------------------------------
class TestConformance:
    def test_new_backend_auto_enrolls(self):
        # The throwaway backend registered above must be in the
        # collection-time snapshot driving every parametrized test.
        assert "plainlu-test" in BACKENDS
        assert {"lu", "krylov"} <= set(BACKENDS)

    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("complex_matrix", [False, True])
    def test_residual_bound(self, name, complex_matrix):
        matrix, rhs = _system(complex_matrix=complex_matrix)
        backend = resolve_backend(name)
        # Twice under one key: the second call takes a stateful
        # backend's warm (reuse) path; both must stay certified.
        for _ in range(2):
            factor = backend.factorize(matrix, key="contract")
            x = factor.solve(rhs)
            assert _relative_residual(matrix, x, rhs) < 1.0e-9

    @pytest.mark.parametrize("name", BACKENDS)
    def test_multi_rhs_matches_stacked_singles(self, name):
        matrix, rhs = _system(complex_matrix=True)
        rng = np.random.default_rng(11)
        block = np.column_stack([
            rhs, 2.0 * rhs,
            rng.standard_normal(rhs.size) + 1j * rng.standard_normal(
                rhs.size)])
        backend = resolve_backend(name)
        factor = backend.factorize(matrix, key="multirhs")
        factor = backend.factorize(matrix, key="multirhs")
        stacked = factor.solve(block)
        assert stacked.shape == block.shape
        for j in range(block.shape[1]):
            single = factor.solve(np.ascontiguousarray(block[:, j]))
            assert np.array_equal(stacked[:, j], single)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_complex_rhs_on_real_matrix_promotes(self, name):
        matrix, _ = _system(complex_matrix=False)
        rng = np.random.default_rng(5)
        rhs = (rng.standard_normal(matrix.shape[0])
               + 1j * rng.standard_normal(matrix.shape[0]))
        backend = resolve_backend(name)
        factor = backend.factorize(matrix, key="promote")
        factor = backend.factorize(matrix, key="promote")
        x = factor.solve(rhs)
        assert np.iscomplexobj(x)
        assert _relative_residual(matrix, x, rhs) < 1.0e-9

    @pytest.mark.parametrize("name", BACKENDS)
    def test_empty_system_early_return(self, name):
        empty = sp.csr_matrix((0, 0))
        backend = resolve_backend(name)
        for _ in range(2):  # cold and (where stateful) warm path
            factor = backend.factorize(empty, key="empty")
            assert factor.solve(np.zeros(0)).shape == (0,)
            assert factor.solve(np.zeros((0, 3))).shape == (0, 3)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_singular_matrix_error_shape(self, name):
        matrix, rhs = _system(n=10)
        singular = matrix.tolil()
        singular[4, :] = 0.0  # an unknown with no equation
        backend = resolve_backend(name)
        with pytest.raises(SingularSystemError):
            backend.factorize(singular.tocsr(), key="singular").solve(rhs)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_non_square_rejected(self, name):
        backend = resolve_backend(name)
        with pytest.raises(SingularSystemError):
            backend.factorize(sp.csr_matrix(np.ones((3, 4))))

    @pytest.mark.parametrize("name", BACKENDS)
    def test_rhs_shape_mismatch_rejected(self, name):
        matrix, _ = _system(n=12)
        backend = resolve_backend(name)
        factor = backend.factorize(matrix, key="mismatch")
        factor = backend.factorize(matrix, key="mismatch")
        with pytest.raises(SingularSystemError):
            factor.solve(np.zeros(13))


class TestLUBitwiseIdentity:
    """The reference backend IS the pre-seam path, bit for bit."""

    @pytest.mark.parametrize("complex_matrix", [False, True])
    def test_matches_solve_sparse(self, complex_matrix):
        matrix, rhs = _system(complex_matrix=complex_matrix)
        factor = resolve_backend("lu").factorize(matrix, key="any")
        assert isinstance(factor, SparseFactor)
        assert np.array_equal(factor.solve(rhs),
                              solve_sparse(matrix, rhs))

    def test_multi_rhs_matches_sparse_factor(self):
        matrix, rhs = _system(complex_matrix=True)
        block = np.column_stack([rhs, -rhs])
        factor = resolve_backend("lu").factorize(matrix)
        assert np.array_equal(factor.solve(block),
                              SparseFactor(matrix).solve(block))


# ----------------------------------------------------------------------
# Krylov specifics: seed reuse, certification, fallback
# ----------------------------------------------------------------------
class TestKrylovBackend:
    def test_warm_call_returns_preconditioned_factor(self):
        matrix, rhs = _system(complex_matrix=True)
        backend = resolve_backend({"backend": "krylov", "tol": 1.0e-10})
        cold = backend.factorize(matrix, key="sweep")
        assert isinstance(cold, SparseFactor)
        # A nearby matrix (next frequency of a sweep): the seed is a
        # preconditioner now, and the answer is still certified.
        nearby = (matrix + 1j * 0.01 * sp.eye(matrix.shape[0],
                                              format="csr")).tocsr()
        warm = backend.factorize(nearby, key="sweep")
        assert isinstance(warm, _KrylovFactor)
        x = warm.solve(rhs)
        assert _relative_residual(nearby, x, rhs) <= 1.0e-10

    def test_different_key_or_shape_goes_cold(self):
        matrix, _ = _system()
        backend = resolve_backend("krylov")
        backend.factorize(matrix, key="a")
        assert isinstance(backend.factorize(matrix, key="b"),
                          SparseFactor)
        smaller, _ = _system(n=12)
        assert isinstance(backend.factorize(smaller, key="a"),
                          SparseFactor)
        assert isinstance(backend.factorize(matrix), SparseFactor)

    def test_fallback_refreshes_seed_and_stays_exact(self):
        matrix, rhs = _system(complex_matrix=True, seed=7)
        backend = resolve_backend(
            {"backend": "krylov", "tol": 1.0e-12, "maxiter": 1})
        backend.factorize(matrix, key="k")
        # A completely different matrix under the same key: one
        # iteration cannot reach 1e-12, so the factor must fall back
        # to a fresh LU — bitwise the direct answer.
        state = np.random.RandomState(17)
        other = sp.random(matrix.shape[0], matrix.shape[0],
                          density=0.2, random_state=state, format="csr")
        sums = np.asarray(abs(other).sum(axis=1)).ravel()
        other = ((other + sp.diags(sums + 1.0))
                 * (1.0 + 0.5j)).tocsr()
        factor = backend.factorize(other, key="k")
        assert isinstance(factor, _KrylovFactor)
        assert np.array_equal(factor.solve(rhs),
                              solve_sparse(other, rhs))
        # The fallback LU became the new seed: the next warm solve
        # starts from an exact preconditioner.
        refreshed = backend.factorize(other, key="k")
        assert isinstance(refreshed, _KrylovFactor)
        assert _relative_residual(other, refreshed.solve(rhs),
                                  rhs) <= 1.0e-12

    def test_factorization_counter_labels_are_registered_names(self):
        from repro.solver.backends import _BACKEND_FACTORIZATIONS
        matrix, _ = _system(n=8)
        resolve_backend("lu").factorize(matrix)
        resolve_backend("krylov").factorize(matrix)
        snapshot = _BACKEND_FACTORIZATIONS.snapshot()
        labels = {sample["labels"]["backend"]
                  for sample in snapshot["samples"]}
        assert labels <= set(list_backends())
        assert {"lu", "krylov"} <= labels


class TestResolutionAndRegistry:
    def test_default_is_lu(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER_BACKEND", raising=False)
        assert isinstance(resolve_backend(None), LUBackend)

    def test_environment_steers_direct_use(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_BACKEND", "krylov")
        assert isinstance(resolve_backend(None), KrylovBackend)

    def test_designation_forms(self):
        assert isinstance(resolve_backend("krylov"), KrylovBackend)
        assert isinstance(
            resolve_backend({"backend": "krylov", "tol": 1.0e-6}),
            KrylovBackend)
        config = SolverConfig(backend="krylov", maxiter=50)
        assert resolve_backend(config).config is config
        live = KrylovBackend()
        assert resolve_backend(live) is live

    def test_bad_designations_rejected(self):
        with pytest.raises(SolverBackendError):
            resolve_backend("cholesky")
        with pytest.raises(SolverBackendError):
            resolve_backend({"backend": "krylov", "typo": 1})
        with pytest.raises(SolverBackendError):
            resolve_backend(3.14)
        with pytest.raises(SolverBackendError):
            SolverConfig(backend="lu", tol=1.0e-6)
        with pytest.raises(SolverBackendError):
            SolverConfig(backend="krylov", tol=2.0)
        with pytest.raises(SolverBackendError):
            SolverConfig(backend="krylov", method="jacobi")
        with pytest.raises(SolverBackendError):
            SolverConfig(backend="krylov", maxiter=0)

    def test_registry_guards(self):
        with pytest.raises(SolverBackendError):
            register_backend("lu", LUBackend)
        with pytest.raises(SolverBackendError):
            unregister_backend("lu")
        with pytest.raises(SolverBackendError):
            get_backend("no-such-backend")
        assert get_backend("lu") is LUBackend


# ----------------------------------------------------------------------
# End-to-end identity through real store builds
# ----------------------------------------------------------------------
TINY_PARAMS = {"max_step_um": 2.0, "rdf_nodes": 6}
TINY_REDUCTION = {"caps": {"doping": 1}, "energy": 0.9}


def _spec(solver=None):
    reduction = dict(TINY_REDUCTION)
    if solver is not None:
        reduction["solver"] = solver
    return table1_spec("doping", reduction=reduction, **TINY_PARAMS)


def _build(tmp_path, name, spec):
    store = SurrogateStore(tmp_path / name)
    report = ensure_surrogate(spec, store)
    key = report.cache_key
    payload = (store.root / f"{key}.npz").read_bytes()
    sidecar = json.loads((store.root / f"{key}.json").read_text())
    return report, payload, sidecar


class TestEndToEndIdentity:
    @pytest.fixture(scope="class")
    def lu_build(self, tmp_path_factory):
        return _build(tmp_path_factory.mktemp("lu"), "omitted", _spec())

    def test_explicit_lu_equals_omitted_byte_for_byte(self, tmp_path,
                                                      lu_build):
        report, payload, sidecar = lu_build
        explicit = _build(tmp_path, "explicit",
                          _spec({"backend": "lu"}))
        assert explicit[0].cache_key == report.cache_key
        assert explicit[1] == payload
        assert explicit[2]["npz_sha256"] == sidecar["npz_sha256"]
        assert explicit[2]["spec"] == sidecar["spec"]
        assert "solver" not in sidecar["spec"]["reduction"]

    def test_environment_variable_cannot_reach_a_build(self, tmp_path,
                                                       lu_build,
                                                       monkeypatch):
        # The spec pins its backend at build_problem time, so the env
        # var that steers direct solver use must not even change a
        # bit of a spec-driven build.
        monkeypatch.setenv("REPRO_SOLVER_BACKEND", "krylov")
        _, payload, sidecar = lu_build
        env_build = _build(tmp_path, "env", _spec())
        assert env_build[1] == payload
        assert env_build[2]["npz_sha256"] == sidecar["npz_sha256"]

    def test_krylov_hashes_apart_with_tol_in_provenance(self, tmp_path,
                                                        lu_build):
        report, _, _ = lu_build
        spec = _spec({"backend": "krylov", "tol": 1.0e-9})
        assert spec.cache_key() != report.cache_key
        kr_report, _, kr_sidecar = _build(tmp_path, "krylov", spec)
        solver = kr_sidecar["spec"]["reduction"]["solver"]
        assert solver["backend"] == "krylov"
        assert solver["tol"] == 1.0e-9
        # Same physics, certified tolerance class: the surrogates
        # agree far tighter than the stochastic content they model.
        for name, reference in report.record.pce.to_arrays().items():
            kr_value = kr_report.record.pce.to_arrays()[name]
            if np.issubdtype(np.asarray(reference).dtype, np.number):
                assert np.allclose(kr_value, reference,
                                   rtol=1.0e-6, atol=1.0e-12)
            else:
                assert np.array_equal(kr_value, reference)
