"""Tests for the CI benchmark-regression gate (benchmarks/check_bench.py).

The gate is plain stdlib and lives outside the package; it is loaded
straight from its file so these tests exercise exactly what CI runs.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_bench", REPO_ROOT / "benchmarks" / "check_bench.py")
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)

BASE = {
    "name": "demo",
    "profile": "fast",
    "solves_adaptive": 29,
    "solves_fixed": 161,
    "termination": "tol",
    "bitwise_identical": True,
    "std_rel_err": 1.0e-6,
    "mean_rel_err": 0.0,
    "speedup": 100.0,
    "solve_reduction": 5.551724137931035,
    "wall_adaptive_s": 4.2,
    "warm_obs_overhead": 1.004,
    "nested": {"grid_points": 29, "zero_weight_points": 0},
}


@pytest.fixture()
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    baseline.mkdir()
    fresh.mkdir()
    return baseline, fresh


def _write(directory, payload, name="BENCH_demo.json"):
    (directory / name).write_text(json.dumps(payload))


def _run(baseline, fresh):
    return check_bench.main(["--baseline", str(baseline),
                             "--fresh", str(fresh)])


class TestGatePasses:
    def test_identical_documents_pass(self, dirs, capsys):
        baseline, fresh = dirs
        _write(baseline, BASE)
        _write(fresh, BASE)
        assert _run(baseline, fresh) == 0
        assert "hold" in capsys.readouterr().out

    def test_wall_time_changes_ignored(self, dirs):
        baseline, fresh = dirs
        _write(baseline, BASE)
        _write(fresh, {**BASE, "wall_adaptive_s": 400.0})
        assert _run(baseline, fresh) == 0

    def test_error_jitter_within_slack_passes(self, dirs):
        baseline, fresh = dirs
        _write(baseline, BASE)
        _write(fresh, {**BASE, "std_rel_err": 1.5e-6,
                       "mean_rel_err": 5e-13})
        assert _run(baseline, fresh) == 0

    def test_speedup_above_floor_passes(self, dirs):
        baseline, fresh = dirs
        _write(baseline, BASE)
        _write(fresh, {**BASE, "speedup": 40.0})
        assert _run(baseline, fresh) == 0

    def test_overhead_under_ceiling_passes(self, dirs):
        # Overhead is an absolute gate: even an overhead well above
        # the baseline value passes as long as it stays under the
        # ceiling — yesterday's luck is not the contract.
        baseline, fresh = dirs
        _write(baseline, BASE)
        _write(fresh, {**BASE, "warm_obs_overhead": 1.049})
        assert _run(baseline, fresh) == 0

    def test_new_fields_and_documents_allowed(self, dirs, capsys):
        baseline, fresh = dirs
        _write(baseline, BASE)
        _write(fresh, {**BASE, "brand_new_metric": 7})
        _write(fresh, BASE, name="BENCH_other.json")
        assert _run(baseline, fresh) == 0
        out = capsys.readouterr().out
        assert "new field" in out
        assert "new bench" in out


class TestGateFails:
    @pytest.mark.parametrize("perturbation", [
        {"solves_adaptive": 30},              # solve counts are exact
        {"termination": "max_solves"},        # strings are exact
        {"bitwise_identical": False},         # booleans are exact
        {"std_rel_err": 5.0e-6},              # > 2x baseline
        {"mean_rel_err": 1.0e-9},             # > floor from exact 0
        {"speedup": 10.0},                    # < 30% of baseline
        {"warm_obs_overhead": 1.06},          # > absolute ceiling
        {"nested": {"grid_points": 31,
                    "zero_weight_points": 0}},
    ])
    def test_regressions_fail(self, dirs, perturbation, capsys):
        baseline, fresh = dirs
        _write(baseline, BASE)
        _write(fresh, {**BASE, **perturbation})
        assert _run(baseline, fresh) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_field_fails(self, dirs):
        baseline, fresh = dirs
        _write(baseline, BASE)
        stripped = {key: value for key, value in BASE.items()
                    if key != "std_rel_err"}
        _write(fresh, stripped)
        assert _run(baseline, fresh) == 1

    def test_missing_document_fails(self, dirs):
        baseline, fresh = dirs
        _write(baseline, BASE)
        assert _run(baseline, fresh) == 1

    def test_empty_baseline_dir_fails(self, dirs):
        baseline, fresh = dirs
        _write(fresh, BASE)
        assert _run(baseline, fresh) == 1


class TestCommittedBaselines:
    def test_committed_baselines_compare_clean_to_themselves(self):
        """Every committed BENCH document passes the gate against
        itself — guards against rule/field-name drift making the gate
        vacuous or unsatisfiable."""
        output = REPO_ROOT / "benchmarks" / "output"
        baselines = sorted(output.glob("BENCH_*.json"))
        assert baselines, "no committed BENCH baselines"
        for path in baselines:
            document = json.loads(path.read_text())
            problems, _ = check_bench.compare_documents(
                path.stem, document, document)
            assert not problems, (path.name, problems)

    def test_committed_baselines_have_guarded_fields(self):
        """Each committed document must expose at least one exactly-
        guarded (integer) field, or the gate guards nothing."""
        output = REPO_ROOT / "benchmarks" / "output"

        def count_guarded(path, document):
            guarded = 0
            for key, value in document.items():
                if isinstance(value, dict):
                    guarded += count_guarded(f"{path}.{key}", value)
                elif isinstance(value, int) \
                        and not isinstance(value, bool) \
                        and check_bench.classify(
                            f"{path}.{key}") == "default":
                    guarded += 1
            return guarded

        for path in sorted(output.glob("BENCH_*.json")):
            document = json.loads(path.read_text())
            assert count_guarded(path.stem, document) > 0, path.name
