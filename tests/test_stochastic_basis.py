"""Tests for Hermite basis, Gauss-Hermite rules and sparse grids."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StochasticError
from repro.stochastic import (
    HermiteBasis,
    gauss_hermite_rule,
    hermite_norm_squared,
    hermite_value,
    multi_indices_upto,
    paper_point_count,
    smolyak_sparse_grid,
    tensor_grid,
)
from repro.stochastic.sparse_grid import smolyak_point_count


class TestHermite:
    def test_first_polynomials(self):
        x = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(hermite_value(0, x), 1.0)
        np.testing.assert_allclose(hermite_value(1, x), x)
        np.testing.assert_allclose(hermite_value(2, x), x * x - 1.0)
        np.testing.assert_allclose(hermite_value(3, x), x ** 3 - 3 * x)

    def test_negative_order_rejected(self):
        with pytest.raises(StochasticError):
            hermite_value(-1, 0.0)

    def test_norms(self):
        assert hermite_norm_squared((0, 0)) == 1.0
        assert hermite_norm_squared((1, 0)) == 1.0
        assert hermite_norm_squared((2, 0)) == 2.0
        assert hermite_norm_squared((2, 3)) == 2.0 * 6.0

    def test_multi_index_count_quadratic(self):
        for d in (1, 2, 5, 10):
            indices = multi_indices_upto(d, 2)
            assert len(indices) == (d + 1) * (d + 2) // 2

    def test_multi_index_graded_order(self):
        indices = multi_indices_upto(3, 2)
        totals = [sum(ix) for ix in indices]
        assert totals == sorted(totals)
        assert indices[0] == (0, 0, 0)

    def test_basis_orthogonality_by_quadrature(self):
        """<He_a He_b> = delta_ab <He_a^2> under the Gaussian weight."""
        basis = HermiteBasis(2, order=2)
        nodes, weights = gauss_hermite_rule(6)
        X, Y = np.meshgrid(nodes, nodes, indexing="ij")
        W = np.outer(weights, weights).ravel()
        pts = np.stack([X.ravel(), Y.ravel()], axis=1)
        design = basis.evaluate(pts)
        gram = design.T @ (W[:, None] * design)
        expected = np.diag(basis.norms_squared)
        np.testing.assert_allclose(gram, expected, atol=1e-10)

    def test_evaluate_shape_checked(self):
        basis = HermiteBasis(3)
        with pytest.raises(StochasticError):
            basis.evaluate(np.zeros((4, 2)))


class TestGaussHermite:
    def test_weights_normalized(self):
        for m in (1, 2, 3, 5, 8):
            _, w = gauss_hermite_rule(m)
            assert w.sum() == pytest.approx(1.0)

    def test_moments_exact(self):
        nodes, weights = gauss_hermite_rule(5)
        # Standard normal moments: 1, 0, 1, 0, 3, 0, 15, 0, 105.
        moments = [1.0, 0.0, 1.0, 0.0, 3.0, 0.0, 15.0, 0.0, 105.0]
        for k, expected in enumerate(moments):
            value = float((weights * nodes ** k).sum())
            assert value == pytest.approx(expected, abs=1e-9)

    def test_one_point_rule(self):
        nodes, weights = gauss_hermite_rule(1)
        assert nodes[0] == 0.0
        assert weights[0] == 1.0

    def test_odd_rule_centre_exact_zero(self):
        nodes, _ = gauss_hermite_rule(5)
        assert nodes[2] == 0.0

    def test_validation(self):
        with pytest.raises(StochasticError):
            gauss_hermite_rule(0)


class TestSparseGrid:
    def test_point_counts(self):
        for d in (1, 2, 3, 8, 22):
            grid = smolyak_sparse_grid(d)
            assert grid.num_points == smolyak_point_count(d)

    def test_paper_count_formula(self):
        """The counts quoted in Section IV: d=22 -> 1035, d=34 -> 2415."""
        assert paper_point_count(22) == 1035
        assert paper_point_count(34) == 2415

    def test_smolyak_vs_paper_count_gap_is_linear(self):
        for d in (5, 10, 30):
            assert (smolyak_point_count(d) - paper_point_count(d)) == d

    def test_weights_sum_to_one(self):
        for d in (2, 6, 15):
            grid = smolyak_sparse_grid(d)
            assert grid.weights.sum() == pytest.approx(1.0)

    @given(d=st.integers(2, 10), i=st.integers(0, 9), j=st.integers(0, 9))
    @settings(max_examples=30, deadline=None)
    def test_mixed_moments_exact(self, d, i, j):
        """Level-2 grids integrate the moments a quadratic chaos needs."""
        if i >= d or j >= d or i == j:
            return
        grid = smolyak_sparse_grid(d)
        z, w = grid.points, grid.weights
        assert float((w * z[:, i] ** 2).sum()) == pytest.approx(1.0)
        assert float((w * z[:, i] ** 4).sum()) == pytest.approx(3.0)
        assert float((w * z[:, i] ** 2 * z[:, j] ** 2).sum()) \
            == pytest.approx(1.0)
        assert float((w * z[:, i] * z[:, j]).sum()) == pytest.approx(
            0.0, abs=1e-10)
        assert float((w * z[:, i] ** 3 * z[:, j]).sum()) == pytest.approx(
            0.0, abs=1e-10)

    def test_contains_origin(self):
        grid = smolyak_sparse_grid(4)
        origin = np.all(grid.points == 0.0, axis=1)
        assert origin.sum() == 1

    def test_growth_is_quadratic_not_exponential(self):
        n10 = smolyak_sparse_grid(10).num_points
        n20 = smolyak_sparse_grid(20).num_points
        assert n20 / n10 < 5.0  # quadratic scaling, not 2^10

    def test_validation(self):
        with pytest.raises(StochasticError):
            smolyak_sparse_grid(0)
        with pytest.raises(StochasticError):
            paper_point_count(0)

    def test_rebuilds_are_bitwise_identical(self):
        """Exact node-table merging is deterministic: same points and
        weights bit for bit, no rounding-sensitive dict keys."""
        for level in (1, 2, 3):
            a = smolyak_sparse_grid(3, level=level)
            b = smolyak_sparse_grid(3, level=level)
            np.testing.assert_array_equal(a.points, b.points)
            np.testing.assert_array_equal(a.weights, b.weights)

    def test_nodes_are_exact_rule_values(self):
        """Grid coordinates are the exact 1-D Gauss-Hermite nodes —
        the rounded-key merge artifact is gone."""
        grid = smolyak_sparse_grid(2, level=2)
        values = set()
        for level in range(3):
            values.update(gauss_hermite_rule((1, 3, 5)[level])[0])
        for coordinate in grid.points.ravel():
            assert coordinate in values


class TestSparseGridExactness:
    """Pin the hierarchy the adaptive engine refines over: the
    level-``L`` grid integrates every monomial of total degree
    ``<= 2 L + 1`` exactly, and its weights always sum to 1."""

    #: Standard-normal moments E[z^k] for k = 0..9.
    MOMENTS = (1.0, 0.0, 1.0, 0.0, 3.0, 0.0, 15.0, 0.0, 105.0, 0.0)

    @staticmethod
    def _monomials(dim, degree):
        from itertools import product as iproduct
        for powers in iproduct(range(degree + 1), repeat=dim):
            if sum(powers) <= degree:
                yield powers

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_total_degree_exactness(self, dim, level):
        grid = smolyak_sparse_grid(dim, level=level)
        degree = 2 * level + 1
        for powers in self._monomials(dim, degree):
            expected = 1.0
            for power in powers:
                expected *= self.MOMENTS[power]
            value = grid.weights.copy()
            for axis, power in enumerate(powers):
                if power:
                    value = value * grid.points[:, axis] ** power
            assert float(value.sum()) == pytest.approx(
                expected, abs=5e-11), \
                f"monomial {powers} at level {level}"

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_weights_sum_to_one(self, level):
        for dim in (1, 2, 4):
            grid = smolyak_sparse_grid(dim, level=level)
            assert grid.weights.sum() == pytest.approx(1.0, abs=1e-12)


class TestTensorGrid:
    def test_count(self):
        grid = tensor_grid(3, points_per_axis=3)
        assert grid.num_points == 27
        assert grid.weights.sum() == pytest.approx(1.0)

    def test_moments(self):
        grid = tensor_grid(2, points_per_axis=4)
        z, w = grid.points, grid.weights
        assert float((w * z[:, 0] ** 2).sum()) == pytest.approx(1.0)
        assert float((w * z[:, 0] ** 2 * z[:, 1] ** 2).sum()) \
            == pytest.approx(1.0)

    def test_infeasible_rejected(self):
        with pytest.raises(StochasticError):
            tensor_grid(30, points_per_axis=3)
