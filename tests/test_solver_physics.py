"""Physics validation of the coupled solver on analytically known cases.

These are the tests that anchor the whole reproduction: resistance and
capacitance of textbook geometries, Kirchhoff consistency, equilibrium
properties of the DC solve, and reciprocity of the capacitance matrix.
"""

import numpy as np
import pytest

from repro.constants import EPS0
from repro.errors import GeometryError
from repro.extraction import port_current
from repro.extraction.capacitance import (
    capacitance_column,
    conductor_labels,
    conductor_mask_for_contact,
)
from repro.geometry import Box, Structure
from repro.materials import doped_silicon, silicon_dioxide, tungsten, vacuum
from repro.materials.physics import equilibrium_potential
from repro.mesh import CartesianGrid
from repro.mesh.refine import uniform_axis
from repro.solver import AVSolver
from repro.solver.dc import solve_equilibrium
from repro.units import um


def _metal_bar(sigma=1.0e7, n=5):
    """A metal bar between two end contacts inside vacuum padding."""
    grid = CartesianGrid(uniform_axis(0, um(4.0), 4),
                         uniform_axis(0, um(4.0), 4),
                         uniform_axis(0, um(8.0), n))
    s = Structure(grid, background=vacuum())
    bar = Box((um(1.0), um(1.0), 0.0), (um(3.0), um(3.0), um(8.0)))
    from repro.materials.material import Metal

    s.add_box(Metal(name="bar", eps_r=1.0, sigma=sigma), bar)
    s.add_contact_on_box_face("bottom", bar, "z-")
    s.add_contact_on_box_face("top", bar, "z+")
    return s, bar


class TestResistor:
    def test_bar_resistance_matches_ohms_law(self):
        """R = L / (sigma A) for a uniform bar, within FVM accuracy."""
        sigma = 1.0e5
        s, bar = _metal_bar(sigma=sigma, n=8)
        solver = AVSolver(s, frequency=1.0e3)  # quasi-DC
        sol = solver.solve({"top": 1.0, "bottom": 0.0})
        current = port_current(sol, "top")
        area = bar.size[0] * bar.size[1]
        r_expected = bar.size[2] / (sigma * area)
        r_measured = 1.0 / current.real
        assert r_measured == pytest.approx(r_expected, rel=0.05)

    def test_resistance_scales_with_conductivity(self):
        results = []
        for sigma in (1.0e4, 1.0e5):
            s, _ = _metal_bar(sigma=sigma)
            solver = AVSolver(s, frequency=1.0e3)
            sol = solver.solve({"top": 1.0, "bottom": 0.0})
            results.append(port_current(sol, "top").real)
        assert results[1] == pytest.approx(10.0 * results[0], rel=1e-3)

    def test_kirchhoff_current_balance(self):
        s, _ = _metal_bar()
        solver = AVSolver(s, frequency=1.0e6)
        sol = solver.solve({"top": 1.0, "bottom": 0.0})
        i_top = port_current(sol, "top")
        i_bottom = port_current(sol, "bottom")
        assert i_top + i_bottom == pytest.approx(0.0, abs=1e-9 * abs(i_top))


def _parallel_plates(gap_cells=4):
    """Two metal plates separated by oxide (fringe-free-ish)."""
    grid = CartesianGrid(uniform_axis(0, um(10.0), 5),
                         uniform_axis(0, um(10.0), 5),
                         uniform_axis(0, um(3.0), gap_cells + 2))
    s = Structure(grid, background=silicon_dioxide())
    dz = um(3.0) / (gap_cells + 2)
    bottom = Box((0.0, 0.0, 0.0), (um(10.0), um(10.0), dz))
    top = Box((0.0, 0.0, um(3.0) - dz), (um(10.0), um(10.0), um(3.0)))
    s.add_box(tungsten("m1"), bottom)
    s.add_box(tungsten("m2"), top)
    s.add_contact_on_box_face("bot", bottom, "z-")
    s.add_contact_on_box_face("top", top, "z+")
    gap = um(3.0) - 2 * dz
    return s, gap


class TestCapacitor:
    def test_parallel_plate_capacitance(self):
        s, gap = _parallel_plates()
        solver = AVSolver(s, frequency=1.0e9)
        sol = solver.solve({"top": 1.0, "bot": 0.0})
        col = capacitance_column(sol, "top")
        area = um(10.0) * um(10.0)
        c_expected = 3.9 * EPS0 * area / gap
        # Full-plane plates on a matching grid: no fringe error.
        assert col["bot"].real == pytest.approx(-c_expected, rel=1e-6)
        assert col["top"].real == pytest.approx(c_expected, rel=1e-6)

    def test_charge_neutrality_of_column(self):
        s, _ = _parallel_plates()
        solver = AVSolver(s, frequency=1.0e9)
        sol = solver.solve({"top": 1.0, "bot": 0.0})
        col = capacitance_column(sol, "top")
        total = col["top"] + col["bot"]
        assert abs(total) < 1e-3 * abs(col["top"])

    def test_reciprocity(self, coarse_tsv_structure):
        """C_ij = C_ji for the TSV structure (Maxwell matrix symmetry)."""
        solver = AVSolver(coarse_tsv_structure, frequency=1.0e9)
        grounded = {name: 0.0 for name in coarse_tsv_structure.contacts}
        ex1 = dict(grounded, tsv1=1.0)
        ex2 = dict(grounded, tsv2=1.0)
        col1 = capacitance_column(solver.solve(ex1), "tsv1")
        col2 = capacitance_column(solver.solve(ex2), "tsv2")
        assert col1["tsv2"].real == pytest.approx(col2["tsv1"].real,
                                                  rel=1e-3)

    def test_port_current_equals_jwq(self, coarse_tsv_structure):
        """I_port ~ j w Q for a capacitive structure (displacement
        dominated through the driven TSV's oxide)."""
        solver = AVSolver(coarse_tsv_structure, frequency=1.0e9)
        grounded = {name: 0.0 for name in coarse_tsv_structure.contacts}
        sol = solver.solve(dict(grounded, tsv1=1.0))
        q = capacitance_column(sol, "tsv1")["tsv1"]
        i_port = port_current(sol, "tsv1")
        omega = 2 * np.pi * 1.0e9
        # Current into the conductor = j w Q (plus small substrate loss
        # and the neighbouring conductors' share).
        assert i_port.imag == pytest.approx(omega * q.real, rel=0.35)


class TestConductorLabels:
    def test_tsv_structure_has_six_conductors(self, coarse_tsv_structure):
        from repro.mesh import LinkSet

        links = LinkSet(coarse_tsv_structure.grid)
        labels = conductor_labels(coarse_tsv_structure, links)
        present = np.unique(labels[labels >= 0])
        assert present.size == 6

    def test_conductor_labels_agree_with_networkx(self,
                                                  coarse_tsv_structure):
        """Cross-validate the csgraph component labelling."""
        import networkx as nx

        from repro.mesh import LinkSet

        links = LinkSet(coarse_tsv_structure.grid)
        labels = conductor_labels(coarse_tsv_structure, links)
        metal = coarse_tsv_structure.node_kinds().metal
        graph = nx.Graph()
        graph.add_nodes_from(np.nonzero(metal)[0].tolist())
        both = metal[links.node_a] & metal[links.node_b]
        graph.add_edges_from(zip(links.node_a[both].tolist(),
                                 links.node_b[both].tolist()))
        components = list(nx.connected_components(graph))
        assert len(components) == 6
        for comp in components:
            comp_labels = set(labels[list(comp)].tolist())
            assert len(comp_labels) == 1

    def test_contact_spanning_conductors_rejected(self,
                                                  coarse_tsv_structure):
        from repro.mesh import LinkSet

        s = coarse_tsv_structure
        links = LinkSet(s.grid)
        # Forge a contact set spanning tsv1 and tsv2.
        ids = np.concatenate([s.contact_node_ids("tsv1"),
                              s.contact_node_ids("tsv2")])
        from repro.errors import ExtractionError

        s.contacts["forged"] = ids
        try:
            with pytest.raises(ExtractionError):
                conductor_mask_for_contact(s, links, "forged")
        finally:
            del s.contacts["forged"]


class TestEquilibrium:
    def test_uniform_doping_flat_potential(self, coarse_plug_structure):
        solver = AVSolver(coarse_plug_structure, frequency=1e9)
        eq = solve_equilibrium(coarse_plug_structure,
                               solver.nominal_geometry)
        mask = eq.carrier_mask
        material = coarse_plug_structure.primary_semiconductor()
        expected = equilibrium_potential(material.net_doping,
                                         eq.ni, eq.vt)
        interior = mask & (eq.semi_node_volumes
                           > 0.9 * eq.semi_node_volumes[mask].max())
        np.testing.assert_allclose(eq.potential[interior], expected,
                                   rtol=1e-3)

    def test_mass_action_law(self, coarse_plug_structure):
        solver = AVSolver(coarse_plug_structure, frequency=1e9)
        eq = solve_equilibrium(coarse_plug_structure,
                               solver.nominal_geometry)
        mask = eq.carrier_mask
        np.testing.assert_allclose(eq.n0[mask] * eq.p0[mask],
                                   eq.ni ** 2, rtol=1e-9)

    def test_charge_neutral_bulk(self, coarse_plug_structure):
        """Bulk nodes are charge neutral; interface nodes band-bend.

        The Si/SiO2 interface carries a genuine depletion response, so
        neutrality is asserted only for interior nodes (full dual
        volume inside the semiconductor).
        """
        solver = AVSolver(coarse_plug_structure, frequency=1e9)
        eq = solve_equilibrium(coarse_plug_structure,
                               solver.nominal_geometry)
        mask = eq.carrier_mask
        interior = mask & (eq.semi_node_volumes
                           > 0.9 * eq.semi_node_volumes[mask].max())
        net = eq.n0[interior] - eq.p0[interior]
        np.testing.assert_allclose(net, eq.net_doping[interior],
                                   rtol=1e-3)

    def test_no_semiconductor_trivial_state(self):
        s, _ = _parallel_plates()
        solver = AVSolver(s, frequency=1e9)
        eq = solve_equilibrium(s, solver.nominal_geometry)
        assert not eq.has_semiconductor
        np.testing.assert_allclose(eq.potential, 0.0)

    def test_doping_override_shifts_potential(self, coarse_plug_structure):
        from repro.materials import UniformDoping

        solver = AVSolver(coarse_plug_structure, frequency=1e9)
        eq_lo = solve_equilibrium(coarse_plug_structure,
                                  solver.nominal_geometry,
                                  doping_profile=UniformDoping(1e20))
        eq_hi = solve_equilibrium(coarse_plug_structure,
                                  solver.nominal_geometry,
                                  doping_profile=UniformDoping(1e22))
        mask = eq_lo.carrier_mask
        assert eq_hi.potential[mask].mean() > eq_lo.potential[mask].mean()


class TestACSolverBasics:
    def test_excitation_required(self, coarse_plug_structure):
        solver = AVSolver(coarse_plug_structure, frequency=1e9)
        with pytest.raises(GeometryError):
            solver.solve({})

    def test_dirichlet_values_pinned(self, coarse_plug_structure):
        solver = AVSolver(coarse_plug_structure, frequency=1e9)
        sol = solver.solve({"plug1": 0.7 + 0.1j, "plug2": 0.0})
        ids = coarse_plug_structure.contact_node_ids("plug1")
        np.testing.assert_allclose(sol.potential[ids], 0.7 + 0.1j)

    def test_metal_body_nearly_equipotential(self, coarse_plug_structure):
        solver = AVSolver(coarse_plug_structure, frequency=1e9)
        sol = solver.solve({"plug1": 1.0, "plug2": 0.0})
        mask = conductor_mask_for_contact(
            coarse_plug_structure, sol.geometry.links, "plug1")
        # Tungsten has finite conductivity, so an IR drop of a few uV
        # across the plug is physical; "equipotential" means << 1 mV.
        spread = np.abs(sol.potential[mask] - 1.0).max()
        assert spread < 1e-4

    def test_solution_linear_in_drive(self, coarse_plug_structure):
        solver = AVSolver(coarse_plug_structure, frequency=1e9)
        s1 = solver.solve({"plug1": 1.0, "plug2": 0.0})
        s2 = solver.solve({"plug1": 2.0, "plug2": 0.0})
        i1 = port_current(s1, "plug1")
        i2 = port_current(s2, "plug1")
        assert i2 == pytest.approx(2.0 * i1, rel=1e-9)

    def test_frequency_validation(self, coarse_plug_structure):
        with pytest.raises(GeometryError):
            AVSolver(coarse_plug_structure, frequency=0.0)

    def test_invalid_geometry_argument(self, coarse_plug_structure):
        solver = AVSolver(coarse_plug_structure, frequency=1e9)
        with pytest.raises(GeometryError):
            solver.solve({"plug1": 1.0}, geometry="nope")
