"""Tests for the linear solver wrapper and damped Newton."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConvergenceError, SingularSystemError
from repro.solver import NewtonOptions, damped_newton, solve_sparse


class TestSolveSparse:
    def test_identity(self):
        x = solve_sparse(sp.eye(5, format="csr"), np.arange(5.0))
        np.testing.assert_allclose(x, np.arange(5.0))

    def test_badly_scaled_system(self, rng):
        """Equilibration handles ~30 orders of magnitude of row scale."""
        n = 40
        base = sp.random(n, n, density=0.2, random_state=0).tocsr()
        base = base + sp.eye(n) * 2.0
        scales = 10.0 ** rng.uniform(-15, 15, n)
        matrix = sp.diags(scales) @ base
        x_true = rng.standard_normal(n)
        x = solve_sparse(matrix.tocsr(), matrix @ x_true)
        np.testing.assert_allclose(x, x_true, rtol=1e-6)

    def test_complex_system(self, rng):
        n = 30
        matrix = (sp.random(n, n, density=0.3, random_state=1)
                  + sp.eye(n) * (2.0 + 1.0j)).tocsr()
        x_true = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = solve_sparse(matrix, matrix @ x_true)
        np.testing.assert_allclose(x, x_true, rtol=1e-8)

    def test_multiple_rhs(self):
        matrix = sp.eye(4, format="csr") * 2.0
        rhs = np.eye(4)[:, :2]
        x = solve_sparse(matrix, rhs)
        np.testing.assert_allclose(x, rhs / 2.0)

    def test_empty_row_detected(self):
        matrix = sp.csr_matrix((3, 3))
        matrix[0, 0] = 1.0
        with pytest.raises(SingularSystemError):
            solve_sparse(matrix.tocsr(), np.ones(3))

    def test_singular_detected(self):
        matrix = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(SingularSystemError):
            solve_sparse(matrix, np.ones(2))

    def test_shape_validation(self):
        with pytest.raises(SingularSystemError):
            solve_sparse(sp.eye(3).tocsr(), np.ones(4))
        with pytest.raises(SingularSystemError):
            solve_sparse(sp.csr_matrix((2, 3)), np.ones(2))


class TestDampedNewton:
    def test_linear_system_one_step(self):
        matrix = np.diag([2.0, 4.0])

        def rj(x):
            return matrix @ x - np.array([2.0, 8.0]), sp.csr_matrix(matrix)

        x, iters = damped_newton(rj, np.zeros(2))
        np.testing.assert_allclose(x, [1.0, 2.0], rtol=1e-10)
        assert iters <= 2

    def test_scalar_nonlinear(self):
        def rj(x):
            r = np.array([x[0] ** 3 - 8.0])
            j = sp.csr_matrix(np.array([[3.0 * x[0] ** 2]]))
            return r, j

        x, _ = damped_newton(rj, np.array([5.0]))
        assert x[0] == pytest.approx(2.0, rel=1e-8)

    def test_exponential_needs_damping(self):
        """exp-type residual (like nonlinear Poisson) from a bad guess."""
        def rj(x):
            r = np.array([np.exp(x[0]) - np.exp(2.0)])
            j = sp.csr_matrix(np.array([[np.exp(x[0])]]))
            return r, j

        options = NewtonOptions(max_iterations=100, max_step=1.0)
        x, _ = damped_newton(rj, np.array([-20.0]), options)
        assert x[0] == pytest.approx(2.0, rel=1e-7)

    def test_iteration_cap(self):
        def rj(x):
            # Gradient points the wrong way: never converges.
            return np.array([1.0]), sp.csr_matrix(np.array([[1e-30]]))

        with pytest.raises(ConvergenceError):
            damped_newton(rj, np.zeros(1),
                          NewtonOptions(max_iterations=3, max_step=0.5))

    def test_empty_problem(self):
        x, iters = damped_newton(lambda x: (np.zeros(0),
                                            sp.csr_matrix((0, 0))),
                                 np.zeros(0))
        assert x.size == 0
        assert iters == 0

    def test_2d_rosenbrock_gradient(self):
        """Find the stationary point of Rosenbrock via its gradient."""
        def rj(x):
            a, b = 1.0, 10.0
            r = np.array([
                -2 * (a - x[0]) - 4 * b * x[0] * (x[1] - x[0] ** 2),
                2 * b * (x[1] - x[0] ** 2),
            ])
            j = np.array([
                [2 - 4 * b * (x[1] - 3 * x[0] ** 2), -4 * b * x[0]],
                [-4 * b * x[0], 2 * b],
            ])
            return r, sp.csr_matrix(j)

        x, _ = damped_newton(rj, np.array([0.5, 0.5]),
                             NewtonOptions(max_iterations=200,
                                           max_step=0.5))
        np.testing.assert_allclose(x, [1.0, 1.0], rtol=1e-6)
