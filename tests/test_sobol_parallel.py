"""Tests for Sobol variance decomposition and parallel drivers."""


import numpy as np
import pytest

from repro.errors import StochasticError
from repro.stochastic import HermiteBasis, QuadraticPCE, run_sscm
from repro.stochastic.sobol import (
    group_indices,
    group_indices_from_reduced_space,
    main_effect_indices,
    total_effect_indices,
)


def _pce_for(f, d):
    return run_sscm(f, d).pce


class TestSobolIndices:
    def test_additive_function(self):
        """f = 2 z0 + z1 -> main effects 4/5 and 1/5, no interactions."""
        pce = _pce_for(lambda z: np.array([2 * z[0] + z[1]]), 2)
        main = main_effect_indices(pce)
        np.testing.assert_allclose(main[:, 0], [0.8, 0.2], atol=1e-10)
        total = total_effect_indices(pce)
        np.testing.assert_allclose(total, main, atol=1e-10)

    def test_pure_interaction(self):
        """f = z0 z1 -> zero main effects, unit total effects."""
        pce = _pce_for(lambda z: np.array([z[0] * z[1]]), 2)
        main = main_effect_indices(pce)
        np.testing.assert_allclose(main[:, 0], [0.0, 0.0], atol=1e-10)
        total = total_effect_indices(pce)
        np.testing.assert_allclose(total[:, 0], [1.0, 1.0], atol=1e-10)

    def test_quadratic_term_counts_as_main(self):
        pce = _pce_for(lambda z: np.array([z[0] ** 2]), 2)
        main = main_effect_indices(pce)
        assert main[0, 0] == pytest.approx(1.0)
        assert main[1, 0] == pytest.approx(0.0, abs=1e-12)

    def test_main_effects_sum_below_one(self):
        pce = _pce_for(
            lambda z: np.array([z[0] + z[1] + 0.5 * z[0] * z[1]]), 2)
        main = main_effect_indices(pce)
        assert main[:, 0].sum() < 1.0

    def test_group_indices_partition(self):
        pce = _pce_for(
            lambda z: np.array([z[0] + 2 * z[1] + z[2] * z[3]]), 4)
        groups = group_indices(pce, {"a": [0, 1], "b": [2, 3]})
        total = groups["a"] + groups["b"] + groups["__interaction__"]
        np.testing.assert_allclose(total, 1.0, atol=1e-10)
        assert groups["a"][0] == pytest.approx(5.0 / 6.0, abs=1e-9)
        assert groups["b"][0] == pytest.approx(1.0 / 6.0, abs=1e-9)
        assert groups["__interaction__"][0] == pytest.approx(0.0,
                                                             abs=1e-10)

    def test_cross_group_interaction_detected(self):
        pce = _pce_for(lambda z: np.array([z[0] * z[1]]), 2)
        groups = group_indices(pce, {"a": [0], "b": [1]})
        assert groups["__interaction__"][0] == pytest.approx(1.0)

    def test_group_validation(self):
        pce = _pce_for(lambda z: np.array([z[0]]), 2)
        with pytest.raises(StochasticError):
            group_indices(pce, {"a": [0], "b": [0]})  # overlap
        with pytest.raises(StochasticError):
            group_indices(pce, {"a": []})
        with pytest.raises(StochasticError):
            group_indices(pce, {"a": [5]})

    def test_zero_variance_output_safe(self):
        basis = HermiteBasis(2)
        coefficients = np.zeros((basis.size, 1))
        coefficients[0, 0] = 3.0  # constant function
        pce = QuadraticPCE(basis, coefficients)
        main = main_effect_indices(pce)
        np.testing.assert_allclose(main, 0.0)


class TestSobolOnPipeline:
    def test_group_split_of_table1(self):
        """The per-source variance budget of a (tiny) Table I run."""
        from repro.analysis import run_sscm_analysis
        from repro.experiments import Table1Config, table1_problem
        from repro.geometry import MetalPlugDesign
        from repro.units import um

        problem = table1_problem("both", Table1Config(
            design=MetalPlugDesign(max_step=um(2.0)), rdf_nodes=8))
        result = run_sscm_analysis(
            problem, energy=0.9,
            max_variables_by_group={"plug1_interface": 2,
                                    "plug2_interface": 2, "doping": 2})
        shares = group_indices_from_reduced_space(
            result.sscm.pce, result.reduced_space)
        assert set(shares) == {"plug1_interface", "plug2_interface",
                               "doping", "__interaction__"}
        total = sum(v[0] for v in shares.values())
        assert total == pytest.approx(1.0, abs=1e-8)
        for value in shares.values():
            assert value[0] >= -1e-12


def _builder():
    from repro.experiments import Table1Config, table1_problem
    from repro.geometry import MetalPlugDesign
    from repro.units import um

    return table1_problem("doping", Table1Config(
        design=MetalPlugDesign(max_step=um(2.0)), rdf_nodes=8))


class TestParallelDrivers:
    def test_parallel_mc_matches_serial_statistics(self):
        from repro.analysis import run_mc_analysis
        from repro.analysis.parallel import run_mc_parallel

        problem = _builder()
        serial = run_mc_analysis(problem, num_runs=24, seed=3)
        parallel = run_mc_parallel(_builder, num_runs=24, seed=3,
                                   num_workers=2,
                                   output_names=["J"])
        assert parallel.num_runs == 24
        # Different sample streams, same distribution: agree loosely.
        assert parallel.mean[0] == pytest.approx(serial.mean[0],
                                                 rel=0.01)

    def test_parallel_sscm_matches_serial(self):
        from repro.analysis import nominal_weights
        from repro.analysis.parallel import run_sscm_parallel
        from repro.stochastic.reduction import reduce_groups
        from repro.stochastic import run_sscm as serial_sscm

        problem = _builder()
        weights = nominal_weights(problem)
        space = reduce_groups(problem.groups, method="wpfa",
                              weights_by_group=weights, energy=1.0,
                              max_variables_by_group={"doping": 2})
        parallel = run_sscm_parallel(_builder, space, num_workers=2,
                                     output_names=["J"])

        def solve_fn(zeta):
            return problem.evaluate_sample(space.split(zeta))

        serial = serial_sscm(solve_fn, space.dim, output_names=["J"])
        assert parallel.num_runs == serial.num_runs
        np.testing.assert_allclose(parallel.mean, serial.mean,
                                   rtol=1e-9)
        np.testing.assert_allclose(parallel.std, serial.std, rtol=1e-9)

    def test_parallel_mc_validation(self):
        from repro.analysis.parallel import run_mc_parallel

        with pytest.raises(StochasticError):
            run_mc_parallel(_builder, num_runs=1)
