"""Tests for the Ampere (vector-potential) pass and full-wave mode."""

import numpy as np
import pytest

from repro.solver import AVSolver
from repro.solver.ampere import AmpereSystem
from repro.extraction import port_current


@pytest.fixture(scope="module")
def plug_solver(coarse_plug_structure):
    return AVSolver(coarse_plug_structure, frequency=1.0e9)


class TestAmpereSystem:
    def test_curl_curl_annihilates_gradients(self, plug_solver):
        """Gradient fields are (numerically) in the curl-curl nullspace."""
        ampere = AmpereSystem(plug_solver.structure,
                              plug_solver.nominal_geometry)
        rng = np.random.default_rng(0)
        phi = rng.standard_normal(plug_solver.structure.grid.num_nodes)
        from repro.em import gradient_matrix

        grad = gradient_matrix(plug_solver.links) @ phi
        out = ampere.curl_curl @ grad
        scale = abs(ampere.curl_curl).max() * np.abs(grad).max()
        assert np.abs(out).max() < 1e-10 * scale

    def test_solenoidal_projection_removes_divergence(self, plug_solver):
        ampere = AmpereSystem(plug_solver.structure,
                              plug_solver.nominal_geometry)
        rng = np.random.default_rng(1)
        current = (rng.standard_normal(plug_solver.links.num_links)
                   + 1j * rng.standard_normal(plug_solver.links.num_links))
        projected = ampere.solenoidal_projection(current)
        divergence = ampere.div @ projected
        assert np.abs(divergence).max() < 1e-10 * np.abs(current).max()

    def test_vector_potential_finite(self, plug_solver):
        ampere = AmpereSystem(plug_solver.structure,
                              plug_solver.nominal_geometry)
        solution = plug_solver.solve({"plug1": 1.0, "plug2": 0.0})
        current = solution.link_total_current()
        a = ampere.solve_vector_potential(current)
        assert np.all(np.isfinite(a))
        assert np.abs(a).max() > 0.0


class TestFullWaveMode:
    def test_correction_negligible_at_1ghz(self, coarse_plug_structure):
        """The induction EMF at 1 GHz on a micrometre structure changes
        the port current by far less than a percent — the physical
        justification for the quasi-static default."""
        qs = AVSolver(coarse_plug_structure, frequency=1.0e9)
        fw = AVSolver(coarse_plug_structure, frequency=1.0e9,
                      full_wave=True)
        excitation = {"plug1": 1.0, "plug2": 0.0}
        i_qs = port_current(qs.solve(excitation), "plug1")
        sol_fw = fw.solve(excitation)
        i_fw = port_current(sol_fw, "plug1")
        assert sol_fw.vector_potential is not None
        assert abs(i_fw - i_qs) < 1e-3 * abs(i_qs)

    def test_correction_grows_with_frequency(self, coarse_plug_structure):
        excitation = {"plug1": 1.0, "plug2": 0.0}
        rel = []
        for freq in (1.0e9, 5.0e10):
            qs = AVSolver(coarse_plug_structure, frequency=freq)
            fw = AVSolver(coarse_plug_structure, frequency=freq,
                          full_wave=True)
            i_qs = port_current(qs.solve(excitation), "plug1")
            i_fw = port_current(fw.solve(excitation), "plug1")
            rel.append(abs(i_fw - i_qs) / abs(i_qs))
        assert rel[1] > rel[0]

    def test_kcl_still_holds_with_fullwave(self, coarse_plug_structure):
        fw = AVSolver(coarse_plug_structure, frequency=1.0e9,
                      full_wave=True)
        sol = fw.solve({"plug1": 1.0, "plug2": 0.0})
        i1 = port_current(sol, "plug1")
        i2 = port_current(sol, "plug2")
        assert abs(i1 + i2) < 1e-8 * abs(i1)
