"""Tests of the repro.daemon subsystem.

The daemon's three contracts, each exercised where it can actually
break:

* **single-flight** — K concurrent misses on one spec cost one solve
  campaign, both in-process (the daemon's keyed-future table) and
  cross-process (the advisory build lock under ``ensure_surrogate``);
* **the index is a cache** — indexed listings are identical to the
  sidecar scan, survive deletion of the sqlite file, and track
  out-of-band sidecar edits/deletions (disk wins, always);
* **GC is live-safe** — strictly LRU, the MRU entry is immortal,
  entries being built or hit since planning are skipped, and the
  store passes its own corruption checks afterwards;
* **observability is truthful** — ``/metrics`` speaks valid
  Prometheus exposition and agrees with ``/stats``, per-instance
  registries never cross-talk between embedded daemons, and the
  structured access log records what the handlers actually served.
"""

import json
import multiprocessing
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.daemon import (
    INDEX_DB_NAME,
    IndexedSurrogateStore,
    ReproDaemon,
    SingleFlight,
    open_indexed_store,
    plan_gc,
    release_lock,
    run_gc,
    try_build_lock,
)
from repro.daemon.index import StoreIndex
from repro.errors import ServingError
from repro.experiments import table1_spec
from repro.serving import (
    ProblemSpec,
    SurrogateRecord,
    SurrogateStore,
    ensure_surrogate,
)
from repro.stochastic.hermite import HermiteBasis
from repro.stochastic.pce import QuadraticPCE

TINY_PARAMS = {"max_step_um": 2.0, "rdf_nodes": 6}
TINY_REDUCTION = {"caps": {"doping": 1}, "energy": 0.9}


def tiny_spec() -> ProblemSpec:
    return table1_spec("doping", reduction=dict(TINY_REDUCTION),
                       **TINY_PARAMS)


def fabricated_record(preset="table2", refinement=None, **params):
    """A cheap but fully valid store record (1-D surrogate payload)."""
    basis = HermiteBasis(1, order=2)
    pce = QuadraticPCE(basis, np.zeros((basis.size, 1)),
                       output_names=["q"])
    spec = ProblemSpec(preset=preset, params=params,
                       reduction={"adaptive": {"tol": 1e-3}}
                       if refinement is not None else {})
    return SurrogateRecord(pce=pce, spec=spec, refinement=refinement)


REFINEMENT = {
    "accepted": [[0], [1]],
    "accepted_indicators": [[[0], 1.0], [[1], 0.5]],
    "trace": [],
    "error_estimate": 1e-5,
    "termination": "tol",
}


# ----------------------------------------------------------------------
# Single-flight: in-process


class TestSingleFlight:
    def test_concurrent_calls_coalesce_to_one_execution(self):
        flights = SingleFlight()
        calls = []
        gate = threading.Event()

        def build():
            calls.append(1)
            gate.wait(timeout=5.0)
            return "payload"

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(
                flights.do("key", build)))
            for _ in range(8)]
        for thread in threads:
            thread.start()
        # Let every follower reach the flight table, then open the gate.
        while flights.in_flight() == 0:
            pass
        gate.set()
        for thread in threads:
            thread.join(timeout=10.0)

        assert len(calls) == 1
        assert len(results) == 8
        assert all(value == "payload" for value, _ in results)
        assert sum(1 for _, leader in results if leader) == 1
        assert flights.in_flight() == 0

    def test_sequential_calls_each_execute(self):
        flights = SingleFlight()
        calls = []
        for _ in range(3):
            value, leader = flights.do("key", lambda: calls.append(1))
            assert leader
        assert len(calls) == 3

    def test_leader_error_propagates_to_all_waiters(self):
        flights = SingleFlight()
        gate = threading.Event()

        def explode():
            gate.wait(timeout=5.0)
            raise ServingError("boom")

        failures = []

        def call():
            try:
                flights.do("key", explode)
            except ServingError as exc:
                failures.append(str(exc))

        threads = [threading.Thread(target=call) for _ in range(4)]
        for thread in threads:
            thread.start()
        while flights.in_flight() == 0:
            pass
        gate.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert failures == ["boom"] * 4
        # A failed flight is cleared: the next call runs afresh.
        value, leader = flights.do("key", lambda: "recovered")
        assert (value, leader) == ("recovered", True)

    def test_distinct_keys_do_not_coalesce(self):
        flights = SingleFlight()
        calls = []
        flights.do("a", lambda: calls.append("a"))
        flights.do("b", lambda: calls.append("b"))
        assert calls == ["a", "b"]


# ----------------------------------------------------------------------
# Single-flight: cross-process (the advisory build lock)


def _race_build(store_path, spec_dict, barrier, queue):
    """Module-level worker: build the spec, report what happened."""
    spec = ProblemSpec.from_dict(spec_dict)
    store = SurrogateStore(store_path)
    barrier.wait(timeout=30.0)
    report = ensure_surrogate(spec, store)
    queue.put((report.built, report.num_solves))


class TestCrossProcessBuildLock:
    def test_two_processes_racing_one_spec_build_once(self, tmp_path):
        spec = tiny_spec()
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        workers = [
            ctx.Process(target=_race_build,
                        args=(str(tmp_path / "store"), spec.to_dict(),
                              barrier, queue))
            for _ in range(2)]
        for worker in workers:
            worker.start()
        reports = [queue.get(timeout=120.0) for _ in workers]
        for worker in workers:
            worker.join(timeout=30.0)

        built_flags = sorted(built for built, _ in reports)
        assert built_flags == [False, True]
        # The loser found the winner's entry: a hit, zero solves.
        assert all(solves == 0 for built, solves in reports
                   if not built)
        store = SurrogateStore(tmp_path / "store")
        assert store.keys() == [spec.cache_key()]

    def test_try_build_lock_sees_a_held_lock(self, tmp_path):
        held = try_build_lock(tmp_path, "k" * 64)
        assert held is not None
        # flock state belongs to the open file description, so a
        # second descriptor contends even within one process.
        assert try_build_lock(tmp_path, "k" * 64) is None
        release_lock(held)
        again = try_build_lock(tmp_path, "k" * 64)
        assert again is not None
        release_lock(again)


# ----------------------------------------------------------------------
# The sqlite index


class TestStoreIndex:
    def _populated(self, tmp_path, count=4):
        store = IndexedSurrogateStore(tmp_path / "store")
        for i in range(count):
            key = store.save(fabricated_record(margin_um=1.0 + i))
            store.touch(key, when=1.0e9 + i)
        return store

    def test_indexed_inventory_identical_to_scan(self, tmp_path):
        store = self._populated(tmp_path)
        scan = SurrogateStore(store.root).inventory()
        assert store.inventory() == scan
        assert len(scan) == 4

    def test_deleting_the_index_file_self_heals(self, tmp_path):
        store = self._populated(tmp_path)
        before = store.inventory()
        (store.root / INDEX_DB_NAME).unlink()
        # Same handle: the next read recreates schema and rows.
        assert store.inventory() == before
        # Fresh handle (daemon restart): same story.
        reopened = IndexedSurrogateStore(store.root)
        assert reopened.inventory() == before
        assert (store.root / INDEX_DB_NAME).exists()

    def test_corrupted_index_file_self_heals(self, tmp_path):
        store = self._populated(tmp_path)
        before = store.inventory()
        for suffix in ("", "-wal", "-shm"):
            path = Path(f"{store.root / INDEX_DB_NAME}{suffix}")
            if path.exists():
                path.write_bytes(b"not a database")
        reopened = IndexedSurrogateStore(store.root)
        assert reopened.inventory() == before

    def test_manual_sidecar_deletion_is_tracked(self, tmp_path):
        store = self._populated(tmp_path)
        victim = store.inventory()[-1]["key"]
        (store.root / f"{victim}.json").unlink()
        (store.root / f"{victim}.npz").unlink()
        keys = [row["key"] for row in store.inventory()]
        assert victim not in keys and len(keys) == 3

    def test_out_of_band_sidecar_edit_is_reread(self, tmp_path):
        store = self._populated(tmp_path)
        victim = store.inventory()[-1]["key"]
        sidecar_path = store.root / f"{victim}.json"
        sidecar_path.write_text(
            sidecar_path.read_text().replace('"margin_um"', '"x"'))
        rows = {row["key"]: row for row in store.inventory()}
        assert "damaged" in rows[victim]
        # The plain scan agrees entry-for-entry on damage.
        scanned = {row["key"]: row
                   for row in SurrogateStore(store.root).inventory()}
        assert ("damaged" in scanned[victim]) and len(scanned) == 4

    def test_indexed_warm_start_matches_scan(self, tmp_path):
        store = IndexedSurrogateStore(tmp_path / "store")
        for margin in (1.0, 2.5):
            store.save(fabricated_record(refinement=REFINEMENT,
                                         margin_um=margin))
        target = ProblemSpec(preset="table2",
                             params={"margin_um": 2.4},
                             reduction={"adaptive": {"tol": 1e-3}})
        indexed = store.find_warm_start(target)
        scanned = SurrogateStore(store.root).find_warm_start(target)
        assert indexed is not None
        assert indexed[0] == scanned[0]
        assert indexed[1]["refinement"]["accepted"] \
            == scanned[1]["refinement"]["accepted"]

    def test_refresh_is_incremental(self, tmp_path):
        store = self._populated(tmp_path)
        index = StoreIndex(store.root)
        assert index.refresh(store) == 0  # nothing changed
        store.save(fabricated_record(margin_um=9.0))
        assert StoreIndex(store.root).count() == 5

    def test_open_indexed_store_degrades_gracefully(self, tmp_path):
        # Sqlite cannot open a directory as its database file; the
        # store must still open and serve every read from the scan.
        root = tmp_path / "store"
        root.mkdir()
        (root / INDEX_DB_NAME).mkdir()
        store = open_indexed_store(root)
        key = store.save(fabricated_record(margin_um=1.0))
        assert [row["key"] for row in store.inventory()] == [key]


# ----------------------------------------------------------------------
# GC


class TestPlanGc:
    def _rows(self, count=4):
        # Inventory ordering: newest use first.
        return [{"key": f"k{i}", "size_bytes": 100,
                 "last_used": 1.0e9 - i} for i in range(count)]

    def test_needs_a_cap(self):
        with pytest.raises(ServingError):
            plan_gc(self._rows())
        with pytest.raises(ServingError):
            plan_gc(self._rows(), max_entries=0)
        with pytest.raises(ServingError):
            plan_gc(self._rows(), max_bytes=-1)

    def test_max_entries_evicts_oldest_first(self):
        plan = plan_gc(self._rows(), max_entries=2)
        assert [row["key"] for row in plan.evict] == ["k3", "k2"]
        assert [row["key"] for row in plan.keep] == ["k0", "k1"]

    def test_max_bytes_is_best_effort_lru(self):
        plan = plan_gc(self._rows(), max_bytes=250)
        assert [row["key"] for row in plan.evict] == ["k3", "k2"]
        assert plan.keep_bytes == 200

    def test_mru_entry_is_immortal(self):
        plan = plan_gc(self._rows(), max_entries=1, max_bytes=0)
        assert [row["key"] for row in plan.keep] == ["k0"]
        assert len(plan.evict) == 3

    def test_damaged_rows_are_surfaced_not_reaped(self):
        rows = self._rows(3) + [{"key": "bad", "damaged": "torn",
                                 "size_bytes": 0, "last_used": 0.0}]
        plan = plan_gc(rows, max_entries=1)
        assert [row["key"] for row in plan.damaged] == ["bad"]
        assert all(row["key"] != "bad" for row in plan.evict)


class TestRunGc:
    def _populated(self, tmp_path, count=4):
        store = IndexedSurrogateStore(tmp_path / "store")
        keys = []
        for i in range(count):
            key = store.save(fabricated_record(margin_um=1.0 + i))
            store.touch(key, when=1.0e9 + i)
            keys.append(key)
        return store, keys  # keys[-1] is the MRU

    def test_evicts_to_cap_and_store_stays_healthy(self, tmp_path):
        store, keys = self._populated(tmp_path)
        report = run_gc(store, max_entries=2)
        assert sorted(report["evicted"]) == sorted(keys[:2])
        assert report["after"]["entries"] == 2
        survivors = store.keys()
        assert sorted(survivors) == sorted(keys[2:])
        for key in survivors:  # full checksum + schema validation
            assert store.get(key) is not None
        # The indexed listing tracked the deletions.
        assert len(store.inventory()) == 2

    def test_dry_run_touches_nothing(self, tmp_path):
        store, keys = self._populated(tmp_path)
        report = run_gc(store, max_entries=1, dry_run=True)
        assert len(report["evicted"]) == 3
        assert report["dry_run"] is True
        assert sorted(store.keys()) == sorted(keys)

    def test_entry_being_built_is_skipped(self, tmp_path):
        store, keys = self._populated(tmp_path)
        victim = keys[0]  # the LRU entry: first on the evict list
        held = try_build_lock(store.root, victim)
        try:
            report = run_gc(store, max_entries=2)
        finally:
            release_lock(held)
        assert victim in report["skipped_in_use"]
        assert victim in store.keys()

    def test_entry_hit_since_planning_is_skipped(self, tmp_path):
        store, keys = self._populated(tmp_path)
        stale_inventory = store.inventory()
        victim = keys[0]
        store.touch(victim, when=2.0e9)  # the "racing cache hit"
        store.inventory = lambda: stale_inventory
        report = run_gc(store, max_entries=2)
        assert victim in report["skipped_in_use"]
        assert victim in SurrogateStore(store.root).keys()

    def test_gc_against_live_daemon_store(self, tmp_path):
        store, keys = self._populated(tmp_path)
        daemon = ReproDaemon(store_path=store.root, port=0)
        daemon.start()
        try:
            report = run_gc(IndexedSurrogateStore(store.root),
                            max_entries=1)
            assert len(report["evicted"]) == 3
            host, port = daemon.address
            with urllib.request.urlopen(
                    f"http://{host}:{port}/store") as response:
                entries = json.load(response)["entries"]
            assert [row["key"] for row in entries] == [keys[-1]]
        finally:
            daemon.shutdown()


# ----------------------------------------------------------------------
# The HTTP daemon


def _get(url):
    with urllib.request.urlopen(url, timeout=30.0) as response:
        return response.status, json.load(response)


def _post(url, document):
    body = json.dumps(document).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=300.0) as response:
        return response.status, json.load(response)


@pytest.fixture()
def daemon(tmp_path):
    instance = ReproDaemon(store_path=tmp_path / "store", port=0)
    instance.start()
    host, port = instance.address
    yield instance, f"http://{host}:{port}"
    instance.shutdown()


class TestDaemonHTTP:
    def test_health_and_stats(self, daemon):
        _, url = daemon
        status, health = _get(url + "/health")
        assert status == 200 and health["status"] == "ok"
        assert health["entries"] == 0
        status, stats = _get(url + "/stats")
        assert status == 200
        assert stats["builds"] == 0 and stats["requests"] >= 1

    def test_unknown_route_is_404(self, daemon):
        _, url = daemon
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(url + "/nope")
        assert excinfo.value.code == 404

    def test_malformed_body_is_400(self, daemon):
        _, url = daemon
        request = urllib.request.Request(
            url + "/query", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30.0)
        assert excinfo.value.code == 400

    def test_concurrent_identical_queries_build_once(self, daemon):
        instance, url = daemon
        document = {"spec": tiny_spec().to_dict(),
                    "queries": [{"kind": "mean"}]}
        results = []

        def post():
            results.append(_post(url + "/query", document))

        threads = [threading.Thread(target=post) for _ in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)

        assert len(results) == 5
        for status, payload in results:
            assert status == 200
            (response,) = payload["responses"]
            assert "answers" in response and len(response["answers"]) == 1
        stats = instance.stats()
        assert stats["builds"] == 1
        assert stats["coalesced_builds"] + stats["hits"] == 4
        assert stats["errors"] == 0

    def test_read_only_daemon_runs_zero_solves(self, tmp_path):
        instance = ReproDaemon(store_path=tmp_path / "store", port=0,
                               build_missing=False)
        instance.start()
        host, port = instance.address
        try:
            status, payload = _post(
                f"http://{host}:{port}/query",
                {"spec": tiny_spec().to_dict(), "queries": []})
            assert status == 200
            assert "error" in payload["responses"][0]
            assert instance.stats()["builds"] == 0
        finally:
            instance.shutdown()
        assert SurrogateStore(tmp_path / "store").keys() == []

    def test_store_listing_reflects_builds(self, daemon):
        instance, url = daemon
        _post(url + "/query", {"spec": tiny_spec().to_dict(),
                               "queries": []})
        status, listing = _get(url + "/store")
        assert status == 200
        assert [row["key"] for row in listing["entries"]] \
            == [tiny_spec().cache_key()]

    def test_shutdown_endpoint_stops_the_server(self, tmp_path):
        instance = ReproDaemon(store_path=tmp_path / "store", port=0)
        instance.start()
        host, port = instance.address
        status, payload = _post(f"http://{host}:{port}/shutdown", {})
        assert status == 200
        assert payload["status"] == "shutting down"
        instance._thread.join(timeout=10.0)
        assert not instance._thread.is_alive()


# ----------------------------------------------------------------------
# Observability: /metrics, latency stats, access log


def _get_text(url):
    with urllib.request.urlopen(url, timeout=30.0) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


class TestDaemonObservability:
    def test_metrics_speaks_valid_prometheus(self, daemon):
        from repro.obs import parse_prometheus

        instance, url = daemon
        _post(url + "/query", {"spec": tiny_spec().to_dict(),
                               "queries": [{"kind": "mean"}]})
        _get(url + "/health")
        # Requests are counted after their response is sent; poll
        # until the scrape includes the /query we just made.
        for _ in range(100):
            status, content_type, text = _get_text(url + "/metrics")
            if 'endpoint="/query"' in text:
                break
            time.sleep(0.01)
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"

        parsed = parse_prometheus(text)  # validates the exposition
        assert parsed["repro_daemon_builds_total"]["type"] == "counter"
        stats = instance.stats()
        samples = parsed["repro_daemon_builds_total"]["samples"]
        assert samples[("repro_daemon_builds_total", ())] \
            == stats["builds"] == 1
        requests = parsed["repro_http_requests_total"]["samples"]
        by_endpoint = {dict(labels).get("endpoint"): value
                       for (_, labels), value in requests.items()}
        assert by_endpoint["/query"] >= 1
        assert by_endpoint["/health"] >= 1
        # Global library metrics are merged into the same scrape.
        assert parsed["repro_store_misses_total"]["type"] == "counter"
        assert parsed["repro_http_request_seconds"]["type"] \
            == "histogram"

    def test_metrics_endpoint_labels_are_bounded(self, daemon):
        from repro.obs import parse_prometheus

        _, url = daemon
        with pytest.raises(urllib.error.HTTPError):
            _get(url + "/made-up-route-1")
        with pytest.raises(urllib.error.HTTPError):
            _get(url + "/made-up-route-2")
        for _ in range(100):
            _, _, text = _get_text(url + "/metrics")
            if 'endpoint="other"' in text:
                break
            time.sleep(0.01)
        requests = parse_prometheus(text)[
            "repro_http_requests_total"]["samples"]
        endpoints = {dict(labels).get("endpoint")
                     for _, labels in requests}
        assert "other" in endpoints
        assert not any(e.startswith("/made-up") for e in endpoints)

    def test_stats_carries_per_endpoint_latency(self, daemon):
        _, url = daemon
        _get(url + "/health")
        for _ in range(100):
            status, stats = _get(url + "/stats")
            if "/health" in stats["latency"]:
                break
            time.sleep(0.01)
        assert status == 200
        health = stats["latency"]["/health"]
        assert health["count"] >= 1
        assert health["sum_s"] >= 0.0
        assert health["buckets"]["+Inf"] == health["count"]

    def test_embedded_daemons_do_not_share_counters(self, tmp_path):
        first = ReproDaemon(store_path=tmp_path / "a", port=0)
        second = ReproDaemon(store_path=tmp_path / "b", port=0)
        first.start()
        second.start()
        try:
            host, port = first.address
            _post(f"http://{host}:{port}/query",
                  {"spec": tiny_spec().to_dict(), "queries": []})
            assert first.stats()["builds"] == 1
            assert second.stats()["builds"] == 0
            assert second.stats()["requests"] == 0
        finally:
            first.shutdown()
            second.shutdown()

    def test_access_log_records_requests(self, tmp_path):
        from repro.obs import read_events

        log_path = tmp_path / "access.jsonl"
        instance = ReproDaemon(store_path=tmp_path / "store", port=0,
                               access_log=log_path, quiet=True)
        instance.start()
        host, port = instance.address
        try:
            _get(f"http://{host}:{port}/health")
            with pytest.raises(urllib.error.HTTPError):
                _get(f"http://{host}:{port}/nope")
            # Records are appended after each response is sent; wait
            # for both before shutting the log down.
            for _ in range(100):
                if log_path.exists() \
                        and len(read_events(log_path)) >= 2:
                    break
                time.sleep(0.01)
        finally:
            instance.shutdown()

        events = read_events(log_path)
        assert [e["event"] for e in events] == ["request"] * 2
        health, missing = events
        assert health["method"] == "GET"
        assert health["path"] == "/health"
        assert health["status"] == 200
        assert health["duration_s"] >= 0.0
        assert missing["status"] == 404
        assert missing["path"] == "/nope"

    def test_quiet_daemon_suppresses_request_lines(self, tmp_path,
                                                   caplog):
        import logging

        for quiet in (True, False):
            instance = ReproDaemon(store_path=tmp_path / f"s{quiet}",
                                   port=0, quiet=quiet)
            instance.start()
            host, port = instance.address
            try:
                with caplog.at_level(logging.INFO, logger="repro.daemon"):
                    caplog.clear()
                    _get(f"http://{host}:{port}/health")
                    # The handler logs after the response is sent;
                    # give its thread a moment before judging.
                    for _ in range(100):
                        lines = [record for record in caplog.records
                                 if record.name == "repro.daemon"
                                 and record.levelno == logging.INFO]
                        if lines:
                            break
                        time.sleep(0.01)
                assert bool(lines) == (not quiet)
            finally:
                instance.shutdown()
