"""Integration tests of the variational-analysis pipeline.

Scaled-down versions of the paper's experiments: tiny meshes, few
reduced variables, small Monte-Carlo runs — enough to pin the pipeline
behaviour (shapes, determinism, MC/SSCM agreement on the mean) while
staying fast.  The full-size comparisons live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.analysis import (
    ComparisonTable,
    nominal_weights,
    run_mc_analysis,
    run_sscm_analysis,
)
from repro.analysis.problem import VariationalProblem
from repro.analysis.qoi import (
    interface_current_magnitude,
)
from repro.errors import StochasticError
from repro.experiments import (
    Table1Config,
    Table2Config,
    table1_problem,
    table2_problem,
)
from repro.geometry import MetalPlugDesign, TsvDesign
from repro.units import um


@pytest.fixture(scope="module")
def tiny_table1():
    config = Table1Config(design=MetalPlugDesign(max_step=um(2.0)),
                          rdf_nodes=12)
    return table1_problem("both", config)


@pytest.fixture(scope="module")
def tiny_caps():
    return {"plug1_interface": 2, "plug2_interface": 2, "doping": 2}


class TestProblemConstruction:
    def test_variants(self):
        config = Table1Config(design=MetalPlugDesign(max_step=um(2.0)),
                              rdf_nodes=8)
        geo = table1_problem("geometry", config)
        dop = table1_problem("doping", config)
        both = table1_problem("both", config)
        assert len(geo.geometry_groups) == 2 and geo.doping_group is None
        assert not dop.geometry_groups and dop.doping_group is not None
        assert len(both.groups) == 3

    def test_bad_variant(self):
        with pytest.raises(StochasticError):
            table1_problem("everything")

    def test_table2_groups(self):
        config = Table2Config(design=TsvDesign(max_step=um(2.5),
                                               margin=um(2.5)),
                              rdf_nodes=16)
        problem = table2_problem(config)
        # 2 merged y-plane groups + 4 x-facet groups + doping.
        assert len(problem.geometry_groups) == 6
        merged = [g for g in problem.geometry_groups
                  if "+tsv" in g.name]
        assert len(merged) == 2
        for g in merged:
            assert g.size == 2 * min(gg.size
                                     for gg in problem.geometry_groups)

    def test_problem_without_groups_rejected(self, coarse_plug_structure):
        with pytest.raises(StochasticError):
            VariationalProblem(
                structure=coarse_plug_structure,
                frequency=1e9,
                excitations={"plug1": 1.0, "plug2": 0.0},
                qoi=interface_current_magnitude("plug1"),
                qoi_names=["J"],
            )


class TestSampleEvaluation:
    def test_zero_sample_equals_nominal(self, tiny_table1):
        zero = {g.name: np.zeros(g.size) for g in tiny_table1.groups}
        value = tiny_table1.evaluate_sample(zero)
        nominal = tiny_table1.qoi(tiny_table1.nominal_solution())
        assert value[0] == pytest.approx(nominal[0], rel=1e-9)

    def test_sample_changes_qoi(self, tiny_table1, rng):
        xi = {g.name: (0.3e-6 * rng.standard_normal(g.size)
                       if g.kind == "geometry"
                       else 0.1 * rng.standard_normal(g.size))
              for g in tiny_table1.groups}
        value = tiny_table1.evaluate_sample(xi)
        zero = {g.name: np.zeros(g.size) for g in tiny_table1.groups}
        nominal = tiny_table1.evaluate_sample(zero)
        assert value[0] != pytest.approx(nominal[0], rel=1e-12)

    def test_wrong_xi_shape_rejected(self, tiny_table1):
        xi = {g.name: np.zeros(g.size + 1) for g in tiny_table1.groups}
        with pytest.raises(StochasticError):
            tiny_table1.evaluate_sample(xi)

    def test_naive_model_used_when_requested(self):
        config = Table1Config(design=MetalPlugDesign(max_step=um(2.0)),
                              rdf_nodes=8, surface_model="naive")
        problem = table1_problem("geometry", config)
        assert problem.surface_model == "naive"
        # Small samples still solve fine under the naive model.
        xi = {g.name: np.full(g.size, 0.1e-6)
              for g in problem.geometry_groups}
        value = problem.evaluate_sample(xi)
        assert np.isfinite(value[0])


class TestWeights:
    def test_weights_for_every_group(self, tiny_table1):
        weights = nominal_weights(tiny_table1)
        assert set(weights) == {g.name for g in tiny_table1.groups}
        for g in tiny_table1.groups:
            w = weights[g.name]
            assert w.shape == (g.size,)
            assert np.all(w >= 0.0)
            assert w.max() > 0.0

    def test_interface_weights_peak_under_plugs(self, tiny_table1):
        """The nominal solution concentrates flux near the driven plug's
        interface, so interface weights are not uniform."""
        weights = nominal_weights(tiny_table1)
        w = weights["plug1_interface"]
        assert w.max() > 2.0 * w.min()


class TestPipelines:
    def test_sscm_runs_and_is_deterministic(self, tiny_table1, tiny_caps):
        res1 = run_sscm_analysis(tiny_table1, energy=0.9,
                                 max_variables_by_group=tiny_caps)
        res2 = run_sscm_analysis(tiny_table1, energy=0.9,
                                 max_variables_by_group=tiny_caps)
        assert res1.dim == res2.dim <= 6
        np.testing.assert_allclose(res1.mean, res2.mean, rtol=1e-12)
        np.testing.assert_allclose(res1.std, res2.std, rtol=1e-12)
        assert res1.num_runs == res1.sscm.grid.num_points

    def test_mc_seed_reproducible(self, tiny_table1):
        a = run_mc_analysis(tiny_table1, num_runs=4, seed=5)
        b = run_mc_analysis(tiny_table1, num_runs=4, seed=5)
        np.testing.assert_allclose(a.mean, b.mean)

    def test_mc_and_sscm_agree_on_mean(self, tiny_table1, tiny_caps):
        """The headline agreement (Table I): SSCM mean tracks MC."""
        sscm = run_sscm_analysis(tiny_table1, energy=0.9,
                                 max_variables_by_group=tiny_caps)
        mc = run_mc_analysis(tiny_table1, num_runs=40, seed=2)
        table = ComparisonTable.from_results(mc, sscm)
        assert table.mean_errors()[0] < 0.02

    def test_comparison_table_renders(self, tiny_table1, tiny_caps):
        sscm = run_sscm_analysis(tiny_table1, energy=0.9,
                                 max_variables_by_group=tiny_caps)
        mc = run_mc_analysis(tiny_table1, num_runs=5, seed=1)
        table = ComparisonTable.from_results(mc, sscm,
                                             unit_scale=1e-6,
                                             unit_label="uA")
        text = table.render("Table I")
        assert "J_interface" in text
        assert "speedup" in text

    def test_pfa_fallback_without_weights(self, tiny_table1, tiny_caps):
        res = run_sscm_analysis(tiny_table1, method="pfa", energy=0.9,
                                max_variables_by_group=tiny_caps)
        assert np.isfinite(res.mean[0])


class TestTable2Pipeline:
    def test_capacitance_qoi_vector(self):
        config = Table2Config(design=TsvDesign(max_step=um(2.5),
                                               margin=um(2.5)),
                              rdf_nodes=12)
        problem = table2_problem(config)
        zero = {g.name: np.zeros(g.size) for g in problem.groups}
        values = problem.evaluate_sample(zero)
        assert values.shape == (6,)
        assert values[0] > 0.0          # C_T1 positive
        assert np.all(values[1:] < 0.0)  # couplings negative
        # Far-wire coupling smallest in magnitude.
        assert abs(values[3]) < 0.2 * abs(values[2])
