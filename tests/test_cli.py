"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_info_metalplug(self, capsys):
        assert main(["info", "metalplug"]) == 0
        out = capsys.readouterr().out
        assert "contacts=['plug1', 'plug2']" in out

    def test_info_tsv(self, capsys):
        assert main(["info", "tsv"]) == 0
        out = capsys.readouterr().out
        assert "tsv1" in out

    def test_solve_metalplug(self, capsys):
        assert main(["solve", "metalplug"]) == 0
        out = capsys.readouterr().out
        assert "I(plug1) [uA]" in out

    def test_solve_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["solve", "nothing"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_info_json(self, capsys):
        assert main(["info", "metalplug", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["contacts"] == ["plug1", "plug2"]
        assert payload["num_nodes"] > 0

    def test_solve_json(self, capsys):
        assert main(["solve", "metalplug", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["driven_contact"] == "plug1"
        assert payload["current_uA"]["plug1"] > 0.0

    def test_structures(self, capsys):
        assert main(["structures"]) == 0
        out = capsys.readouterr().out
        assert "metalplug" in out and "tsv" in out
        assert "table1" in out and "table2" in out

    def test_structures_json(self, capsys):
        assert main(["structures", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["structures"]["tsv"][0] == "tsv1"
        names = [p["name"] for p in payload["presets"]]
        assert names == ["table1", "table2"]

    def test_static_contact_lists_match_builders(self):
        from repro.__main__ import STRUCTURE_CONTACTS, STRUCTURES
        assert set(STRUCTURE_CONTACTS) == set(STRUCTURES)
        for name, build in STRUCTURES.items():
            assert sorted(STRUCTURE_CONTACTS[name]) \
                == sorted(build().contacts)


class TestServingCli:
    REQUEST = {
        "requests": [{
            "spec": {
                "preset": "table1",
                "params": {"variant": "doping", "max_step_um": 2.0,
                           "rdf_nodes": 6},
                "reduction": {"caps": {"doping": 1}, "energy": 0.9},
            },
            "queries": [{"kind": "mean"},
                        {"kind": "quantiles", "q": [0.5],
                         "num_samples": 2000}],
        }],
    }

    @pytest.fixture()
    def request_file(self, tmp_path):
        path = tmp_path / "request.json"
        path.write_text(json.dumps(self.REQUEST))
        return str(path)

    def test_build_then_query(self, request_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["build", request_file, "--store", store]) == 0
        build = json.loads(capsys.readouterr().out)
        assert build["builds"][0]["built"] is True
        assert build["builds"][0]["num_solves"] > 0

        assert main(["query", request_file, "--store", store,
                     "--no-build"]) == 0
        result = json.loads(capsys.readouterr().out)
        response = result["responses"][0]
        assert response["built"] is False
        assert response["num_solves"] == 0
        assert response["cache_key"] == build["builds"][0]["cache_key"]
        kinds = [a["kind"] for a in response["answers"]]
        assert kinds == ["mean", "quantiles"]

    def test_query_builds_on_miss(self, request_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["query", request_file, "--store", store]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["responses"][0]["built"] is True

    def test_query_no_build_miss_fails(self, request_file, tmp_path,
                                       capsys):
        store = str(tmp_path / "store")
        assert main(["query", request_file, "--store", store,
                     "--no-build"]) == 1
        result = json.loads(capsys.readouterr().out)
        assert "error" in result["responses"][0]

    def test_bad_request_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["query", str(path), "--store",
                     str(tmp_path / "store")]) == 2
        assert "error" in capsys.readouterr().err
