"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_info_metalplug(self, capsys):
        assert main(["info", "metalplug"]) == 0
        out = capsys.readouterr().out
        assert "contacts=['plug1', 'plug2']" in out

    def test_info_tsv(self, capsys):
        assert main(["info", "tsv"]) == 0
        out = capsys.readouterr().out
        assert "tsv1" in out

    def test_solve_metalplug(self, capsys):
        assert main(["solve", "metalplug"]) == 0
        out = capsys.readouterr().out
        assert "I(plug1) [uA]" in out

    def test_solve_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["solve", "nothing"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_info_json(self, capsys):
        assert main(["info", "metalplug", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["contacts"] == ["plug1", "plug2"]
        assert payload["num_nodes"] > 0

    def test_solve_json(self, capsys):
        assert main(["solve", "metalplug", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["driven_contact"] == "plug1"
        assert payload["current_uA"]["plug1"] > 0.0

    def test_structures(self, capsys):
        assert main(["structures"]) == 0
        out = capsys.readouterr().out
        assert "metalplug" in out and "tsv" in out
        assert "table1" in out and "table2" in out

    def test_structures_json(self, capsys):
        assert main(["structures", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["structures"]["tsv"][0] == "tsv1"
        names = [p["name"] for p in payload["presets"]]
        assert names == ["table1", "table2"]

    def test_static_contact_lists_match_builders(self):
        from repro.__main__ import STRUCTURE_CONTACTS, STRUCTURES
        assert set(STRUCTURE_CONTACTS) == set(STRUCTURES)
        for name, build in STRUCTURES.items():
            assert sorted(STRUCTURE_CONTACTS[name]) \
                == sorted(build().contacts)


class TestServingCli:
    REQUEST = {
        "requests": [{
            "spec": {
                "preset": "table1",
                "params": {"variant": "doping", "max_step_um": 2.0,
                           "rdf_nodes": 6},
                "reduction": {"caps": {"doping": 1}, "energy": 0.9},
            },
            "queries": [{"kind": "mean"},
                        {"kind": "quantiles", "q": [0.5],
                         "num_samples": 2000}],
        }],
    }

    @pytest.fixture()
    def request_file(self, tmp_path):
        path = tmp_path / "request.json"
        path.write_text(json.dumps(self.REQUEST))
        return str(path)

    def test_build_then_query(self, request_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["build", request_file, "--store", store]) == 0
        build = json.loads(capsys.readouterr().out)
        assert build["builds"][0]["built"] is True
        assert build["builds"][0]["num_solves"] > 0

        assert main(["query", request_file, "--store", store,
                     "--no-build"]) == 0
        result = json.loads(capsys.readouterr().out)
        response = result["responses"][0]
        assert response["built"] is False
        assert response["num_solves"] == 0
        assert response["cache_key"] == build["builds"][0]["cache_key"]
        kinds = [a["kind"] for a in response["answers"]]
        assert kinds == ["mean", "quantiles"]

    def test_build_reports_timings(self, request_file, tmp_path,
                                   capsys):
        store = str(tmp_path / "store")
        assert main(["build", request_file, "--store", store]) == 0
        timings = json.loads(capsys.readouterr().out)["builds"][0][
            "timings"]
        assert set(timings) == {"total_s", "solve_s", "fit_s",
                                "store_write_s"}
        assert timings["total_s"] > timings["solve_s"] > 0.0

    def test_build_profile_writes_chrome_trace(self, request_file,
                                               tmp_path, capsys):
        store = str(tmp_path / "store")
        trace = tmp_path / "trace.json"
        assert main(["build", request_file, "--store", store,
                     "--profile", str(trace)]) == 0
        build = json.loads(capsys.readouterr().out)
        assert build["profile"] == str(trace)
        assert build["builds"][0]["built"] is True

        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        assert all(event["ph"] == "X" for event in events)
        names = {event["name"] for event in events}
        assert {"build", "build_problem", "collocation", "fit",
                "factorize", "store_write"} <= names
        # Every non-root span links to a parent inside the document.
        ids = {event["args"]["span_id"] for event in events}
        for event in events:
            parent = event["args"].get("parent_id")
            assert parent is None or parent in ids

    def test_build_profile_does_not_change_the_key(self, request_file,
                                                   tmp_path, capsys):
        plain = str(tmp_path / "plain")
        profiled = str(tmp_path / "profiled")
        assert main(["build", request_file, "--store", plain]) == 0
        baseline = json.loads(capsys.readouterr().out)
        assert main(["build", request_file, "--store", profiled,
                     "--profile", str(tmp_path / "t.json")]) == 0
        traced = json.loads(capsys.readouterr().out)
        assert traced["builds"][0]["cache_key"] \
            == baseline["builds"][0]["cache_key"]

    def test_query_builds_on_miss(self, request_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["query", request_file, "--store", store]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["responses"][0]["built"] is True

    def test_query_no_build_miss_fails(self, request_file, tmp_path,
                                       capsys):
        store = str(tmp_path / "store")
        assert main(["query", request_file, "--store", store,
                     "--no-build"]) == 1
        result = json.loads(capsys.readouterr().out)
        assert "error" in result["responses"][0]

    def test_bad_request_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["query", str(path), "--store",
                     str(tmp_path / "store")]) == 2
        assert "error" in capsys.readouterr().err


class TestStoreLsCli:
    REQUEST = TestServingCli.REQUEST

    def _populate(self, tmp_path, capsys):
        path = tmp_path / "request.json"
        path.write_text(json.dumps(self.REQUEST))
        store = str(tmp_path / "store")
        assert main(["build", str(path), "--store", store]) == 0
        capsys.readouterr()
        return store

    def test_ls_empty_store(self, tmp_path, capsys):
        assert main(["store", "ls", "--store",
                     str(tmp_path / "store")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_ls_lists_entries(self, tmp_path, capsys):
        store = self._populate(tmp_path, capsys)
        assert main(["store", "ls", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert "table1" in out
        assert "level-2" in out
        assert "basis=total-degree:2" in out

    def test_ls_json(self, tmp_path, capsys):
        store = self._populate(tmp_path, capsys)
        assert main(["store", "ls", "--store", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["store"] == store
        entry = payload["entries"][0]
        assert entry["preset"] == "table1"
        assert entry["reduction"] == "level-2"
        assert entry["basis"]["kind"] == "total-degree"
        assert entry["size_bytes"] > 0
        assert entry["num_runs"] > 0
        assert entry["last_used"] >= entry["created_at"]

    def test_hits_refresh_last_used(self, tmp_path, capsys):
        store = self._populate(tmp_path, capsys)
        path = tmp_path / "request.json"

        def last_used():
            assert main(["store", "ls", "--store", store,
                         "--json"]) == 0
            return json.loads(
                capsys.readouterr().out)["entries"][0]["last_used"]

        # Rewind the stamp to the epoch, then serve a cache hit: the
        # hit must move it strictly forward (a vacuous >= would pass
        # even with the refresh deleted).
        from repro.serving import SurrogateStore
        live = SurrogateStore(store)
        live.touch(live.keys()[0], when=1.0)
        assert last_used() == 1.0
        assert main(["query", str(path), "--store", store]) == 0
        capsys.readouterr()
        assert last_used() > 1.0

    def test_ls_marks_damaged_entries(self, tmp_path, capsys):
        store = self._populate(tmp_path, capsys)
        from pathlib import Path
        sidecar = next(Path(store).glob("*.json"))
        sidecar.write_text(sidecar.read_text()[:20])
        assert main(["store", "ls", "--store", store]) == 0
        assert "DAMAGED" in capsys.readouterr().out

    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["store"])
