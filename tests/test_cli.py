"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_info_metalplug(self, capsys):
        assert main(["info", "metalplug"]) == 0
        out = capsys.readouterr().out
        assert "contacts=['plug1', 'plug2']" in out

    def test_info_tsv(self, capsys):
        assert main(["info", "tsv"]) == 0
        out = capsys.readouterr().out
        assert "tsv1" in out

    def test_solve_metalplug(self, capsys):
        assert main(["solve", "metalplug"]) == 0
        out = capsys.readouterr().out
        assert "I(plug1) [uA]" in out

    def test_solve_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["solve", "nothing"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
