"""Tests of the dimension-adaptive collocation engine.

The engine must (a) reproduce the fixed level-2 Smolyak answer exactly
when allowed to exhaust the level-2 simplex, (b) beat it decisively on
anisotropic problems, (c) respect its budget controls, and (d) flow
through the serving layer: adaptive specs get distinct cache keys and
replay from the store with zero solves, refinement provenance intact.
"""

from itertools import product

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveConfig,
    IncrementalGrid,
    MultiIndexSet,
    combination_coefficients,
    difference_quadrature,
    is_downward_closed,
    run_adaptive_sscm,
    surplus_indicator,
    tensor_quadrature,
)
from repro.adaptive.driver import combination_projection
from repro.analysis.runner import run_problem, run_sscm_analysis
from repro.errors import ServingError, StochasticError
from repro.experiments import table1_spec
from repro.serving import SurrogateStore, ensure_surrogate
from repro.stochastic import run_sscm, smolyak_sparse_grid
from repro.stochastic.gauss_hermite import NodeTable, rule_size_for_level
from repro.stochastic.hermite import HermiteBasis


def quadratic_problem(d, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(d, d))
    A = 0.25 * (A + A.T)
    b = rng.normal(size=d)
    c = float(rng.normal())

    def f(z):
        return np.array([c + b @ z + z @ A @ z])

    mean = c + np.trace(A)
    var = b @ b + 2.0 * np.sum(A * A)
    return f, mean, var


def anisotropic_problem(d=8, eps=1e-6):
    """Quadratic in d dims where only the first two directions matter."""
    A = np.zeros((d, d))
    A[0, 0], A[1, 1] = 1.5, 0.8
    A[0, 1] = A[1, 0] = 0.4
    b = np.zeros(d)
    b[0], b[1] = 1.0, 0.5
    for i in range(2, d):
        A[i, i] = eps
        b[i] = eps

    def f(z):
        return np.array([3.0 + b @ z + z @ A @ z])

    mean = 3.0 + np.trace(A)
    var = b @ b + 2.0 * np.sum(A * A)
    return f, mean, var


def simplex(dim, level):
    return [ix for ix in product(range(level + 1), repeat=dim)
            if sum(ix) <= level]


class TestNodeTable:
    def test_shared_centre_across_levels(self):
        table = NodeTable()
        ids = [table.rule(level)[2] for level in range(4)]
        centre = ids[0][0]
        for level in (1, 2, 3):
            size = rule_size_for_level(level)
            assert ids[level][size // 2] == centre

    def test_distinct_values_get_distinct_ids(self):
        table = NodeTable()
        all_ids = set()
        total = 0
        for level in range(4):
            nodes, _, ids = table.rule(level)
            assert len(set(ids)) == len(nodes)
            all_ids.update(ids)
            total += len(nodes)
        # Across levels only the centre coincides (rules are not
        # nested): 1 + 3 + 5 + 9 nodes share exactly one value.
        assert len(all_ids) == total - 3

    def test_rule_sizes(self):
        assert [rule_size_for_level(lv) for lv in range(5)] \
            == [1, 3, 5, 9, 17]
        with pytest.raises(StochasticError):
            rule_size_for_level(-1)


class TestMultiIndexSet:
    def test_root_is_admissible(self):
        ixs = MultiIndexSet(3)
        assert ixs.is_admissible((0, 0, 0))
        ixs.activate((0, 0, 0), 1.0)
        assert not ixs.is_admissible((0, 0, 0))

    def test_forward_needs_accepted_backward(self):
        ixs = MultiIndexSet(2)
        ixs.activate((0, 0), 1.0)
        # (1, 0) needs (0, 0) to be *old*, not merely active.
        assert not ixs.is_admissible((1, 0))
        ixs.accept_best()
        assert ixs.is_admissible((1, 0))
        ixs.activate((1, 0), 0.5)
        ixs.activate((0, 1), 0.25)
        # (1, 1) needs both (1, 0) and (0, 1) accepted.
        assert not ixs.is_admissible((1, 1))
        ixs.accept_best()
        ixs.accept_best()
        assert ixs.is_admissible((1, 1))

    def test_accept_best_takes_largest_indicator(self):
        ixs = MultiIndexSet(2)
        ixs.activate((0, 0), 1.0)
        ixs.accept_best()
        ixs.activate((1, 0), 0.1)
        ixs.activate((0, 1), 0.7)
        index, indicator = ixs.accept_best()
        assert index == (0, 1)
        assert indicator == 0.7

    def test_error_estimate_sums_active(self):
        ixs = MultiIndexSet(2)
        ixs.activate((0, 0), 1.0)
        ixs.accept_best()
        ixs.activate((1, 0), 0.1)
        ixs.activate((0, 1), 0.2)
        assert ixs.error_estimate() == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(StochasticError):
            MultiIndexSet(0)
        ixs = MultiIndexSet(2)
        with pytest.raises(StochasticError):
            ixs.activate((1,), 0.0)
        with pytest.raises(StochasticError):
            ixs.activate((1, 0), 0.0)  # backward neighbor missing
        with pytest.raises(StochasticError):
            ixs.accept_best()

    def test_downward_closure_check(self):
        assert is_downward_closed([(0, 0), (1, 0), (0, 1)])
        assert not is_downward_closed([(0, 0), (1, 1)])


class TestCombinationCoefficients:
    def test_level2_simplex_matches_smolyak_formula(self):
        # c(l) = (-1)^(L-|l|) C(d-1, L-|l|) on the simplex boundary.
        import math
        d, L = 3, 2
        coeffs = combination_coefficients(simplex(d, L))
        for index, coeff in coeffs.items():
            total = sum(index)
            expected = (-1) ** (L - total) * math.comb(d - 1, L - total)
            assert coeff == expected

    def test_coefficients_sum_to_one(self):
        for indices in (simplex(2, 3), simplex(4, 2),
                        [(0, 0), (1, 0), (2, 0), (0, 1), (1, 1)]):
            assert sum(combination_coefficients(indices).values()) == 1

    def test_rejects_non_downward_closed(self):
        with pytest.raises(StochasticError):
            combination_coefficients([(0, 0), (0, 2)])
        with pytest.raises(StochasticError):
            combination_coefficients([])


class TestIncrementalGrid:
    def test_level2_simplex_reproduces_smolyak(self):
        for d in (2, 3, 5):
            grid = IncrementalGrid(d)
            indices = simplex(d, 2)
            for index in indices:
                grid.register(index)
            combined = grid.combined_quadrature(indices)
            reference = smolyak_sparse_grid(d)
            order = np.lexsort(combined.points.T[::-1])
            keep = np.abs(combined.weights[order]) > 1e-14
            np.testing.assert_array_equal(
                combined.points[order][keep], reference.points)
            np.testing.assert_allclose(
                combined.weights[order][keep], reference.weights,
                atol=1e-14)

    def test_register_emits_only_new_points(self):
        grid = IncrementalGrid(2)
        assert grid.register((0, 0)).shape == (1, 2)
        # 3-point rule on axis 0 shares the centre: 2 new points.
        assert grid.register((1, 0)).shape == (2, 2)
        assert grid.register((0, 1)).shape == (2, 2)
        # The (1,1) tensor product adds only the 4 corners.
        new = grid.register((1, 1))
        assert new.shape == (4, 2)
        assert np.all(np.abs(new) > 0)
        # Re-registering adds nothing.
        assert grid.register((1, 1)).shape == (0, 2)
        assert grid.num_points == 9

    def test_new_points_previews_without_registering(self):
        grid = IncrementalGrid(2)
        grid.register((0, 0))
        preview = grid.new_points((1, 0))
        assert preview.shape == (2, 2)
        assert grid.num_points == 1
        np.testing.assert_array_equal(preview, grid.register((1, 0)))

    def test_tensor_rows_requires_registration(self):
        grid = IncrementalGrid(2)
        with pytest.raises(StochasticError):
            grid.tensor_rows((1, 0))

    def test_quadrature_exactness_on_partial_set(self):
        # Axes-only set integrates per-direction moments exactly.
        grid = IncrementalGrid(3)
        indices = [(0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, 1)]
        for index in indices:
            grid.register(index)
        weights = grid.combined_weights(indices)
        points = grid.points()
        assert weights.sum() == pytest.approx(1.0)
        for axis in range(3):
            assert (weights * points[:, axis] ** 2).sum() \
                == pytest.approx(1.0)
            assert (weights * points[:, axis] ** 4).sum() \
                == pytest.approx(3.0)


class TestSurplus:
    def test_difference_telescopes_to_tensor_quadratures(self):
        grid = IncrementalGrid(2)
        for index in simplex(2, 2):
            grid.register(index)
        rng = np.random.default_rng(3)
        values = rng.normal(size=(grid.num_points, 2))
        delta = difference_quadrature(grid, values, (1, 1))
        expected = (tensor_quadrature(grid, values, (1, 1))
                    - tensor_quadrature(grid, values, (1, 0))
                    - tensor_quadrature(grid, values, (0, 1))
                    + tensor_quadrature(grid, values, (0, 0)))
        np.testing.assert_allclose(delta, expected)

    def test_deltas_sum_to_combined_quadrature(self):
        grid = IncrementalGrid(2)
        indices = simplex(2, 2)
        for index in indices:
            grid.register(index)
        rng = np.random.default_rng(4)
        values = rng.normal(size=(grid.num_points, 1))
        total = sum(difference_quadrature(grid, values, index)
                    for index in indices)
        weights = grid.combined_weights(indices)
        np.testing.assert_allclose(total, weights @ values)

    def test_indicator_is_relative(self):
        assert surplus_indicator(np.array([1.0, 0.0]),
                                 np.array([10.0, 1.0])) \
            == pytest.approx(0.1)
        with pytest.raises(StochasticError):
            surplus_indicator(np.zeros(2), np.ones(3))


class TestAdaptiveConfig:
    def test_defaults_round_trip(self):
        config = AdaptiveConfig()
        assert AdaptiveConfig.from_dict(config.to_dict()) == config

    def test_partial_dict_fills_defaults(self):
        config = AdaptiveConfig.from_dict({"tol": 1e-3})
        assert config.tol == 1e-3
        assert config.max_solves is None
        assert config.max_level is None

    def test_int_valued_floats_normalized(self):
        config = AdaptiveConfig.from_dict({"max_solves": 100.0})
        assert config.max_solves == 100

    def test_validation(self):
        with pytest.raises(StochasticError):
            AdaptiveConfig(tol=-1.0)
        with pytest.raises(StochasticError):
            AdaptiveConfig(tol=float("nan"))
        with pytest.raises(StochasticError):
            AdaptiveConfig(max_solves=0)
        with pytest.raises(StochasticError):
            AdaptiveConfig(max_level=0)
        with pytest.raises(StochasticError):
            AdaptiveConfig.from_dict({"budget": 3})
        with pytest.raises(StochasticError):
            AdaptiveConfig.from_dict(7)


class TestAdaptiveDriver:
    def test_exhausting_level2_matches_fixed_grid_exactly(self):
        d = 4
        f, mean, var = quadratic_problem(d)
        result = run_adaptive_sscm(f, d,
                                   AdaptiveConfig(tol=0.0, max_level=2))
        reference = run_sscm(f, d)
        assert result.num_runs == reference.num_runs
        assert result.termination == "exhausted"
        assert result.converged
        np.testing.assert_allclose(result.pce.coefficients,
                                   reference.pce.coefficients,
                                   atol=1e-10)
        assert result.mean[0] == pytest.approx(mean, rel=1e-10)
        assert result.std[0] == pytest.approx(np.sqrt(var), rel=1e-10)

    def test_anisotropic_needs_far_fewer_solves(self):
        d = 8
        f, mean, var = anisotropic_problem(d)
        result = run_adaptive_sscm(f, d,
                                   AdaptiveConfig(tol=1e-4, max_level=2))
        fixed = smolyak_sparse_grid(d).num_points
        assert result.num_runs * 2 <= fixed
        assert result.mean[0] == pytest.approx(mean, rel=1e-9)
        assert result.std[0] == pytest.approx(np.sqrt(var), rel=1e-3)

    def test_max_solves_is_a_hard_cap(self):
        d = 6
        f, _, _ = quadratic_problem(d, seed=5)
        result = run_adaptive_sscm(
            f, d, AdaptiveConfig(tol=0.0, max_solves=25, max_level=2))
        assert result.num_runs <= 25
        assert result.termination == "max_solves"
        assert not result.converged

    def test_trace_records_each_acceptance(self):
        d = 3
        f, _, _ = quadratic_problem(d, seed=2)
        result = run_adaptive_sscm(f, d,
                                   AdaptiveConfig(tol=0.0, max_level=2))
        # One trace entry per accepted index; every traced index was
        # evaluated (is in the final set), and acceptances never repeat.
        traced = [tuple(step["index"]) for step in result.trace]
        assert len(set(traced)) == len(traced) >= 1
        assert set(traced) <= set(result.indices)
        solves = [step["num_solves"] for step in result.trace]
        assert solves == sorted(solves)
        for step in result.trace:
            assert set(step) == {"step", "index", "indicator",
                                 "num_solves", "active", "error"}

    def test_indices_stay_downward_closed(self):
        d = 5
        f, _, _ = anisotropic_problem(d)
        result = run_adaptive_sscm(f, d,
                                   AdaptiveConfig(tol=1e-5, max_level=3))
        assert is_downward_closed(result.indices)

    def test_solve_many_wave_batching(self):
        d = 3
        f, mean, var = quadratic_problem(d, seed=1)
        waves = []

        def solve_many(points):
            waves.append(points.shape[0])
            return np.array([f(z) for z in points])

        result = run_adaptive_sscm(
            f, d, AdaptiveConfig(tol=0.0, max_level=2),
            solve_many=solve_many)
        assert sum(waves) == result.num_runs
        # The first refinement wave batches all d direction probes.
        assert waves[1] == 2 * d
        assert result.mean[0] == pytest.approx(mean, rel=1e-10)

    def test_progress_reports_solves(self):
        calls = []
        f, _, _ = quadratic_problem(2)
        run_adaptive_sscm(f, 2, AdaptiveConfig(tol=0.0, max_level=2),
                          progress=lambda done, cap: calls.append(
                              (done, cap)))
        assert calls[-1][0] == smolyak_sparse_grid(2).num_points
        assert all(cap == -1 for _, cap in calls)

    def test_refinement_metadata_is_json_serializable(self):
        import json
        f, _, _ = quadratic_problem(2)
        result = run_adaptive_sscm(f, 2,
                                   AdaptiveConfig(tol=1e-3, max_level=2))
        metadata = result.refinement_metadata()
        assert json.loads(json.dumps(metadata)) == metadata
        assert metadata["config"]["tol"] == 1e-3
        assert metadata["num_solves"] == result.num_runs

    def test_validation(self):
        with pytest.raises(StochasticError):
            run_adaptive_sscm(lambda z: np.zeros(1), 0)


class TestCombinationProjection:
    def test_no_internal_aliasing_on_partial_grid(self):
        """Unrefined directions must not absorb refined curvature."""
        d = 4
        A = np.diag([2.0, 1.0, 1e-8, 1e-8])

        def f(z):
            return np.array([z @ A @ z])

        grid = IncrementalGrid(d)
        indices = [(0,) * d] + [tuple(1 if j == i else 0
                                      for j in range(d))
                                for i in range(d)]
        for index in indices:
            grid.register(index)
        values = np.array([f(p) for p in grid.points()])
        basis = HermiteBasis(d)
        coefficients = combination_projection(grid, values, indices,
                                              basis)
        for k, alpha in enumerate(basis.indices):
            support = [i for i, o in enumerate(alpha) if o]
            if sum(alpha) == 2 and len(support) == 1:
                assert coefficients[k, 0] == pytest.approx(
                    A[support[0], support[0]], abs=1e-12)


class TestAnalysisIntegration:
    def _problem(self):
        from repro.experiments import Table1Config, table1_problem
        from repro.geometry import MetalPlugDesign
        from repro.units import um
        config = Table1Config(design=MetalPlugDesign(max_step=um(2.0)),
                              rdf_nodes=6)
        return table1_problem("doping", config)

    def test_run_problem_alias(self):
        assert run_problem is run_sscm_analysis

    def test_refinement_config_flows_through_analysis(self):
        problem = self._problem()
        analysis = run_sscm_analysis(
            problem, max_variables_by_group={"doping": 2},
            refinement=AdaptiveConfig(tol=1e-6, max_level=2))
        fixed = run_sscm_analysis(
            problem, max_variables_by_group={"doping": 2})
        assert analysis.num_runs <= fixed.num_runs
        np.testing.assert_allclose(analysis.mean, fixed.mean, rtol=1e-3)
        np.testing.assert_allclose(analysis.std, fixed.std, rtol=1e-3)
        metadata = analysis.refinement_metadata()
        assert metadata is not None
        assert metadata["termination"] in ("tol", "exhausted")
        assert fixed.refinement_metadata() is None

    def test_refinement_accepts_plain_dict(self):
        problem = self._problem()
        analysis = run_sscm_analysis(
            problem, max_variables_by_group={"doping": 1},
            refinement={"tol": 1e-4, "max_level": 2})
        assert analysis.refinement_metadata()["config"]["max_level"] == 2

    def test_refinement_rejects_regression_fit(self):
        with pytest.raises(StochasticError, match="incompatible"):
            run_sscm_analysis(self._problem(), fit="regression",
                              refinement=AdaptiveConfig(tol=1e-4))


class TestServingIntegration:
    TINY = {"max_step_um": 2.0, "rdf_nodes": 6}
    REDUCTION = {"caps": {"doping": 1}, "energy": 0.9}

    def _spec(self, adaptive=None):
        return table1_spec("doping", reduction=dict(self.REDUCTION),
                           adaptive=adaptive, **self.TINY)

    def test_adaptive_block_changes_cache_key(self):
        base = self._spec()
        adaptive = self._spec(adaptive={"tol": 1e-4})
        assert base.cache_key() != adaptive.cache_key()
        assert self._spec(adaptive={"tol": 1e-3}).cache_key() \
            != adaptive.cache_key()

    def test_omitted_defaults_hash_identically(self):
        sparse = self._spec(adaptive={"tol": 1e-4})
        explicit = self._spec(adaptive={"tol": 1e-4, "max_solves": None,
                                        "max_level": None})
        assert sparse.cache_key() == explicit.cache_key()

    def test_fixed_grid_canonical_form_is_unchanged(self):
        """A None adaptive block is omitted from the canonical spec,
        so fixed-grid cache keys (and every pre-adaptive store entry)
        survive the new reduction field."""
        canonical = self._spec().canonical()
        assert "adaptive" not in canonical["reduction"]
        assert "adaptive" in \
            self._spec(adaptive={"tol": 1e-4}).canonical()["reduction"]

    def test_level_and_fit_overrides_rejected_with_adaptive(self):
        with pytest.raises(ServingError, match="no effect"):
            table1_spec("doping", reduction={"level": 3},
                        adaptive={"tol": 1e-4}, **self.TINY)
        with pytest.raises(ServingError, match="no effect"):
            table1_spec("doping", reduction={"fit": "regression"},
                        adaptive={"tol": 1e-4}, **self.TINY)
        # Explicit defaults are harmless (they hash identically).
        table1_spec("doping", reduction={"level": 2,
                                         "fit": "quadrature"},
                    adaptive={"tol": 1e-4}, **self.TINY)

    def test_adaptive_config_instance_accepted(self):
        spec = self._spec(adaptive=AdaptiveConfig(tol=1e-4))
        assert spec.cache_key() \
            == self._spec(adaptive={"tol": 1e-4}).cache_key()

    def test_bad_adaptive_block_rejected(self):
        with pytest.raises(ServingError, match="adaptive"):
            self._spec(adaptive={"tol": -2.0})
        with pytest.raises(ServingError, match="adaptive"):
            self._spec(adaptive={"solves": 5})

    def test_analysis_kwargs_carry_refinement(self):
        spec = self._spec(adaptive={"tol": 1e-4, "max_level": 2})
        kwargs = spec.analysis_kwargs()
        assert kwargs["refinement"] == AdaptiveConfig(tol=1e-4,
                                                      max_level=2)
        assert self._spec().analysis_kwargs()["refinement"] is None

    def test_adaptive_surrogate_replays_with_zero_solves(self, tmp_path):
        store = SurrogateStore(tmp_path / "store")
        spec = self._spec(adaptive={"tol": 1e-5, "max_level": 2})
        first = ensure_surrogate(spec, store)
        assert first.built
        assert first.record.refinement is not None
        second = ensure_surrogate(spec, store)
        assert not second.built
        assert second.num_solves == 0
        assert second.record.refinement == first.record.refinement
        assert is_downward_closed([
            tuple(ix) for ix in second.record.refinement["indices"]])

    def test_fixed_build_has_no_refinement(self, tmp_path):
        store = SurrogateStore(tmp_path / "store")
        report = ensure_surrogate(self._spec(), store)
        assert report.record.refinement is None
