"""Tests for discrete EM operators: gradient, curl, material averaging."""

import numpy as np
import pytest

from repro.em import (
    FaceSet,
    cell_property_array,
    curl_matrix,
    gradient_matrix,
    link_material_areas,
    link_weighted_coefficients,
    scalar_laplacian,
)
from repro.geometry import Box, Structure
from repro.materials import doped_silicon, silicon_dioxide
from repro.mesh import CartesianGrid, LinkSet, compute_geometry


class TestGradient:
    def test_gradient_of_constant_is_zero(self, small_grid, small_links):
        G = gradient_matrix(small_links)
        v = np.full(small_grid.num_nodes, 3.7)
        np.testing.assert_allclose(G @ v, 0.0, atol=1e-12)

    def test_gradient_of_linear_function(self, small_grid, small_links):
        G = gradient_matrix(small_links)
        coords = small_grid.node_coords()
        v = 2.0 * coords[:, 0]  # V = 2x
        dv = G @ v
        x_block = small_links.axis_slice(0)
        geo = compute_geometry(small_grid, links=small_links)
        np.testing.assert_allclose(dv[x_block],
                                   2.0 * geo.link_lengths[x_block],
                                   rtol=1e-12)
        # y/z links see no change.
        np.testing.assert_allclose(dv[small_links.axis_slice(1)], 0.0,
                                   atol=1e-18)


class TestCurl:
    def test_curl_grad_is_zero(self, small_grid, small_links):
        """The discrete exactness identity C @ G = 0."""
        G = gradient_matrix(small_links)
        C = curl_matrix(small_grid, small_links)
        product = C @ G
        assert abs(product).max() == 0.0

    def test_face_counts(self, small_grid):
        faces = FaceSet(small_grid)
        nx, ny, nz = small_grid.shape
        assert faces.counts[0] == nx * (ny - 1) * (nz - 1)
        assert faces.counts[1] == (nx - 1) * ny * (nz - 1)
        assert faces.counts[2] == (nx - 1) * (ny - 1) * nz
        assert faces.num_faces == sum(faces.counts)

    def test_each_face_has_four_edges(self, small_grid, small_links):
        C = curl_matrix(small_grid, small_links)
        per_row = np.diff(C.indptr)
        assert np.all(per_row == 4)

    def test_face_adjacent_cells(self, small_grid):
        faces = FaceSet(small_grid)
        adj = faces.face_adjacent_cells(0)
        # x-faces at i=0 and i=nx-1 have one missing side.
        boundary = (adj < 0).any(axis=1)
        assert boundary.sum() > 0
        interior = ~boundary
        assert np.all(adj[interior] >= 0)


def _layered_structure():
    """Half oxide / half silicon along z with a metal block."""
    grid = CartesianGrid(np.linspace(0, 2e-6, 3), np.linspace(0, 2e-6, 3),
                         np.linspace(0, 2e-6, 3))
    s = Structure(grid, background=silicon_dioxide())
    s.add_box(doped_silicon(1e21), Box((0, 0, 0), (2e-6, 2e-6, 1e-6)))
    return s, grid


class TestMaterialAveraging:
    def test_cell_property_array(self):
        s, grid = _layered_structure()
        eps = cell_property_array(s, lambda m: m.eps_r)
        assert set(np.unique(eps)) == {3.9, 11.7}

    def test_uniform_material_coefficient(self, small_grid, small_links):
        geo = compute_geometry(small_grid, links=small_links)
        cells = np.full(small_grid.num_cells, 2.5)
        weighted = link_weighted_coefficients(geo, cells)
        np.testing.assert_allclose(weighted, 2.5 * geo.link_dual_areas,
                                   rtol=1e-12)

    def test_mixed_material_average_between_bounds(self):
        s, grid = _layered_structure()
        links = LinkSet(grid)
        geo = compute_geometry(grid, links=links)
        eps = cell_property_array(s, lambda m: m.eps_r)
        weighted = link_weighted_coefficients(geo, eps) / geo.link_dual_areas
        assert np.all(weighted >= 3.9 - 1e-9)
        assert np.all(weighted <= 11.7 + 1e-9)
        # Links straddling the interface plane average the two.
        z_block = links.axis_slice(2)
        mixed = np.sum((weighted[z_block] > 3.9 + 1e-9)
                       & (weighted[z_block] < 11.7 - 1e-9))
        assert mixed == 0  # z-links are within one layer here

    def test_material_areas_partition(self):
        s, grid = _layered_structure()
        links = LinkSet(grid)
        geo = compute_geometry(grid, links=links)
        _, semi, insul = s.cell_kind_masks()
        a_semi = link_material_areas(geo, semi)
        a_rest = link_material_areas(geo, ~semi)
        np.testing.assert_allclose(a_semi + a_rest, geo.link_dual_areas,
                                   rtol=1e-12)

    def test_laplacian_row_sums_zero(self, small_grid, small_links):
        geo = compute_geometry(small_grid, links=small_links)
        g = np.ones(small_links.num_links)
        lap = scalar_laplacian(geo, g)
        row_sums = np.asarray(abs(lap @ np.ones(small_grid.num_nodes)))
        np.testing.assert_allclose(row_sums, 0.0, atol=1e-12)

    def test_laplacian_symmetric_for_scalar_coefficients(self, small_grid,
                                                         small_links):
        geo = compute_geometry(small_grid, links=small_links)
        rng = np.random.default_rng(0)
        g = rng.uniform(1.0, 2.0, small_links.num_links)
        lap = scalar_laplacian(geo, g)
        assert abs(lap - lap.T).max() < 1e-15


class TestLaplacianPhysics:
    def test_1d_voltage_divider(self):
        """Two dielectric layers in series split the voltage by eps."""
        grid = CartesianGrid(np.linspace(0, 1e-6, 2),
                             np.linspace(0, 1e-6, 2),
                             np.linspace(0, 2e-6, 5))
        from repro.materials.library import silicon_nitride

        s = Structure(grid, background=silicon_dioxide())  # eps 3.9
        s.add_box(silicon_nitride(),
                  Box((0, 0, 1e-6), (1e-6, 1e-6, 2e-6)))
        links = LinkSet(grid)
        geo = compute_geometry(grid, links=links)
        from repro.em.operators import (cell_property_array,
                                        link_weighted_coefficients)
        eps = cell_property_array(s, lambda m: m.permittivity)
        g = link_weighted_coefficients(geo, eps) / geo.link_lengths
        lap = scalar_laplacian(geo, g).tolil()
        # Dirichlet: V=0 at z-, V=1 at z+.
        bottom = grid.boundary_node_ids("z-")
        top = grid.boundary_node_ids("z+")
        v = np.zeros(grid.num_nodes)
        v[top] = 1.0
        free = np.setdiff1d(np.arange(grid.num_nodes),
                            np.concatenate([bottom, top]))
        import scipy.sparse.linalg as spla
        A = lap.tocsr()
        rhs = -(A[free][:, np.concatenate([bottom, top])]
                @ v[np.concatenate([bottom, top])])
        v[free] = spla.spsolve(A[free][:, free].tocsc(), rhs)
        # Continuity of displacement: field ratio inverse to eps ratio.
        # Voltage at the material interface (z = 1 um):
        mid = grid.nodes_in_box((0, 0, 1e-6 - 1e-12),
                                (1e-6, 1e-6, 1e-6 + 1e-12))
        v_mid = v[mid].mean()
        eps1, eps2 = 3.9, 7.5
        expected = (1.0 / eps1) / (1.0 / eps1 + 1.0 / eps2)
        assert v_mid == pytest.approx(expected, rel=1e-6)
