"""Tests for current / charge / field extraction."""

import numpy as np
import pytest

from repro.errors import ExtractionError
from repro.extraction import (
    capacitance_column,
    metal_semiconductor_current,
    node_set_outflow,
    port_current,
    potential_cross_section,
)
from repro.extraction.capacitance import (
    conductor_charge,
    conductor_mask_for_contact,
)
from repro.solver import AVSolver


@pytest.fixture(scope="module")
def plug_solution(coarse_plug_structure):
    solver = AVSolver(coarse_plug_structure, frequency=1.0e9)
    return solver.solve({"plug1": 1.0, "plug2": 0.0})


@pytest.fixture(scope="module")
def tsv_solution(coarse_tsv_structure):
    solver = AVSolver(coarse_tsv_structure, frequency=1.0e9)
    grounded = {name: 0.0 for name in coarse_tsv_structure.contacts}
    return solver.solve(dict(grounded, tsv1=1.0))


class TestCurrents:
    def test_ports_balance(self, plug_solution):
        i1 = port_current(plug_solution, "plug1")
        i2 = port_current(plug_solution, "plug2")
        assert abs(i1 + i2) < 1e-8 * abs(i1)

    def test_interface_currents_balance(self, plug_solution):
        """Current into silicon under plug1 = current out under plug2."""
        total = metal_semiconductor_current(plug_solution)
        mask1 = conductor_mask_for_contact(
            plug_solution.structure, plug_solution.geometry.links,
            "plug1")
        j1 = metal_semiconductor_current(plug_solution,
                                         restrict_nodes=np.nonzero(mask1)[0])
        assert abs(total) < 1e-6 * abs(j1)

    def test_interface_current_majority_of_port_current(self,
                                                        plug_solution):
        """Most of the plug1 current crosses into the silicon; the rest
        is displacement through the surrounding oxide (which is coarse-
        mesh sensitive, hence the loose bound)."""
        mask1 = conductor_mask_for_contact(
            plug_solution.structure, plug_solution.geometry.links,
            "plug1")
        j1 = metal_semiconductor_current(
            plug_solution, restrict_nodes=np.nonzero(mask1)[0])
        i1 = port_current(plug_solution, "plug1")
        assert abs(j1) > 0.5 * abs(i1)
        assert abs(j1) < 1.2 * abs(i1)
        # Same sign of real (conductive) part.
        assert np.sign(j1.real) == np.sign(i1.real)

    def test_outflow_of_everything_is_zero(self, plug_solution):
        n = plug_solution.structure.grid.num_nodes
        full = np.ones(n, dtype=bool)
        assert node_set_outflow(plug_solution, full) == 0.0

    def test_no_interface_raises(self, tsv_solution):
        """The lined TSV structure has no metal-semiconductor contact."""
        with pytest.raises(ExtractionError):
            metal_semiconductor_current(tsv_solution)

    def test_mask_shape_checked(self, plug_solution):
        with pytest.raises(ExtractionError):
            node_set_outflow(plug_solution, np.ones(3, dtype=bool))


class TestCapacitance:
    def test_signs_match_maxwell_convention(self, tsv_solution):
        col = capacitance_column(tsv_solution, "tsv1")
        assert col["tsv1"].real > 0.0
        for name in ("tsv2", "w1", "w2", "w3", "w4"):
            assert col[name].real < 0.0, name

    def test_far_wire_smallest(self, tsv_solution):
        """|C_T1W2| is orders smaller: W2 flanks TSV2, not TSV1."""
        col = capacitance_column(tsv_solution, "tsv1")
        others = [abs(col[n].real) for n in ("w1", "w3", "w4")]
        assert abs(col["w2"].real) < 0.1 * min(others)

    def test_symmetric_wires_nearly_equal(self, tsv_solution):
        """W3 and W4 flank TSV1 at the same gap."""
        col = capacitance_column(tsv_solution, "tsv1")
        c3 = abs(col["w3"].real)
        c4 = abs(col["w4"].real)
        assert abs(c3 - c4) < 0.25 * max(c3, c4)

    def test_self_cap_dominates(self, tsv_solution):
        col = capacitance_column(tsv_solution, "tsv1")
        assert abs(col["tsv1"].real) > max(
            abs(col[n].real) for n in ("tsv2", "w1", "w2", "w3", "w4"))

    def test_requires_driven_contact(self, tsv_solution):
        with pytest.raises(ExtractionError):
            capacitance_column(tsv_solution, "tsv2")  # driven at 0 V

    def test_charge_scales_with_drive(self, coarse_tsv_structure):
        solver = AVSolver(coarse_tsv_structure, frequency=1.0e9)
        grounded = {n: 0.0 for n in coarse_tsv_structure.contacts}
        s1 = solver.solve(dict(grounded, tsv1=1.0))
        s2 = solver.solve(dict(grounded, tsv1=3.0))
        mask = conductor_mask_for_contact(coarse_tsv_structure,
                                          s1.geometry.links, "tsv1")
        q1 = conductor_charge(s1, mask)
        q2 = conductor_charge(s2, mask)
        assert q2 == pytest.approx(3.0 * q1, rel=1e-9)
        # But C = Q/V is drive-independent.
        c1 = capacitance_column(s1, "tsv1")["tsv1"]
        c2 = capacitance_column(s2, "tsv1")["tsv1"]
        assert c2 == pytest.approx(c1, rel=1e-9)


class TestFieldExtraction:
    def test_cross_section_shape(self, plug_solution):
        grid = plug_solution.structure.grid
        u, v, values = potential_cross_section(plug_solution, axis=2,
                                               coordinate=10e-6)
        assert values.shape == (grid.nx, grid.ny)
        assert u.size == grid.nx and v.size == grid.ny

    def test_interface_potential_between_drives(self, plug_solution):
        """Fig. 2(b): the interface potential sits between 0 and 1 V,
        high under plug1 and low under plug2."""
        _, _, values = potential_cross_section(plug_solution, axis=2,
                                               coordinate=10e-6)
        mags = np.abs(values)
        assert mags.max() <= 1.0 + 1e-9
        grid = plug_solution.structure.grid
        i1 = int(np.argmin(np.abs(grid.xs - 2.5e-6)))   # under plug1
        i2 = int(np.argmin(np.abs(grid.xs - 7.5e-6)))   # under plug2
        jmid = int(np.argmin(np.abs(grid.ys - 5.0e-6)))
        assert mags[i1, jmid] > mags[i2, jmid]

    def test_axis_validation(self, plug_solution):
        with pytest.raises(ExtractionError):
            potential_cross_section(plug_solution, axis=4,
                                    coordinate=0.0)
