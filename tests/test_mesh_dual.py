"""Tests for links, dual geometry and octant volumes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeshError
from repro.mesh import CartesianGrid, compute_geometry
from repro.mesh.dual import node_masked_volumes


class TestLinkSet:
    def test_counts_and_axes(self, small_grid, small_links):
        assert small_links.num_links == small_grid.num_links
        for axis in range(3):
            block = small_links.axis_slice(axis)
            assert np.all(small_links.axis[block] == axis)

    def test_endpoints_differ_along_axis_only(self, small_grid,
                                              small_links):
        ia, ja, ka = small_grid.node_ijk(small_links.node_a)
        ib, jb, kb = small_grid.node_ijk(small_links.node_b)
        deltas = np.stack([ib - ia, jb - ja, kb - ka], axis=1)
        for link in range(small_links.num_links):
            axis = small_links.axis[link]
            expected = np.zeros(3, dtype=int)
            expected[axis] = 1
            np.testing.assert_array_equal(deltas[link], expected)

    def test_link_id_roundtrip(self, small_grid, small_links):
        lid = small_links.link_id(1, 0, 1, 2)
        assert small_links.axis[lid] == 1
        a = small_links.node_a[lid]
        assert small_grid.node_ijk(a) == (0, 1, 2)

    def test_link_id_bounds(self, small_links):
        with pytest.raises(MeshError):
            small_links.link_id(0, 3, 0, 0)  # only nx-1=3 x-links per row
        with pytest.raises(MeshError):
            small_links.axis_slice(5)

    def test_adjacent_cells_share_the_link(self, small_grid, small_links):
        """Every adjacent cell must contain both link endpoints."""
        for lid in range(small_links.num_links):
            a = np.array(small_grid.node_ijk(small_links.node_a[lid]))
            b = np.array(small_grid.node_ijk(small_links.node_b[lid]))
            for cid in small_links.cells[lid]:
                if cid < 0:
                    continue
                c = np.array(small_grid.cell_ijk(cid))
                # Cell (i,j,k) spans nodes i..i+1 etc.
                assert np.all(a >= c) and np.all(a <= c + 1)
                assert np.all(b >= c) and np.all(b <= c + 1)

    def test_interior_links_have_four_cells(self, small_grid, small_links):
        interior = 0
        for lid in range(small_links.num_links):
            if np.all(small_links.cells[lid] >= 0):
                interior += 1
        assert interior > 0

    def test_links_touching_nodes(self, small_grid, small_links):
        node = small_grid.node_id(1, 1, 1)
        touching = small_links.links_touching_nodes([node])
        # An interior node has 6 incident links.
        assert touching.size == 6


class TestDualGeometry:
    def test_volume_partition_exact(self, small_grid, small_geometry):
        assert small_geometry.node_volumes.sum() == pytest.approx(
            small_grid.volume, rel=1e-12)

    def test_quadrants_sum_to_dual_area(self, small_geometry):
        np.testing.assert_allclose(
            small_geometry.link_quadrant_areas.sum(axis=1),
            small_geometry.link_dual_areas, rtol=1e-12)

    def test_link_lengths_match_axis_spacing(self, small_grid,
                                             small_geometry):
        links = small_geometry.links
        x_block = links.axis_slice(0)
        lengths = small_geometry.link_lengths[x_block]
        dx = np.diff(small_grid.xs)
        # Every x-link length equals one of the x spacings.
        for value in np.unique(np.round(lengths, 15)):
            assert np.any(np.isclose(dx, value))

    def test_boundary_quadrants_are_zero(self, small_grid, small_geometry):
        links = small_geometry.links
        missing = links.cells < 0
        np.testing.assert_allclose(
            small_geometry.link_quadrant_areas[missing], 0.0)

    def test_coords_shape_checked(self, small_grid):
        with pytest.raises(MeshError):
            compute_geometry(small_grid, coords=np.zeros((3, 3)))

    def test_destroyed_mesh_raises(self, small_grid):
        coords = small_grid.node_coords().copy()
        # Push node (1,0,0) past node (2,0,0) in x.
        nid = small_grid.node_id(1, 0, 0)
        coords[nid, 0] = small_grid.xs[2] + 1e-6
        with pytest.raises(MeshError):
            compute_geometry(small_grid, coords=coords)

    def test_masked_volumes_total(self, small_grid, small_geometry):
        all_cells = np.ones(small_grid.num_cells, dtype=bool)
        vols = node_masked_volumes(small_geometry, all_cells)
        np.testing.assert_allclose(vols, small_geometry.node_volumes,
                                   rtol=1e-12)

    def test_masked_volumes_empty(self, small_grid, small_geometry):
        none = np.zeros(small_grid.num_cells, dtype=bool)
        np.testing.assert_allclose(
            node_masked_volumes(small_geometry, none), 0.0)

    def test_masked_volumes_partition(self, small_grid, small_geometry,
                                      rng):
        mask = rng.random(small_grid.num_cells) < 0.5
        v1 = node_masked_volumes(small_geometry, mask)
        v2 = node_masked_volumes(small_geometry, ~mask)
        np.testing.assert_allclose(v1 + v2, small_geometry.node_volumes,
                                   rtol=1e-12)

    def test_masked_volumes_shape_checked(self, small_geometry):
        with pytest.raises(MeshError):
            node_masked_volumes(small_geometry, np.ones(3, dtype=bool))


class TestPerturbedGeometry:
    def test_axis_displacement_changes_lengths(self, small_grid):
        from repro.mesh import PerturbedGrid

        nid = small_grid.node_id(1, 1, 1)
        pg = PerturbedGrid.from_axis_displacement(
            small_grid, [nid], axis=0, values=[0.2e-6])
        geo = pg.geometry()
        nominal = compute_geometry(small_grid)
        assert not np.allclose(geo.link_lengths, nominal.link_lengths)
        # Total volume is preserved by an interior displacement
        # (the dual cells redistribute).
        assert geo.node_volumes.sum() == pytest.approx(
            small_grid.volume, rel=1e-9)

    def test_displacement_shape_checked(self, small_grid):
        from repro.mesh import PerturbedGrid

        with pytest.raises(MeshError):
            PerturbedGrid(small_grid, displacement=np.zeros((5, 3)))

    def test_with_displacement_shares_links(self, small_grid):
        from repro.mesh import PerturbedGrid

        pg = PerturbedGrid(small_grid)
        pg2 = pg.with_displacement(
            np.zeros((small_grid.num_nodes, 3)))
        assert pg2.links is pg.links


@given(seed=st.integers(0, 500), scale=st.floats(0.0, 0.2))
@settings(max_examples=20, deadline=None)
def test_geometry_positive_under_small_perturbations(seed, scale):
    """Any sub-cell perturbation keeps all geometric quantities positive."""
    grid = CartesianGrid(np.linspace(0, 4e-6, 5), np.linspace(0, 3e-6, 4),
                         np.linspace(0, 3e-6, 4))
    rng = np.random.default_rng(seed)
    min_step = 1e-6
    displacement = rng.uniform(-scale * min_step, scale * min_step,
                               size=(grid.num_nodes, 3))
    coords = grid.node_coords() + displacement
    geo = compute_geometry(grid, coords=coords)
    assert np.all(geo.node_volumes > 0.0)
    assert np.all(geo.link_lengths > 0.0)
    assert np.all(geo.link_dual_areas > 0.0)
    # Volume partition still holds to first order: total within 25%.
    assert geo.node_volumes.sum() == pytest.approx(grid.volume, rel=0.25)
