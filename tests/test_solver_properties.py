"""Property-based tests (hypothesis) for the linear-solve substrate.

Three invariants that example-based tests only sample:

* ``_max_abs_rows`` — the dense-free CSR per-row max used by the
  equilibration — agrees with the dense definition on *any* sparsity
  pattern, including empty rows and explicit zeros;
* :class:`~repro.solver.SparseFactor` round-trips random SPD and
  indefinite diagonally-dominant systems (real and complex) within a
  tight residual, and a multi-RHS solve equals its stacked
  single-RHS solves bit for bit;
* :func:`~repro.solver.sweep.frequency_sweep` dedups duplicate
  frequencies: any multiset drawn from a palette yields exactly the
  matching rows of the full sweep, bitwise.

All randomness flows through seeds drawn *by hypothesis*, so failures
shrink to a minimal reproducible seed instead of a flaky array.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.solver import SparseFactor
from repro.solver.linear import _max_abs_rows
from repro.solver.sweep import frequency_sweep

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _random_sparse(n, density, seed):
    state = np.random.RandomState(seed % (2**31 - 1))
    return sp.random(n, n, density=density, random_state=state,
                     format="csr")


# ----------------------------------------------------------------------
# Equilibration kernel
# ----------------------------------------------------------------------
class TestMaxAbsRows:
    @settings(max_examples=80, deadline=None)
    @given(n=st.integers(1, 30), density=st.floats(0.0, 0.9),
           seed=SEEDS)
    def test_matches_dense_definition(self, n, density, seed):
        matrix = _random_sparse(n, density, seed)
        expected = np.abs(matrix.toarray()).max(axis=1)
        assert np.array_equal(_max_abs_rows(matrix), expected)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 20), seed=SEEDS)
    def test_explicit_zeros_are_harmless(self, n, seed):
        # Stored zeros must not change the per-row max: CSR data may
        # legally carry them after arithmetic.
        matrix = _random_sparse(n, 0.4, seed).tolil()
        matrix[0, n - 1] = 0.0
        matrix = sp.csr_matrix(matrix)
        expected = np.abs(matrix.toarray()).max(axis=1)
        assert np.array_equal(_max_abs_rows(matrix), expected)


# ----------------------------------------------------------------------
# SparseFactor round trips
# ----------------------------------------------------------------------
def _dominant_system(n, seed, spd, complex_matrix):
    """Diagonally dominant (hence nonsingular) random system.

    ``spd=True`` builds ``B @ B.T + I`` (symmetric positive
    definite); otherwise the dominant diagonal gets mixed signs — an
    indefinite but still uniquely solvable system, the shape of the
    coupled AC matrix.
    """
    rng = np.random.default_rng(seed)
    if spd:
        b = _random_sparse(n, 0.3, seed)
        matrix = (b @ b.T + sp.eye(n, format="csr")).tocsr()
    else:
        off = _random_sparse(n, 0.3, seed)
        row_sums = np.asarray(abs(off).sum(axis=1)).ravel()
        signs = np.where(rng.random(n) < 0.5, -1.0, 1.0)
        matrix = (off + sp.diags(signs * (row_sums + 1.0))).tocsr()
    if complex_matrix:
        matrix = (matrix
                  + 1j * sp.diags(0.2 * rng.standard_normal(n))).tocsr()
    rhs = rng.standard_normal(n)
    if complex_matrix:
        rhs = rhs + 1j * rng.standard_normal(n)
    return matrix, rhs


class TestSparseFactorRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(1, 25), seed=SEEDS, spd=st.booleans(),
           complex_matrix=st.booleans())
    def test_residual_is_tight(self, n, seed, spd, complex_matrix):
        matrix, rhs = _dominant_system(n, seed, spd, complex_matrix)
        x = SparseFactor(matrix).solve(rhs)
        residual = np.linalg.norm(matrix @ x - rhs)
        assert residual <= 1.0e-10 * max(np.linalg.norm(rhs), 1.0)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 20), k=st.integers(1, 4), seed=SEEDS,
           spd=st.booleans())
    def test_multi_rhs_equals_stacked_singles(self, n, k, seed, spd):
        matrix, _ = _dominant_system(n, seed, spd, complex_matrix=True)
        rng = np.random.default_rng(seed + 1)
        block = (rng.standard_normal((n, k))
                 + 1j * rng.standard_normal((n, k)))
        factor = SparseFactor(matrix)
        stacked = factor.solve(block)
        for j in range(k):
            single = factor.solve(np.ascontiguousarray(block[:, j]))
            assert np.array_equal(stacked[:, j], single)


# ----------------------------------------------------------------------
# frequency_sweep duplicate dedup
# ----------------------------------------------------------------------
PALETTE = (0.5e9, 1.0e9, 2.0e9)


@pytest.fixture(scope="module")
def full_sweep(coarse_plug_structure):
    """The whole palette solved once; the property compares against
    its rows instead of re-solving per example."""
    return frequency_sweep(coarse_plug_structure, PALETTE,
                           backend="lu")


class TestSweepDedup:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(picks=st.lists(st.integers(0, len(PALETTE) - 1),
                          min_size=1, max_size=6))
    def test_duplicates_solve_once_and_match_full_rows(
            self, picks, coarse_plug_structure, full_sweep):
        requested = [PALETTE[i] for i in picks]
        # Pinned to the reference backend: bitwise row equality across
        # differently composed sweeps is a property of the direct
        # path.  A stateful backend (krylov) legitimately solves a
        # frequency differently depending on what preceded it.
        result = frequency_sweep(coarse_plug_structure, requested,
                                 backend="lu")
        unique = np.unique(np.asarray(requested))
        assert np.array_equal(result.frequencies, unique)
        for row, frequency in enumerate(unique):
            full_row = int(np.searchsorted(full_sweep.frequencies,
                                           frequency))
            assert np.array_equal(result.admittance[row],
                                  full_sweep.admittance[full_row])
