"""Tests of the surrogate store & query-serving subsystem.

Store round-trips must be bitwise-faithful (a surrogate is a set of
float coefficients — any drift is silent statistical corruption), cache
keys must be stable across processes, and the query engine's sampled
answers must agree exactly with direct NumPy on the same samples.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.problem import VariationalProblem
from repro.analysis.runner import run_sscm_analysis
from repro.errors import (
    ServingError,
    StochasticError,
    StoreCorruptionError,
    StoreSchemaError,
)
from repro.experiments import table1_spec, table2_spec
from repro.serving import (
    ProblemSpec,
    QueryEngine,
    SurrogateRecord,
    SurrogateStore,
    ensure_surrogate,
    serve_batch,
)
from repro.serving.store import SCHEMA_VERSION
from repro.stochastic.hermite import HermiteBasis
from repro.stochastic.montecarlo import run_monte_carlo
from repro.stochastic.pce import QuadraticPCE

TINY_PARAMS = {"max_step_um": 2.0, "rdf_nodes": 6}
TINY_REDUCTION = {"caps": {"doping": 1}, "energy": 0.9}


def tiny_spec() -> ProblemSpec:
    return table1_spec("doping", reduction=dict(TINY_REDUCTION),
                       **TINY_PARAMS)


@pytest.fixture()
def store(tmp_path):
    return SurrogateStore(tmp_path / "store")


@pytest.fixture(scope="module")
def synthetic_record():
    rng = np.random.default_rng(7)
    basis = HermiteBasis(3)
    pce = QuadraticPCE(basis, rng.standard_normal((basis.size, 2)),
                       output_names=["a", "b"])
    return SurrogateRecord(
        pce=pce, spec=tiny_spec(),
        reduction=[{"name": "doping", "kind": "doping", "full_size": 6,
                    "reduced_size": 1, "energy_captured": 0.93,
                    "offset": 0}],
        num_runs=5, wall_time=0.25)


class TestSpec:
    def test_cache_key_is_deterministic(self):
        assert tiny_spec().cache_key() == tiny_spec().cache_key()
        assert len(tiny_spec().cache_key()) == 64

    def test_explicit_default_matches_omitted(self):
        implicit = table1_spec("doping", **TINY_PARAMS)
        explicit = table1_spec("doping", frequency=1.0e9, sigma_m=0.1,
                               **TINY_PARAMS)
        assert implicit.cache_key() == explicit.cache_key()

    def test_int_and_float_spell_the_same_key(self):
        # JSON clients with float-only numbers must still hit the cache.
        as_int = table1_spec("doping", max_step_um=2.0, rdf_nodes=6)
        as_float = table1_spec("doping", max_step_um=2, rdf_nodes=6.0)
        assert as_int.cache_key() == as_float.cache_key()

    def test_any_field_changes_key(self):
        base = tiny_spec().cache_key()
        assert table1_spec("both", reduction=dict(TINY_REDUCTION),
                           **TINY_PARAMS).cache_key() != base
        assert table1_spec("doping", reduction={"energy": 0.9},
                           **TINY_PARAMS).cache_key() != base
        assert table1_spec("doping", reduction=dict(TINY_REDUCTION),
                           max_step_um=2.0,
                           rdf_nodes=8).cache_key() != base
        assert table2_spec().cache_key() != base

    def test_cache_key_stable_across_processes(self):
        spec = tiny_spec()
        script = (
            "from repro.experiments import table1_spec;"
            f"print(table1_spec('doping', reduction={TINY_REDUCTION!r},"
            f" **{TINY_PARAMS!r}).cache_key())")
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep \
            + env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == spec.cache_key()

    def test_unknown_param_rejected_at_resolve(self):
        spec = ProblemSpec("table1", params={"bogus": 1})
        with pytest.raises(ServingError, match="bogus"):
            spec.resolved_params()

    def test_unknown_reduction_field_rejected(self):
        with pytest.raises(ServingError, match="reduction"):
            ProblemSpec("table1", reduction={"solver": "magic"})

    def test_non_scalar_param_rejected(self):
        with pytest.raises(ServingError):
            ProblemSpec("table1", params={"rdf_nodes": [1, 2]})

    def test_non_finite_values_rejected(self):
        # json.loads admits NaN/Infinity; the canonical key must not.
        nan = json.loads('{"frequency": NaN}')["frequency"]
        with pytest.raises(ServingError, match="finite"):
            ProblemSpec("table1", params={"frequency": nan})
        with pytest.raises(ServingError, match="finite"):
            ProblemSpec("table1", reduction={"energy": float("inf")})

    def test_unknown_preset_rejected(self):
        with pytest.raises(ServingError, match="unknown preset"):
            ProblemSpec("table9").resolved_params()

    def test_dict_round_trip(self):
        spec = tiny_spec()
        clone = ProblemSpec.from_dict(spec.to_dict())
        assert clone.cache_key() == spec.cache_key()

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ServingError):
            ProblemSpec.from_dict({"preset": "table1", "extra": 1})
        with pytest.raises(ServingError):
            ProblemSpec.from_dict({"params": {}})
        with pytest.raises(ServingError, match="version"):
            ProblemSpec.from_dict({"preset": "table1",
                                   "spec_version": 99})

    def test_build_problem_resolves(self):
        problem = tiny_spec().build_problem()
        assert isinstance(problem, VariationalProblem)
        assert problem.doping_group.size == 6
        signature = problem.spec_signature()
        assert signature["frequency"] == 1.0e9
        assert signature["groups"][0]["covariance_sha"]
        # The fingerprint is itself canonical-JSON-able.
        json.dumps(signature, sort_keys=True)

    def test_signature_distinguishes_drives(self):
        reference = tiny_spec().build_problem()
        halved = tiny_spec().build_problem()
        halved.excitations = {"plug1": 0.5, "plug2": 0.0}
        assert reference.spec_signature() != halved.spec_signature()


class TestStoreRoundTrip:
    def test_bitwise_round_trip(self, store, synthetic_record):
        key = store.save(synthetic_record)
        assert key == synthetic_record.cache_key
        assert key in store
        loaded = store.load(key)
        assert np.array_equal(loaded.pce.coefficients,
                              synthetic_record.pce.coefficients)
        assert loaded.pce.basis.dim == 3
        assert loaded.pce.basis.order == 2
        assert loaded.output_names == ["a", "b"]
        assert loaded.spec.cache_key() == key
        assert loaded.num_runs == 5
        assert loaded.reduction[0]["reduced_size"] == 1
        assert loaded.created_at > 0.0

    def test_clean_miss(self, store):
        key = "0" * 64
        assert store.get(key) is None
        with pytest.raises(ServingError, match="no surrogate"):
            store.load(key)

    def test_malformed_key_rejected(self, store):
        with pytest.raises(ServingError, match="malformed"):
            store.get("../../etc/passwd")

    def test_payload_corruption_detected(self, store, synthetic_record):
        key = store.save(synthetic_record)
        payload = store.root / f"{key}.npz"
        data = bytearray(payload.read_bytes())
        data[len(data) // 2] ^= 0xFF
        payload.write_bytes(bytes(data))
        with pytest.raises(StoreCorruptionError, match="checksum"):
            store.get(key)

    def test_truncated_sidecar_detected(self, store, synthetic_record):
        key = store.save(synthetic_record)
        sidecar = store.root / f"{key}.json"
        sidecar.write_text(sidecar.read_text()[:20])
        with pytest.raises(StoreCorruptionError):
            store.get(key)

    def test_stale_schema_rejected(self, store, synthetic_record):
        from repro.serving.store import SUPPORTED_SCHEMA_VERSIONS
        key = store.save(synthetic_record)
        sidecar = store.root / f"{key}.json"
        meta = json.loads(sidecar.read_text())
        meta["schema_version"] = max(SUPPORTED_SCHEMA_VERSIONS) + 1
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(StoreSchemaError, match="schema"):
            store.get(key)

    def test_edited_spec_detected(self, store, synthetic_record):
        key = store.save(synthetic_record)
        sidecar = store.root / f"{key}.json"
        meta = json.loads(sidecar.read_text())
        meta["spec"]["params"]["rdf_nodes"] = 99
        sidecar.write_text(json.dumps(meta))
        with pytest.raises(StoreCorruptionError, match="edited"):
            store.get(key)

    def test_keys_and_delete(self, store, synthetic_record):
        key = store.save(synthetic_record)
        assert store.keys() == [key]
        store.delete(key)
        assert store.keys() == []
        assert key not in store

    def test_half_written_entry_is_invisible(self, store,
                                             synthetic_record):
        key = store.save(synthetic_record)
        (store.root / f"{key}.npz").unlink()
        assert store.keys() == []
        assert key not in store
        assert store.get(key) is None

    def test_no_tmp_litter_after_save(self, store, synthetic_record):
        store.save(synthetic_record)
        store.save(synthetic_record)
        assert list(store.root.glob("*.tmp")) == []

    def test_entry_survives_preset_evolution(self, store,
                                             synthetic_record,
                                             monkeypatch):
        """Reading must not re-resolve the spec against the *current*
        preset defaults: entries written before a preset gained a new
        parameter stay loadable under their original key."""
        from repro.serving import presets
        key = store.save(synthetic_record)
        old = presets._REGISTRY["table1"]
        monkeypatch.setitem(
            presets._REGISTRY, "table1",
            presets.Preset(name=old.name, description=old.description,
                           defaults={**old.defaults, "new_knob": 1.0},
                           build=old.build))
        loaded = store.load(key)
        np.testing.assert_array_equal(loaded.pce.coefficients,
                                      synthetic_record.pce.coefficients)


class TestEnsureSurrogate:
    @pytest.fixture()
    def solve_counter(self, monkeypatch):
        """Count every deterministic coupled solve (nominal included)."""
        from repro.solver.avsolver import AVSolver
        counter = {"count": 0}
        for name in ("solve", "solve_ports"):
            original = getattr(AVSolver, name)

            def counting(self, *args, _original=original, **kwargs):
                counter["count"] += 1
                return _original(self, *args, **kwargs)

            monkeypatch.setattr(AVSolver, name, counting)
        return counter

    def test_build_then_hit(self, store, solve_counter):
        cold = ensure_surrogate(tiny_spec(), store)
        assert cold.built
        assert solve_counter["count"] > 0
        assert cold.num_solves == solve_counter["count"]

        solve_counter["count"] = 0
        warm = ensure_surrogate(tiny_spec(), store)
        assert not warm.built
        assert warm.num_solves == 0
        assert solve_counter["count"] == 0
        np.testing.assert_array_equal(warm.record.pce.coefficients,
                                      cold.record.pce.coefficients)

    def test_matches_direct_pipeline(self, store):
        spec = tiny_spec()
        report = ensure_surrogate(spec, store)
        direct = run_sscm_analysis(spec.build_problem(),
                                   **spec.analysis_kwargs())
        np.testing.assert_array_equal(report.record.pce.coefficients,
                                      direct.sscm.pce.coefficients)
        assert report.record.num_runs == direct.num_runs
        assert report.record.reduction == direct.reduction_metadata()

    def test_rebuild_forces_solves(self, store, solve_counter):
        ensure_surrogate(tiny_spec(), store)
        solve_counter["count"] = 0
        forced = ensure_surrogate(tiny_spec(), store, rebuild=True)
        assert forced.built
        assert solve_counter["count"] > 0

    def test_damaged_entry_self_heals(self, store, solve_counter):
        key = ensure_surrogate(tiny_spec(), store).cache_key
        payload = store.root / f"{key}.npz"
        payload.write_bytes(b"not an npz archive")
        solve_counter["count"] = 0
        healed = ensure_surrogate(tiny_spec(), store)
        assert healed.built
        assert healed.replaced_damaged
        assert solve_counter["count"] > 0
        assert store.get(key) is not None


class TestQueryEngine:
    @pytest.fixture(scope="class")
    def pce(self):
        rng = np.random.default_rng(3)
        basis = HermiteBasis(4)
        return QuadraticPCE(basis, rng.standard_normal((basis.size, 3)),
                            output_names=["x", "y", "z"])

    @pytest.fixture(scope="class")
    def engine(self, pce):
        return QueryEngine(pce, num_samples=20000, seed=11,
                           chunk_size=1024)

    def test_closed_form_moments(self, pce, engine):
        np.testing.assert_array_equal(engine.mean(), pce.mean)
        np.testing.assert_array_equal(engine.std(), pce.std)

    def test_quantiles_match_numpy_on_same_samples(self, engine):
        samples = engine.sample()
        q = [0.05, 0.5, 0.95]
        np.testing.assert_array_equal(
            engine.quantiles(q), np.quantile(samples, q, axis=0))

    def test_sample_matrix_is_cached_per_request(self, engine):
        first = engine.sample()
        assert engine.sample() is first          # same (m, seed) reused
        assert engine.sample(seed=99) is not first
        np.testing.assert_array_equal(engine.sample(), first)

    def test_yield_matches_numpy_on_same_samples(self, engine):
        samples = engine.sample()
        limit = engine.mean() + 0.5 * engine.std()
        np.testing.assert_array_equal(
            engine.yield_above(limit), (samples > limit).mean(axis=0))
        np.testing.assert_array_equal(
            engine.yield_below(limit), (samples <= limit).mean(axis=0))
        np.testing.assert_allclose(
            engine.yield_above(limit) + engine.yield_below(limit), 1.0)

    def test_chunked_evaluate_bitwise_equal(self, pce):
        rng = np.random.default_rng(0)
        zeta = rng.standard_normal((1000, pce.basis.dim))
        np.testing.assert_array_equal(
            pce.evaluate(zeta, chunk_size=77), pce.evaluate(zeta))

    def test_sample_values_chunk_invariant(self, pce):
        a = pce.sample_values(np.random.default_rng(5), 3000,
                              chunk_size=256)
        b = pce.sample_values(np.random.default_rng(5), 3000,
                              chunk_size=3000)
        np.testing.assert_array_equal(a, b)

    def test_sample_statistics_tiny_relative_std(self):
        """One-pass accumulation must not cancel when std << |mean|."""
        basis = HermiteBasis(1)
        coefficients = np.array([[1.0], [1e-9], [0.0]])
        pce = QuadraticPCE(basis, coefficients)
        mean, std = pce.sample_statistics(np.random.default_rng(2),
                                          num_samples=20000,
                                          chunk_size=4096)
        assert mean[0] == pytest.approx(1.0, rel=1e-9)
        assert std[0] == pytest.approx(1e-9, rel=0.05)

    def test_sample_statistics_matches_two_pass(self, pce):
        mean, std = pce.sample_statistics(np.random.default_rng(9),
                                          num_samples=50000,
                                          chunk_size=4096)
        values = pce.sample_values(np.random.default_rng(9), 50000,
                                   chunk_size=4096)
        np.testing.assert_allclose(mean, values.mean(axis=0), rtol=1e-10)
        np.testing.assert_allclose(std, values.std(axis=0, ddof=1),
                                   rtol=1e-8)

    def test_corner_of_linear_model(self):
        basis = HermiteBasis(2)
        coefficients = np.zeros((basis.size, 1))
        coefficients[0, 0] = 1.0
        # Linear rows follow the constant in the graded basis order.
        coefficients[1, 0] = 3.0
        coefficients[2, 0] = 4.0
        engine = QueryEngine(QuadraticPCE(basis, coefficients))
        corner = engine.corner(sigma=2.0)
        # Steepest direction has |gradient| = 5: 1 +/- 2 * 5.
        np.testing.assert_allclose(corner["high"], [11.0])
        np.testing.assert_allclose(corner["low"], [-9.0])

    def test_corner_of_constant_output(self):
        basis = HermiteBasis(2)
        coefficients = np.zeros((basis.size, 1))
        coefficients[0, 0] = 4.2
        engine = QueryEngine(QuadraticPCE(basis, coefficients))
        corner = engine.corner(sigma=3.0)
        np.testing.assert_allclose(corner["low"], [4.2])
        np.testing.assert_allclose(corner["high"], [4.2])

    def test_answer_round_trips_json(self, engine):
        queries = [
            {"kind": "mean"},
            {"kind": "std"},
            {"kind": "quantiles", "q": [0.5], "num_samples": 2000},
            {"kind": "yield_above", "limit": 0.0, "num_samples": 2000},
            {"kind": "corner", "sigma": 3.0},
            {"kind": "sample_statistics", "num_samples": 2000},
        ]
        for query in queries:
            answer = engine.answer(query)
            assert answer["kind"] == query["kind"]
            json.dumps(answer)

    def test_malformed_query_values_are_serving_errors(self, engine):
        with pytest.raises(ServingError, match="malformed"):
            engine.answer({"kind": "yield_above", "limit": "abc"})
        with pytest.raises(ServingError, match="malformed"):
            engine.answer({"kind": "quantiles", "q": ["oops"]})
        with pytest.raises(ServingError, match="malformed"):
            engine.answer({"kind": "corner", "sigma": "big"})
        with pytest.raises(ServingError, match="malformed"):
            engine.answer({"kind": "quantiles", "q": [0.5],
                           "num_samples": "many"})

    def test_bad_queries_rejected(self, engine):
        with pytest.raises(ServingError):
            engine.answer({"kind": "teleport"})
        with pytest.raises(ServingError):
            engine.answer({"kind": "quantiles"})
        with pytest.raises(ServingError):
            engine.answer({"kind": "yield_above"})
        with pytest.raises(ServingError):
            engine.quantiles([1.5])
        with pytest.raises(ServingError):
            QueryEngine(object())
        with pytest.raises(ServingError, match="chunk_size"):
            QueryEngine(engine.pce, chunk_size=0)
        with pytest.raises(ServingError, match="num_samples"):
            engine.yield_above(0.0, num_samples=0)
        with pytest.raises(StochasticError, match="chunk_size"):
            engine.pce.sample_values(np.random.default_rng(0), 10,
                                     chunk_size=0)
        with pytest.raises(StochasticError, match="chunk_size"):
            engine.pce.sample_statistics(np.random.default_rng(0), 10,
                                         chunk_size=-1)


class TestServeBatch:
    def test_batch_and_error_isolation(self, store):
        good = {"spec": tiny_spec().to_dict(),
                "queries": [{"kind": "mean"},
                            {"kind": "quantiles", "q": [0.5],
                             "num_samples": 2000}]}
        bad = {"spec": {"preset": "table9"}, "queries": []}
        result = serve_batch({"requests": [good, bad]}, store)
        ok, err = result["responses"]
        assert ok["built"] and ok["output_names"] == ["J_interface"]
        assert len(ok["answers"]) == 2
        assert "unknown preset" in err["error"]
        json.dumps(result)

    def test_build_failure_isolated_too(self, store):
        """Library errors below the serving layer (here a MeshError from
        an unbuildable structure) fail their request, not the batch."""
        broken = {"spec": {"preset": "table2",
                           "params": {"max_step_um": -1.0}},
                  "queries": [{"kind": "mean"}]}
        good = {"spec": tiny_spec().to_dict(),
                "queries": [{"kind": "mean"}]}
        result = serve_batch({"requests": [broken, good]}, store)
        assert "error" in result["responses"][0]
        assert result["responses"][1]["built"]

    def test_no_build_misses_are_errors(self, store):
        request = {"spec": tiny_spec().to_dict(),
                   "queries": [{"kind": "mean"}]}
        result = serve_batch(request, store, build_missing=False)
        assert "error" in result["responses"][0]


class TestMonteCarloPreallocation:
    def test_statistics_unchanged(self):
        def sample_fn(rng):
            return rng.standard_normal(3) + [1.0, 2.0, 3.0]

        result = run_monte_carlo(sample_fn, 500, seed=4)
        np.testing.assert_allclose(result.mean, [1.0, 2.0, 3.0],
                                   atol=0.2)
        assert result.samples is None

    def test_keep_samples_matrix(self):
        result = run_monte_carlo(lambda rng: rng.standard_normal(2),
                                 50, seed=1, keep_samples=True)
        assert result.samples.shape == (50, 2)
        assert result.samples.flags.owndata

    def test_row_vector_samples_still_accepted(self):
        """(1, k) row vectors worked with the old vstack path."""
        result = run_monte_carlo(
            lambda rng: rng.standard_normal((1, 3)), 20, seed=3,
            keep_samples=True)
        assert result.samples.shape == (20, 3)

    def test_inconsistent_width_rejected(self):
        widths = iter([2, 3])

        def sample_fn(rng):
            return np.zeros(next(widths))

        with pytest.raises(StochasticError, match="shape"):
            run_monte_carlo(sample_fn, 2, seed=0)
