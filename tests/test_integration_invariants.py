"""Cross-module invariants under random perturbation samples.

The stochastic pipeline solves thousands of perturbed structures; these
tests assert that physical invariants (KCL, passivity, reciprocity,
sign patterns) hold for *random* perturbed samples, not just the
nominal geometry — the property that makes the Monte-Carlo and
collocation statistics meaningful.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import run_mc_analysis
from repro.errors import ReproError
from repro.experiments import (
    Table1Config,
    Table2Config,
    table1_problem,
    table2_problem,
)
from repro.extraction import port_current
from repro.geometry import MetalPlugDesign, TsvDesign
from repro.units import um
from repro.variation.random_field import stable_cholesky


@pytest.fixture(scope="module")
def tiny_problem():
    return table1_problem("both", Table1Config(
        design=MetalPlugDesign(max_step=um(2.0)), rdf_nodes=8))


def _random_sample(problem, rng, scale=1.0):
    xi = {}
    for group in problem.groups:
        chol = stable_cholesky(group.covariance)
        xi[group.name] = scale * (chol @ rng.standard_normal(group.size))
    return xi


class TestPerturbedSampleInvariants:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_kcl_on_random_samples(self, tiny_problem, seed):
        rng = np.random.default_rng(seed)
        xi = _random_sample(tiny_problem, rng)
        solution = tiny_problem.solve_sample(xi)
        i1 = port_current(solution, "plug1")
        i2 = port_current(solution, "plug2")
        assert abs(i1 + i2) < 1e-8 * abs(i1)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_passivity_on_random_samples(self, tiny_problem, seed):
        """The structure absorbs power: Re(I) into the driven port > 0."""
        rng = np.random.default_rng(seed)
        xi = _random_sample(tiny_problem, rng)
        solution = tiny_problem.solve_sample(xi)
        assert port_current(solution, "plug1").real > 0.0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_qoi_continuous_at_nominal(self, tiny_problem, seed):
        """A vanishing perturbation leaves the QoI at its nominal value
        (the smoothness the collocation quadrature relies on)."""
        rng = np.random.default_rng(seed)
        xi_full = _random_sample(tiny_problem, rng)
        xi_tiny = {k: 1e-4 * v for k, v in xi_full.items()}
        xi_zero = {k: 0.0 * v for k, v in xi_full.items()}
        q_tiny = tiny_problem.evaluate_sample(xi_tiny)[0]
        q_zero = tiny_problem.evaluate_sample(xi_zero)[0]
        q_full = tiny_problem.evaluate_sample(xi_full)[0]
        # The tiny sample moves the QoI by a tiny fraction of what the
        # full sample moves it (first-order scaling).
        full_move = abs(q_full - q_zero)
        assert abs(q_tiny - q_zero) <= 1e-2 * full_move + 1e-9 * q_zero

    def test_mc_never_raises_with_csv(self, tiny_problem):
        """Every CSV sample solves (the Fig. 1 robustness property,
        end-to-end through the pipeline)."""
        result = run_mc_analysis(tiny_problem, num_runs=10, seed=0)
        assert np.all(np.isfinite(result.mean))
        assert np.all(result.std >= 0.0)


class TestTsvSampleInvariants:
    @pytest.fixture(scope="class")
    def tsv_problem(self):
        return table2_problem(Table2Config(
            design=TsvDesign(max_step=um(2.5), margin=um(2.5)),
            rdf_nodes=8))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_capacitance_signs_on_random_samples(self, tsv_problem, seed):
        rng = np.random.default_rng(seed)
        xi = _random_sample(tsv_problem, rng)
        values = tsv_problem.evaluate_sample(xi)
        assert values[0] > 0.0
        assert np.all(values[1:] < 0.0)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_self_cap_bounded_variation(self, tsv_problem, seed):
        """A 1-sigma roughness sample moves C_T1 by far less than 50 %."""
        rng = np.random.default_rng(seed)
        xi = _random_sample(tsv_problem, rng)
        zero = {k: 0.0 * v for k, v in xi.items()}
        c_sample = tsv_problem.evaluate_sample(xi)[0]
        c_nominal = tsv_problem.evaluate_sample(zero)[0]
        assert abs(c_sample - c_nominal) < 0.5 * c_nominal


class TestFailureModes:
    def test_naive_model_large_sigma_raises_repro_error(self):
        """Destroyed-mesh samples fail loudly with a ReproError, never
        silently produce numbers (the 'error of calculation' the paper
        warns about)."""
        problem = table1_problem("geometry", Table1Config(
            design=MetalPlugDesign(max_step=um(2.0)),
            sigma_g=um(3.0), rdf_nodes=8, surface_model="naive"))
        group = problem.geometry_groups[0]
        xi = {g.name: np.zeros(g.size) for g in problem.groups}
        xi[group.name] = np.full(group.size, um(3.0))
        with pytest.raises(ReproError):
            problem.evaluate_sample(xi)

    def test_csv_model_survives_identical_sample(self):
        problem = table1_problem("geometry", Table1Config(
            design=MetalPlugDesign(max_step=um(2.0)),
            sigma_g=um(3.0), rdf_nodes=8, surface_model="csv"))
        group = problem.geometry_groups[0]
        xi = {g.name: np.zeros(g.size) for g in problem.groups}
        xi[group.name] = np.full(group.size, um(3.0))
        value = problem.evaluate_sample(xi)
        assert np.isfinite(value[0])
