"""Shared fixtures: small structures that solve fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import (
    MetalPlugDesign,
    TsvDesign,
    build_metalplug_structure,
    build_tsv_structure,
)
from repro.mesh import CartesianGrid, LinkSet, compute_geometry
from repro.units import um


@pytest.fixture(scope="session")
def small_grid():
    """A tiny non-uniform grid for mesh/topology tests."""
    return CartesianGrid(
        xs=np.array([0.0, 1.0, 2.5, 4.0]) * 1e-6,
        ys=np.array([0.0, 0.5, 1.5]) * 1e-6,
        zs=np.array([0.0, 1.0, 2.0, 3.5, 5.0]) * 1e-6,
    )


@pytest.fixture(scope="session")
def small_links(small_grid):
    return LinkSet(small_grid)


@pytest.fixture(scope="session")
def small_geometry(small_grid, small_links):
    return compute_geometry(small_grid, links=small_links)


@pytest.fixture(scope="session")
def coarse_plug_design():
    """Coarse metal-plug design: fast deterministic solves in tests."""
    return MetalPlugDesign(max_step=um(2.0))


@pytest.fixture(scope="session")
def coarse_plug_structure(coarse_plug_design):
    return build_metalplug_structure(coarse_plug_design)


@pytest.fixture(scope="session")
def coarse_tsv_design():
    """Coarse TSV design: fast deterministic solves in tests."""
    return TsvDesign(max_step=um(2.5), margin=um(2.5))


@pytest.fixture(scope="session")
def coarse_tsv_structure(coarse_tsv_design):
    return build_tsv_structure(coarse_tsv_design)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
