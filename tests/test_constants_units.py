"""Tests for physical constants and unit helpers."""

import math

import pytest

from repro import constants, units
from repro.errors import ReproError


class TestConstants:
    def test_speed_of_light(self):
        assert constants.C0 == pytest.approx(2.99792458e8, rel=1e-6)

    def test_vacuum_impedance(self):
        z0 = math.sqrt(constants.MU0 / constants.EPS0)
        assert z0 == pytest.approx(376.730, rel=1e-4)

    def test_thermal_voltage_room(self):
        assert constants.thermal_voltage(300.0) == pytest.approx(
            0.025852, rel=1e-3)
        assert constants.VT_ROOM == pytest.approx(
            constants.thermal_voltage(300.0))

    def test_thermal_voltage_scales_linearly(self):
        assert constants.thermal_voltage(600.0) == pytest.approx(
            2.0 * constants.thermal_voltage(300.0))

    def test_thermal_voltage_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            constants.thermal_voltage(0.0)
        with pytest.raises(ValueError):
            constants.thermal_voltage(-10.0)

    def test_intrinsic_density_si_order(self):
        assert 1e15 < constants.NI_SILICON < 1e17


class TestUnits:
    def test_um(self):
        assert units.um(3.0) == pytest.approx(3.0e-6)

    def test_nm(self):
        assert units.nm(500.0) == pytest.approx(5.0e-7)

    def test_ghz(self):
        assert units.ghz(1.0) == pytest.approx(1.0e9)

    def test_angular_frequency(self):
        assert units.angular_frequency(1.0e9) == pytest.approx(
            2.0 * math.pi * 1.0e9)

    def test_femtofarad_roundtrip(self):
        assert units.to_femtofarad(7.05e-15) == pytest.approx(7.05)

    def test_microampere_roundtrip(self):
        assert units.to_microampere(1.2e-4) == pytest.approx(120.0)

    def test_per_cm3(self):
        assert units.per_cm3(1.0e15) == pytest.approx(1.0e21)


class TestErrorHierarchy:
    def test_all_errors_derive_from_reproerror(self):
        from repro import errors

        for name in ("MeshError", "MeshDestroyedError", "GeometryError",
                     "MaterialError", "ConvergenceError",
                     "SingularSystemError", "StochasticError",
                     "ExtractionError"):
            assert issubclass(getattr(errors, name), ReproError)

    def test_mesh_destroyed_is_mesh_error(self):
        from repro.errors import MeshDestroyedError, MeshError

        assert issubclass(MeshDestroyedError, MeshError)

    def test_convergence_error_carries_diagnostics(self):
        from repro.errors import ConvergenceError

        err = ConvergenceError("failed", iterations=7, residual=1e-3)
        assert err.iterations == 7
        assert err.residual == pytest.approx(1e-3)
