"""Tests for parallel wave evaluation and warm-started refinement.

Two halves of the same production story: adaptive builds that fan each
refinement wave over worker processes with *bitwise-identical* results,
and adaptive builds seeded from a stored sibling surrogate that reach
the tolerance at strictly fewer solves than a cold build.
"""

import json

import numpy as np
import pytest

from repro.adaptive import AdaptiveConfig, WarmStart, run_adaptive_sscm
from repro.errors import ServingError, StochasticError
from repro.units import um

D = 8
TOL = 1e-4


def _anisotropic(scale_b=1.0, scale_a=1.0):
    """Quadratic QoI where directions 0 and 1 carry the variance."""
    A = np.zeros((D, D))
    A[0, 0], A[1, 1] = 1.5 * scale_a, 0.8 * scale_a
    A[0, 1] = A[1, 0] = 0.4 * scale_a
    b = np.zeros(D)
    b[0], b[1] = 1.0 * scale_b, 0.5 * scale_b
    for i in range(2, D):
        A[i, i] = 1e-6
        b[i] = 1e-6

    def f(z):
        return np.array([3.0 + b @ z + z @ A @ z])

    std = np.sqrt(b @ b + 2.0 * np.sum(A * A))
    return f, std


def _builder():
    from repro.experiments import Table1Config, table1_problem
    from repro.geometry import MetalPlugDesign

    return table1_problem("doping", Table1Config(
        design=MetalPlugDesign(max_step=um(2.0)), rdf_nodes=8))


class TestAdaptiveConfigWorkers:
    def test_workers_validated(self):
        for bad in (0, -1, True, 1.5):
            with pytest.raises(StochasticError):
                AdaptiveConfig(workers=bad)
        assert AdaptiveConfig(workers=None).workers is None
        assert AdaptiveConfig(workers=4).workers == 4

    def test_to_dict_excludes_workers_by_default(self):
        config = AdaptiveConfig(tol=1e-3, workers=4)
        assert "workers" not in config.to_dict()
        assert config.to_dict(include_workers=True)["workers"] == 4

    def test_from_dict_accepts_workers(self):
        config = AdaptiveConfig.from_dict({"tol": 1e-3, "workers": 2.0})
        assert config.workers == 2
        assert AdaptiveConfig.from_dict({"workers": None}).workers is None
        with pytest.raises(StochasticError):
            AdaptiveConfig.from_dict({"wrokers": 2})


class TestSpecWorkersNotInCacheKey:
    def _spec(self, adaptive):
        from repro.experiments import table2_spec
        return table2_spec(adaptive=adaptive, rdf_nodes=8)

    def test_same_cache_key_any_worker_count(self):
        plain = self._spec({"tol": 1e-3})
        wide = self._spec({"tol": 1e-3, "workers": 4})
        assert plain.cache_key() == wide.cache_key()
        assert plain.canonical() == wide.canonical()
        assert "workers" not in plain.canonical()["reduction"]["adaptive"]

    def test_workers_survive_to_analysis_kwargs(self):
        spec = self._spec({"tol": 1e-3, "workers": 4})
        refinement = spec.analysis_kwargs()["refinement"]
        assert refinement.workers == 4
        assert refinement.tol == 1e-3

    def test_live_config_round_trips_workers(self):
        spec = self._spec(AdaptiveConfig(tol=1e-3, workers=3))
        assert spec.reduction["adaptive"]["workers"] == 3
        assert spec.analysis_kwargs()["refinement"].workers == 3

    def test_different_stopping_controls_still_split_keys(self):
        assert self._spec({"tol": 1e-3}).cache_key() \
            != self._spec({"tol": 1e-4}).cache_key()


class TestWarmStartSeed:
    def test_from_refinement_roundtrip(self):
        f, _ = _anisotropic()
        cold = run_adaptive_sscm(f, D, AdaptiveConfig(tol=TOL,
                                                      max_level=2))
        meta = cold.refinement_metadata()
        seed = WarmStart.from_refinement(meta, source="abc")
        assert seed.source == "abc"
        assert (0,) * D in seed.indices
        assert set(seed.indices) == {tuple(ix) for ix in
                                     meta["accepted"]}
        assert seed.frontier_error == meta["error_estimate"]
        assert all(indicator >= 0.0
                   for indicator in seed.indicators.values())

    def test_from_refinement_requires_indices(self):
        with pytest.raises(StochasticError):
            WarmStart.from_refinement({"trace": []})
        with pytest.raises(StochasticError):
            WarmStart.from_refinement("not a mapping")

    def test_metadata_is_json_serializable(self):
        f, _ = _anisotropic()
        cold = run_adaptive_sscm(f, D, AdaptiveConfig(tol=TOL,
                                                      max_level=2))
        warm = run_adaptive_sscm(
            f, D, AdaptiveConfig(tol=TOL, max_level=2),
            warm_start=WarmStart.from_refinement(
                cold.refinement_metadata(), source="k"))
        round_tripped = json.loads(
            json.dumps(warm.refinement_metadata()))
        assert round_tripped["warm_start_source"] == "k"
        assert round_tripped["accepted_indicators"]


class TestWarmStartedRefinement:
    def _cold(self, f=None):
        if f is None:
            f, _ = _anisotropic()
        return run_adaptive_sscm(f, D, AdaptiveConfig(tol=TOL,
                                                      max_level=2))

    def test_replay_certifies_at_fewer_solves(self):
        f, exact_std = _anisotropic()
        cold = self._cold(f)
        seed = WarmStart.from_refinement(cold.refinement_metadata(),
                                         source="src")
        warm = run_adaptive_sscm(f, D,
                                 AdaptiveConfig(tol=TOL, max_level=2),
                                 warm_start=seed)
        assert warm.termination == "warm"
        assert warm.converged
        assert warm.num_runs < cold.num_runs
        assert warm.warm["used"] and warm.warm["certified"]
        assert warm.refinement_metadata()["warm_start_source"] == "src"
        assert warm.std[0] == pytest.approx(exact_std, rel=1e-3)

    def test_perturbed_problem_fewer_solves_matched_accuracy(self):
        f, _ = _anisotropic()
        cold = self._cold(f)
        seed = WarmStart.from_refinement(cold.refinement_metadata(),
                                         source="src")
        f2, exact_std2 = _anisotropic(scale_b=1.07, scale_a=1.04)
        cold2 = self._cold(f2)
        warm2 = run_adaptive_sscm(f2, D,
                                  AdaptiveConfig(tol=TOL, max_level=2),
                                  warm_start=seed)
        assert warm2.num_runs < cold2.num_runs
        assert warm2.std[0] == pytest.approx(exact_std2, rel=1e-3)
        # Warm fits omit the (sub-tol) frontier surpluses, so the two
        # builds agree to the configured tolerance, not bitwise.
        assert warm2.mean[0] == pytest.approx(cold2.mean[0], rel=TOL)

    def test_dimension_mismatch_degrades_to_cold_bitwise(self):
        f, _ = _anisotropic()
        cold = self._cold(f)
        seed = WarmStart(indices=((0, 0), (1, 0)), frontier_error=0.0)
        warm = run_adaptive_sscm(f, D,
                                 AdaptiveConfig(tol=TOL, max_level=2),
                                 warm_start=seed)
        assert warm.warm["used"] is False
        assert "dim" in warm.warm["reason"]
        assert warm.num_runs == cold.num_runs
        assert np.array_equal(warm.pce.coefficients,
                              cold.pce.coefficients)

    def test_root_only_seed_degrades_to_cold(self):
        """A source that certified at its first frontier has nothing
        to seed; reporting it as a warm start would attribute
        nonexistent savings to it."""
        f, _ = _anisotropic()
        cold = self._cold(f)
        root_only = WarmStart(indices=((0,) * D,),
                              frontier_error=1e-6,
                              source="rootsrc")
        warm = run_adaptive_sscm(f, D,
                                 AdaptiveConfig(tol=TOL, max_level=2),
                                 warm_start=root_only)
        assert warm.warm["used"] is False
        assert "root" in warm.warm["reason"]
        assert warm.refinement_metadata()["warm_start_source"] is None
        assert warm.num_runs == cold.num_runs
        assert np.array_equal(warm.pce.coefficients,
                              cold.pce.coefficients)

    def test_non_downward_closed_seed_degrades_to_cold(self):
        f, _ = _anisotropic()
        broken = ((0,) * D, (2,) + (0,) * (D - 1))  # missing level 1
        warm = run_adaptive_sscm(
            f, D, AdaptiveConfig(tol=TOL, max_level=2),
            warm_start=WarmStart(indices=broken, frontier_error=0.0))
        assert warm.warm["used"] is False
        assert "downward-closed" in warm.warm["reason"]

    def test_budget_overflow_degrades_to_cold(self):
        f, _ = _anisotropic()
        cold = self._cold(f)
        seed = WarmStart.from_refinement(cold.refinement_metadata())
        warm = run_adaptive_sscm(
            f, D, AdaptiveConfig(tol=TOL, max_level=2, max_solves=3),
            warm_start=seed)
        assert warm.warm["used"] is False
        assert "max_solves" in warm.warm["reason"]
        assert warm.num_runs <= 3

    def test_seeds_above_level_cap_are_filtered(self):
        f, _ = _anisotropic()
        cold = run_adaptive_sscm(f, D, AdaptiveConfig(tol=TOL,
                                                      max_level=3))
        seed = WarmStart.from_refinement(cold.refinement_metadata())
        warm = run_adaptive_sscm(f, D,
                                 AdaptiveConfig(tol=TOL, max_level=1),
                                 warm_start=seed)
        assert warm.warm["used"] is True
        assert all(sum(index) <= 1 for index in warm.indices)

    def test_uncertifiable_seed_reopens_frontier(self):
        f, _ = _anisotropic()
        cold = self._cold(f)
        good = WarmStart.from_refinement(cold.refinement_metadata())
        doubtful = WarmStart(indices=good.indices,
                             frontier_error=float("inf"),
                             indicators=good.indicators)
        warm = run_adaptive_sscm(f, D,
                                 AdaptiveConfig(tol=TOL, max_level=2),
                                 warm_start=doubtful)
        assert warm.warm["used"] is True
        assert warm.warm["certified"] is False
        assert warm.termination in ("tol", "exhausted")
        # Re-opened frontier re-derives the cold build's final set.
        assert warm.num_runs == cold.num_runs
        np.testing.assert_allclose(warm.std, cold.std, rtol=1e-12)

    def test_warm_start_through_solve_many(self):
        f, _ = _anisotropic()
        cold = self._cold(f)
        seed = WarmStart.from_refinement(cold.refinement_metadata())

        def batch(points):
            return np.vstack([f(point) for point in points])

        warm = run_adaptive_sscm(f, D,
                                 AdaptiveConfig(tol=TOL, max_level=2),
                                 solve_many=batch, warm_start=seed)
        reference = run_adaptive_sscm(
            f, D, AdaptiveConfig(tol=TOL, max_level=2),
            warm_start=seed)
        assert warm.termination == "warm"
        assert np.array_equal(warm.pce.coefficients,
                              reference.pce.coefficients)

    def test_warm_start_requires_refinement_in_runner(self):
        from repro.analysis import run_sscm_analysis

        with pytest.raises(StochasticError):
            run_sscm_analysis(_builder(),
                              warm_start=WarmStart(indices=((0, 0),),
                                                   frontier_error=0.0))


class TestParallelWaveEvaluator:
    def test_workers_require_problem_builder(self):
        from repro.analysis import run_sscm_analysis

        with pytest.raises(StochasticError):
            run_sscm_analysis(
                _builder(), energy=1.0,
                max_variables_by_group={"doping": 2},
                refinement=AdaptiveConfig(tol=1e-3, max_level=2,
                                          workers=2))

    def test_evaluator_validates_worker_count(self):
        from repro.analysis import ParallelWaveEvaluator

        with pytest.raises(StochasticError):
            ParallelWaveEvaluator(_builder, object(), num_workers=0)

    def test_fixed_grid_workers_require_problem_builder(self):
        from repro.analysis import run_sscm_analysis

        with pytest.raises(StochasticError):
            run_sscm_analysis(_builder(), energy=1.0,
                              max_variables_by_group={"doping": 2},
                              workers=2)

    def test_fixed_grid_workers_validated(self):
        from repro.analysis import run_sscm_analysis

        for bad in (0, -1, True, 1.5):
            with pytest.raises(StochasticError):
                run_sscm_analysis(_builder(), workers=bad,
                                  problem_builder=_builder)

    def test_parallel_fixed_grid_bitwise_equals_serial(self):
        """ROADMAP item: the level-2 grid is one big wave for the
        existing evaluator — identical bits, just more processes."""
        from repro.analysis import run_sscm_analysis

        serial = run_sscm_analysis(
            _builder(), energy=1.0,
            max_variables_by_group={"doping": 3})
        parallel = run_sscm_analysis(
            _builder(), energy=1.0,
            max_variables_by_group={"doping": 3},
            workers=2, problem_builder=_builder)
        assert parallel.num_runs == serial.num_runs
        assert np.array_equal(parallel.sscm.pce.coefficients,
                              serial.sscm.pce.coefficients)
        assert np.array_equal(parallel.mean, serial.mean)
        assert np.array_equal(parallel.std, serial.std)
        assert parallel.refinement_metadata() is None
        assert parallel.basis_metadata() == serial.basis_metadata()

    def test_parallel_build_bitwise_equals_serial(self):
        from repro.analysis import run_sscm_analysis

        serial = run_sscm_analysis(
            _builder(), energy=1.0,
            max_variables_by_group={"doping": 3},
            refinement=AdaptiveConfig(tol=1e-3, max_level=2))
        parallel = run_sscm_analysis(
            _builder(), energy=1.0,
            max_variables_by_group={"doping": 3},
            refinement=AdaptiveConfig(tol=1e-3, max_level=2,
                                      workers=2),
            problem_builder=_builder)
        assert parallel.num_runs == serial.num_runs
        assert np.array_equal(parallel.sscm.pce.coefficients,
                              serial.sscm.pce.coefficients)
        assert np.array_equal(parallel.mean, serial.mean)
        assert np.array_equal(parallel.std, serial.std)
        serial_meta = serial.refinement_metadata()
        parallel_meta = parallel.refinement_metadata()
        assert parallel_meta["indices"] == serial_meta["indices"]
        # Same sidecar too: the worker count is pure execution policy.
        assert parallel_meta["config"] == serial_meta["config"]


class TestCliOverlay:
    def _args(self, **overrides):
        import argparse
        defaults = {"adaptive": False, "tol": None, "max_solves": None,
                    "max_level": None, "basis": None, "workers": None}
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_workers_flag_stays_execution_only(self):
        """--workers parallelizes whatever build the spec asks for —
        it lands at the reduction level and no longer flips a
        fixed-grid spec into an adaptive build."""
        from repro.__main__ import _overlay_adaptive
        from repro.experiments import table2_spec

        spec = table2_spec(rdf_nodes=8)
        overlaid = _overlay_adaptive(spec, self._args(workers=4))
        assert "adaptive" not in overlaid.reduction
        assert overlaid.reduction["workers"] == 4
        kwargs = overlaid.analysis_kwargs()
        assert kwargs["refinement"] is None
        assert kwargs["workers"] == 4

    def test_workers_flag_keeps_cache_key(self):
        from repro.__main__ import _overlay_adaptive
        from repro.experiments import table2_spec

        spec = table2_spec(rdf_nodes=8, adaptive={"tol": 1e-3})
        overlaid = _overlay_adaptive(spec, self._args(workers=4))
        assert overlaid.cache_key() == spec.cache_key()

    def test_workers_flag_reaches_adaptive_builds(self):
        """An adaptive spec + --workers: the knob flows through the
        reduction level into the build (the adaptive block's own
        workers entry, when present, wins)."""
        from repro.__main__ import _overlay_adaptive
        from repro.experiments import table2_spec

        spec = table2_spec(rdf_nodes=8, adaptive={"tol": 1e-3})
        overlaid = _overlay_adaptive(spec, self._args(workers=4))
        kwargs = overlaid.analysis_kwargs()
        assert kwargs["refinement"].workers is None
        assert kwargs["workers"] == 4

    def test_basis_flag_implies_adaptive(self):
        from repro.__main__ import _overlay_adaptive
        from repro.experiments import table2_spec

        spec = table2_spec(rdf_nodes=8)
        overlaid = _overlay_adaptive(spec,
                                     self._args(basis="adaptive"))
        assert overlaid.reduction["adaptive"]["basis"] == "adaptive"
        refinement = overlaid.analysis_kwargs()["refinement"]
        assert refinement.basis == "adaptive"
        assert overlaid.cache_key() != spec.cache_key()

    def test_no_flags_pass_spec_through(self):
        from repro.__main__ import _overlay_adaptive
        from repro.experiments import table2_spec

        spec = table2_spec(rdf_nodes=8)
        assert _overlay_adaptive(spec, self._args()) is spec


def _tiny_record(spec, refinement=None):
    """A store record with a minimal (1-D) surrogate payload."""
    from repro.serving import SurrogateRecord
    from repro.stochastic import HermiteBasis, QuadraticPCE

    basis = HermiteBasis(1, order=2)
    pce = QuadraticPCE(basis, np.zeros((basis.size, 1)),
                       output_names=["q"])
    return SurrogateRecord(pce=pce, spec=spec, refinement=refinement)


class TestFindWarmStart:
    REFINEMENT = {
        "accepted": [[0], [1]],
        "accepted_indicators": [[[0], 1.0], [[1], 0.5]],
        "trace": [],
        "error_estimate": 1e-5,
        "termination": "tol",
    }

    def _spec(self, preset="table2", adaptive=None, **params):
        from repro.serving import ProblemSpec
        reduction = {}
        if adaptive is not None:
            reduction["adaptive"] = adaptive
        return ProblemSpec(preset=preset, params=params,
                           reduction=reduction)

    def test_nearest_sibling_wins(self, tmp_path):
        from repro.serving import SurrogateStore

        store = SurrogateStore(tmp_path)
        near = self._spec(adaptive={"tol": 1e-3}, rdf_nodes=8,
                          margin_um=2.5)
        far = self._spec(adaptive={"tol": 1e-3}, rdf_nodes=8,
                         margin_um=1.0)
        store.save(_tiny_record(near, refinement=self.REFINEMENT))
        store.save(_tiny_record(far, refinement=self.REFINEMENT))

        target = self._spec(adaptive={"tol": 1e-3}, rdf_nodes=8,
                            margin_um=2.4)
        key, sidecar = store.find_warm_start(target)
        assert key == near.cache_key()
        assert sidecar["refinement"]["accepted"] == [[0], [1]]

    def test_worker_count_does_not_block_matching(self, tmp_path):
        from repro.serving import SurrogateStore

        store = SurrogateStore(tmp_path)
        stored = self._spec(adaptive={"tol": 1e-3}, margin_um=2.5)
        store.save(_tiny_record(stored, refinement=self.REFINEMENT))
        target = self._spec(adaptive={"tol": 1e-3, "workers": 4},
                            margin_um=2.6)
        found = store.find_warm_start(target)
        assert found is not None and found[0] == stored.cache_key()

    def test_basis_variant_does_not_block_matching(self, tmp_path):
        # The accepted index set is basis-independent, so a surrogate
        # fitted under the paper's quadratic truncation may seed an
        # order-adaptive build of a sibling spec (and vice versa).
        from repro.serving import SurrogateStore

        store = SurrogateStore(tmp_path)
        stored = self._spec(adaptive={"tol": 1e-3, "basis": "order2"},
                            margin_um=2.5)
        store.save(_tiny_record(stored, refinement=self.REFINEMENT))
        target = self._spec(
            adaptive={"tol": 1e-3, "basis": "adaptive"}, margin_um=2.6)
        found = store.find_warm_start(target)
        assert found is not None and found[0] == stored.cache_key()

    def test_basis_relaxed_seed_is_recorded_as_such(self, tmp_path):
        from repro.serving import SurrogateStore
        from repro.serving.pipeline import _warm_start_for

        store = SurrogateStore(tmp_path)
        stored = self._spec(adaptive={"tol": 1e-3, "basis": "order2"},
                            margin_um=2.5)
        key = store.save(_tiny_record(stored,
                                      refinement=self.REFINEMENT))

        relaxed = _warm_start_for(
            self._spec(adaptive={"tol": 1e-3, "basis": "adaptive"},
                       margin_um=2.6), store)
        assert relaxed.source == f"{key}:basis-relaxed"
        exact = _warm_start_for(
            self._spec(adaptive={"tol": 1e-3, "basis": "order2"},
                       margin_um=2.6), store)
        assert exact.source == key

    def test_tol_variant_does_not_block_matching(self, tmp_path):
        # The accepted index set transfers across stopping tolerances
        # (only the certification does not), so a looser-tol sibling
        # may seed a tighter build — and vice versa.
        from repro.serving import SurrogateStore

        store = SurrogateStore(tmp_path)
        stored = self._spec(adaptive={"tol": 1e-2}, margin_um=2.5)
        store.save(_tiny_record(stored, refinement=self.REFINEMENT))
        for tol in (1e-4, 1e-1):
            found = store.find_warm_start(
                self._spec(adaptive={"tol": tol}, margin_um=2.6))
            assert found is not None \
                and found[0] == stored.cache_key(), tol

    def test_exact_tol_sibling_outranks_relaxed(self, tmp_path):
        # Equidistant siblings: the one whose tol matches the target
        # wins, regardless of key order.
        from repro.serving import SurrogateStore

        store = SurrogateStore(tmp_path)
        exact = self._spec(adaptive={"tol": 1e-3}, margin_um=2.5)
        looser = self._spec(adaptive={"tol": 1e-2}, margin_um=2.5)
        store.save(_tiny_record(exact, refinement=self.REFINEMENT))
        store.save(_tiny_record(looser, refinement=self.REFINEMENT))

        target = self._spec(adaptive={"tol": 1e-3}, margin_um=2.6)
        key, _ = store.find_warm_start(target)
        assert key == exact.cache_key()

    def test_tol_relaxed_seed_is_recorded_and_uncertifiable(
            self, tmp_path):
        # Mirrors the basis-relaxed provenance test: a cross-tol seed
        # carries the :tol-relaxed suffix and an infinite frontier
        # error, so the driver can never certify from it.
        from repro.serving import SurrogateStore
        from repro.serving.pipeline import _warm_start_for

        store = SurrogateStore(tmp_path)
        stored = self._spec(adaptive={"tol": 1e-2}, margin_um=2.5)
        key = store.save(_tiny_record(stored,
                                      refinement=self.REFINEMENT))

        relaxed = _warm_start_for(
            self._spec(adaptive={"tol": 1e-3}, margin_um=2.6), store)
        assert relaxed.source == f"{key}:tol-relaxed"
        assert relaxed.frontier_error == float("inf")
        exact = _warm_start_for(
            self._spec(adaptive={"tol": 1e-2}, margin_um=2.6), store)
        assert exact.source == key
        assert np.isfinite(exact.frontier_error)

    def test_basis_and_tol_relaxations_compose(self, tmp_path):
        from repro.serving import SurrogateStore
        from repro.serving.pipeline import _warm_start_for

        store = SurrogateStore(tmp_path)
        stored = self._spec(adaptive={"tol": 1e-2, "basis": "order2"},
                            margin_um=2.5)
        key = store.save(_tiny_record(stored,
                                      refinement=self.REFINEMENT))
        seed = _warm_start_for(
            self._spec(adaptive={"tol": 1e-3, "basis": "adaptive"},
                       margin_um=2.6), store)
        assert seed.source == f"{key}:basis-relaxed:tol-relaxed"
        assert seed.frontier_error == float("inf")

    def test_uncertified_seed_reopens_frontier(self):
        # Driver-level contract behind the tol relaxation: an
        # uncertified() copy still seeds the interior but must never
        # terminate "warm".
        from repro.adaptive.driver import WarmStart

        warm = WarmStart(indices=((0,), (1,)), frontier_error=1e-5,
                         indicators={(0,): 1.0, (1,): 0.5},
                         source="abc")
        uncertified = warm.uncertified()
        assert uncertified.frontier_error == float("inf")
        assert uncertified.indices == warm.indices
        assert uncertified.source == warm.source

    def test_no_match_cases(self, tmp_path):
        from repro.serving import SurrogateStore

        store = SurrogateStore(tmp_path)
        stored = self._spec(adaptive={"tol": 1e-3}, margin_um=2.5)
        store.save(_tiny_record(stored, refinement=self.REFINEMENT))

        # Fixed-grid target: nothing to warm-start.
        assert store.find_warm_start(self._spec(margin_um=2.6)) is None
        # Different budget caps: a differently-capped source explored
        # a different region, so its interior doesn't transfer.
        assert store.find_warm_start(
            self._spec(adaptive={"tol": 1e-3, "max_level": 3},
                       margin_um=2.6)) is None
        # Different preset.
        assert store.find_warm_start(
            self._spec(preset="table1", adaptive={"tol": 1e-3})) is None
        # Non-numeric param difference changes the problem family.
        assert store.find_warm_start(
            self._spec(adaptive={"tol": 1e-3}, margin_um=2.6,
                       surface_model="naive")) is None
        # The identical spec is a cache hit, not a warm start.
        assert store.find_warm_start(
            self._spec(adaptive={"tol": 1e-3}, margin_um=2.5)) is None

    def test_entries_without_refinement_are_skipped(self, tmp_path):
        from repro.serving import SurrogateStore

        store = SurrogateStore(tmp_path)
        store.save(_tiny_record(
            self._spec(adaptive={"tol": 1e-3}, margin_um=2.5)))
        assert store.find_warm_start(
            self._spec(adaptive={"tol": 1e-3}, margin_um=2.6)) is None

    def test_damaged_sidecar_is_skipped(self, tmp_path):
        from repro.serving import SurrogateStore

        store = SurrogateStore(tmp_path)
        stored = self._spec(adaptive={"tol": 1e-3}, margin_um=2.5)
        key = store.save(_tiny_record(stored,
                                      refinement=self.REFINEMENT))
        sidecar_path = store.root / f"{key}.json"
        sidecar_path.write_text(sidecar_path.read_text()
                                .replace('"tol":0.001', '"tol":0.002'))
        assert store.find_warm_start(
            self._spec(adaptive={"tol": 1e-3}, margin_um=2.6)) is None

    def test_malformed_refinement_means_cold_build(self, tmp_path):
        """An edited refinement block (which the store's spec-rehash
        gate cannot catch) must degrade to a cold build, not crash."""
        from repro.serving import SurrogateStore
        from repro.serving.pipeline import _warm_start_for

        for refinement in ({"accepted": [3]},                # not nested
                           {"trace": [{"indicator": 1.0}]},  # no index
                           {"accepted": [[0]],
                            "accepted_indicators": [["x"]]}):
            store = SurrogateStore(tmp_path / str(id(refinement)))
            store.save(_tiny_record(
                self._spec(adaptive={"tol": 1e-3}, margin_um=2.5),
                refinement=refinement))
            target = self._spec(adaptive={"tol": 1e-3}, margin_um=2.6)
            assert _warm_start_for(target, store) is None

    def test_rebuild_implies_cold_build(self, tmp_path, monkeypatch):
        from repro.serving import SurrogateStore, ensure_surrogate
        import repro.serving.pipeline as pipeline

        store = SurrogateStore(tmp_path)
        sibling = self._spec(adaptive={"tol": 1e-3}, margin_um=2.5)
        store.save(_tiny_record(sibling, refinement=self.REFINEMENT))
        target = self._spec(adaptive={"tol": 1e-3}, margin_um=2.6)
        seen = {}

        def fake_build(spec, progress=None, store=None,
                       warm_start=True, warm_source=None):
            seen["warm_start"] = warm_start
            return _tiny_record(spec)

        monkeypatch.setattr(pipeline, "build_surrogate", fake_build)
        ensure_surrogate(target, store, rebuild=True)
        assert seen["warm_start"] is False
        ensure_surrogate(target, store, rebuild=True, warm_start=True)
        assert seen["warm_start"] is False

    def test_sidecar_reader_misses_cleanly(self, tmp_path):
        from repro.serving import SurrogateStore

        store = SurrogateStore(tmp_path)
        assert store.sidecar("0" * 64) is None
        with pytest.raises(ServingError):
            store.sidecar("not-a-key")


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    """A store holding one adaptive table2 build, plus its spec."""
    from repro.serving import SurrogateStore, ensure_surrogate

    spec = _table2_adaptive_spec(margin_um=2.5)
    store = SurrogateStore(tmp_path_factory.mktemp("store"))
    report = ensure_surrogate(spec, store)
    assert report.built and report.warm_start_source is None
    return store, spec, report


def _table2_adaptive_spec(**overrides):
    from repro.experiments import table2_spec

    params = {"max_step_um": 3.0, "margin_um": 2.5, "rdf_nodes": 6}
    params.update(overrides)
    probe = table2_spec(**params).build_problem()
    caps = {group.name: 1 for group in probe.groups}
    # tol tight enough that refinement accepts a real interior (at
    # 1e-3 this problem certifies right at the root, leaving nothing
    # for a warm start to seed).
    return table2_spec(reduction={"caps": caps},
                       adaptive={"tol": 1e-5, "max_level": 2},
                       **params)


class TestServingWarmStart:
    def test_perturbed_spec_builds_warm_with_fewer_solves(
            self, warm_store, tmp_path):
        from repro.serving import SurrogateStore, ensure_surrogate

        store, base_spec, base_report = warm_store
        perturbed = _table2_adaptive_spec(margin_um=2.6)
        assert perturbed.cache_key() != base_spec.cache_key()

        cold_store = SurrogateStore(tmp_path / "cold")
        cold = ensure_surrogate(perturbed, cold_store,
                                warm_start=False)
        assert cold.built and cold.warm_start_source is None

        warm = ensure_surrogate(perturbed, store)
        assert warm.built
        assert warm.warm_start_source == base_spec.cache_key()
        refinement = warm.record.refinement
        assert refinement["warm_start_source"] == base_spec.cache_key()
        assert refinement["termination"] == "warm"
        # The whole point: strictly fewer solves than the cold build.
        assert warm.num_solves < cold.num_solves
        # Matched accuracy in the engine's own scale-normalized
        # metric: warm and cold statistics agree relative to the
        # dominant QoI magnitude (the certificate bounds exactly that;
        # see docs/ADAPTIVE.md for why sub-dominant outputs are not
        # individually bounded).
        scale = np.max(np.abs(cold.record.pce.mean))
        assert np.max(np.abs(warm.record.pce.mean
                             - cold.record.pce.mean)) <= 1e-4 * scale
        assert np.max(np.abs(warm.record.pce.std
                             - cold.record.pce.std)) <= 1e-3 * scale

    def test_warm_record_replays_from_store(self, warm_store):
        from repro.serving import ensure_surrogate

        store, base_spec, _ = warm_store
        again = ensure_surrogate(base_spec, store)
        assert not again.built and again.num_solves == 0
