"""repro.campaign: grids, plans, catalogs, executor, CLI, daemon.

The plan tests pin the tentpole determinism contract — the same
member set plans byte-identically regardless of dict ordering, member
permutation or worker count — and the executor tests pin the chain
semantics (each build warm-starts from its planned predecessor, one
failure never sinks the sweep, a killed campaign's catalog survives
and its built members return as hits).  One small real sweep runs end
to end through the public CLI.
"""

import json
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.campaign import (
    CampaignGrid,
    CampaignPlan,
    campaign_varying,
    catalog_path,
    catalog_summary,
    list_catalogs,
    plan_campaign,
    query_campaign,
    read_catalog,
    run_campaign,
    write_catalog,
)
from repro.campaign.catalog import CATALOG_SCHEMA_VERSION
from repro.errors import CampaignError, ServingError
from repro.serving.spec import ProblemSpec, canonical_json
from repro.serving.store import SurrogateStore

ADAPTIVE = {"tol": 1e-4, "max_level": 2}


def _grid_dict(**overrides):
    doc = {
        "preset": "table2",
        "axes": {"sigma_m": [0.09, 0.1, 0.11, 0.12]},
        "base_params": {"rdf_nodes": 8},
        "reduction": {"adaptive": dict(ADAPTIVE)},
        "name": "doping sweep",
    }
    doc.update(overrides)
    return doc


class TestCampaignGrid:
    def test_round_trip_and_expansion(self):
        grid = CampaignGrid.from_dict(_grid_dict())
        assert CampaignGrid.from_dict(grid.to_dict()).campaign_id() \
            == grid.campaign_id()
        specs = grid.expand()
        assert [spec.params["sigma_m"] for spec in specs] \
            == [0.09, 0.1, 0.11, 0.12]
        assert all(spec.preset == "table2" for spec in specs)
        assert all(spec.params["rdf_nodes"] == 8 for spec in specs)

    def test_axes_product_is_sorted_by_name(self):
        grid = CampaignGrid.from_dict(_grid_dict(
            axes={"sigma_m": [0.1, 0.2], "margin_um": [2.0, 3.0]}))
        combos = [(spec.params["margin_um"], spec.params["sigma_m"])
                  for spec in grid.expand()]
        assert combos == [(2.0, 0.1), (2.0, 0.2),
                          (3.0, 0.1), (3.0, 0.2)]

    def test_duplicate_members_collapse(self):
        grid = CampaignGrid.from_dict(_grid_dict(
            points=[{"sigma_m": 0.1}, {"sigma_m": 0.13}]))
        values = [spec.params["sigma_m"] for spec in grid.expand()]
        assert values == [0.09, 0.1, 0.11, 0.12, 0.13]

    def test_campaign_id_ignores_phrasing(self):
        as_axes = CampaignGrid.from_dict(_grid_dict())
        as_points = CampaignGrid.from_dict(_grid_dict(
            axes={},
            points=[{"sigma_m": value}
                    for value in (0.12, 0.09, 0.11, 0.1)],
            name="renamed"))
        with_workers = CampaignGrid.from_dict(_grid_dict(
            reduction={"adaptive": dict(ADAPTIVE), "workers": 4}))
        assert as_points.campaign_id() == as_axes.campaign_id()
        assert with_workers.campaign_id() == as_axes.campaign_id()

    def test_different_grids_hash_apart(self):
        base = CampaignGrid.from_dict(_grid_dict())
        tighter = CampaignGrid.from_dict(_grid_dict(
            reduction={"adaptive": {"tol": 1e-5, "max_level": 2}}))
        assert tighter.campaign_id() != base.campaign_id()

    @pytest.mark.parametrize("bad", [
        {"preset": "table2"},
        {"preset": "table2", "axes": {"sigma_m": []}},
        {"preset": "table2", "axes": {"sigma_m": 0.1}},
        {"preset": "table2", "points": [["sigma_m"]]},
        {"preset": "", "axes": {"sigma_m": [0.1]}},
        {"axes": {"sigma_m": [0.1]}},
        {"preset": "table2", "axes": {"sigma_m": [0.1]},
         "mystery": 1},
        "not a mapping",
    ])
    def test_malformed_grids_are_rejected(self, bad):
        with pytest.raises(CampaignError):
            CampaignGrid.from_dict(bad)


class TestCampaignPlan:
    def test_plan_is_byte_stable(self):
        plan = plan_campaign(
            CampaignGrid.from_dict(_grid_dict()).expand())
        permuted = CampaignGrid.from_dict(_grid_dict(
            axes={}, name=None,
            points=[{"sigma_m": value}
                    for value in (0.11, 0.09, 0.12, 0.1)],
            reduction={"workers": 3, "adaptive": dict(ADAPTIVE)},
        ))
        assert canonical_json(plan.to_dict()) \
            == canonical_json(plan_campaign(permuted.expand())
                              .to_dict())

    def test_chain_parents_precede_children(self):
        plan = plan_campaign(
            CampaignGrid.from_dict(_grid_dict()).expand())
        built = set()
        for member in plan.members:
            if member.warm_source is not None:
                assert member.warm_source in built
            built.add(member.key)
        # The sweep is one warm-compatible segment: everyone but the
        # root has a designated predecessor.
        sources = [member.warm_source for member in plan.members]
        assert sources.count(None) == 1

    def test_chain_follows_parameter_distance(self):
        plan = plan_campaign(
            CampaignGrid.from_dict(_grid_dict()).expand())
        sigma = {member.key: member.params["sigma_m"]
                 for member in plan.members}
        for member in plan.members:
            if member.warm_source is None:
                continue
            # The nearest neighbor on a uniform 1-D grid is always one
            # step away.
            assert abs(sigma[member.key]
                       - sigma[member.warm_source]) \
                == pytest.approx(0.01)

    def test_non_numeric_difference_splits_segments(self):
        grid = CampaignGrid.from_dict({
            "preset": "table1",
            "points": [{"variant": "metal", "sigma_m": 0.1},
                       {"variant": "metal", "sigma_m": 0.11},
                       {"variant": "both", "sigma_m": 0.1}],
            "reduction": {"adaptive": dict(ADAPTIVE)},
        })
        plan = plan_campaign(grid.expand())
        segments = plan.segments()
        assert sorted(len(segment) for segment in segments) == [1, 2]
        for segment in segments:
            variants = {member.params["variant"]
                        for member in segment}
            assert len(variants) == 1

    def test_fixed_grid_members_have_no_warm_source(self):
        grid = CampaignGrid.from_dict(_grid_dict(reduction={}))
        plan = plan_campaign(grid.expand())
        assert all(member.warm_source is None
                   for member in plan.members)

    def test_adaptive_and_fixed_never_share_a_segment(self):
        adaptive = CampaignGrid.from_dict(_grid_dict()).expand()
        fixed = CampaignGrid.from_dict(
            _grid_dict(reduction={})).expand()
        plan = plan_campaign(adaptive + fixed)
        assert len(plan.segments()) == 2

    def test_duplicate_specs_collapse(self):
        specs = CampaignGrid.from_dict(_grid_dict()).expand()
        plan = plan_campaign(specs + specs)
        assert len(plan.members) == len(specs)


class TestCatalog:
    def _catalog(self, campaign_id):
        return {
            "catalog_version": CATALOG_SCHEMA_VERSION,
            "campaign": campaign_id,
            "name": "t",
            "preset": "table2",
            "members": [],
            "totals": {"members": 0},
            "updated_at": 1.0,
        }

    def test_write_read_round_trip(self, tmp_path):
        store = SurrogateStore(tmp_path)
        catalog = self._catalog("ab" * 32)
        path = write_catalog(store, catalog)
        assert path.parent == tmp_path / "campaigns"
        assert read_catalog(store, "ab" * 32) == catalog

    def test_unknown_campaign_raises(self, tmp_path):
        store = SurrogateStore(tmp_path)
        with pytest.raises(CampaignError, match="no campaign"):
            read_catalog(store, "0" * 64)

    @pytest.mark.parametrize("bad", [
        "../../../etc/passwd", "short", "Z" * 64, None, 7])
    def test_malformed_ids_never_touch_disk(self, tmp_path, bad):
        store = SurrogateStore(tmp_path)
        with pytest.raises(CampaignError, match="malformed"):
            catalog_path(store, bad)

    def test_stale_layout_version_rejected(self, tmp_path):
        store = SurrogateStore(tmp_path)
        catalog = self._catalog("cd" * 32)
        catalog["catalog_version"] = 999
        write_catalog(store, catalog)
        with pytest.raises(CampaignError, match="layout"):
            read_catalog(store, "cd" * 32)

    def test_listing_reports_damage_instead_of_raising(self, tmp_path):
        store = SurrogateStore(tmp_path)
        write_catalog(store, self._catalog("ab" * 32))
        newer = self._catalog("cd" * 32)
        newer["updated_at"] = 2.0
        write_catalog(store, newer)
        catalog_path(store, "ef" * 32).write_text("{torn")
        rows = list_catalogs(store)
        assert [row["campaign"][:2] for row in rows] \
            == ["cd", "ab", "ef"]
        assert "damaged" in rows[2]
        assert catalog_summary(newer)["totals"] == {"members": 0}


def _fake_report(built, num_solves=0, warm_source=None,
                 refinement=None):
    return SimpleNamespace(
        built=built, num_solves=num_solves,
        warm_start_source=warm_source,
        record=SimpleNamespace(refinement=refinement))


class TestExecutor:
    def test_chained_warm_sources_reach_the_pipeline(
            self, tmp_path, monkeypatch):
        calls = []

        def fake_ensure(spec, store, rebuild=False, warm_start=True,
                        warm_source=None, progress=None):
            calls.append((spec.cache_key(), warm_source))
            return _fake_report(
                True, num_solves=5, warm_source=warm_source,
                refinement={"termination": "tol",
                            "error_estimate": 1e-6})

        monkeypatch.setattr("repro.campaign.executor.ensure_surrogate",
                            fake_ensure)
        store = SurrogateStore(tmp_path)
        catalog = run_campaign(_grid_dict(), store)
        plan = plan_campaign(
            CampaignGrid.from_dict(_grid_dict()).expand())
        assert calls == [(member.key, member.warm_source)
                         for member in plan.members]
        totals = catalog["totals"]
        assert totals == {"members": 4, "built": 4, "hits": 0,
                          "failed": 0, "pending": 0,
                          "total_solves": 20, "warm_started": 3}
        # The catalog is durably on disk and identical to the return.
        assert read_catalog(store, catalog["campaign"]) == catalog

    def test_one_failure_never_sinks_the_sweep(
            self, tmp_path, monkeypatch):
        def fake_ensure(spec, store, rebuild=False, warm_start=True,
                        warm_source=None, progress=None):
            if spec.params["sigma_m"] == 0.11:
                raise ServingError("diverged")
            return _fake_report(True, num_solves=3)

        monkeypatch.setattr("repro.campaign.executor.ensure_surrogate",
                            fake_ensure)
        store = SurrogateStore(tmp_path)
        catalog = run_campaign(_grid_dict(), store)
        by_sigma = {member["params"]["sigma_m"]: member
                    for member in catalog["members"]}
        assert by_sigma[0.11]["status"] == "failed"
        assert "diverged" in by_sigma[0.11]["error"]
        assert catalog["totals"]["failed"] == 1
        assert catalog["totals"]["built"] == 3

    def test_killed_campaign_resumes_as_hits(
            self, tmp_path, monkeypatch):
        built = set()

        def dying_ensure(spec, store, rebuild=False, warm_start=True,
                         warm_source=None, progress=None):
            if len(built) == 2:
                raise KeyboardInterrupt
            built.add(spec.cache_key())
            return _fake_report(True, num_solves=4)

        def resuming_ensure(spec, store, rebuild=False,
                            warm_start=True, warm_source=None,
                            progress=None):
            if spec.cache_key() in built:
                return _fake_report(False)
            built.add(spec.cache_key())
            return _fake_report(True, num_solves=4)

        monkeypatch.setattr("repro.campaign.executor.ensure_surrogate",
                            dying_ensure)
        store = SurrogateStore(tmp_path)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(_grid_dict(), store)
        campaign_id = CampaignGrid.from_dict(
            _grid_dict()).campaign_id()
        # Progress survived the kill: two members committed, the rest
        # still pending in the on-disk catalog.
        partial = read_catalog(store, campaign_id)
        assert partial["totals"]["built"] == 2
        assert partial["totals"]["pending"] == 2
        monkeypatch.setattr("repro.campaign.executor.ensure_surrogate",
                            resuming_ensure)
        resumed = run_campaign(_grid_dict(), store)
        assert resumed["campaign"] == campaign_id
        assert resumed["totals"] == {
            "members": 4, "built": 2, "hits": 2, "failed": 0,
            "pending": 0, "total_solves": 8, "warm_started": 0}

    def test_segment_fan_out_keeps_chains_sequential(
            self, tmp_path, monkeypatch):
        order = []

        def fake_ensure(spec, store, rebuild=False, warm_start=True,
                        warm_source=None, progress=None):
            order.append(spec.cache_key())
            return _fake_report(True, num_solves=1)

        monkeypatch.setattr("repro.campaign.executor.ensure_surrogate",
                            fake_ensure)
        grid = {
            "preset": "table1",
            "points": [{"variant": "metal", "sigma_m": 0.1},
                       {"variant": "metal", "sigma_m": 0.11},
                       {"variant": "both", "sigma_m": 0.1},
                       {"variant": "both", "sigma_m": 0.11}],
            "reduction": {"adaptive": dict(ADAPTIVE)},
        }
        store = SurrogateStore(tmp_path)
        catalog = run_campaign(grid, store, segment_workers=2)
        plan = plan_campaign(CampaignGrid.from_dict(grid).expand())
        for segment in plan.segments():
            positions = [order.index(member.key)
                         for member in segment]
            assert positions == sorted(positions)
        assert catalog["totals"]["built"] == 4

    def test_workers_override_is_execution_only(
            self, tmp_path, monkeypatch):
        seen = []

        def fake_ensure(spec, store, rebuild=False, warm_start=True,
                        warm_source=None, progress=None):
            seen.append(spec)
            return _fake_report(True, num_solves=1)

        monkeypatch.setattr("repro.campaign.executor.ensure_surrogate",
                            fake_ensure)
        store = SurrogateStore(tmp_path)
        catalog = run_campaign(_grid_dict(), store, workers=2)
        assert all(spec.reduction["workers"] == 2 for spec in seen)
        assert {spec.cache_key() for spec in seen} \
            == {member["key"] for member in catalog["members"]}


class TestQueryHelpers:
    def test_campaign_varying(self):
        catalog = {"members": [
            {"params": {"a": 1, "b": "x", "c": 2.5}},
            {"params": {"a": 1, "b": "y", "c": 3.5}},
        ]}
        assert campaign_varying(catalog) == ["b", "c"]

    def test_query_needs_queries(self, tmp_path):
        store = SurrogateStore(tmp_path)
        with pytest.raises(CampaignError, match="non-empty"):
            query_campaign({"members": []}, store, [])


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """One small real campaign, run once through the executor."""
    root = tmp_path_factory.mktemp("campaign-store")
    grid = {
        "preset": "table1",
        "base_params": {"variant": "doping", "max_step_um": 2.0,
                        "rdf_nodes": 6},
        "axes": {"sigma_m": [0.1, 0.102, 0.104]},
        "reduction": {"caps": {"doping": 1}, "energy": 0.9,
                      "adaptive": {"tol": 1e-4, "max_level": 2}},
        "name": "e2e",
    }
    store = SurrogateStore(root)
    catalog = run_campaign(grid, store)
    return SimpleNamespace(root=root, grid=grid, store=store,
                           catalog=catalog)


class TestEndToEnd:
    def test_sweep_builds_and_chains(self, sweep):
        totals = sweep.catalog["totals"]
        assert totals["built"] == 3 and totals["failed"] == 0
        assert totals["warm_started"] >= 1
        warm = [member for member in sweep.catalog["members"]
                if member["warm_source"]]
        for member in warm:
            # The actual seed is the planned chain predecessor.
            assert member["warm_source"].split(":")[0] \
                == member["planned_warm_source"]

    def test_rerun_is_all_hits(self, sweep):
        again = run_campaign(sweep.grid, sweep.store)
        assert again["campaign"] == sweep.catalog["campaign"]
        assert again["totals"]["hits"] == 3
        assert again["totals"]["total_solves"] == 0

    def test_query_tabulates_by_axis(self, sweep):
        table = query_campaign(sweep.catalog, sweep.store,
                               [{"kind": "mean"}, {"kind": "std"}],
                               num_samples=20000)
        assert table["varying"] == ["sigma_m"]
        assert len(table["members"]) == 3
        for member in table["members"]:
            assert len(member["answers"]) == 2
            assert member["answers"][0]["kind"] == "mean"

    def test_cli_round_trip(self, sweep, tmp_path, capsys):
        from repro.__main__ import main
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps(sweep.grid))
        queries_file = tmp_path / "queries.json"
        queries_file.write_text(json.dumps(
            {"queries": [{"kind": "mean"}]}))
        store_arg = ["--store", str(sweep.root)]
        assert main(["campaign", "run", str(grid_file), "--json",
                     "--quiet", *store_arg]) == 0
        ran = json.loads(capsys.readouterr().out)
        assert ran["totals"]["hits"] == 3
        assert main(["campaign", "status", str(grid_file), "--json",
                     *store_arg]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["campaign"] == sweep.catalog["campaign"]
        assert main(["campaign", "status", *store_arg]) == 0
        listing = capsys.readouterr().out
        assert sweep.catalog["campaign"][:16] in listing
        assert main(["campaign", "query",
                     sweep.catalog["campaign"], str(queries_file),
                     "--num-samples", "20000", *store_arg]) == 0
        table = json.loads(capsys.readouterr().out)
        assert all("answers" in member
                   for member in table["members"])

    def test_daemon_campaign_endpoints(self, sweep):
        from repro.daemon import ReproDaemon
        daemon = ReproDaemon(store_path=sweep.root, port=0,
                             quiet=True)
        daemon.start()
        host, port = daemon.address
        base = f"http://{host}:{port}"
        try:
            with urllib.request.urlopen(f"{base}/campaign") as reply:
                listing = json.loads(reply.read())
            assert [row["campaign"] for row in listing["campaigns"]] \
                == [sweep.catalog["campaign"]]
            campaign_id = sweep.catalog["campaign"]
            with urllib.request.urlopen(
                    f"{base}/campaign/{campaign_id}") as reply:
                catalog = json.loads(reply.read())
            assert catalog["totals"]["members"] == 3
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{base}/campaign/{'0' * 64}")
            assert excinfo.value.code == 404
        finally:
            daemon.shutdown()


def test_plan_round_trips_through_catalog(tmp_path, monkeypatch):
    """The stored plan document is the planner's exact output."""
    monkeypatch.setattr(
        "repro.campaign.executor.ensure_surrogate",
        lambda spec, store, **kwargs: _fake_report(True, 1))
    store = SurrogateStore(tmp_path)
    catalog = run_campaign(_grid_dict(), store)
    plan = plan_campaign(
        CampaignGrid.from_dict(_grid_dict()).expand())
    assert catalog["plan"] == json.loads(
        canonical_json(plan.to_dict()))
    assert isinstance(plan, CampaignPlan)
