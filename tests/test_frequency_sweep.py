"""Tests for the frequency-sweep / admittance utility."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.solver.sweep import frequency_sweep


@pytest.fixture(scope="module")
def plug_sweep(coarse_plug_structure):
    return frequency_sweep(coarse_plug_structure,
                           [1.0e8, 1.0e9, 5.0e9])


class TestSweep:
    def test_shapes(self, plug_sweep):
        assert plug_sweep.admittance.shape == (3, 2, 2)
        assert plug_sweep.ports == ["plug1", "plug2"]
        assert np.all(np.diff(plug_sweep.frequencies) > 0)

    def test_reciprocity(self, plug_sweep):
        """Y_12 = Y_21 (passive reciprocal structure)."""
        y12 = plug_sweep.transfer_admittance("plug1", "plug2")
        y21 = plug_sweep.transfer_admittance("plug2", "plug1")
        np.testing.assert_allclose(y12, y21, rtol=1e-6)

    def test_row_sums_vanish(self, plug_sweep):
        """Driving every port at the same voltage pushes no current
        (only two ports here: Y11 + Y12 ~ leakage to nothing)."""
        y = plug_sweep.admittance
        residual = np.abs(y.sum(axis=2)) / np.abs(y[:, 0, 0])[:, None]
        assert residual.max() < 0.05

    def test_conductance_positive(self, plug_sweep):
        assert np.all(plug_sweep.input_admittance("plug1").real > 0.0)

    def test_susceptance_grows_with_frequency(self, plug_sweep):
        b = plug_sweep.input_admittance("plug1").imag
        assert b[-1] > b[0]

    def test_effective_capacitance_positive(self, plug_sweep):
        c = plug_sweep.effective_capacitance("plug1")
        assert np.all(c > 0.0)

    def test_validation(self, coarse_plug_structure, plug_sweep):
        with pytest.raises(GeometryError):
            frequency_sweep(coarse_plug_structure, [])
        with pytest.raises(GeometryError):
            plug_sweep.port_index("nope")
