"""Tests of repro.obs — metrics, tracing, exposition, and the firewall.

The observability layer's contracts, each exercised where it can
actually break:

* **deterministic metrics** — concurrent increments land exactly and
  snapshots render identically regardless of interleaving;
* **valid exposition** — ``prometheus_text`` output survives the
  validating parser (escaping, bucket monotonicity, ``+Inf`` vs
  ``_count``), and the parser really rejects malformed text;
* **faithful traces** — span trees parent correctly across threads
  and the process-pool boundary, and a profiled build's root span is
  covered >= 95% by its children;
* **identity firewall** — instrumentation (tracer active, registry on
  or off) never changes a cache key or a stored artifact, byte for
  byte.
"""

import json
import math
import os
import threading
import time

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    EventLog,
    MetricsRegistry,
    NULL_TRACER,
    Tracer,
    activate,
    chrome_trace_document,
    find_root,
    get_tracer,
    parse_prometheus,
    prometheus_text,
    read_events,
    span,
    span_coverage,
)
from repro.serving import SurrogateStore, ensure_surrogate

from test_daemon import tiny_spec


class TestMetricsRegistry:
    def test_counter_counts_per_label_series(self):
        registry = MetricsRegistry()
        hits = registry.counter("hits_total", "store hits")
        hits.inc()
        hits.inc(2.0, endpoint="/query")
        assert hits.value() == 1.0
        assert hits.value(endpoint="/query") == 2.0
        assert hits.total() == 3.0

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_register_is_create_or_fetch(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        with pytest.raises(ValueError):
            registry.gauge("c")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad-name")
        with pytest.raises(ValueError):
            registry.counter("ok").inc(**{"bad-label": 1.0})
        with pytest.raises(ValueError):
            registry.gauge("g").set(1.0, **{"0bad": "x"})

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.0)
        gauge.inc(2.0)
        gauge.dec(1.0)
        assert gauge.value() == 5.0

    def test_histogram_buckets_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(2.0, 1.0))

    def test_histogram_cumulative_snapshot(self):
        hist = MetricsRegistry().histogram(
            "h", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        sample = hist.snapshot()["samples"][0]
        assert sample["cumulative"] == [1, 3, 4, 5]
        assert sample["count"] == 5
        assert sample["sum"] == pytest.approx(5.605)

    def test_boundary_lands_in_its_bucket(self):
        # Prometheus convention: le is inclusive.
        hist = MetricsRegistry().histogram("h", buckets=(0.01, 0.1))
        hist.observe(0.01)
        assert hist.snapshot()["samples"][0]["cumulative"] == [1, 1, 1]

    def test_disable_drops_everything(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h")
        registry.disable()
        counter.inc()
        hist.observe(1.0)
        registry.enable()
        counter.inc()
        assert counter.total() == 1.0
        assert hist.snapshot()["samples"] == []

    def test_concurrent_increments_are_exact_and_deterministic(self):
        threads, per_thread = 8, 2000
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "racy counter")
        hist = registry.histogram("h_seconds", buckets=(0.5, 1.5))

        def worker(index):
            for step in range(per_thread):
                counter.inc(endpoint="/query" if step % 2 else "/store")
                hist.observe(float(index % 2))

        pool = [threading.Thread(target=worker, args=(i,))
                for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        assert counter.total() == threads * per_thread
        assert counter.value(endpoint="/query") \
            == threads * per_thread / 2

        # The rendered exposition must match a serially-built registry
        # with the same totals — interleaving must leave no trace.
        serial = MetricsRegistry()
        reference = serial.counter("c_total", "racy counter")
        reference.inc(threads * per_thread / 2, endpoint="/store")
        reference.inc(threads * per_thread / 2, endpoint="/query")
        ref_hist = serial.histogram("h_seconds", buckets=(0.5, 1.5))
        for _ in range(threads * per_thread // 2):
            ref_hist.observe(0.0)
            ref_hist.observe(1.0)
        assert prometheus_text(registry.snapshot()) \
            == prometheus_text(serial.snapshot())


class TestPrometheusExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", "store hits").inc(3)
        registry.gauge("repro_uptime_seconds", "uptime").set(12.5)
        hist = registry.histogram("repro_latency_seconds", "latency",
                                  buckets=(0.01, 0.1))
        hist.observe(0.005)
        hist.observe(0.05)
        hist.observe(2.0)
        return registry

    def test_round_trip_through_the_parser(self):
        text = prometheus_text(self._registry().snapshot())
        parsed = parse_prometheus(text)
        assert parsed["repro_hits_total"]["type"] == "counter"
        assert parsed["repro_hits_total"]["samples"][
            ("repro_hits_total", ())] == 3.0
        assert parsed["repro_uptime_seconds"]["samples"][
            ("repro_uptime_seconds", ())] == 12.5
        latency = parse_prometheus(text)["repro_latency_seconds"]
        samples = latency["samples"]
        assert samples[("repro_latency_seconds_count", ())] == 3.0
        assert samples[("repro_latency_seconds_bucket",
                        (("le", "+Inf"),))] == 3.0
        assert samples[("repro_latency_seconds_bucket",
                        (("le", "0.01"),))] == 1.0

    def test_help_and_type_precede_samples(self):
        text = prometheus_text(self._registry().snapshot())
        lines = text.splitlines()
        first = lines.index("# HELP repro_hits_total store hits")
        assert lines[first + 1] == "# TYPE repro_hits_total counter"
        assert lines[first + 2] == "repro_hits_total 3"

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        hostile = 'quote " slash \\ newline \n done'
        counter.inc(7, path=hostile)
        text = prometheus_text(registry.snapshot())
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parsed = parse_prometheus(text)
        (key, labels), = parsed["c_total"]["samples"]
        assert dict(labels)["path"] == hostile
        assert parsed["c_total"]["samples"][(key, labels)] == 7.0

    def test_help_escaping_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "line one\nline \\ two").inc()
        parsed = parse_prometheus(prometheus_text(registry.snapshot()))
        assert parsed["c_total"]["help"] == "line one\nline \\ two"

    def test_integer_values_render_bare(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        text = prometheus_text(registry.snapshot())
        assert "c_total 2\n" in text
        assert "2.0" not in text

    def test_output_is_deterministic(self):
        assert prometheus_text(self._registry().snapshot()) \
            == prometheus_text(self._registry().snapshot())

    def test_parser_rejects_sample_before_type(self):
        with pytest.raises(ValueError, match="before its # TYPE"):
            parse_prometheus("c_total 3\n# TYPE c_total counter\n")

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("# TYPE c counter\nc{oops 3\n")
        with pytest.raises(ValueError, match="unknown TYPE"):
            parse_prometheus("# TYPE c sideways\n")

    def test_parser_rejects_non_monotonic_buckets(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="0.1"} 5\n'
                'h_bucket{le="1"} 3\n'
                'h_bucket{le="+Inf"} 5\n'
                "h_sum 1\nh_count 5\n")
        with pytest.raises(ValueError, match="not monotonic"):
            parse_prometheus(text)

    def test_parser_rejects_inf_count_disagreement(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 3\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1\nh_count 4\n")
        with pytest.raises(ValueError, match="disagrees"):
            parse_prometheus(text)

    def test_parser_requires_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 3\n'
                "h_sum 1\nh_count 3\n")
        with pytest.raises(ValueError, match="missing a \\+Inf"):
            parse_prometheus(text)


class TestTracer:
    def test_spans_nest_by_parent_id(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
            with tracer.span("sibling") as sibling:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id
        assert {node.name for node in tracer.spans} \
            == {"outer", "inner", "sibling"}
        assert all(node.end >= node.start for node in tracer.spans)

    def test_module_helper_targets_the_active_tracer(self):
        tracer = Tracer()
        assert get_tracer() is NULL_TRACER
        with activate(tracer):
            assert get_tracer() is tracer
            with span("work"):
                pass
        assert get_tracer() is NULL_TRACER
        assert [node.name for node in tracer.spans] == ["work"]

    def test_null_tracer_records_nothing(self):
        with span("ignored") as node:
            node.attrs["x"] = 1  # the null span tolerates writes
        assert NULL_TRACER.totals() == {}
        assert NULL_TRACER.current_span() is None

    def test_activation_is_thread_local(self):
        tracer = Tracer()
        seen = {}

        def other_thread():
            seen["tracer"] = get_tracer()

        with activate(tracer):
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        assert seen["tracer"] is NULL_TRACER

    def test_totals_respects_the_subtree_root(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("leaf"):
                time.sleep(0.002)
        with tracer.span("b"):
            with tracer.span("leaf"):
                time.sleep(0.002)
        subtree = tracer.totals(root=a.span_id)
        assert set(subtree) == {"a", "leaf"}
        assert subtree["leaf"] < tracer.totals()["leaf"]

    def test_add_span_ingests_foreign_windows(self):
        tracer = Tracer()
        node = tracer.add_span("worker", 1.0, 3.5, parent_id=None,
                               pid=4242, tid=7, attrs={"points": 3})
        assert node.duration == 2.5
        assert node.pid == 4242
        assert tracer.totals()["worker"] == 2.5

    def test_chrome_trace_document_shape(self):
        tracer = Tracer()
        with tracer.span("outer", points=3):
            with tracer.span("inner"):
                pass
        document = chrome_trace_document(tracer)
        events = document["traceEvents"]
        assert len(events) == 2
        assert all(event["ph"] == "X" for event in events)
        assert all(event["ts"] >= 0.0 for event in events)
        by_name = {event["name"]: event for event in events}
        assert by_name["inner"]["args"]["parent_id"] \
            == by_name["outer"]["args"]["span_id"]
        assert by_name["outer"]["args"]["points"] == 3
        json.dumps(document)  # must be serializable as-is

    def test_span_coverage_merges_overlapping_children(self):
        tracer = Tracer()
        root = tracer.add_span("root", 0.0, 10.0)
        tracer.add_span("a", 0.0, 6.0, parent_id=root.span_id)
        tracer.add_span("b", 4.0, 8.0, parent_id=root.span_id)
        # Overlap [4, 6] counts once: covered = [0, 8] of [0, 10].
        assert span_coverage(tracer, root=root) \
            == pytest.approx(0.8)
        assert find_root(tracer, "root") is root


class TestPoolSpans:
    def test_worker_spans_cross_the_pool_boundary(self):
        """Per-worker spans are ingested under the parallel_wave span
        with the worker's own pid — real lanes in the Chrome trace."""
        from test_parallel_adaptive import _builder

        from repro.analysis import run_sscm_analysis

        tracer = Tracer()
        with activate(tracer):
            run_sscm_analysis(_builder(), energy=1.0,
                              max_variables_by_group={"doping": 3},
                              workers=2, problem_builder=_builder)
        waves = [node for node in tracer.spans
                 if node.name == "parallel_wave"]
        workers = [node for node in tracer.spans
                   if node.name == "worker_chunk"]
        assert waves and workers
        wave_ids = {node.span_id for node in waves}
        for worker in workers:
            assert worker.parent_id in wave_ids
            assert worker.duration > 0.0
            assert worker.pid != os.getpid()
        assert sum(node.attrs["points"] for node in workers) \
            == sum(node.attrs["points"] for node in waves)


class TestBuildInstrumentation:
    def test_profiled_build_covers_the_wall(self, tmp_path):
        """>= 95% of the build root span is covered by child spans —
        the acceptance bar for the span taxonomy staying honest."""
        tracer = Tracer()
        with activate(tracer):
            report = ensure_surrogate(tiny_spec(),
                                      SurrogateStore(tmp_path / "s"))
        assert report.built
        root = find_root(tracer, "build")
        assert root is not None
        assert span_coverage(tracer, root=root) >= 0.95

    def test_cold_build_reports_timings_warm_hit_does_not(self,
                                                          tmp_path):
        store = SurrogateStore(tmp_path / "s")
        cold = ensure_surrogate(tiny_spec(), store)
        assert set(cold.timings) == {"total_s", "solve_s", "fit_s",
                                     "store_write_s"}
        assert 0.0 < cold.timings["solve_s"] < cold.timings["total_s"]
        warm = ensure_surrogate(tiny_spec(), store)
        assert warm.timings is None

    def test_instrumentation_never_changes_the_artifact(self, tmp_path):
        """Cache key, npz payload and sidecar digest are byte-identical
        whether a build runs plain, under an active tracer, or with
        the metrics registry disabled."""
        from repro.obs.metrics import REGISTRY

        spec = tiny_spec()
        key = spec.cache_key()

        def build(name, tracing=False, metrics=True):
            store = SurrogateStore(tmp_path / name)
            tracer = Tracer() if tracing else NULL_TRACER
            if not metrics:
                REGISTRY.disable()
            try:
                with activate(tracer):
                    report = ensure_surrogate(spec, store)
            finally:
                REGISTRY.enable()
            assert report.built
            assert report.record.cache_key == key
            npz = (store.root / f"{key}.npz").read_bytes()
            sidecar = json.loads(
                (store.root / f"{key}.json").read_text())
            return npz, sidecar

        plain_npz, plain_sidecar = build("plain")
        traced_npz, traced_sidecar = build("traced", tracing=True)
        dark_npz, dark_sidecar = build("dark", metrics=False)

        assert traced_npz == plain_npz == dark_npz
        for sidecar in (traced_sidecar, dark_sidecar):
            assert sidecar["npz_sha256"] == plain_sidecar["npz_sha256"]
            assert sidecar["spec"] == plain_sidecar["spec"]


class TestEventLog:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with EventLog(path) as log:
            first = log.write("request", method="GET", path="/health",
                              status=200)
            log.write("request", method="POST", path="/query",
                      status=200, duration_s=0.25)
        events = read_events(path)
        assert [event["event"] for event in events] == ["request"] * 2
        assert events[0]["method"] == "GET"
        assert events[1]["duration_s"] == 0.25
        assert first["ts"] <= events[1]["ts"]

    def test_lines_are_sorted_compact_json(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with EventLog(path) as log:
            log.write("request", zebra=1, alpha=2)
        line = path.read_text().strip()
        assert line.index('"alpha"') < line.index('"zebra"')
        assert ": " not in line

    def test_opens_lazily_and_closes_idempotently(self, tmp_path):
        path = tmp_path / "access.jsonl"
        log = EventLog(path)
        assert not path.exists()
        log.close()  # closing an unopened log is fine
        log.write("request")
        assert path.exists()
        log.close()
        log.close()


class TestDefaultBuckets:
    def test_default_buckets_strictly_increase(self):
        buckets = list(DEFAULT_LATENCY_BUCKETS)
        assert buckets == sorted(set(buckets))
        assert buckets[0] <= 0.001
        assert buckets[-1] >= 60.0
        assert math.inf not in buckets
