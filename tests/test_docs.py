"""Docs health: intra-repo links resolve and CLI docs track --help.

Cheap structural checks, not prose review: every relative link in
README.md and docs/*.md must point at a file that exists, and
``docs/CLI.md`` must mention every subcommand and every long flag the
argument parser actually exposes — so the docs fail loudly the moment
the CLI drifts.
"""

import re
from pathlib import Path

import pytest

from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SUBCOMMANDS = ("info", "structures", "solve", "build", "query",
               "serve", "store", "campaign")
#: Every parser whose flags the CLI docs must track — the nested
#: ``store``/``campaign`` subcommands carry their own flags, so
#: ``store --help`` alone would leave them invisible to the drift
#: checks.
HELP_TARGETS = tuple(
    [(command,) for command in SUBCOMMANDS]
    + [("store", "ls"), ("store", "gc"),
       ("campaign", "run"), ("campaign", "status"),
       ("campaign", "query")])


def _doc_files():
    docs = sorted((REPO_ROOT / "docs").glob("*.md"))
    assert docs, "docs/ tree is missing"
    return [REPO_ROOT / "README.md"] + docs


def _relative_links(path):
    for target in LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if target:
            yield target


class TestDocLinks:
    def test_docs_tree_exists(self):
        for name in ("ARCHITECTURE.md", "CLI.md", "ADAPTIVE.md",
                     "CAMPAIGN.md"):
            assert (REPO_ROOT / "docs" / name).is_file(), name

    def test_every_relative_link_resolves(self):
        broken = []
        for doc in _doc_files():
            for target in _relative_links(doc):
                resolved = (doc.parent / target).resolve()
                if not resolved.exists():
                    broken.append(f"{doc.relative_to(REPO_ROOT)} -> "
                                  f"{target}")
        assert not broken, f"broken doc links: {broken}"

    def test_readme_links_into_docs(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for name in ("docs/ARCHITECTURE.md", "docs/CLI.md",
                     "docs/ADAPTIVE.md", "docs/CAMPAIGN.md"):
            assert name in readme, f"README does not link {name}"


def _help_text(argv, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 0
    return capsys.readouterr().out


class TestCliDocsDrift:
    def test_every_subcommand_documented(self, capsys):
        top = _help_text(["--help"], capsys)
        cli_doc = (REPO_ROOT / "docs" / "CLI.md").read_text()
        for command in SUBCOMMANDS:
            assert command in top, f"{command} missing from --help"
            assert f"repro {command}" in cli_doc, \
                f"docs/CLI.md does not document `repro {command}`"

    def test_every_flag_documented(self, capsys):
        cli_doc = (REPO_ROOT / "docs" / "CLI.md").read_text()
        missing = []
        for target in HELP_TARGETS:
            help_text = _help_text([*target, "--help"], capsys)
            for flag in set(re.findall(r"--[a-z][a-z-]*", help_text)):
                if flag == "--help":
                    continue
                if f"`{flag}" not in cli_doc:
                    missing.append(f"{' '.join(target)}: {flag}")
        assert not missing, \
            f"flags missing from docs/CLI.md: {sorted(missing)}"

    def test_documented_flags_still_exist(self, capsys):
        """The reverse direction: no stale flags in docs/CLI.md."""
        cli_doc = (REPO_ROOT / "docs" / "CLI.md").read_text()
        real = set()
        for target in HELP_TARGETS:
            real |= set(re.findall(r"--[a-z][a-z-]*",
                                   _help_text([*target, "--help"],
                                              capsys)))
        documented = set(re.findall(r"`(--[a-z][a-z-]*)", cli_doc))
        stale = documented - real
        assert not stale, f"docs/CLI.md documents removed flags: " \
                          f"{sorted(stale)}"
