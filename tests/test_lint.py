"""repro.lint: each rule catches its seeded bad fixture and passes
the matching good one, suppressions demand reasons, and the real tree
is clean.

Three layers:

* **fixture pairs** — for every rule family, one snippet that must
  trigger the rule and one (the sanctioned idiom) that must not;
* **mutation tests** — the actual ``spec.py``/``store.py`` sources
  with one invariant deliberately broken (a strip site deleted, an
  atomic write replaced by bare ``open``) must fail the lint;
* **integration** — ``src/repro`` lints clean, the CLI's exit codes
  and ``--json`` document hold, and the checker imports without the
  scientific stack (the CI lint job installs none of it).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.__main__ import main as lint_main
from repro.lint.engine import lint_files

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"
SPEC_PY = SRC_TREE / "serving" / "spec.py"
STORE_PY = SRC_TREE / "serving" / "store.py"


def lint_snippet(source, path="src/repro/pkg/mod.py", select=None):
    """Lint one dedented snippet as if it lived at ``path``."""
    return lint_source(textwrap.dedent(source), path=path,
                       select=select)


def rules_of(diagnostics):
    return [d.rule for d in diagnostics]


# ----------------------------------------------------------------------
# RL1xx — identity/execution separation


class TestExecutionFieldInIdentity:
    def test_dict_literal_in_canonical_is_flagged(self):
        diagnostics = lint_snippet("""
            def canonical(self):
                return {"workers": self.workers, "tol": self.tol}
        """)
        assert rules_of(diagnostics) == ["RL101"]
        assert "workers" in diagnostics[0].message

    def test_dict_call_and_subscript_forms_are_flagged(self):
        diagnostics = lint_snippet("""
            def to_dict(self):
                data = dict(warm_start=self.warm_start)
                data["workers"] = self.workers
                return data
        """)
        assert rules_of(diagnostics) == ["RL101", "RL101"]

    def test_include_guard_is_the_sanctioned_escape(self):
        diagnostics = lint_snippet("""
            def to_dict(self, include_workers=False):
                data = {"tol": self.tol}
                if include_workers:
                    data["workers"] = self.workers
                return data
        """)
        assert diagnostics == []

    def test_outside_identity_functions_nothing_fires(self):
        diagnostics = lint_snippet("""
            def run_options(self):
                return {"workers": self.workers}
        """)
        assert diagnostics == []


class TestStripContract:
    def test_both_strip_sites_pass(self):
        diagnostics = lint_snippet("""
            class ProblemSpec:
                def canonical(self):
                    reduction = dict(self.reduction)
                    del reduction["workers"]
                    reduction["adaptive"] = {
                        name: value
                        for name, value in self.adaptive.items()
                        if name != "workers"}
                    return reduction
        """)
        assert diagnostics == []

    def test_single_strip_site_is_flagged(self):
        diagnostics = lint_snippet("""
            class ProblemSpec:
                def canonical(self):
                    reduction = dict(self.reduction)
                    del reduction["workers"]
                    return reduction
        """)
        assert rules_of(diagnostics) == ["RL102"]
        assert "found 1" in diagnostics[0].message

    def test_missing_canonical_method_is_flagged(self):
        diagnostics = lint_snippet("""
            class ProblemSpec:
                def to_wire(self):
                    return dict(self.reduction)
        """)
        assert rules_of(diagnostics) == ["RL102"]
        assert "no longer defines" in diagnostics[0].message


class TestUnsortedHashJson:
    def test_dumps_inside_hash_constructor_is_flagged(self):
        diagnostics = lint_snippet("""
            import hashlib
            import json

            def fingerprint(data):
                return hashlib.sha256(
                    json.dumps(data).encode()).hexdigest()
        """)
        assert rules_of(diagnostics) == ["RL103"]

    def test_dumps_in_cache_key_function_is_flagged(self):
        diagnostics = lint_snippet("""
            import json

            def cache_key(data):
                return json.dumps(data)
        """)
        assert rules_of(diagnostics) == ["RL103"]

    def test_sort_keys_true_passes(self):
        diagnostics = lint_snippet("""
            import hashlib
            import json

            def cache_key(data):
                blob = json.dumps(data, sort_keys=True,
                                  separators=(",", ":"))
                return hashlib.sha256(blob.encode()).hexdigest()
        """)
        assert diagnostics == []

    def test_plain_serialization_is_left_alone(self):
        diagnostics = lint_snippet("""
            import json

            def render(report):
                return json.dumps(report, indent=2)
        """)
        assert diagnostics == []


# ----------------------------------------------------------------------
# RL2xx — determinism


class TestNondeterministicCall:
    def test_wall_clock_outside_stamp_slot_is_flagged(self):
        diagnostics = lint_snippet("""
            import time

            def label(run):
                return f"{run}-{time.time()}"
        """)
        assert rules_of(diagnostics) == ["RL201"]

    def test_import_alias_cannot_dodge_the_rule(self):
        diagnostics = lint_snippet("""
            import time as _t

            def label(run):
                return _t.time()
        """)
        assert rules_of(diagnostics) == ["RL201"]

    def test_bare_random_and_legacy_numpy_rng_are_flagged(self):
        diagnostics = lint_snippet("""
            import random

            import numpy as np

            def jitter(values):
                np.random.seed(0)
                return values + random.random()
        """)
        assert rules_of(diagnostics) == ["RL201", "RL201"]

    def test_timestamp_stamping_sites_are_allowlisted(self):
        diagnostics = lint_snippet("""
            import time

            def stamp(record, make):
                created_at = time.time()
                record["last_used"] = time.time()
                return make(created_at=time.time()), created_at
        """)
        assert diagnostics == []

    def test_seeded_generation_passes(self):
        diagnostics = lint_snippet("""
            import numpy as np

            def sample(seed, n):
                return np.random.default_rng(seed).normal(size=n)
        """)
        assert diagnostics == []


class TestUnorderedSetIteration:
    def test_for_loop_over_set_literal_is_flagged(self):
        diagnostics = lint_snippet("""
            def names(out):
                for name in {"cu", "sio2", "si"}:
                    out.append(name)
        """)
        assert rules_of(diagnostics) == ["RL202"]

    def test_list_of_set_materializes_hash_order(self):
        diagnostics = lint_snippet("""
            def order(items):
                return list(set(items))
        """)
        assert rules_of(diagnostics) == ["RL202"]

    def test_sorted_set_passes(self):
        diagnostics = lint_snippet("""
            def order(items):
                return [name for name in sorted(set(items))]
        """)
        assert diagnostics == []


# ----------------------------------------------------------------------
# RL3xx — store atomicity (scoped to repro.serving + repro.daemon)

STORE_FIXTURE_PATH = "src/repro/serving/fake.py"
DAEMON_FIXTURE_PATH = "src/repro/daemon/fake.py"
INDEX_MODULE_PATH = "src/repro/daemon/index.py"


class TestNonatomicStoreWrite:
    def test_bare_open_write_in_serving_is_flagged(self):
        diagnostics = lint_snippet("""
            def save(path, payload):
                with open(path, "wb") as handle:
                    handle.write(payload)
        """, path=STORE_FIXTURE_PATH)
        assert rules_of(diagnostics) == ["RL301"]

    def test_pathlib_write_text_in_serving_is_flagged(self):
        diagnostics = lint_snippet("""
            def save(path, text):
                path.write_text(text)
        """, path=STORE_FIXTURE_PATH)
        assert rules_of(diagnostics) == ["RL301"]

    def test_atomic_helper_body_is_exempt(self):
        diagnostics = lint_snippet("""
            import os
            import tempfile

            def _atomic_write(path, payload):
                fd, tmp = tempfile.mkstemp(dir=path.parent)
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
        """, path=STORE_FIXTURE_PATH)
        assert diagnostics == []

    def test_reads_are_fine(self):
        diagnostics = lint_snippet("""
            def load(path):
                with open(path, "rb") as handle:
                    return handle.read()
        """, path=STORE_FIXTURE_PATH)
        assert diagnostics == []

    def test_rule_is_scoped_to_the_serving_layer(self):
        diagnostics = lint_snippet("""
            def save(path, payload):
                with open(path, "wb") as handle:
                    handle.write(payload)
        """, path="src/repro/reporting/fake.py")
        assert diagnostics == []

    def test_daemon_layer_is_patrolled_too(self):
        diagnostics = lint_snippet("""
            def save(path, payload):
                with open(path, "wb") as handle:
                    handle.write(payload)
        """, path=DAEMON_FIXTURE_PATH)
        assert rules_of(diagnostics) == ["RL301"]


class TestSqliteOutsideIndex:
    def test_connect_outside_index_module_is_flagged(self):
        diagnostics = lint_snippet("""
            import sqlite3

            def open_db(path):
                return sqlite3.connect(path)
        """, path=STORE_FIXTURE_PATH)
        assert rules_of(diagnostics) == ["RL302"]

    def test_connect_in_daemon_outside_index_is_flagged(self):
        diagnostics = lint_snippet("""
            import sqlite3

            def open_db(path):
                return sqlite3.connect(path)
        """, path=DAEMON_FIXTURE_PATH)
        assert rules_of(diagnostics) == ["RL302"]

    def test_index_module_without_pragmas_is_flagged(self):
        diagnostics = lint_snippet("""
            import sqlite3

            def connect(path):
                return sqlite3.connect(path)
        """, path=INDEX_MODULE_PATH)
        assert rules_of(diagnostics) == ["RL302", "RL302"]
        assert "journal_mode=WAL" in diagnostics[0].message
        assert "synchronous=NORMAL" in diagnostics[1].message

    def test_index_module_with_both_pragmas_passes(self):
        diagnostics = lint_snippet("""
            import sqlite3

            def connect(path):
                con = sqlite3.connect(path)
                con.execute("PRAGMA journal_mode=WAL")
                con.execute("PRAGMA synchronous=NORMAL")
                return con
        """, path=INDEX_MODULE_PATH)
        assert diagnostics == []

    def test_rule_ignores_files_without_sqlite(self):
        diagnostics = lint_snippet("""
            def helper():
                return "no database here"
        """, path=INDEX_MODULE_PATH)
        assert diagnostics == []

    def test_rule_is_scoped_to_the_store_layer(self):
        diagnostics = lint_snippet("""
            import sqlite3

            def open_db(path):
                return sqlite3.connect(path)
        """, path="src/repro/reporting/fake.py")
        assert diagnostics == []


# ----------------------------------------------------------------------
# RL4xx — process-pool safety


class TestUnpicklablePoolCallable:
    def test_lambda_into_pool_map_is_flagged(self):
        diagnostics = lint_snippet("""
            def run(executor, items):
                return list(executor.map(lambda item: item + 1, items))
        """)
        assert rules_of(diagnostics) == ["RL401"]
        assert "lambda" in diagnostics[0].message

    def test_nested_function_into_submit_is_flagged(self):
        diagnostics = lint_snippet("""
            def run(pool, items):
                def work(item):
                    return item + 1
                return [pool.submit(work, item) for item in items]
        """)
        assert rules_of(diagnostics) == ["RL401"]
        assert "work" in diagnostics[0].message

    def test_declared_constructor_boundaries_are_checked(self):
        diagnostics = lint_snippet("""
            from concurrent.futures import ProcessPoolExecutor

            def run(builder_args):
                evaluator = ParallelWaveEvaluator(
                    lambda: build(builder_args), workers=2)
                with ProcessPoolExecutor(
                        initializer=lambda: seed(0)) as pool:
                    return evaluator, pool
        """)
        assert rules_of(diagnostics) == ["RL401", "RL401"]

    def test_module_level_callable_passes(self):
        diagnostics = lint_snippet("""
            import functools

            def work(item, scale):
                return item * scale

            def run(executor, items):
                job = functools.partial(work, scale=2.0)
                return list(executor.map(job, items))
        """)
        assert diagnostics == []


# ----------------------------------------------------------------------
# RL5xx — public-API drift (project rules over a module index)


def lint_project(files, select=None):
    """Lint an in-memory {path: source} project through tmp files."""
    diagnostics = []
    import tempfile
    with tempfile.TemporaryDirectory() as root:
        paths = []
        for rel, source in files.items():
            path = Path(root) / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
            paths.append(path)
        for diagnostic in lint_files(paths, select=select):
            diagnostics.append((diagnostic.rule,
                                Path(diagnostic.file).name,
                                diagnostic.message))
    return diagnostics


class TestExportDrift:
    def test_resolvable_documented_exports_pass(self):
        assert lint_project({
            "src/repro/pkg/__init__.py": """
                from repro.pkg.mod import thing

                __all__ = ["thing"]
            """,
            "src/repro/pkg/mod.py": """
                def thing():
                    \"\"\"Documented.\"\"\"
            """,
        }) == []

    def test_ghost_export_is_flagged(self):
        findings = lint_project({
            "src/repro/pkg/__init__.py": """
                __all__ = ["ghost"]
            """,
        })
        assert [f[0] for f in findings] == ["RL501"]
        assert "ghost" in findings[0][2]

    def test_duplicate_export_is_flagged(self):
        findings = lint_project({
            "src/repro/pkg/__init__.py": """
                def thing():
                    \"\"\"Documented.\"\"\"

                __all__ = ["thing", "thing"]
            """,
        })
        assert [f[0] for f in findings] == ["RL501"]
        assert "more than once" in findings[0][2]

    def test_lazy_table_must_agree_with_all(self):
        findings = lint_project({
            "src/repro/pkg/__init__.py": """
                _EXPORTS = {"thing": "repro.pkg.mod"}

                __all__ = []
            """,
            "src/repro/pkg/mod.py": """
                def thing():
                    \"\"\"Documented.\"\"\"
            """,
        })
        assert [f[0] for f in findings] == ["RL501"]
        assert "lazy export table" in findings[0][2]

    def test_lazy_star_idiom_resolves_through_the_table(self):
        assert lint_project({
            "src/repro/pkg/__init__.py": """
                _EXPORTS = {"thing": "repro.pkg.mod"}

                __all__ = [*_EXPORTS, "__version__"]

                __version__ = "0.0"
            """,
            "src/repro/pkg/mod.py": """
                def thing():
                    \"\"\"Documented.\"\"\"
            """,
        }) == []


class TestUndocumentedExport:
    def test_undocumented_def_is_flagged_at_its_definition(self):
        findings = lint_project({
            "src/repro/pkg/__init__.py": """
                from repro.pkg.mod import thing

                __all__ = ["thing"]
            """,
            "src/repro/pkg/mod.py": """
                def thing():
                    return 1
            """,
        })
        assert [(f[0], f[1]) for f in findings] == [("RL502", "mod.py")]

    def test_attribute_doc_comment_passes(self):
        assert lint_project({
            "src/repro/pkg/__init__.py": """
                from repro.pkg.mod import LIMIT

                __all__ = ["LIMIT"]
            """,
            "src/repro/pkg/mod.py": """
                #: Documented constant.
                LIMIT = 8
            """,
        }) == []

    def test_undocumented_constant_is_flagged(self):
        findings = lint_project({
            "src/repro/pkg/__init__.py": """
                from repro.pkg.mod import LIMIT

                __all__ = ["LIMIT"]
            """,
            "src/repro/pkg/mod.py": """
                LIMIT = 8
            """,
        })
        assert [f[0] for f in findings] == ["RL502"]


# ----------------------------------------------------------------------
# RL6xx — observability firewall


class TestObsFirewall:
    def test_obs_import_in_identity_module_is_flagged(self):
        diagnostics = lint_snippet("""
            from repro.obs.metrics import counter
        """, path="src/repro/serving/spec.py", select="RL601")
        assert rules_of(diagnostics) == ["RL601"]
        assert "execution-only" in diagnostics[0].message

    def test_plain_import_form_is_flagged_too(self):
        diagnostics = lint_snippet("""
            import repro.obs.trace
        """, path="src/repro/serving/spec.py", select="RL601")
        assert rules_of(diagnostics) == ["RL601"]

    def test_execution_modules_may_import_obs(self):
        diagnostics = lint_snippet("""
            from repro.obs.metrics import counter
            HITS = counter("repro_x_total", "doc")
        """, path="src/repro/serving/pipeline.py", select="RL601")
        assert diagnostics == []

    def test_obs_call_inside_canonical_is_flagged(self):
        diagnostics = lint_snippet("""
            from repro.obs.trace import span

            def canonical(self):
                with span("canonicalize"):
                    return {"tol": self.tol}
        """, select="RL602")
        assert rules_of(diagnostics) == ["RL602"]
        assert "canonical()" in diagnostics[0].message

    def test_obs_attribute_call_inside_cache_key_is_flagged(self):
        diagnostics = lint_snippet("""
            from repro.obs import metrics

            def cache_key(self):
                metrics.counter("repro_keys_total", "doc").inc()
                return self.digest()
        """, select="RL602")
        assert rules_of(diagnostics) == ["RL602"]

    def test_late_import_inside_to_dict_is_flagged(self):
        diagnostics = lint_snippet("""
            def to_dict(self):
                from repro.obs.metrics import counter
                return {}
        """, select="RL602")
        assert rules_of(diagnostics) == ["RL602"]

    def test_obs_name_reference_inside_identity_form_is_flagged(self):
        diagnostics = lint_snippet("""
            from repro.obs.trace import NULL_TRACER

            def to_dict(self):
                return {"tracer": NULL_TRACER}
        """, select="RL602")
        assert rules_of(diagnostics) == ["RL602"]

    def test_obs_usage_outside_identity_functions_is_fine(self):
        diagnostics = lint_snippet("""
            from repro.obs.trace import span

            def build(self):
                with span("build"):
                    return self.solve()
        """, select="RL602")
        assert diagnostics == []

    def test_clock_exempt_modules_skip_rl201(self):
        snippet = """
            import time

            def stamp():
                return time.time()
        """
        exempt = lint_snippet(snippet, path="src/repro/obs/trace.py",
                              select="RL201")
        assert exempt == []
        elsewhere = lint_snippet(snippet,
                                 path="src/repro/obs/metrics.py",
                                 select="RL201")
        assert rules_of(elsewhere) == ["RL201"]


# ----------------------------------------------------------------------
# RL7xx — iterative-solver confinement


class TestIterativeSolverConfinement:
    def test_iterative_import_outside_seam_is_flagged(self):
        diagnostics = lint_snippet("""
            from scipy.sparse.linalg import gmres
        """, path="src/repro/solver/sweep.py", select="RL701")
        assert rules_of(diagnostics) == ["RL701"]
        assert "backend seam" in diagnostics[0].message

    def test_iterative_call_outside_seam_is_flagged(self):
        diagnostics = lint_snippet("""
            import scipy.sparse.linalg as spla

            def solve(matrix, rhs):
                x, info = spla.bicgstab(matrix, rhs, rtol=1e-6)
                return x
        """, path="src/repro/analysis/runner.py", select="RL701")
        assert rules_of(diagnostics) == ["RL701"]

    def test_backend_seam_may_run_iterative_solvers(self):
        diagnostics = lint_snippet("""
            from scipy.sparse.linalg import bicgstab, gmres

            def attempt(matrix, rhs):
                return gmres(matrix, rhs, rtol=1e-10)
        """, path="src/repro/solver/backends.py", select="RL701")
        assert diagnostics == []

    def test_direct_solvers_are_not_confined(self):
        # splu/spsolve are the direct path — usable anywhere.
        diagnostics = lint_snippet("""
            from scipy.sparse.linalg import splu, spsolve
        """, path="src/repro/solver/linear.py", select="RL701")
        assert diagnostics == []


# ----------------------------------------------------------------------
# Suppression directives


class TestSuppressions:
    def test_trailing_directive_with_reason_silences_the_finding(self):
        diagnostics = lint_snippet("""
            import time

            def label(run):
                return time.time()  # repro-lint: disable=RL201 -- fixture exercises the trace replay path
        """)
        assert diagnostics == []

    def test_standalone_directive_covers_the_next_line(self):
        diagnostics = lint_snippet("""
            import time

            def label(run):
                # repro-lint: disable=RL201 -- replaying a recorded trace
                return time.time()
        """)
        assert diagnostics == []

    def test_missing_reason_is_rejected_and_does_not_silence(self):
        diagnostics = lint_snippet("""
            import time

            def label(run):
                return time.time()  # repro-lint: disable=RL201
        """)
        assert sorted(rules_of(diagnostics)) == ["RL001", "RL201"]

    def test_unknown_rule_id_is_reported(self):
        diagnostics = lint_snippet("""
            x = 1  # repro-lint: disable=RL999 -- no such rule
        """)
        assert rules_of(diagnostics) == ["RL002"]

    def test_stale_suppression_is_reported(self):
        diagnostics = lint_snippet("""
            x = 1  # repro-lint: disable=RL201 -- nothing here anymore
        """)
        assert rules_of(diagnostics) == ["RL003"]
        assert "stale" in diagnostics[0].message

    def test_malformed_directive_is_reported(self):
        diagnostics = lint_snippet("""
            x = 1  # repro-lint: enable=RL201
        """)
        assert rules_of(diagnostics) == ["RL001"]

    def test_unparseable_file_reports_rl000(self):
        diagnostics = lint_snippet("""
            def broken(:
                pass
        """)
        assert rules_of(diagnostics) == ["RL000"]


# ----------------------------------------------------------------------
# Mutation tests: breaking the real invariants must fail the lint


class TestRealSourceMutations:
    def test_spec_and_store_lint_clean_as_written(self):
        assert lint_files([SPEC_PY, STORE_PY]) == []

    def test_deleting_the_workers_strip_site_fails(self):
        source = SPEC_PY.read_text()
        target = 'del reduction["workers"]'
        assert target in source
        mutated = "\n".join(
            line for line in source.splitlines()
            if target not in line) + "\n"
        diagnostics = lint_source(mutated, path=str(SPEC_PY))
        assert "RL102" in rules_of(diagnostics)
        assert any("core count" in d.message for d in diagnostics)

    def test_replacing_the_atomic_write_with_bare_open_fails(self):
        source = STORE_PY.read_text()
        target = "self._atomic_write(payload_path, payload)"
        assert target in source
        mutated = source.replace(
            target, 'open(payload_path, "wb").write(payload)')
        diagnostics = lint_source(mutated, path=str(STORE_PY))
        assert rules_of(diagnostics) == ["RL301"]

    def test_store_timestamp_stamping_needs_no_suppressions(self):
        # save()/touch() stamp created_at/last_used with time.time();
        # the allowlist must cover them without inline directives.
        assert "repro-lint" not in STORE_PY.read_text()
        assert lint_files([STORE_PY], select="RL201") == []


# ----------------------------------------------------------------------
# Integration: the tree is clean, the CLI behaves, stdlib-only import


class TestTreeIsClean:
    def test_src_repro_lints_clean(self):
        diagnostics = lint_paths([str(SRC_TREE)])
        assert diagnostics == [], "\n".join(
            f"{d.file}:{d.line}: {d.rule} {d.message}"
            for d in diagnostics)


class TestCli:
    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--help"])
        assert excinfo.value.code == 0
        assert "docs/LINT.md" in capsys.readouterr().out

    def test_list_rules_names_every_family(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL000", "RL001", "RL101", "RL102", "RL103",
                        "RL201", "RL202", "RL301", "RL401", "RL501",
                        "RL502", "RL601", "RL602", "RL701"):
            assert rule_id in out

    def test_clean_tree_exits_zero(self, capsys):
        assert lint_main([str(SRC_TREE / "units.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_exits_two(self, capsys):
        assert lint_main(["no/such/tree"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_findings_exit_one_and_json_is_machine_readable(
            self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n")
        assert lint_main(["--json", str(bad)]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["counts"]["error"] == 1
        (finding,) = document["diagnostics"]
        assert finding["file"] == str(bad)
        assert finding["line"] == 2
        assert finding["rule"] == "RL201"
        assert "nondeterministic" in finding["message"]

    def test_select_narrows_the_rule_set(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n")
        assert lint_main(["--select", "RL202", str(bad)]) == 0
        capsys.readouterr()

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        stale = tmp_path / "stale.py"
        stale.write_text(
            "x = 1  # repro-lint: disable=RL201 -- stale\n")
        assert lint_main([str(stale)]) == 0
        assert lint_main(["--strict", str(stale)]) == 1
        capsys.readouterr()


class TestStdlibOnly:
    def test_checker_runs_with_the_scientific_stack_blocked(self):
        # The CI lint job installs no numpy/scipy; importing the
        # package through the lazy top-level __init__ and linting a
        # snippet must work with both hard-blocked.
        probe = textwrap.dedent("""
            import sys

            class _Block:
                def find_spec(self, name, path=None, target=None):
                    if name.split(".")[0] in ("numpy", "scipy"):
                        raise ImportError(f"blocked: {name}")
                    return None

            sys.meta_path.insert(0, _Block())

            import repro
            from repro.lint import lint_source

            diagnostics = lint_source(
                "import random\\nx = random.random()\\n",
                path="src/repro/x.py")
            assert [d.rule for d in diagnostics] == ["RL201"], \\
                diagnostics
            print("stdlib-only: ok")
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-c", probe], env=env,
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        assert "stdlib-only: ok" in result.stdout
