"""Tests for material models, doping profiles and carrier physics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import NI_SILICON, VT_ROOM
from repro.errors import MaterialError
from repro.materials import (
    GaussianDoping,
    Insulator,
    Metal,
    MaterialKind,
    NodePerturbedDoping,
    Semiconductor,
    UniformDoping,
    copper,
    doped_silicon,
    equilibrium_carriers,
    equilibrium_potential,
    intrinsic_density,
    mobility_caughey_thomas,
    silicon_dioxide,
    srh_derivatives,
    srh_recombination,
    tungsten,
    vacuum,
)
from repro.materials.material import MaterialTable
from repro.materials.physics import electron_mobility_si, hole_mobility_si


class TestMaterialDataclasses:
    def test_kinds(self):
        assert copper().kind is MaterialKind.METAL
        assert silicon_dioxide().kind is MaterialKind.INSULATOR
        assert doped_silicon(1e21).kind is MaterialKind.SEMICONDUCTOR

    def test_admittivity_metal_dominated_by_sigma(self):
        metal = copper()
        adm = metal.admittivity(2.0 * np.pi * 1.0e9)
        assert adm.real == pytest.approx(5.8e7)
        assert abs(adm.imag) < 1.0

    def test_admittivity_insulator_is_pure_imaginary(self):
        oxide = silicon_dioxide()
        adm = oxide.admittivity(2.0 * np.pi * 1.0e9)
        assert adm.real == 0.0
        assert adm.imag > 0.0

    def test_negative_eps_rejected(self):
        with pytest.raises(MaterialError):
            Insulator(name="bad", eps_r=-1.0)

    def test_metal_needs_positive_sigma(self):
        with pytest.raises(MaterialError):
            Metal(name="bad", eps_r=1.0, sigma=0.0)

    def test_semiconductor_validation(self):
        with pytest.raises(MaterialError):
            Semiconductor(name="bad", eps_r=11.7, ni=-1.0)
        with pytest.raises(MaterialError):
            Semiconductor(name="bad", eps_r=11.7, mu_n=0.0)
        with pytest.raises(MaterialError):
            Semiconductor(name="bad", eps_r=11.7, tau_n=0.0)

    def test_net_doping_sign(self):
        n_type = doped_silicon(1.0e21)
        p_type = doped_silicon(-1.0e21)
        assert n_type.net_doping == pytest.approx(1.0e21)
        assert p_type.net_doping == pytest.approx(-1.0e21)
        assert p_type.acceptor_density == pytest.approx(1.0e21)

    def test_library_names_unique(self):
        mats = [copper(), tungsten(), silicon_dioxide(), vacuum("air"),
                doped_silicon(1e21)]
        names = [m.name for m in mats]
        assert len(set(names)) == len(names)


class TestMaterialTable:
    def test_add_is_idempotent_by_name(self):
        table = MaterialTable()
        idx1 = table.add(copper())
        idx2 = table.add(copper())
        assert idx1 == idx2 == 0
        assert len(table) == 1

    def test_conflicting_definition_rejected(self):
        table = MaterialTable()
        table.add(copper())
        with pytest.raises(MaterialError):
            table.add(Metal(name="copper", eps_r=1.0, sigma=1.0e7))

    def test_id_of_unknown_raises(self):
        table = MaterialTable()
        with pytest.raises(MaterialError):
            table.id_of("nope")

    def test_getitem_out_of_range(self):
        table = MaterialTable()
        with pytest.raises(MaterialError):
            table[3]


class TestCarrierPhysics:
    def test_intrinsic_density_anchored_at_300k(self):
        assert intrinsic_density(300.0) == pytest.approx(NI_SILICON)

    def test_intrinsic_density_increases_with_temperature(self):
        assert intrinsic_density(350.0) > intrinsic_density(300.0)

    def test_mobility_limits(self):
        lo = mobility_caughey_thomas(0.0, 0.005, 0.14, 1e23, 0.7)
        hi = mobility_caughey_thomas(1e28, 0.005, 0.14, 1e23, 0.7)
        assert lo == pytest.approx(0.14)
        assert hi == pytest.approx(0.005, rel=0.05)

    def test_si_mobility_values_sane(self):
        assert 0.1 < electron_mobility_si(1e20) < 0.15
        assert 0.03 < hole_mobility_si(1e20) < 0.05
        assert electron_mobility_si(1e26) < electron_mobility_si(1e20)

    def test_mobility_rejects_negative_doping(self):
        with pytest.raises(ValueError):
            mobility_caughey_thomas(-1.0, 0.005, 0.14, 1e23, 0.7)

    def test_srh_zero_at_equilibrium(self):
        n, p = equilibrium_carriers(0.2, NI_SILICON, VT_ROOM)
        u = srh_recombination(n, p, NI_SILICON, 1e-6, 1e-6)
        assert u == pytest.approx(0.0, abs=1e-3 * NI_SILICON / 1e-6)

    def test_srh_sign(self):
        ni = NI_SILICON
        excess = srh_recombination(10 * ni, 10 * ni, ni, 1e-6, 1e-6)
        depleted = srh_recombination(0.1 * ni, 0.1 * ni, ni, 1e-6, 1e-6)
        assert excess > 0.0
        assert depleted < 0.0

    def test_srh_derivatives_match_finite_difference(self):
        ni = NI_SILICON
        n0, p0 = 5.0 * ni, 0.3 * ni
        du_dn, du_dp = srh_derivatives(n0, p0, ni, 1e-6, 2e-6)
        h = 1e-6 * ni
        fd_n = (srh_recombination(n0 + h, p0, ni, 1e-6, 2e-6)
                - srh_recombination(n0 - h, p0, ni, 1e-6, 2e-6)) / (2 * h)
        fd_p = (srh_recombination(n0, p0 + h, ni, 1e-6, 2e-6)
                - srh_recombination(n0, p0 - h, ni, 1e-6, 2e-6)) / (2 * h)
        assert du_dn == pytest.approx(fd_n, rel=1e-5)
        assert du_dp == pytest.approx(fd_p, rel=1e-5)

    @given(st.floats(min_value=-1e24, max_value=1e24))
    @settings(max_examples=50, deadline=None)
    def test_equilibrium_consistency(self, net_doping):
        """Boltzmann equilibrium satisfies mass action and neutrality."""
        v = equilibrium_potential(net_doping, NI_SILICON, VT_ROOM)
        n, p = equilibrium_carriers(v, NI_SILICON, VT_ROOM)
        assert n * p == pytest.approx(NI_SILICON ** 2, rel=1e-6)
        # Charge neutrality: n - p = net doping.
        assert n - p == pytest.approx(net_doping, rel=1e-6,
                                      abs=1e-3 * NI_SILICON)

    def test_equilibrium_potential_sign(self):
        assert equilibrium_potential(1e21, NI_SILICON, VT_ROOM) > 0.0
        assert equilibrium_potential(-1e21, NI_SILICON, VT_ROOM) < 0.0


class TestDopingProfiles:
    def _coords(self, n=10):
        rng = np.random.default_rng(0)
        return rng.uniform(0.0, 1e-5, size=(n, 3))

    def test_uniform(self):
        prof = UniformDoping(2.5e21)
        coords = self._coords()
        np.testing.assert_allclose(prof.net_doping(coords), 2.5e21)
        np.testing.assert_allclose(prof.total_doping(coords), 2.5e21)

    def test_uniform_rejects_bad_coords(self):
        with pytest.raises(MaterialError):
            UniformDoping(1e21).net_doping(np.zeros((5, 2)))

    def test_gaussian_peak_location(self):
        prof = GaussianDoping(background=-1e21, peak=1e23, axis=2,
                              center=5e-6, sigma=1e-6)
        at_peak = prof.net_doping(np.array([[0.0, 0.0, 5e-6]]))
        far = prof.net_doping(np.array([[0.0, 0.0, 0.0]]))
        assert at_peak[0] == pytest.approx(-1e21 + 1e23)
        assert far[0] == pytest.approx(-1e21, rel=1e-6)

    def test_gaussian_validation(self):
        with pytest.raises(MaterialError):
            GaussianDoping(0.0, 1.0, axis=5, center=0.0, sigma=1.0)
        with pytest.raises(MaterialError):
            GaussianDoping(0.0, 1.0, axis=0, center=0.0, sigma=0.0)

    def test_node_perturbed_applies_multipliers(self):
        base = UniformDoping(1.0e21)
        prof = NodePerturbedDoping(base, node_ids=[1, 3],
                                   multipliers=[1.2, 0.8], num_nodes=5)
        coords = np.zeros((5, 3))
        values = prof.net_doping(coords)
        np.testing.assert_allclose(
            values, [1.0e21, 1.2e21, 1.0e21, 0.8e21, 1.0e21])

    def test_node_perturbed_validation(self):
        base = UniformDoping(1.0e21)
        with pytest.raises(MaterialError):
            NodePerturbedDoping(base, [0], [1.0, 2.0], num_nodes=5)
        with pytest.raises(MaterialError):
            NodePerturbedDoping(base, [9], [1.0], num_nodes=5)
        with pytest.raises(MaterialError):
            NodePerturbedDoping(base, [0], [-0.5], num_nodes=5)

    def test_node_perturbed_coords_length_checked(self):
        base = UniformDoping(1.0e21)
        prof = NodePerturbedDoping(base, [0], [1.1], num_nodes=5)
        with pytest.raises(MaterialError):
            prof.net_doping(np.zeros((4, 3)))
