"""Tests for covariance kernels, random fields, CSV/naive models, RDF."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeshError, StochasticError
from repro.materials import UniformDoping
from repro.mesh import CartesianGrid
from repro.variation import (
    ContinuousSurfaceModel,
    GaussianRandomField,
    NaiveSurfaceModel,
    RandomDopingModel,
    covariance_matrix,
    exponential_kernel,
    squared_exponential_kernel,
    propagate_axis_displacement,
)
from repro.variation.random_field import stable_cholesky


class TestKernels:
    def test_exponential_diagonal(self):
        cov = exponential_kernel(np.zeros((3, 3)), sigma=0.5, eta=1.0)
        np.testing.assert_allclose(np.diag(cov), 0.25)

    def test_exponential_decay(self):
        assert exponential_kernel(1.0, 1.0, 1.0) == pytest.approx(
            np.exp(-1.0))

    def test_squared_exponential_decay(self):
        assert squared_exponential_kernel(2.0, 1.0, 1.0) == pytest.approx(
            np.exp(-4.0))

    def test_validation(self):
        with pytest.raises(StochasticError):
            exponential_kernel(1.0, sigma=-1.0, eta=1.0)
        with pytest.raises(StochasticError):
            exponential_kernel(1.0, sigma=1.0, eta=0.0)
        with pytest.raises(StochasticError):
            covariance_matrix(np.zeros((3, 2)), 1.0, 1.0, kernel="bogus")

    def test_covariance_matrix_symmetric_psd(self, rng):
        coords = rng.uniform(0, 1e-5, size=(20, 3))
        cov = covariance_matrix(coords, sigma=0.3e-6, eta=0.7e-6)
        np.testing.assert_allclose(cov, cov.T)
        eigvals = np.linalg.eigvalsh(cov)
        assert eigvals.min() > -1e-18


class TestRandomField:
    def test_sample_statistics(self, rng):
        coords = np.linspace(0, 1e-5, 12)[:, None] * np.ones((1, 3))
        field = GaussianRandomField(coords, sigma=0.5e-6, eta=0.7e-6)
        samples = field.sample(rng, num_samples=4000)
        assert samples.shape == (4000, 12)
        np.testing.assert_allclose(samples.std(axis=0), 0.5e-6, rtol=0.1)
        # Correlation decays with distance.
        corr = np.corrcoef(samples.T)
        assert corr[0, 1] > corr[0, 11]

    def test_transform_matches_cholesky(self, rng):
        coords = rng.uniform(0, 1e-5, size=(8, 3))
        field = GaussianRandomField(coords, sigma=1e-6, eta=1e-6)
        z = rng.standard_normal(8)
        np.testing.assert_allclose(field.transform(z),
                                   field.cholesky @ z)

    def test_stable_cholesky_handles_semidefinite(self):
        # Rank-deficient: duplicated coordinates.
        cov = np.ones((4, 4))
        chol = stable_cholesky(cov)
        np.testing.assert_allclose(chol @ chol.T, cov, atol=1e-6)

    def test_stable_cholesky_rejects_asymmetric(self):
        with pytest.raises(StochasticError):
            stable_cholesky(np.array([[1.0, 0.5], [0.2, 1.0]]))

    def test_validation(self, rng):
        coords = rng.uniform(0, 1, size=(5, 3))
        field = GaussianRandomField(coords, 1.0, 1.0)
        with pytest.raises(StochasticError):
            field.sample(rng, num_samples=0)
        with pytest.raises(StochasticError):
            field.transform(np.zeros(7))


class TestCsvPropagation:
    def _grid(self):
        return CartesianGrid(np.linspace(0, 10e-6, 11),
                             np.linspace(0, 4e-6, 5),
                             np.linspace(0, 4e-6, 5))

    def test_anchor_values_preserved(self):
        grid = self._grid()
        anchor = grid.node_id(5, 2, 2)
        disp = propagate_axis_displacement(grid, 0, [anchor], [0.9e-6])
        assert disp[anchor] == pytest.approx(0.9e-6)

    def test_linear_decay_to_boundary(self):
        """Eq. (7): outer nodes decay linearly to zero at the boundary."""
        grid = self._grid()
        anchor = grid.node_id(5, 2, 2)  # x = 5 um, boundary at 10 um
        disp = propagate_axis_displacement(grid, 0, [anchor], [1.0e-6])
        outer = grid.node_id(7, 2, 2)  # x = 7 um
        expected = 1.0e-6 * (10.0 - 7.0) / (10.0 - 5.0)
        assert disp[outer] == pytest.approx(expected)
        assert disp[grid.node_id(0, 2, 2)] == pytest.approx(0.0)
        assert disp[grid.node_id(10, 2, 2)] == pytest.approx(0.0)

    def test_interpolation_between_two_anchors(self):
        """Eq. (6): inner nodes interpolate between the interfaces."""
        grid = self._grid()
        left = grid.node_id(2, 1, 1)   # x = 2 um
        right = grid.node_id(8, 1, 1)  # x = 8 um
        disp = propagate_axis_displacement(
            grid, 0, [left, right], [0.4e-6, -0.2e-6])
        mid = grid.node_id(5, 1, 1)    # halfway
        assert disp[mid] == pytest.approx(0.1e-6)

    def test_unrelated_lines_untouched(self):
        grid = self._grid()
        anchor = grid.node_id(5, 2, 2)
        disp = propagate_axis_displacement(grid, 0, [anchor], [1.0e-6])
        other_line = grid.node_id(5, 0, 0)
        assert disp[other_line] == 0.0

    def test_duplicate_anchor_rejected(self):
        grid = self._grid()
        nid = grid.node_id(5, 2, 2)
        with pytest.raises(StochasticError):
            propagate_axis_displacement(grid, 0, [nid, nid],
                                        [1e-6, 2e-6])

    def test_bad_axis_rejected(self):
        grid = self._grid()
        with pytest.raises(MeshError):
            propagate_axis_displacement(grid, 3, [0], [1e-6])

    def test_empty_anchor_set(self):
        grid = self._grid()
        disp = propagate_axis_displacement(grid, 0, [], [])
        np.testing.assert_allclose(disp, 0.0)

    @given(value=st.floats(-0.95, 0.95), index=st.integers(1, 9),
           seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_csv_never_destroys_mesh(self, value, index, seed):
        """The CSV model's key property (Fig. 1b): any interface
        perturbation smaller than the distance to the next *interface or
        boundary* keeps the mesh valid — even when it is much larger
        than the local mesh step."""
        grid = self._grid()
        rng = np.random.default_rng(seed)
        plane_nodes = [grid.node_id(index, j, k)
                       for j in range(grid.ny) for k in range(grid.nz)]
        max_room = min(grid.xs[index] - grid.xs[0],
                       grid.xs[-1] - grid.xs[index])
        values = value * max_room * rng.uniform(0.5, 1.0,
                                                len(plane_nodes))
        model = ContinuousSurfaceModel(grid)
        pg = model.perturbed_grid({0: (np.array(plane_nodes), values)})
        assert pg.validity().valid

    def test_naive_model_destroys_large_perturbation(self):
        """The Fig. 1(a) failure: the traditional model inverts the mesh
        once the perturbation exceeds the local step."""
        grid = self._grid()  # 1 um step in x
        nid = grid.node_id(5, 2, 2)
        naive = NaiveSurfaceModel(grid)
        pg = naive.perturbed_grid({0: (np.array([nid]),
                                       np.array([1.5e-6]))})
        assert not pg.validity().valid
        # The CSV model survives the identical perturbation.
        csv = ContinuousSurfaceModel(grid)
        pg2 = csv.perturbed_grid({0: (np.array([nid]),
                                      np.array([1.5e-6]))})
        assert pg2.validity().valid

    def test_models_agree_for_tiny_perturbations_at_anchor(self):
        grid = self._grid()
        nid = grid.node_id(5, 2, 2)
        anchors = {0: (np.array([nid]), np.array([1e-9]))}
        csv = ContinuousSurfaceModel(grid).displacement_field(anchors)
        naive = NaiveSurfaceModel(grid).displacement_field(anchors)
        assert csv[nid, 0] == pytest.approx(naive[nid, 0])


class TestRandomDopingModel:
    def _group(self):
        from repro.variation.groups import PerturbationGroup

        coords = np.linspace(0, 1e-6, 5)[:, None] * np.ones((1, 3))
        cov = covariance_matrix(coords, 0.1, 0.5e-6)
        return PerturbationGroup(name="doping", kind="doping",
                                 node_ids=np.arange(5), coords=coords,
                                 covariance=cov)

    def test_profile_multipliers(self):
        model = RandomDopingModel(UniformDoping(1e21), self._group(),
                                  num_nodes=10)
        xi = np.array([0.1, -0.05, 0.0, 0.2, -0.1])
        profile = model.profile_for(xi)
        coords = np.zeros((10, 3))
        values = profile.net_doping(coords)
        assert values[0] == pytest.approx(1.1e21)
        assert values[1] == pytest.approx(0.95e21)
        assert values[5] == pytest.approx(1.0e21)

    def test_floor_clipping(self):
        model = RandomDopingModel(UniformDoping(1e21), self._group(),
                                  num_nodes=10, floor=0.05)
        xi = np.full(5, -5.0)  # would give negative doping
        values = model.profile_for(xi).net_doping(np.zeros((10, 3)))
        assert values[0] == pytest.approx(0.05e21)

    def test_wrong_group_kind_rejected(self):
        from repro.variation.groups import PerturbationGroup

        coords = np.zeros((2, 3))
        geo = PerturbationGroup(name="g", kind="geometry",
                                node_ids=np.arange(2), coords=coords,
                                covariance=np.eye(2), axis=0)
        with pytest.raises(StochasticError):
            RandomDopingModel(UniformDoping(1e21), geo, num_nodes=5)

    def test_xi_shape_checked(self):
        model = RandomDopingModel(UniformDoping(1e21), self._group(),
                                  num_nodes=10)
        with pytest.raises(StochasticError):
            model.profile_for(np.zeros(3))
