"""Tests for the order-adaptive chaos basis and its plumbing.

The accepted multi-index set now drives the polynomial basis
(Conrad-Marzouk per-tensor truncation): higher-order 1-D Hermite
machinery, explicit-index :class:`HermiteBasis`, the
``AdaptiveConfig(basis="adaptive")`` fit, spec cache-key invariance
(old keys survive byte-for-byte), store round-trips of order-3+
surrogates, and the parallel fixed-grid build that rides the same
wave evaluator.
"""

import math

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveConfig,
    adaptive_basis_indices,
    run_adaptive_sscm,
    tensor_degree_caps,
)
from repro.errors import ServingError, StochasticError
from repro.stochastic import (
    HermiteBasis,
    PolynomialChaos,
    QuadraticPCE,
    gauss_hermite_rule,
    hermite_triple_product,
    hermite_value,
    hermite_values_upto,
)


class TestHigherOrderHermite:
    """Satellite: 1-D pieces the order-adaptive basis builds on."""

    def test_orthonormality_to_order_six(self):
        """<He_i He_j> = delta_ij i! for all i, j <= 6, by a rule
        exact to degree 13."""
        nodes, weights = gauss_hermite_rule(7)
        values = hermite_values_upto(6, nodes)
        gram = (values * weights) @ values.T
        expected = np.diag([math.factorial(k) for k in range(7)])
        np.testing.assert_allclose(gram, expected, atol=1e-8)

    def test_recurrence_matches_closed_forms(self):
        x = np.linspace(-3.0, 3.0, 11)
        closed = {
            3: x ** 3 - 3 * x,
            4: x ** 4 - 6 * x ** 2 + 3,
            5: x ** 5 - 10 * x ** 3 + 15 * x,
            6: x ** 6 - 15 * x ** 4 + 45 * x ** 2 - 15,
        }
        for order, expected in closed.items():
            np.testing.assert_allclose(hermite_value(order, x),
                                       expected, atol=1e-10)

    def test_values_upto_is_consistent(self):
        x = np.linspace(-2.0, 2.0, 5)
        stacked = hermite_values_upto(6, x)
        for order in range(7):
            np.testing.assert_array_equal(stacked[order],
                                          hermite_value(order, x))

    def test_values_upto_rejects_negative(self):
        with pytest.raises(StochasticError):
            hermite_values_upto(-1, 0.0)

    def test_triple_products_match_quadrature(self):
        """<He_i He_j He_k> to order 4 against an exact rule
        (max degree 12 -> 7 points suffice)."""
        nodes, weights = gauss_hermite_rule(7)
        values = hermite_values_upto(4, nodes)
        for i in range(5):
            for j in range(5):
                for k in range(5):
                    numeric = float(
                        (weights * values[i] * values[j]
                         * values[k]).sum())
                    assert hermite_triple_product(i, j, k) \
                        == pytest.approx(numeric, abs=1e-8)

    def test_triple_product_selection_rules(self):
        assert hermite_triple_product(1, 1, 1) == 0.0  # odd total
        assert hermite_triple_product(1, 1, 4) == 0.0  # triangle
        assert hermite_triple_product(0, 3, 3) == 6.0  # <He_3^2>
        with pytest.raises(StochasticError):
            hermite_triple_product(-1, 0, 0)


class TestExplicitBasis:
    def test_normalized_sorted_with_constant_first(self):
        basis = HermiteBasis(2, indices=[(2, 2), (1, 0), (0, 0),
                                         (3, 0), (1, 0)])
        assert basis.indices == [(0, 0), (1, 0), (3, 0), (2, 2)]
        assert basis.truncation == "explicit"
        assert basis.order == 4
        assert basis.size == 4
        np.testing.assert_array_equal(basis.norms_squared,
                                      [1.0, 1.0, 6.0, 4.0])

    def test_constant_index_required(self):
        with pytest.raises(StochasticError):
            HermiteBasis(2, indices=[(1, 0), (0, 1)])

    def test_bad_indices_rejected(self):
        with pytest.raises(StochasticError):
            HermiteBasis(2, indices=[(0, 0), (1,)])
        with pytest.raises(StochasticError):
            HermiteBasis(2, indices=[(0, 0), (-1, 0)])

    def test_describe(self):
        assert HermiteBasis(3).describe() == {
            "kind": "total-degree", "order": 2, "size": 10}
        explicit = HermiteBasis(2, indices=[(0, 0), (4, 0)])
        assert explicit.describe() == {
            "kind": "explicit", "order": 4, "size": 2}

    def test_evaluate_matches_1d_products(self):
        rng = np.random.default_rng(7)
        points = rng.standard_normal((20, 2))
        basis = HermiteBasis(2, indices=[(0, 0), (3, 0), (2, 2),
                                         (0, 4)])
        design = basis.evaluate(points)
        for col, (i, j) in enumerate(basis.indices):
            expected = hermite_value(i, points[:, 0]) \
                * hermite_value(j, points[:, 1])
            np.testing.assert_allclose(design[:, col], expected,
                                       atol=1e-10)

    def test_total_degree_default_unchanged(self):
        basis = HermiteBasis(3)
        assert basis.truncation == "total"
        assert basis.indices[0] == (0, 0, 0)
        assert basis.size == 10


class TestAdaptiveBasisIndices:
    def test_degree_caps_follow_rule_sizes(self):
        assert tensor_degree_caps((0, 1, 2, 3)) == (0, 2, 4, 8)

    def test_union_of_boxes(self):
        indices = [(0, 0), (1, 0), (0, 1), (2, 0)]
        basis = adaptive_basis_indices(indices)
        # Direction 0 refined to level 2 -> degrees up to 4; direction
        # 1 to level 1 -> up to 2; no accepted pair index -> no cross
        # terms.
        expected = {(0, 0)}
        expected |= {(a, 0) for a in range(1, 5)}
        expected |= {(0, b) for b in (1, 2)}
        assert set(basis) == expected
        assert basis[0] == (0, 0)
        totals = [sum(alpha) for alpha in basis]
        assert totals == sorted(totals)

    def test_pair_index_adds_cross_terms(self):
        basis = adaptive_basis_indices([(0, 0), (1, 0), (0, 1),
                                        (1, 1)])
        assert (1, 1) in basis and (2, 2) in basis
        assert (3, 0) not in basis

    def test_empty_rejected(self):
        with pytest.raises(StochasticError):
            adaptive_basis_indices([])


def _cubic_plus(dim=3):
    """QoI with known Hermite content up to order 3 in direction 0."""
    coeffs = {1: 1.1, 2: 0.45, 3: 0.3}

    def f(z):
        main = 2.0 + sum(c * float(hermite_value(k, z[0]))
                         for k, c in coeffs.items())
        tail = 0.05 * z[1] + 0.02 * (z[2] ** 2 - 1.0)
        return np.array([main + tail])

    variance = sum(c * c * math.factorial(k)
                   for k, c in coeffs.items()) \
        + 0.05 ** 2 + 0.02 ** 2 * 2.0
    return f, 2.0, math.sqrt(variance)


class TestOrderAdaptiveFit:
    def test_cubic_qoi_fitted_exactly(self):
        """Satellite: a known cubic QoI is recovered to roundoff once
        the basis follows the accepted index set (the order-2 fit
        cannot represent the He_3 term at all)."""
        f, exact_mean, exact_std = _cubic_plus()
        config = AdaptiveConfig(tol=1e-10, max_level=2,
                                basis="adaptive")
        result = run_adaptive_sscm(f, 3, config)
        assert result.pce.basis.truncation == "explicit"
        assert result.mean[0] == pytest.approx(exact_mean, rel=1e-12)
        assert result.std[0] == pytest.approx(exact_std, rel=1e-10)
        # The quadratic fit of the same run misses the cubic variance.
        order2 = run_adaptive_sscm(
            f, 3, AdaptiveConfig(tol=1e-10, max_level=2))
        assert order2.std[0] < 0.95 * exact_std

    def test_refinement_path_is_basis_independent(self):
        """The basis changes the fit, never the grid: identical
        accepted sets, solve counts and termination either way."""
        f, _, _ = _cubic_plus()
        kwargs = {"tol": 1e-8, "max_level": 3}
        order2 = run_adaptive_sscm(f, 3, AdaptiveConfig(**kwargs))
        adaptive = run_adaptive_sscm(
            f, 3, AdaptiveConfig(basis="adaptive", **kwargs))
        assert adaptive.num_runs == order2.num_runs
        assert adaptive.indices == order2.indices
        assert adaptive.termination == order2.termination
        # And the shared (order <= 2) coefficients agree exactly.
        lookup = {alpha: row for alpha, row in
                  zip(adaptive.pce.basis.indices,
                      adaptive.pce.coefficients)}
        for alpha, row in zip(order2.pce.basis.indices,
                              order2.pce.coefficients):
            np.testing.assert_allclose(lookup[alpha], row,
                                       atol=1e-12)

    def test_order2_results_bitwise_unchanged(self):
        """The default basis mode reproduces the pre-existing fit
        bit for bit (same code path, pinned by assertion)."""
        f, _ = _synthetic_quadratic()
        old = run_adaptive_sscm(f, 4, AdaptiveConfig(tol=1e-6,
                                                     max_level=2))
        new = run_adaptive_sscm(
            f, 4, AdaptiveConfig(tol=1e-6, max_level=2,
                                 basis="order2"))
        np.testing.assert_array_equal(old.pce.coefficients,
                                      new.pce.coefficients)
        assert old.pce.basis.describe() == new.pce.basis.describe()

    def test_metadata_records_basis(self):
        f, _, _ = _cubic_plus()
        result = run_adaptive_sscm(
            f, 3, AdaptiveConfig(tol=1e-6, max_level=2,
                                 basis="adaptive"))
        assert result.refinement_metadata()["config"]["basis"] \
            == "adaptive"
        default = run_adaptive_sscm(
            f, 3, AdaptiveConfig(tol=1e-6, max_level=2))
        assert "basis" not in default.refinement_metadata()["config"]


def _synthetic_quadratic(dim=4):
    A = np.zeros((dim, dim))
    A[0, 0], A[1, 1], A[0, 1], A[1, 0] = 1.2, 0.7, 0.3, 0.3
    b = np.zeros(dim)
    b[0] = 1.0

    def f(z):
        return np.array([1.0 + b @ z + z @ A @ z])

    return f, math.sqrt(float(b @ b + 2.0 * np.sum(A * A)))


class TestAdaptiveConfigBasis:
    def test_validated(self):
        with pytest.raises(StochasticError):
            AdaptiveConfig(basis="cubic")
        assert AdaptiveConfig().basis == "order2"
        assert AdaptiveConfig(basis="adaptive").basis == "adaptive"

    def test_to_dict_omits_default(self):
        """Old adaptive cache keys must survive byte-for-byte, so the
        default basis never appears on the wire."""
        assert "basis" not in AdaptiveConfig().to_dict()
        assert AdaptiveConfig(basis="adaptive").to_dict()["basis"] \
            == "adaptive"

    def test_from_dict_round_trip(self):
        config = AdaptiveConfig(tol=1e-3, basis="adaptive")
        assert AdaptiveConfig.from_dict(config.to_dict()) == config
        assert AdaptiveConfig.from_dict({"basis": None}).basis \
            == "order2"
        with pytest.raises(StochasticError):
            AdaptiveConfig.from_dict({"basis": "order3"})


def _spec(adaptive=None, **reduction):
    from repro.experiments import table2_spec
    return table2_spec(reduction=reduction or None, adaptive=adaptive,
                       max_step_um=2.5, margin_um=2.5, rdf_nodes=8)


class TestSpecKeys:
    def test_default_basis_keeps_old_adaptive_keys(self):
        plain = _spec(adaptive={"tol": 1e-3})
        explicit = _spec(adaptive={"tol": 1e-3, "basis": "order2"})
        assert plain.canonical() == explicit.canonical()
        assert plain.cache_key() == explicit.cache_key()
        assert "basis" not in \
            plain.canonical()["reduction"]["adaptive"]

    def test_adaptive_basis_splits_the_key(self):
        plain = _spec(adaptive={"tol": 1e-3})
        grown = _spec(adaptive={"tol": 1e-3, "basis": "adaptive"})
        assert grown.cache_key() != plain.cache_key()
        assert grown.canonical()["reduction"]["adaptive"]["basis"] \
            == "adaptive"

    def test_reduction_workers_stripped_from_key(self):
        assert _spec(workers=4).cache_key() == _spec().cache_key()
        assert "workers" not in _spec(workers=4).canonical()["reduction"]

    def test_reduction_workers_validated(self):
        for bad in (0, -2, True, 1.5):
            with pytest.raises(ServingError):
                _spec(workers=bad)

    def test_fixed_grid_canonical_form_still_unchanged(self):
        """The workers default must not leak into pre-existing keys."""
        reduction = _spec().canonical()["reduction"]
        assert set(reduction) == {"method", "energy", "caps", "level",
                                  "fit"}

    def test_analysis_kwargs_carry_workers(self):
        kwargs = _spec(workers=3).analysis_kwargs()
        assert kwargs["workers"] == 3
        assert _spec().analysis_kwargs()["workers"] is None


class TestStoreRoundTrip:
    def _record(self, store_spec):
        rng = np.random.default_rng(3)
        basis = HermiteBasis(
            2, indices=adaptive_basis_indices(
                [(0, 0), (1, 0), (2, 0), (3, 0), (0, 1), (1, 1)]))
        assert basis.order >= 3  # genuinely order-3+
        pce = PolynomialChaos(basis,
                              rng.standard_normal((basis.size, 2)),
                              output_names=["a", "b"])
        from repro.serving import SurrogateRecord
        return SurrogateRecord(pce=pce, spec=store_spec)

    def test_order3_surrogate_round_trips(self, tmp_path):
        """Satellite: explicit-basis surrogates survive the store —
        indices, coefficients, norms and statistics all intact."""
        from repro.serving import SurrogateStore
        spec = _spec(adaptive={"tol": 1e-3, "basis": "adaptive"})
        record = self._record(spec)
        store = SurrogateStore(tmp_path / "store")
        key = store.save(record)
        loaded = store.load(key)
        assert loaded.pce.basis.truncation == "explicit"
        assert loaded.pce.basis.indices == record.pce.basis.indices
        np.testing.assert_array_equal(loaded.pce.coefficients,
                                      record.pce.coefficients)
        np.testing.assert_array_equal(loaded.pce.basis.norms_squared,
                                      record.pce.basis.norms_squared)
        np.testing.assert_array_equal(loaded.pce.std, record.pce.std)
        sidecar = store.sidecar(key)
        assert sidecar["basis"] == record.pce.basis.describe()
        # Explicit-basis payloads are stamped with their own schema
        # version so pre-basis readers reject them with a clear
        # schema message instead of a coefficient-shape error.
        from repro.serving.store import EXPLICIT_BASIS_SCHEMA_VERSION
        assert sidecar["schema_version"] \
            == EXPLICIT_BASIS_SCHEMA_VERSION

    def test_order2_entries_keep_schema_version_1(self, tmp_path):
        """Order-2 entries stay on the original schema so readers
        from before this feature keep reading everything written for
        them."""
        from repro.serving import SurrogateRecord, SurrogateStore
        from repro.serving.store import SCHEMA_VERSION
        basis = HermiteBasis(2)
        record = SurrogateRecord(
            pce=QuadraticPCE(basis, np.zeros((basis.size, 1))),
            spec=_spec())
        store = SurrogateStore(tmp_path / "store")
        key = store.save(record)
        assert store.sidecar(key)["schema_version"] == SCHEMA_VERSION
        assert store.load(key).pce.basis.truncation == "total"

    def test_order2_payload_layout_unchanged(self):
        """Pre-existing stored surrogates carry no basis_indices array
        — and a payload without one still loads as the order-2 chaos."""
        basis = HermiteBasis(3)
        pce = QuadraticPCE(basis, np.zeros((basis.size, 1)))
        arrays = pce.to_arrays()
        assert set(arrays) == {"dim", "order", "coefficients"}
        loaded = PolynomialChaos.from_arrays(arrays)
        assert loaded.basis.truncation == "total"
        assert loaded.basis.order == 2

    def test_query_engine_handles_order3_layout(self, tmp_path):
        """Mean/std/quantile/corner paths on an explicit order-3+
        coefficient layout."""
        from repro.serving import QueryEngine
        record = self._record(
            _spec(adaptive={"tol": 1e-3, "basis": "adaptive"}))
        engine = QueryEngine(record, num_samples=4000)
        np.testing.assert_array_equal(engine.mean(), record.pce.mean)
        np.testing.assert_array_equal(engine.std(), record.pce.std)
        quantiles = engine.quantiles([0.1, 0.9])
        assert quantiles.shape == (2, 2)
        assert np.all(quantiles[0] <= quantiles[1])
        corner = engine.corner(2.0)
        assert np.all(corner["low"] <= corner["high"])
        answer = engine.answer({"kind": "std"})
        assert answer["values"] == record.pce.std.tolist()
