"""Tests for the Cartesian grid: indexing, coordinates, queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeshError
from repro.mesh import CartesianGrid


class TestConstruction:
    def test_rejects_short_axis(self):
        with pytest.raises(MeshError):
            CartesianGrid([0.0], [0.0, 1.0], [0.0, 1.0])

    def test_rejects_non_monotone_axis(self):
        with pytest.raises(MeshError):
            CartesianGrid([0.0, 2.0, 1.0], [0.0, 1.0], [0.0, 1.0])

    def test_rejects_duplicate_coordinates(self):
        with pytest.raises(MeshError):
            CartesianGrid([0.0, 1.0, 1.0], [0.0, 1.0], [0.0, 1.0])

    def test_rejects_2d_axis(self):
        with pytest.raises(MeshError):
            CartesianGrid(np.zeros((2, 2)), [0.0, 1.0], [0.0, 1.0])

    def test_counts(self, small_grid):
        assert small_grid.shape == (4, 3, 5)
        assert small_grid.num_nodes == 60
        assert small_grid.num_cells == 3 * 2 * 4
        # links: (nx-1)nynz + nx(ny-1)nz + nxny(nz-1)
        assert small_grid.num_links == 3 * 3 * 5 + 4 * 2 * 5 + 4 * 3 * 4

    def test_volume(self, small_grid):
        assert small_grid.volume == pytest.approx(4.0 * 1.5 * 5.0 * 1e-18)


class TestIndexing:
    def test_node_id_roundtrip(self, small_grid):
        for i in range(small_grid.nx):
            for j in range(small_grid.ny):
                for k in range(small_grid.nz):
                    nid = small_grid.node_id(i, j, k)
                    assert small_grid.node_ijk(nid) == (i, j, k)

    def test_node_id_vectorized(self, small_grid):
        ids = small_grid.node_id(np.array([0, 1]), np.array([0, 2]),
                                 np.array([0, 4]))
        i, j, k = small_grid.node_ijk(ids)
        np.testing.assert_array_equal(i, [0, 1])
        np.testing.assert_array_equal(j, [0, 2])
        np.testing.assert_array_equal(k, [0, 4])

    def test_node_id_bounds(self, small_grid):
        with pytest.raises(MeshError):
            small_grid.node_id(4, 0, 0)
        with pytest.raises(MeshError):
            small_grid.node_id(0, -1, 0)
        with pytest.raises(MeshError):
            small_grid.node_ijk(small_grid.num_nodes)

    def test_cell_id_roundtrip(self, small_grid):
        ncx, ncy, ncz = small_grid.cell_shape
        for i in range(ncx):
            for j in range(ncy):
                for k in range(ncz):
                    cid = small_grid.cell_id(i, j, k)
                    ci, cj, ck = small_grid.cell_ijk(cid)
                    assert (ci, cj, ck) == (i, j, k)

    def test_cell_id_bounds(self, small_grid):
        with pytest.raises(MeshError):
            small_grid.cell_id(3, 0, 0)
        with pytest.raises(MeshError):
            small_grid.cell_ijk(-1)


class TestCoordinates:
    def test_node_coords_order(self, small_grid):
        coords = small_grid.node_coords()
        # Node 1 differs from node 0 only in x (x fastest).
        assert coords[1, 0] == pytest.approx(small_grid.xs[1])
        assert coords[1, 1] == pytest.approx(small_grid.ys[0])
        nid = small_grid.node_id(2, 1, 3)
        np.testing.assert_allclose(
            coords[nid],
            [small_grid.xs[2], small_grid.ys[1], small_grid.zs[3]])

    def test_fields_roundtrip(self, small_grid):
        coords = small_grid.node_coords()
        X, Y, Z = small_grid.flat_to_fields(coords)
        back = small_grid.fields_to_flat(X, Y, Z)
        np.testing.assert_allclose(back, coords)

    def test_field_flatten_roundtrip(self, small_grid):
        rng = np.random.default_rng(0)
        field = rng.normal(size=small_grid.shape)
        flat = small_grid.flat_field(field)
        np.testing.assert_allclose(small_grid.unflatten_field(flat), field)

    def test_flat_field_shape_checked(self, small_grid):
        with pytest.raises(MeshError):
            small_grid.flat_field(np.zeros((2, 2, 2)))
        with pytest.raises(MeshError):
            small_grid.unflatten_field(np.zeros(3))

    def test_coordinate_fields_match_axes(self, small_grid):
        X, Y, Z = small_grid.node_coordinate_fields()
        np.testing.assert_allclose(X[:, 0, 0], small_grid.xs)
        np.testing.assert_allclose(Y[0, :, 0], small_grid.ys)
        np.testing.assert_allclose(Z[0, 0, :], small_grid.zs)


class TestQueries:
    def test_nodes_in_box(self, small_grid):
        ids = small_grid.nodes_in_box((0.0, 0.0, 0.0),
                                      (1.0e-6, 0.5e-6, 1.0e-6),
                                      tol=1e-12)
        # x in {0,1}, y in {0,0.5}, z in {0,1} um -> 2*2*2 nodes
        assert ids.size == 8

    def test_cells_in_box_full_domain(self, small_grid):
        lo = (small_grid.xs[0], small_grid.ys[0], small_grid.zs[0])
        hi = (small_grid.xs[-1], small_grid.ys[-1], small_grid.zs[-1])
        assert small_grid.cells_in_box(lo, hi).size == small_grid.num_cells

    def test_boundary_node_ids(self, small_grid):
        for face, count in (("x-", 15), ("x+", 15), ("y-", 20),
                            ("y+", 20), ("z-", 12), ("z+", 12)):
            ids = small_grid.boundary_node_ids(face)
            assert ids.size == count
        with pytest.raises(MeshError):
            small_grid.boundary_node_ids("w+")

    def test_boundary_nodes_have_right_coordinate(self, small_grid):
        coords = small_grid.node_coords()
        ids = small_grid.boundary_node_ids("x+")
        np.testing.assert_allclose(coords[ids, 0], small_grid.xs[-1])


@given(nx=st.integers(2, 6), ny=st.integers(2, 6), nz=st.integers(2, 6),
       seed=st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_node_id_bijection_property(nx, ny, nz, seed):
    """node_id is a bijection onto [0, num_nodes)."""
    rng = np.random.default_rng(seed)
    axes = [np.sort(rng.uniform(0.0, 1.0, size=n)) for n in (nx, ny, nz)]
    for a in axes:
        a += np.arange(a.size) * 1e-3  # enforce strict monotonicity
    grid = CartesianGrid(*axes)
    I, J, K = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz),
                          indexing="ij")
    ids = grid.node_id(I.ravel(), J.ravel(), K.ravel())
    assert np.unique(ids).size == grid.num_nodes
    assert ids.min() == 0
    assert ids.max() == grid.num_nodes - 1
