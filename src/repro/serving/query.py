"""Vectorized statistical queries against a fitted surrogate.

Once a quadratic chaos is fitted, every statistic the paper reports —
and many it doesn't — is a NumPy-speed operation: mean and std are
closed-form in the coefficients, and distributional queries (quantiles,
yield against a spec limit) are surrogate Monte Carlo at millions of
samples per second.  Sampling is chunked so memory stays bounded by
``chunk_size`` rows regardless of the sample count, and yields are
accumulated streaming (no sample matrix at all).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ServingError
from repro.stochastic.pce import DEFAULT_CHUNK_SIZE, PolynomialChaos


class QueryEngine:
    """Answer statistical queries on one surrogate.

    Parameters
    ----------
    surrogate:
        A :class:`~repro.stochastic.pce.PolynomialChaos` (any order,
        total-degree or order-adaptive) or a
        :class:`~repro.serving.store.SurrogateRecord` (whose PCE is
        used).
    num_samples:
        Default Monte-Carlo sample count for distributional queries.
    seed:
        Default sampling seed (fixed so repeated queries agree).
    chunk_size:
        Rows evaluated per chunk (memory bound).
    """

    def __init__(self, surrogate, num_samples: int = 1000000,
                 seed: int = 0, chunk_size: int = DEFAULT_CHUNK_SIZE):
        pce = getattr(surrogate, "pce", surrogate)
        if not isinstance(pce, PolynomialChaos):
            raise ServingError(
                f"QueryEngine needs a PolynomialChaos or "
                f"SurrogateRecord, got {type(surrogate).__name__}")
        if num_samples < 2:
            raise ServingError(
                f"num_samples must be >= 2, got {num_samples}")
        if chunk_size < 1:
            raise ServingError(
                f"chunk_size must be >= 1, got {chunk_size}")
        self.pce = pce
        self.num_samples = int(num_samples)
        self.seed = int(seed)
        self.chunk_size = int(chunk_size)
        # One-slot sample cache: a multi-query request re-uses the
        # (num_samples, seed) matrix instead of re-drawing it per query.
        self._cached_samples = None
        self._cached_for = None

    # ------------------------------------------------------------------
    @property
    def output_names(self) -> list:
        return self.pce.output_labels()

    def mean(self) -> np.ndarray:
        """Closed-form mean (paper eq. 5): the zeroth coefficient."""
        return self.pce.mean

    def std(self) -> np.ndarray:
        """Closed-form standard deviation (paper eq. 5)."""
        return self.pce.std

    def variance(self) -> np.ndarray:
        return self.pce.variance

    # ------------------------------------------------------------------
    def sample(self, num_samples: int = None,
               seed: int = None) -> np.ndarray:
        """Raw ``(m, output_dim)`` surrogate samples (chunked eval).

        The matrix is cached for the last ``(num_samples, seed)`` pair
        so successive queries over the same sample set (quantiles, then
        a yield, ...) evaluate the surrogate once.  Treat the returned
        array as read-only.
        """
        m = self.num_samples if num_samples is None else int(num_samples)
        s = self.seed if seed is None else int(seed)
        if self._cached_for != (m, s):
            rng = np.random.default_rng(s)
            self._cached_samples = self.pce.sample_values(
                rng, m, chunk_size=self.chunk_size)
            self._cached_for = (m, s)
        return self._cached_samples

    def quantiles(self, q, num_samples: int = None,
                  seed: int = None) -> np.ndarray:
        """Monte-Carlo quantiles of every output.

        Parameters
        ----------
        q : array_like
            Quantile levels in ``[0, 1]``.
        num_samples, seed : int, optional
            Override the engine defaults for this call.

        Returns
        -------
        numpy.ndarray
            ``(len(q), output_dim)`` quantile values.
        """
        q = np.atleast_1d(np.asarray(q, dtype=float))
        if q.size == 0 or np.any((q < 0.0) | (q > 1.0)):
            raise ServingError(
                f"quantile levels must lie in [0, 1], got {q}")
        samples = self.sample(num_samples=num_samples, seed=seed)
        return np.quantile(samples, q, axis=0)

    def yield_above(self, limit, num_samples: int = None,
                    seed: int = None) -> np.ndarray:
        """Fraction of samples with QoI strictly above ``limit``.

        Parameters
        ----------
        limit : float or array_like
            Spec limit — a scalar or one value per output.
        num_samples, seed : int, optional
            Override the engine defaults for this call.

        Returns
        -------
        numpy.ndarray
            ``(output_dim,)`` pass fractions in ``[0, 1]``.  Streaming:
            only per-chunk counts are kept in memory.
        """
        return self._yield(limit, above=True, num_samples=num_samples,
                           seed=seed)

    def yield_below(self, limit, num_samples: int = None,
                    seed: int = None) -> np.ndarray:
        """Fraction of samples with QoI at or below ``limit``.

        Mirror of :meth:`yield_above`; same parameters and shape.
        """
        return self._yield(limit, above=False, num_samples=num_samples,
                           seed=seed)

    def _yield(self, limit, above: bool, num_samples: int = None,
               seed: int = None) -> np.ndarray:
        limit = np.broadcast_to(
            np.asarray(limit, dtype=float), (self.pce.output_dim,))
        m = self.num_samples if num_samples is None else int(num_samples)
        s = self.seed if seed is None else int(seed)
        if m < 1:
            raise ServingError(f"num_samples must be >= 1, got {m}")
        if self._cached_for == (m, s):
            # Same stream as a fresh draw — reuse instead of redrawing.
            counts = (self._cached_samples > limit).sum(axis=0)
        else:
            rng = np.random.default_rng(s)
            counts = np.zeros(self.pce.output_dim, dtype=np.int64)
            for _, values in self.pce.sample_chunks(rng, m,
                                                    self.chunk_size):
                counts += (values > limit).sum(axis=0)
        if not above:
            counts = m - counts
        return counts / float(m)

    # ------------------------------------------------------------------
    def corner(self, sigma: float = 3.0) -> dict:
        """Deterministic worst-direction corner of the surrogate.

        For each output the linear coefficients define the steepest
        direction of the response surface; the full chaos (quadratic
        or order-adaptive — directions whose He_1 term is not in the
        basis contribute zero slope) is evaluated at
        ``zeta = +/- sigma`` along that (unit) direction.  Returns
        ``{"low": (k,), "high": (k,)}`` — the classic slow/fast-corner
        bracket, including the curvature the linearized corner would
        miss.
        """
        if sigma < 0.0:
            raise ServingError(f"sigma must be >= 0, got {sigma}")
        basis = self.pce.basis
        linear_rows = [i for i, index in enumerate(basis.indices)
                       if sum(index) == 1]
        # Row i of `gradients` = d(output)/d(zeta_axis) in axis order.
        axes = [int(np.argmax(basis.indices[i])) for i in linear_rows]
        gradients = np.zeros((basis.dim, self.pce.output_dim))
        gradients[axes] = self.pce.coefficients[linear_rows]
        norms = np.linalg.norm(gradients, axis=0)
        directions = np.divide(gradients, norms,
                               out=np.zeros_like(gradients),
                               where=norms > 0.0)
        # One +sigma and one -sigma point per output, evaluated batched.
        points = sigma * np.concatenate([directions.T, -directions.T])
        values = self.pce.evaluate(points)
        k = self.pce.output_dim
        per_output = np.stack([np.diag(values[:k]), np.diag(values[k:])])
        return {"low": per_output.min(axis=0),
                "high": per_output.max(axis=0)}

    # ------------------------------------------------------------------
    def answer(self, query: dict) -> dict:
        """Answer one JSON query dict (the request front-end format).

        ``{"kind": "mean"}``, ``{"kind": "std"}``,
        ``{"kind": "quantiles", "q": [...]}``,
        ``{"kind": "yield_above"|"yield_below", "limit": ...}``,
        ``{"kind": "corner", "sigma": 3.0}``,
        ``{"kind": "sample_statistics"}``.  Distributional kinds accept
        ``num_samples`` and ``seed`` overrides.

        Parameters
        ----------
        query : dict
            One query mapping with at least a ``kind``.

        Returns
        -------
        dict
            ``{"kind": ..., "values": ...}`` with JSON-ready lists in
            ``output_names`` order.
        """
        if not isinstance(query, dict) or "kind" not in query:
            raise ServingError(f"query must be a dict with a kind, "
                               f"got {query!r}")
        try:
            return self._dispatch(query)
        except (TypeError, ValueError) as exc:
            # Malformed JSON values (e.g. a string limit) must surface
            # as a per-request serving error, not a batch-killing crash.
            raise ServingError(
                f"malformed {query['kind']!r} query: {exc}") from exc

    def _dispatch(self, query: dict) -> dict:
        kind = query["kind"]
        num_samples = query.get("num_samples")
        seed = query.get("seed")
        if kind == "mean":
            values = self.mean().tolist()
        elif kind == "std":
            values = self.std().tolist()
        elif kind == "variance":
            values = self.variance().tolist()
        elif kind == "quantiles":
            if "q" not in query:
                raise ServingError("quantiles query needs q levels")
            values = self.quantiles(query["q"], num_samples=num_samples,
                                    seed=seed).tolist()
        elif kind in ("yield_above", "yield_below"):
            if "limit" not in query:
                raise ServingError(f"{kind} query needs a limit")
            fn = (self.yield_above if kind == "yield_above"
                  else self.yield_below)
            values = fn(query["limit"], num_samples=num_samples,
                        seed=seed).tolist()
        elif kind == "corner":
            corner = self.corner(float(query.get("sigma", 3.0)))
            values = {"low": corner["low"].tolist(),
                      "high": corner["high"].tolist()}
        elif kind == "sample_statistics":
            m = self.num_samples if num_samples is None else int(num_samples)
            rng = np.random.default_rng(
                self.seed if seed is None else seed)
            mean, std = self.pce.sample_statistics(
                rng, num_samples=m, chunk_size=self.chunk_size)
            values = {"mean": mean.tolist(), "std": std.tolist()}
        else:
            raise ServingError(f"unknown query kind {kind!r}")
        return {"kind": kind, "values": values}
