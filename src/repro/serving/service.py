"""JSON request/response front-end — the scriptable service surface.

A *request* asks for statistics on one surrogate::

    {"spec": {"preset": "table2", "params": {...}},
     "queries": [{"kind": "mean"}, {"kind": "quantiles", "q": [0.5]}]}

A *batch* is ``{"requests": [...]}`` — arbitrarily many surrogates
(different structures, variants, frequencies) answered in one call
against one store, building on miss unless the caller forbids it.
``python -m repro build`` and ``python -m repro query`` are thin CLI
wrappers over these functions, so anything that can write a JSON file
can drive the system as a service.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ReproError, ServingError
from repro.serving.pipeline import ensure_surrogate
from repro.serving.query import QueryEngine
from repro.serving.spec import ProblemSpec
from repro.serving.store import SurrogateStore

#: Default on-disk store location; override per call or with the CLI's
#: ``--store`` flag.
DEFAULT_STORE_PATH = "~/.cache/repro/surrogates"


def open_store(path=None) -> SurrogateStore:
    """Open (creating if needed) the store at ``path`` or the default."""
    return SurrogateStore(path or DEFAULT_STORE_PATH)


def parse_request(data: dict) -> tuple:
    """Validate one request dict -> (ProblemSpec, queries list)."""
    if not isinstance(data, dict):
        raise ServingError(
            f"request must be a mapping, got {type(data).__name__}")
    unknown = set(data) - {"spec", "queries"}
    if unknown:
        raise ServingError(f"unknown request fields {sorted(unknown)}")
    if "spec" not in data:
        raise ServingError("request is missing its spec")
    spec = ProblemSpec.from_dict(data["spec"])
    queries = data.get("queries") or []
    if not isinstance(queries, list):
        raise ServingError("queries must be a list")
    return spec, queries


def serve_request(request: dict, store: SurrogateStore,
                  build_missing: bool = True,
                  engine_options: dict = None, ensure=None) -> dict:
    """Answer one request; builds the surrogate on a miss by default.

    ``ensure`` overrides the acquisition step: a callable
    ``ensure(spec) -> BuildReport`` that replaces both the
    build-on-miss and the read-only path — the daemon hands in its
    single-flight wrapper here, so concurrent misses coalesce.
    """
    spec, queries = parse_request(request)
    if ensure is not None:
        report = ensure(spec)
        record, built, num_solves = (report.record, report.built,
                                     report.num_solves)
    elif build_missing:
        report = ensure_surrogate(spec, store)
        record, built, num_solves = (report.record, report.built,
                                     report.num_solves)
    else:
        record = store.load(spec.cache_key())
        store.touch(record.cache_key)
        built, num_solves = False, 0
    engine = QueryEngine(record, **(engine_options or {}))
    return {
        "cache_key": record.cache_key,
        "preset": spec.preset,
        "built": built,
        "num_solves": num_solves,
        "adaptive": record.refinement is not None,
        "basis": record.pce.basis.describe(),
        "output_names": record.output_names,
        "answers": [engine.answer(query) for query in queries],
    }


def serve_batch(batch: dict, store: SurrogateStore,
                build_missing: bool = True,
                engine_options: dict = None, ensure=None) -> dict:
    """Answer a multi-surrogate batch in one call.

    Parameters
    ----------
    batch : dict
        Either ``{"requests": [...]}`` — arbitrarily many surrogates
        (different structures, variants, frequencies) against one
        store — or a single bare request.
    store : SurrogateStore
        The persistent store consulted (and, on misses, populated).
    build_missing : bool, default True
        Build on a cache miss; ``False`` turns misses into per-request
        errors instead (read-only serving).
    engine_options : dict, optional
        Keyword overrides for every
        :class:`~repro.serving.query.QueryEngine` (``num_samples``,
        ``seed``, ``chunk_size``).
    ensure : callable, optional
        ``ensure(spec) -> BuildReport`` surrogate-acquisition
        override, passed through to every request (the daemon's
        single-flight hook).

    Returns
    -------
    dict
        ``{"responses": [...]}`` aligned with the requests.
        Per-request failures are reported in place (``"error"``
        entries) instead of aborting the rest of the batch.
    """
    if isinstance(batch, dict) and "requests" in batch:
        unknown = set(batch) - {"requests"}
        if unknown:
            raise ServingError(f"unknown batch fields {sorted(unknown)}")
        requests = batch["requests"]
        if not isinstance(requests, list):
            raise ServingError("requests must be a list")
    else:
        requests = [batch]
    responses = []
    for request in requests:
        try:
            responses.append(serve_request(
                request, store, build_missing=build_missing,
                engine_options=engine_options, ensure=ensure))
        except ReproError as exc:
            # Any library error — bad spec, unbuildable structure,
            # failed solve — fails this request only, not the batch.
            responses.append({"error": str(exc)})
    return {"responses": responses}


def load_request_file(path) -> dict:
    path = Path(path)
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        raise ServingError(
            f"cannot read request file {path}: {exc}") from exc
    except ValueError as exc:
        raise ServingError(
            f"request file {path} is not JSON: {exc}") from exc
