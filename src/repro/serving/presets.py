"""Preset registry: named, parameterized surrogate families.

A preset binds a spec's name to a builder that turns resolved JSON
parameters into a live :class:`~repro.analysis.problem.VariationalProblem`
(cf. the component-registry layering of coupled-solver frameworks).
The paper's two Section IV experiments register themselves here, so
``{"preset": "table1", "params": {"variant": "geometry"}}`` is a
complete, buildable, cacheable surrogate identity; downstream projects
add their own structures with :func:`register_preset`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServingError
from repro.units import um


@dataclass(frozen=True)
class Preset:
    """One registered surrogate family.

    Attributes
    ----------
    name:
        Registry key, referenced by ``ProblemSpec.preset``.
    description:
        One-line human summary (shown by ``repro structures``).
    defaults:
        Complete parameter set with default values (JSON scalars);
        spec params must be a subset of these names.
    build:
        Callable ``resolved params -> VariationalProblem``.
    """

    name: str
    description: str
    defaults: dict
    build: callable


_REGISTRY: dict = {}


def register_preset(preset: Preset) -> Preset:
    """Add a preset to the registry (duplicate names are an error)."""
    if preset.name in _REGISTRY:
        raise ServingError(f"preset {preset.name!r} is already registered")
    _REGISTRY[preset.name] = preset
    return preset


def get_preset(name: str) -> Preset:
    """Look a preset up by name (unknown names are a ServingError)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ServingError(
            f"unknown preset {name!r}; registered: "
            f"{sorted(_REGISTRY)}") from None


def list_presets() -> list:
    """Every registered preset, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# The paper's experiments.  Lengths are JSON-unfriendly in metres, so
# the wire format uses microns (the paper's unit throughout).
# ----------------------------------------------------------------------
def _build_table1(params: dict):
    from repro.experiments.table1 import Table1Config, table1_problem
    from repro.geometry.builders import MetalPlugDesign
    config = Table1Config(
        sigma_g=um(params["sigma_g_um"]),
        eta_g=um(params["eta_g_um"]),
        sigma_m=params["sigma_m"],
        eta_m=um(params["eta_m_um"]),
        rdf_nodes=int(params["rdf_nodes"]),
        frequency=float(params["frequency"]),
        design=MetalPlugDesign(max_step=um(params["max_step_um"])),
        surface_model=params["surface_model"],
    )
    return table1_problem(params["variant"], config,
                          multi_port=bool(params["multi_port"]))


def _build_table2(params: dict):
    from repro.experiments.table2 import Table2Config, table2_problem
    from repro.geometry.builders import TsvDesign
    config = Table2Config(
        sigma_g=um(params["sigma_g_um"]),
        eta_g=um(params["eta_g_um"]),
        sigma_m=params["sigma_m"],
        eta_m=um(params["eta_m_um"]),
        rdf_nodes=int(params["rdf_nodes"]),
        frequency=float(params["frequency"]),
        design=TsvDesign(max_step=um(params["max_step_um"]),
                         margin=um(params["margin_um"])),
        surface_model=params["surface_model"],
        merge_coplanar=bool(params["merge_coplanar"]),
    )
    return table2_problem(config, multi_port=bool(params["multi_port"]))


register_preset(Preset(
    name="table1",
    description="metal plugs on doped Si, |J| through the plug-1 "
                "interface (Table I)",
    defaults={
        "variant": "both",
        "sigma_g_um": 0.5,
        "eta_g_um": 0.7,
        "sigma_m": 0.1,
        "eta_m_um": 0.5,
        "rdf_nodes": 72,
        "frequency": 1.0e9,
        "max_step_um": 1.0,
        "surface_model": "csv",
        "multi_port": False,
    },
    build=_build_table1,
))

register_preset(Preset(
    name="table2",
    description="two TSVs with traces, TSV1 capacitance column "
                "(Table II)",
    defaults={
        "sigma_g_um": 0.15,
        "eta_g_um": 0.7,
        "sigma_m": 0.1,
        "eta_m_um": 0.5,
        "rdf_nodes": 128,
        "frequency": 1.0e9,
        "max_step_um": 1.0,
        "margin_um": 3.0,
        "surface_model": "csv",
        "merge_coplanar": True,
        "multi_port": False,
    },
    build=_build_table2,
))
