"""Declarative surrogate specifications and their cache keys.

A :class:`ProblemSpec` is everything needed to (re)build one surrogate:
a preset name (which structure/QoI family), the preset's parameters
(structure design, variation model and covariance configuration,
frequency) and the analysis settings (reduction method, energy,
per-group caps, sparse-grid level, fit).  It is pure data — JSON in,
JSON out — so requests can cross process boundaries, and its canonical
form hashes to a deterministic cache key: two specs describe the same
surrogate if and only if their keys match.  ("Same" means same
identity and tolerance class: a warm-certified adaptive build stores
a tol-equivalent — not bitwise-identical — surrogate compared to a
cold build of the same key; only the ``workers`` knob is exactly
result-neutral.)
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

from repro.errors import ServingError

#: Bump when the canonical spec layout changes; part of every cache key
#: so old stores simply miss instead of aliasing.
SPEC_VERSION = 1

#: Analysis settings and their defaults (resolved into the key, so an
#: explicit default and an omitted field hash identically).
#: ``adaptive`` is ``None`` (the paper's fixed level-2 grid) or a
#: mapping of stopping controls (``tol``, ``max_solves``,
#: ``max_level``, the chaos ``basis`` mode, plus the execution-only
#: ``workers``) handed to the dimension-adaptive engine; the stopping
#: controls and the basis are part of the canonical form, so adaptive
#: / fixed / order-adaptive builds of the same problem never alias in
#: the store.  ``workers`` — at the reduction level (fixed-grid
#: parallel collocation) and inside the adaptive block alike — is
#: *stripped* from the canonical form, because the worker count
#: changes wall time but not one bit of the surrogate.
#: ``solver`` is ``None`` (the direct ``"lu"`` backend) or a
#: linear-solver backend block (``backend``, ``tol``, ``maxiter``,
#: ``method`` — see :class:`repro.solver.backends.SolverConfig`).  A
#: non-default backend changes which certified-tolerance class the
#: surrogate is built in, so the block is part of the canonical form —
#: except that the default ``"lu"`` selection is *omitted* (like a
#: ``None`` adaptive block), keeping every pre-seam cache key
#: byte-for-byte intact.
REDUCTION_DEFAULTS = {
    "method": "wpfa",
    "energy": 0.95,
    "caps": None,
    "level": 2,
    "fit": "quadrature",
    "adaptive": None,
    "solver": None,
    "workers": None,
}

_SCALAR_TYPES = (bool, int, float, str, type(None))


def _check_json_scalars(mapping: dict, what: str) -> None:
    for key, value in mapping.items():
        if not isinstance(key, str):
            raise ServingError(f"{what} keys must be strings, got {key!r}")
        if isinstance(value, dict):
            _check_json_scalars(value, f"{what}[{key!r}]")
        elif not isinstance(value, _SCALAR_TYPES):
            raise ServingError(
                f"{what}[{key!r}] must be a JSON scalar or mapping, "
                f"got {type(value).__name__}")
        elif isinstance(value, float) and not math.isfinite(value):
            # json.loads admits NaN/Infinity but the canonical wire
            # format (and any sane cache key) does not.
            raise ServingError(
                f"{what}[{key!r}] must be finite, got {value}")


@dataclass
class ProblemSpec:
    """One surrogate's identity: preset + parameters + analysis config.

    A spec is pure data — JSON in, JSON out — so it crosses process
    boundaries, and its canonical form hashes to a deterministic cache
    key: two specs describe the same surrogate if and only if their
    keys match (up to the adaptive engine's tolerance for
    warm-certified builds — see ``docs/ADAPTIVE.md``; the ``workers``
    knob alone is exactly result-neutral).

    Parameters
    ----------
    preset : str
        Registered preset name (see :mod:`repro.serving.presets`).
    params : dict, optional
        Preset parameter overrides (JSON scalars).  Unknown names are
        rejected at resolve time; omitted names take preset defaults.
    reduction : dict, optional
        Analysis overrides: ``method``, ``energy``, ``caps`` (mapping
        of group name to hard cap), ``level``, ``fit``, ``workers``
        (fan the collocation solves over worker processes — an
        execution knob that never enters the cache key) and
        ``adaptive`` — ``None`` for the fixed level-2 grid, or the
        dimension-adaptive stopping controls (``tol`` /
        ``max_solves`` / ``max_level`` / ``basis``; a live
        :class:`~repro.adaptive.driver.AdaptiveConfig` is accepted and
        normalized to its dict form).  The adaptive block may also
        carry its own ``workers``, which wins over the reduction-level
        one; neither enters the cache key.
    """

    preset: str
    params: dict = field(default_factory=dict)
    reduction: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.preset or not isinstance(self.preset, str):
            raise ServingError(f"preset must be a name, got {self.preset!r}")
        self.params = dict(self.params or {})
        self.reduction = dict(self.reduction or {})
        _check_json_scalars(self.params, "params")
        unknown = set(self.reduction) - set(REDUCTION_DEFAULTS)
        if unknown:
            raise ServingError(
                f"unknown reduction settings {sorted(unknown)}; "
                f"valid: {sorted(REDUCTION_DEFAULTS)}")
        workers = self.reduction.get("workers")
        if workers is not None and (not isinstance(workers, int)
                                    or isinstance(workers, bool)
                                    or workers < 1):
            raise ServingError(
                f"reduction['workers'] must be a positive integer or "
                f"None, got {workers!r}")
        adaptive = self.reduction.get("adaptive")
        if adaptive is not None:
            # Accept a live AdaptiveConfig for convenience; the wire
            # form is always its resolved dict.
            from repro.adaptive.driver import AdaptiveConfig
            from repro.errors import StochasticError
            if isinstance(adaptive, AdaptiveConfig):
                self.reduction["adaptive"] = adaptive.to_dict(
                    include_workers=True)
            else:
                try:
                    AdaptiveConfig.from_dict(adaptive)
                except StochasticError as exc:
                    raise ServingError(
                        f"reduction['adaptive']: {exc}") from exc
            # The adaptive engine owns its grid growth and projection:
            # a non-default 'level' or 'fit' would be silently ignored
            # by the build yet still split the cache key into duplicate
            # entries, so it is rejected outright.
            for name in ("level", "fit"):
                value = self.reduction.get(name, REDUCTION_DEFAULTS[name])
                if value != REDUCTION_DEFAULTS[name]:
                    raise ServingError(
                        f"reduction[{name!r}]={value!r} has no effect "
                        f"on an adaptive build; drop it or remove the "
                        f"adaptive block")
        solver = self.reduction.get("solver")
        if solver is not None:
            # Accept a live SolverConfig for convenience; the wire
            # form is always its dict.  Validation (registered
            # backend, tolerance range, no tol on "lu") lives in
            # SolverConfig itself.
            from repro.errors import SolverBackendError
            from repro.solver.backends import SolverConfig
            if isinstance(solver, SolverConfig):
                self.reduction["solver"] = solver.to_dict()
            else:
                try:
                    SolverConfig.from_dict(solver)
                except SolverBackendError as exc:
                    raise ServingError(
                        f"reduction['solver']: {exc}") from exc
        _check_json_scalars(self.reduction, "reduction")

    # ------------------------------------------------------------------
    def resolved_params(self) -> dict:
        """Preset defaults overlaid with this spec's overrides."""
        from repro.serving.presets import get_preset
        preset = get_preset(self.preset)
        unknown = set(self.params) - set(preset.defaults)
        if unknown:
            raise ServingError(
                f"unknown parameters {sorted(unknown)} for preset "
                f"{self.preset!r}; valid: {sorted(preset.defaults)}")
        return {**preset.defaults, **self.params}

    def resolved_reduction(self) -> dict:
        """Defaults overlaid with overrides, fully expanded.

        The adaptive block (when present) is expanded to its full
        form, so ``{"tol": 1e-3}`` and ``{"tol": 1e-3, "max_level":
        None, ...}`` hash to the same cache key.  The expansion keeps
        the execution-only ``workers`` knob (the build needs it);
        :meth:`canonical` strips it again before hashing.

        Returns
        -------
        dict
            Every reduction setting with a concrete value.
        """
        reduction = {**REDUCTION_DEFAULTS, **self.reduction}
        if reduction["adaptive"] is not None:
            from repro.adaptive.driver import AdaptiveConfig
            reduction["adaptive"] = AdaptiveConfig.from_dict(
                reduction["adaptive"]).to_dict(include_workers=True)
        if reduction["solver"] is not None:
            from repro.solver.backends import SolverConfig
            reduction["solver"] = SolverConfig.from_dict(
                reduction["solver"]).to_dict()
        return reduction

    def canonical(self) -> dict:
        """Fully-resolved spec dict — the hashed identity.

        Numbers are normalized (int-valued floats collapse to int), so
        ``{"rdf_nodes": 8}`` and ``{"rdf_nodes": 8.0}`` — the same
        problem to every preset builder — hash to the same key.

        A ``None`` adaptive block is *omitted* rather than serialized:
        fixed-grid specs keep the exact canonical form (and cache
        keys) they had before the adaptive engine existed, so stores
        populated earlier stay warm, while adaptive specs add the
        block and therefore can never alias a fixed-grid entry.  The
        adaptive ``basis`` mode follows the same rule at the next
        level down: the default ``"order2"`` is omitted (by
        ``AdaptiveConfig.to_dict``), so pre-existing adaptive keys
        survive byte-for-byte while order-adaptive specs hash apart.
        The ``workers`` knobs (reduction-level and adaptive-block) are
        stripped: the same surrogate is built (bitwise) regardless of
        core count, so core count must not split the cache.

        The ``solver`` block follows the adaptive precedent: the
        default ``"lu"`` selection (``None`` or an explicit
        ``{"backend": "lu"}``) is omitted, so every cache key minted
        before the backend seam existed survives byte-for-byte, while
        any iterative backend — whose certified tolerance defines a
        different equivalence class of results — hashes apart and is
        recorded in the store sidecar.
        """
        reduction = self.resolved_reduction()
        del reduction["workers"]
        if reduction["solver"] is None \
                or reduction["solver"]["backend"] == "lu":
            del reduction["solver"]
        if reduction["adaptive"] is None:
            del reduction["adaptive"]
        else:
            reduction["adaptive"] = {
                name: value
                for name, value in reduction["adaptive"].items()
                if name != "workers"}
        return {
            "spec_version": SPEC_VERSION,
            "preset": self.preset,
            "params": _normalize_numbers(self.resolved_params()),
            "reduction": _normalize_numbers(reduction),
        }

    def cache_key(self) -> str:
        """Deterministic content address (sha256 of the canonical JSON).

        Stable across processes and platforms: the canonical dict is
        serialized with sorted keys and shortest-round-trip float
        repr, both of which are deterministic in CPython's ``json``.
        """
        return hashlib.sha256(
            canonical_json(self.canonical()).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def build_problem(self):
        """Resolve the spec to a live VariationalProblem (one build).

        The solver backend is pinned *explicitly* — even when it is
        the default ``"lu"`` — as a pure-data
        :class:`~repro.solver.backends.SolverConfig`, so a build is
        immune to the ``REPRO_SOLVER_BACKEND`` environment variable
        (which steers only direct, spec-less solver use) and the
        pinned choice survives pickling into pool workers.
        """
        from repro.serving.presets import get_preset
        from repro.solver.backends import SolverConfig
        problem = get_preset(self.preset).build(self.resolved_params())
        solver = self.resolved_reduction()["solver"]
        problem.solver_backend = SolverConfig() if solver is None \
            else SolverConfig.from_dict(solver)
        return problem

    def analysis_kwargs(self) -> dict:
        """Keyword arguments for run_sscm_analysis."""
        reduction = self.resolved_reduction()
        refinement = None
        if reduction["adaptive"] is not None:
            from repro.adaptive.driver import AdaptiveConfig
            refinement = AdaptiveConfig.from_dict(reduction["adaptive"])
        return {
            "method": reduction["method"],
            "energy": reduction["energy"],
            "max_variables_by_group": reduction["caps"],
            "level": reduction["level"],
            "fit": reduction["fit"],
            "refinement": refinement,
            "workers": reduction["workers"],
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Sparse form (only the overrides) for round-tripping."""
        return {
            "preset": self.preset,
            "params": dict(self.params),
            "reduction": dict(self.reduction),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProblemSpec":
        if not isinstance(data, dict):
            raise ServingError(
                f"spec must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"preset", "params", "reduction",
                               "spec_version"}
        if unknown:
            raise ServingError(f"unknown spec fields {sorted(unknown)}")
        if "preset" not in data:
            raise ServingError("spec is missing the preset name")
        version = data.get("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ServingError(
                f"spec version {version} is not supported "
                f"(this build speaks {SPEC_VERSION})")
        return cls(preset=data["preset"],
                   params=data.get("params") or {},
                   reduction=data.get("reduction") or {})


def _normalize_numbers(obj):
    """Collapse int-valued floats to int, recursively."""
    if isinstance(obj, dict):
        return {key: _normalize_numbers(value)
                for key, value in obj.items()}
    if isinstance(obj, float) and obj.is_integer() \
            and abs(obj) <= 2.0 ** 53:
        return int(obj)
    return obj


def canonical_json(obj) -> str:
    """Key-sorted, whitespace-free JSON — the hashing wire format."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
