"""Surrogate store & query serving — build once, answer forever.

The paper's core economics: a fitted quadratic Hermite chaos is a
near-free statistical stand-in for the expensive coupled solver.  This
package turns that into a service: specs identify surrogates
(:mod:`~repro.serving.spec`), a content-addressed store persists them
(:mod:`~repro.serving.store`), ``ensure_surrogate`` builds on miss
(:mod:`~repro.serving.pipeline`), a vectorized engine answers
statistical queries (:mod:`~repro.serving.query`), and a JSON
request/response layer plus the ``repro build|query`` CLI make the
whole thing scriptable (:mod:`~repro.serving.service`).
"""

from repro.serving.spec import ProblemSpec, SPEC_VERSION
from repro.serving.presets import (
    Preset,
    get_preset,
    list_presets,
    register_preset,
)
from repro.serving.store import (
    SCHEMA_VERSION,
    SurrogateRecord,
    SurrogateStore,
)
from repro.serving.pipeline import (
    BuildReport,
    build_surrogate,
    ensure_surrogate,
)
from repro.serving.query import QueryEngine
from repro.serving.service import (
    DEFAULT_STORE_PATH,
    open_store,
    serve_batch,
    serve_request,
)

__all__ = [
    "ProblemSpec",
    "SPEC_VERSION",
    "Preset",
    "get_preset",
    "list_presets",
    "register_preset",
    "SCHEMA_VERSION",
    "SurrogateRecord",
    "SurrogateStore",
    "BuildReport",
    "build_surrogate",
    "ensure_surrogate",
    "QueryEngine",
    "DEFAULT_STORE_PATH",
    "open_store",
    "serve_batch",
    "serve_request",
]
