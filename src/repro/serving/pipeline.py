"""Build-on-miss: resolve a spec to a stored surrogate.

``ensure_surrogate`` is the serving system's single entry point for
surrogate acquisition: hash the spec, return the stored record on a
hit (zero deterministic solves), otherwise run the full SSCM pipeline
— nominal solve, (w)PFA reduction, sparse-grid collocation on the
batched multi-port fast paths — fit the quadratic chaos, persist it,
and return the fresh record.  A corrupted entry is treated as a miss
and overwritten (self-healing cache); a stale-schema entry is not
reinterpreted but rebuilt the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.runner import run_sscm_analysis
from repro.errors import StoreCorruptionError, StoreSchemaError
from repro.serving.spec import ProblemSpec
from repro.serving.store import SurrogateRecord, SurrogateStore


@dataclass
class BuildReport:
    """What ``ensure_surrogate`` did and what it cost.

    ``num_solves`` counts deterministic coupled solves actually run in
    this call: 0 on a cache hit, nominal + collocation on a build.
    """

    record: SurrogateRecord
    built: bool
    num_solves: int
    wall_time: float
    replaced_damaged: bool = False

    @property
    def cache_key(self) -> str:
        return self.record.cache_key


def build_surrogate(spec: ProblemSpec, progress=None) -> SurrogateRecord:
    """Run the SSCM pipeline for a spec and wrap the result.

    One nominal solve (wPFA weights) plus one deterministic solve per
    sparse-grid point; each point reuses PR 1's batched factorization
    paths through the problem's ``evaluate_sample``.
    """
    problem = spec.build_problem()
    analysis = run_sscm_analysis(problem, progress=progress,
                                 **spec.analysis_kwargs())
    return SurrogateRecord(
        pce=analysis.sscm.pce,
        spec=spec,
        reduction=analysis.reduction_metadata(),
        num_runs=int(analysis.num_runs),
        wall_time=float(analysis.sscm.wall_time),
        problem_signature=problem.spec_signature(),
        created_at=time.time(),
        refinement=analysis.refinement_metadata(),
    )


def ensure_surrogate(spec: ProblemSpec, store: SurrogateStore,
                     rebuild: bool = False,
                     progress=None) -> BuildReport:
    """Return the stored surrogate for ``spec``, building it on a miss.

    Parameters
    ----------
    spec:
        The surrogate identity (preset + params + reduction config).
    store:
        Persistent store to consult and populate.
    rebuild:
        Force a rebuild even on a hit (e.g. after a solver fix).
    progress:
        Optional ``(completed, total)`` callback for the collocation
        loop of a cold build.
    """
    key = spec.cache_key()
    start = time.perf_counter()
    replaced_damaged = False
    if not rebuild:
        try:
            record = store.get(key)
        except (StoreCorruptionError, StoreSchemaError):
            record = None
            replaced_damaged = True
        if record is not None:
            return BuildReport(record=record, built=False, num_solves=0,
                               wall_time=time.perf_counter() - start)
    record = build_surrogate(spec, progress=progress)
    store.save(record)
    # One solve per collocation point, plus the nominal solve when the
    # wPFA needed its weights.
    nominal = 1 if spec.resolved_reduction()["method"] == "wpfa" else 0
    num_solves = record.num_runs + nominal
    return BuildReport(record=record, built=True, num_solves=num_solves,
                       wall_time=time.perf_counter() - start,
                       replaced_damaged=replaced_damaged)
