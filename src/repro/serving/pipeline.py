"""Build-on-miss: resolve a spec to a stored surrogate.

``ensure_surrogate`` is the serving system's single entry point for
surrogate acquisition: hash the spec, return the stored record on a
hit (zero deterministic solves), otherwise run the full SSCM pipeline
— nominal solve, (w)PFA reduction, sparse-grid collocation on the
batched multi-port fast paths — fit the quadratic chaos, persist it,
and return the fresh record.  A corrupted entry is treated as a miss
and overwritten (self-healing cache); a stale-schema entry is not
reinterpreted but rebuilt the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.adaptive.driver import WarmStart
from repro.analysis.runner import run_sscm_analysis
from repro.daemon.singleflight import build_lock
from repro.errors import (
    StochasticError,
    StoreCorruptionError,
    StoreSchemaError,
)
from repro.obs.metrics import counter
from repro.obs.trace import Tracer, activate, get_tracer, span
from repro.serving.spec import ProblemSpec
from repro.serving.store import (
    SurrogateRecord,
    SurrogateStore,
    _param_distance,
    adaptive_tol,
    warm_reduction_signature,
)

#: Execution-only observability (process-global registry): cache
#: traffic, build volume and warm-start outcomes of ensure_surrogate.
_STORE_HITS = counter(
    "repro_store_hits_total",
    "ensure_surrogate calls answered from the surrogate store")
_STORE_MISSES = counter(
    "repro_store_misses_total",
    "ensure_surrogate calls that had to build (or rebuild)")
_BUILDS = counter(
    "repro_builds_total", "Surrogate builds completed and persisted")
_BUILD_SOLVES = counter(
    "repro_build_solves_total",
    "Deterministic coupled solves spent inside surrogate builds")
_WARM_STARTS = counter(
    "repro_warm_start_total",
    "Adaptive build warm-start outcomes, by 'outcome' label "
    "(certified / reopened / rejected / none)")


def _warm_outcome(refinement) -> str:
    """Classify a build's warm-start provenance for the counter."""
    warm = (refinement or {}).get("warm_start")
    if not warm:
        return "none"
    if not warm.get("used"):
        return "rejected"
    return "certified" if warm.get("certified") else "reopened"


@dataclass
class BuildReport:
    """What ``ensure_surrogate`` did and what it cost.

    ``num_solves`` counts deterministic coupled solves actually run in
    this call: 0 on a cache hit, nominal + collocation on a build.
    ``warm_start_source`` is the cache key of the stored sibling
    surrogate that seeded an adaptive build, or ``None`` (cache hit,
    fixed-grid build, no usable sibling, or warm starts disabled).
    ``timings`` breaks a build's wall time down from the span tracer
    (``total_s`` / ``solve_s`` / ``fit_s`` / ``store_write_s``
    seconds); it is ``None`` on a cache hit — the hit path is
    deliberately untraced so serving stays zero-overhead.
    """

    record: SurrogateRecord
    built: bool
    num_solves: int
    wall_time: float
    replaced_damaged: bool = False
    warm_start_source: str = None
    timings: dict = None

    @property
    def cache_key(self) -> str:
        return self.record.cache_key


def _chain_candidate(spec: ProblemSpec, store: SurrogateStore,
                     key: str):
    """An explicitly designated warm-start predecessor, validated.

    The campaign executor plans its own nearest-neighbor chain and
    hands each build its predecessor's cache key.  That key is only
    trusted after passing the exact sibling gates
    ``find_warm_start`` applies — present, undamaged, refinement-
    bearing, same preset, same relaxed reduction signature, numeric-
    only parameter difference — so a stale or incompatible chain seed
    degrades to the store-wide search, never a wrong seed.  Returns
    ``(key, sidecar)`` or ``None``.
    """
    if key == spec.cache_key():
        return None
    try:
        sidecar = store.sidecar(key)
    except (StoreCorruptionError, StoreSchemaError):
        return None
    if sidecar is None:
        return None
    refinement = sidecar.get("refinement")
    if not refinement or not (refinement.get("accepted")
                              or refinement.get("trace")):
        return None
    target = spec.canonical()
    if target["reduction"].get("adaptive") is None:
        return None
    stored = sidecar.get("spec") or {}
    if stored.get("preset") != target["preset"]:
        return None
    if warm_reduction_signature(stored.get("reduction") or {}) \
            != warm_reduction_signature(target["reduction"]):
        return None
    if _param_distance(target["params"],
                       stored.get("params") or {}) is None:
        return None
    return key, sidecar


def _warm_start_for(spec: ProblemSpec, store: SurrogateStore,
                    source_key: str = None):
    """Seed an adaptive build of ``spec`` from its nearest stored
    sibling — or from the explicitly designated ``source_key`` when
    given and usable — or ``None`` when no usable seed exists.  Never
    raises: a malformed stored sidecar simply means a cold build."""
    found = None
    if source_key is not None:
        found = _chain_candidate(spec, store, source_key)
    if found is None:
        found = store.find_warm_start(spec)
    if found is None:
        return None
    source, sidecar = found
    # The match is relaxed across chaos-basis variants (refinement is
    # basis-independent) and across stopping tolerances (the index
    # set transfers; certification does not).  Record a relaxed seed
    # as such, so the sidecar's warm_start_source documents that the
    # source fit a different basis — or certified a different tol —
    # than this build will.
    stored_reduction = ((sidecar.get("spec") or {}).get("reduction")
                        or {})
    target_reduction = spec.canonical()["reduction"]
    stored_adaptive = stored_reduction.get("adaptive") or {}
    target_adaptive = target_reduction.get("adaptive") or {}
    if stored_adaptive.get("basis") != target_adaptive.get("basis"):
        source = f"{source}:basis-relaxed"
    tol_relaxed = (adaptive_tol(stored_reduction)
                   != adaptive_tol(target_reduction))
    if tol_relaxed:
        source = f"{source}:tol-relaxed"
    try:
        seed = WarmStart.from_refinement(sidecar["refinement"],
                                         source=source)
    except (StochasticError, KeyError, TypeError, ValueError):
        # The store's integrity gate only hashes the sidecar's spec,
        # so an edited refinement block can still reach this point in
        # any malformed shape — all of it means "no usable seed".
        return None
    if tol_relaxed:
        # The source certified a different tolerance class; its index
        # set seeds this build but its frontier evidence must not
        # certify it — the driver re-opens the frontier instead.
        seed = seed.uncertified()
    return seed


def build_surrogate(spec: ProblemSpec, progress=None,
                    store: SurrogateStore = None,
                    warm_start: bool = True,
                    warm_source: str = None) -> SurrogateRecord:
    """Run the SSCM pipeline for a spec and wrap the result.

    One nominal solve (wPFA weights) plus one deterministic solve per
    collocation point; each point reuses PR 1's batched factorization
    paths through the problem's ``evaluate_sample``.  Adaptive builds
    additionally get the spec's ``workers`` fan-out (the spec itself is
    the picklable problem builder handed to the worker pool) and — when
    a ``store`` is supplied — a warm start from the nearest stored
    sibling spec.

    Parameters
    ----------
    spec : ProblemSpec
        The surrogate identity to build.
    progress : callable, optional
        ``(completed, total)`` collocation callback.
    store : SurrogateStore, optional
        Consulted (read-only) for a warm-start seed; nothing is
        persisted here.
    warm_start : bool, default True
        Allow seeding from a stored sibling; ``False`` forces a cold
        build even when ``store`` is given.
    warm_source : str, optional
        Cache key of a *designated* warm-start predecessor (the
        campaign executor's chain neighbor).  Tried first; when it is
        missing, damaged or incompatible the store-wide
        ``find_warm_start`` search is the fallback.  Ignored when
        ``warm_start`` is ``False``.

    Returns
    -------
    SurrogateRecord
        The fitted surrogate with full provenance (including
        ``warm_start_source`` inside the refinement sidecar when a
        seed was used).
    """
    with span("build_problem"):
        problem = spec.build_problem()
    kwargs = spec.analysis_kwargs()
    seed = None
    if warm_start and store is not None \
            and kwargs["refinement"] is not None:
        with span("warm_start_lookup"):
            seed = _warm_start_for(spec, store,
                                   source_key=warm_source)
    analysis = run_sscm_analysis(problem, progress=progress,
                                 problem_builder=spec.build_problem,
                                 warm_start=seed, **kwargs)
    return SurrogateRecord(
        pce=analysis.sscm.pce,
        spec=spec,
        reduction=analysis.reduction_metadata(),
        num_runs=int(analysis.num_runs),
        wall_time=float(analysis.sscm.wall_time),
        problem_signature=problem.spec_signature(),
        created_at=time.time(),
        refinement=analysis.refinement_metadata(),
    )


def ensure_surrogate(spec: ProblemSpec, store: SurrogateStore,
                     rebuild: bool = False, warm_start: bool = True,
                     warm_source: str = None,
                     progress=None) -> BuildReport:
    """Return the stored surrogate for ``spec``, building it on a miss.

    Parameters
    ----------
    spec : ProblemSpec
        The surrogate identity (preset + params + reduction config).
    store : SurrogateStore
        Persistent store to consult and populate.  On an adaptive miss
        it is also searched for the nearest sibling spec (same preset
        and reduction, perturbed params) whose accepted index set
        warm-starts the refinement.
    rebuild : bool, default False
        Force a rebuild even on a hit (e.g. after a solver fix).
        Implies a cold build: a rebuild means stored results are not
        trusted, so no stored sibling may seed (let alone certify) it.
    warm_start : bool, default True
        Allow warm-started adaptive builds; ``False`` forces cold
        refinement from the root index.
    warm_source : str, optional
        Cache key of a designated warm-start predecessor to try
        before the store-wide sibling search (see
        :func:`build_surrogate`).  A hit never consults it.
    progress : callable, optional
        ``(completed, total)`` callback for the collocation loop of a
        cold build.

    Returns
    -------
    BuildReport
        The record plus what this call actually did and cost.

    Notes
    -----
    The miss path is single-flight across processes: an advisory
    per-key file lock (``<store>/.locks/<key>.lock``) serializes
    concurrent builds of the same spec, and the store is re-checked
    after acquiring, so the losers of the race return the winner's
    entry as a plain hit instead of repeating the solve campaign.
    Hits never touch the lock.  ``rebuild=True`` still builds after
    acquiring (a forced rebuild distrusts whatever the winner wrote).
    """
    key = spec.cache_key()
    start = time.perf_counter()
    replaced_damaged = False

    def check_hit():
        nonlocal replaced_damaged
        if rebuild:
            return None
        try:
            record = store.get(key)
        except (StoreCorruptionError, StoreSchemaError):
            replaced_damaged = True
            return None
        return record

    record = check_hit()
    if record is not None:
        # Usage bookkeeping for the inventory / LRU eviction: a hit
        # refreshes the entry's last_used stamp.
        store.touch(key)
        _STORE_HITS.inc()
        return BuildReport(record=record, built=False, num_solves=0,
                           wall_time=time.perf_counter() - start)
    # Classified at entry: a coalesced racer that finds the winner's
    # entry after the lock still counts as the miss it initially was.
    _STORE_MISSES.inc()
    # Miss: serialize the build across processes with an advisory
    # per-key lock, so N processes racing the same missing spec run
    # one solve campaign — the losers block here, re-check, and find
    # the winner's entry (a hit, zero solves).  In-process stampedes
    # coalesce one layer up, in the daemon's single-flight table.
    with build_lock(store.root, key):
        record = check_hit()
        if record is not None:
            store.touch(key)
            return BuildReport(record=record, built=False,
                               num_solves=0,
                               wall_time=time.perf_counter() - start)
        tracer = get_tracer()
        if not tracer.enabled:
            # Builds always run under a tracer — their own if none is
            # installed — so BuildReport.timings exists even without
            # --profile.  Span overhead is noise next to the solves it
            # measures; the hit path above stays untraced.
            tracer = Tracer()
        with activate(tracer), \
                tracer.span("build", cache_key=key) as build_span:
            record = build_surrogate(
                spec, progress=progress, store=store,
                warm_start=warm_start and not rebuild,
                warm_source=warm_source)
            solve_names = ("nominal_solve", "collocation", "wave")
            totals = tracer.totals(root=build_span.span_id)
            # Persisted (execution-only) breakdown: the sidecar's copy
            # cannot include the write that stores it, so store.save
            # appends its own measured store_write_s.
            record.timings = {
                "total_s": time.perf_counter() - build_span.start,
                "solve_s": sum(totals.get(name, 0.0)
                               for name in solve_names),
                "fit_s": totals.get("fit", 0.0),
            }
            with tracer.span("store_write"):
                store.save(record)
        totals = tracer.totals(root=build_span.span_id)
        timings = {
            "total_s": build_span.duration,
            "solve_s": sum(totals.get(name, 0.0)
                           for name in solve_names),
            "fit_s": totals.get("fit", 0.0),
            "store_write_s": totals.get("store_write", 0.0),
        }
    # One solve per collocation point, plus the nominal solve when the
    # wPFA needed its weights.
    nominal = 1 if spec.resolved_reduction()["method"] == "wpfa" else 0
    num_solves = record.num_runs + nominal
    _BUILDS.inc()
    _BUILD_SOLVES.inc(num_solves)
    if record.refinement is not None:
        _WARM_STARTS.inc(outcome=_warm_outcome(record.refinement))
    source = (record.refinement or {}).get("warm_start_source")
    return BuildReport(record=record, built=True, num_solves=num_solves,
                       wall_time=time.perf_counter() - start,
                       replaced_damaged=replaced_damaged,
                       warm_start_source=source,
                       timings=timings)
