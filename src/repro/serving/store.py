"""Content-addressed persistent store for fitted surrogates.

Each entry is one fitted :class:`~repro.stochastic.pce.QuadraticPCE`
plus its provenance, addressed by the deterministic cache key of the
:class:`~repro.serving.spec.ProblemSpec` that built it.  On disk an
entry is an ``.npz`` payload (the arrays) and a ``.json`` sidecar (the
metadata, schema version and the payload's sha256).  Writes are atomic
(tmp file + rename) and reads verify the checksum, the schema version
and the key, so a torn write or a bit flip surfaces as
:class:`~repro.errors.StoreCorruptionError` instead of silently wrong
statistics.
"""

from __future__ import annotations

import hashlib
import io
import json
import math
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import (
    ServingError,
    StoreCorruptionError,
    StoreSchemaError,
)
from repro.serving.spec import ProblemSpec, canonical_json
from repro.stochastic.pce import QuadraticPCE

#: On-disk layout version.  Entries written under an unsupported
#: version are rejected on load (StoreSchemaError) rather than
#: reinterpreted.
SCHEMA_VERSION = 1

#: Entries whose payload carries an explicit (order-adaptive) basis
#: are stamped with this version: readers that predate explicit bases
#: then reject them with a clear schema message instead of a
#: confusing coefficient-shape error, while order-2 entries keep the
#: original version (and byte layout) so old stores stay readable and
#: old readers keep reading everything this build writes for them.
EXPLICIT_BASIS_SCHEMA_VERSION = 2

#: Versions this build reads.
SUPPORTED_SCHEMA_VERSIONS = (SCHEMA_VERSION,
                             EXPLICIT_BASIS_SCHEMA_VERSION)

_KEY_HEX = 64


@dataclass
class SurrogateRecord:
    """A fitted surrogate plus everything needed to trust it later.

    Attributes
    ----------
    pce:
        The fitted Hermite chaos (the actual surrogate) — the paper's
        order-2 model or an order-adaptive
        :class:`~repro.stochastic.pce.PolynomialChaos`; its basis
        identity is persisted in the sidecar's ``basis`` field.
    spec:
        The declarative spec that identifies (and can rebuild) it.
    reduction:
        Per-group reduction metadata
        (:meth:`~repro.analysis.runner.AnalysisResult.reduction_metadata`).
    num_runs:
        Deterministic solver evaluations spent building it.
    wall_time:
        Build seconds (collocation only).
    problem_signature:
        Resolved-problem fingerprint
        (:meth:`~repro.analysis.problem.VariationalProblem.spec_signature`)
        recorded at build time for auditing.
    created_at:
        Unix timestamp of the build (0 when unknown).
    refinement:
        Adaptive-build provenance
        (:meth:`~repro.analysis.runner.AnalysisResult.refinement_metadata`):
        the stopping config, accepted multi-index set, convergence
        trace and termination reason — ``None`` for fixed-grid builds.
        A replayed adaptive surrogate therefore still documents every
        refinement decision that shaped it.
    timings:
        Execution-only build breakdown from the span tracer
        (``total_s`` / ``solve_s`` / ``fit_s`` seconds, plus the
        ``store_write_s`` that :meth:`SurrogateStore.save` measures
        itself).  Persisted under the sidecar's ``execution`` section
        — never hashed, never part of the cache key — and ``None``
        for records built before the tracer existed.
    """

    pce: QuadraticPCE
    spec: ProblemSpec
    reduction: list = field(default_factory=list)
    num_runs: int = 0
    wall_time: float = 0.0
    problem_signature: dict = None
    created_at: float = 0.0
    refinement: dict = None
    timings: dict = None

    @property
    def cache_key(self) -> str:
        return self.spec.cache_key()

    @property
    def output_names(self) -> list:
        return self.pce.output_labels()


class SurrogateStore:
    """Directory-backed map from cache key to :class:`SurrogateRecord`.

    Parameters
    ----------
    root : str or pathlib.Path
        Store directory; created (with parents) if missing.  Each
        entry is a ``<key>.npz`` payload plus a ``<key>.json``
        sidecar, written atomically and verified on read.
    """

    def __init__(self, root):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def _paths(self, key: str):
        if len(key) != _KEY_HEX or any(c not in "0123456789abcdef"
                                       for c in key):
            raise ServingError(f"malformed cache key {key!r}")
        return self.root / f"{key}.npz", self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        payload, sidecar = self._paths(key)
        return payload.exists() and sidecar.exists()

    def keys(self) -> list:
        """Keys with a complete payload+sidecar pair (half-written
        entries from a crash are invisible, matching ``in``/``get``)."""
        return sorted(p.stem for p in self.root.glob("*.json")
                      if len(p.stem) == _KEY_HEX
                      and p.with_suffix(".npz").exists())

    def delete(self, key: str) -> None:
        """Remove an entry; sidecar first, so a racing reader sees a
        clean miss (no sidecar) instead of a sidecar whose payload
        vanishes under it.  This is what GC eviction rides on."""
        payload_path, sidecar_path = self._paths(key)
        for path in (sidecar_path, payload_path):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------
    def save(self, record: SurrogateRecord) -> str:
        """Persist a record atomically.

        Parameters
        ----------
        record : SurrogateRecord
            The fitted surrogate with its provenance; its spec's cache
            key is the storage address.

        Returns
        -------
        str
            The cache key the record was stored under.
        """
        key = record.cache_key
        payload_path, sidecar_path = self._paths(key)
        buffer = io.BytesIO()
        np.savez(buffer, **record.pce.to_arrays())
        payload = buffer.getvalue()
        created_at = float(record.created_at or time.time())
        explicit = record.pce.basis.truncation != "total"
        sidecar = {
            "schema_version": (EXPLICIT_BASIS_SCHEMA_VERSION
                               if explicit else SCHEMA_VERSION),
            "cache_key": key,
            "npz_sha256": hashlib.sha256(payload).hexdigest(),
            "spec": record.spec.canonical(),
            "reduction": record.reduction,
            "num_runs": int(record.num_runs),
            "wall_time": float(record.wall_time),
            "problem_signature": record.problem_signature,
            "created_at": created_at,
            "last_used": created_at,
            "refinement": record.refinement,
            "basis": record.pce.basis.describe(),
        }
        write_start = time.perf_counter()
        self._atomic_write(payload_path, payload)
        if record.timings is not None:
            # Execution-only section: the integrity rehash covers the
            # sidecar's spec alone, so these timings can never change
            # the cache key.  The payload-write seconds are measured
            # here — the sidecar cannot time its own write.
            sidecar["execution"] = {"timings": {
                **record.timings,
                "store_write_s": time.perf_counter() - write_start,
            }}
        self._atomic_write(
            sidecar_path,
            (canonical_json(sidecar) + "\n").encode("utf-8"))
        return key

    def _atomic_write(self, path: Path, data: bytes) -> None:
        # Unique tmp name: concurrent writers of the same key (two
        # processes building the same miss) never interleave into one
        # tmp file; last rename wins with a complete entry either way.
        fd, tmp = tempfile.mkstemp(dir=self.root,
                                   prefix=path.name + ".",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    def get(self, key: str) -> SurrogateRecord | None:
        """Load an entry.

        Parameters
        ----------
        key : str
            A 64-hex spec cache key.

        Returns
        -------
        SurrogateRecord or None
            ``None`` on a clean miss; raises
            :class:`~repro.errors.StoreCorruptionError` /
            :class:`~repro.errors.StoreSchemaError` on damage.

        Notes
        -----
        The payload and sidecar are two files, so a concurrent
        *overwrite* of the same key (``--rebuild``, self-heal) has a
        brief window where a reader sees a mismatched pair.  One
        re-read distinguishes that torn moment from real damage.
        """
        self._paths(key)
        try:
            return self._read(key)
        except StoreCorruptionError:
            time.sleep(0.05)
            return self._read(key)

    def _read_sidecar(self, key: str) -> dict | None:
        """Validated sidecar metadata, without touching the payload.

        ``None`` on a clean miss; raises
        :class:`~repro.errors.StoreCorruptionError` /
        :class:`~repro.errors.StoreSchemaError` on damage.  The
        spec-rehash check runs here too, so metadata-only consumers
        (inventory, warm-start lookup) never act on an edited sidecar.
        """
        _, sidecar_path = self._paths(key)
        if not sidecar_path.exists():
            return None
        try:
            sidecar = json.loads(sidecar_path.read_text())
        except (OSError, ValueError) as exc:
            raise StoreCorruptionError(
                f"unreadable sidecar for {key}: {exc}") from exc
        version = sidecar.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise StoreSchemaError(
                f"entry {key} was written under schema {version!r}; "
                f"this build reads schemas "
                f"{list(SUPPORTED_SCHEMA_VERSIONS)}")
        for name in ("cache_key", "npz_sha256", "spec"):
            if name not in sidecar:
                raise StoreCorruptionError(
                    f"sidecar for {key} is missing {name!r}")
        if sidecar["cache_key"] != key:
            raise StoreCorruptionError(
                f"sidecar for {key} claims key {sidecar['cache_key']}")
        # Rehash the *stored* canonical spec (no preset resolution, so
        # entries written under older preset defaults stay readable);
        # a mismatch means the sidecar was edited after being written.
        stored_key = hashlib.sha256(
            canonical_json(sidecar["spec"]).encode("utf-8")).hexdigest()
        if stored_key != key:
            raise StoreCorruptionError(
                f"sidecar spec for {key} hashes to {stored_key}; "
                f"the entry was edited after being written")
        return sidecar

    def sidecar(self, key: str) -> dict | None:
        """Public metadata view of one entry (``None`` on a miss).

        Cheap — reads and validates only the JSON sidecar, never the
        array payload.  This is what inventory tooling and the
        warm-start lookup iterate over.
        """
        return self._read_sidecar(key)

    def touch(self, key: str, when: float = None) -> None:
        """Stamp ``last_used`` on an entry's sidecar (atomic).

        Called by the serving layer on every cache hit so the
        inventory (``repro store ls``) and future LRU eviction know
        which entries still earn their disk.  Only the timestamp
        changes — the spec (and hence the integrity rehash) is
        untouched.  Missing or damaged entries are silently skipped:
        usage bookkeeping must never turn a read into an error.

        Concurrency: the sidecar is re-read immediately before the
        write, but a concurrent ``save`` of the same key (a
        ``--rebuild`` racing a hit) can still lose its sidecar to
        this rewrite.  The stale sidecar then mismatches the new
        payload's checksum, which reads as damage — and damage
        self-heals into a rebuild at the next ``ensure_surrogate`` —
        so the race costs a spurious rebuild, never wrong statistics.
        """
        try:
            sidecar = self._read_sidecar(key)
        except (StoreCorruptionError, StoreSchemaError):
            return
        if sidecar is None:
            return
        sidecar["last_used"] = float(when if when is not None
                                     else time.time())
        _, sidecar_path = self._paths(key)
        self._atomic_write(
            sidecar_path,
            (canonical_json(sidecar) + "\n").encode("utf-8"))

    def inventory(self) -> list:
        """Metadata listing of every complete entry, newest use first.

        Built on :meth:`sidecar` — array payloads are never loaded, so
        listing a store of thousands of surrogates costs thousands of
        small JSON reads, not gigabytes of npz.  Each entry carries
        ``key``, ``preset``, ``reduction`` (``"adaptive"`` or
        ``"level-N"``), ``basis`` (the stored basis identity; order-2
        total-degree is assumed for entries written before basis
        specs existed), ``size_bytes`` (payload file size),
        ``num_runs``, ``created_at`` and ``last_used``.  Damaged
        entries are reported as ``{"key", "damaged"}`` rows instead of
        raising — an inventory must list the store it has, not the
        store it wishes it had.
        """
        entries = []
        for key in self.keys():
            payload_path, _ = self._paths(key)
            try:
                sidecar = self._read_sidecar(key)
            except (StoreCorruptionError, StoreSchemaError) as exc:
                entries.append({"key": key, "damaged": str(exc)})
                continue
            if sidecar is None:
                continue
            try:
                size_bytes = payload_path.stat().st_size
            except OSError:
                size_bytes = 0
            entries.append(inventory_row(key, sidecar, size_bytes))
        entries.sort(key=lambda entry: (-entry.get("last_used", 0.0),
                                        entry["key"]))
        return entries

    def _read(self, key: str) -> SurrogateRecord | None:
        payload_path, _ = self._paths(key)
        if not payload_path.exists():
            return None
        sidecar = self._read_sidecar(key)
        if sidecar is None:
            return None
        try:
            payload = payload_path.read_bytes()
        except FileNotFoundError:
            # The entry was deleted (GC eviction, concurrent rm)
            # between the existence check and the read: a clean miss,
            # not corruption — the caller rebuilds if it cares.
            return None
        digest = hashlib.sha256(payload).hexdigest()
        if digest != sidecar["npz_sha256"]:
            raise StoreCorruptionError(
                f"payload checksum mismatch for {key}: stored "
                f"{sidecar['npz_sha256'][:12]}..., found {digest[:12]}...")
        try:
            with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
                pce = QuadraticPCE.from_arrays(dict(npz.items()))
        except Exception as exc:
            raise StoreCorruptionError(
                f"undecodable payload for {key}: {exc}") from exc
        spec = ProblemSpec.from_dict(sidecar["spec"])
        record = SurrogateRecord(
            pce=pce,
            spec=spec,
            reduction=sidecar.get("reduction") or [],
            num_runs=int(sidecar.get("num_runs", 0)),
            wall_time=float(sidecar.get("wall_time", 0.0)),
            problem_signature=sidecar.get("problem_signature"),
            created_at=float(sidecar.get("created_at", 0.0)),
            refinement=sidecar.get("refinement"),
            timings=(sidecar.get("execution") or {}).get("timings"),
        )
        return record

    def load(self, key: str) -> SurrogateRecord:
        """Like :meth:`get` but a miss is an error (read-only callers)."""
        record = self.get(key)
        if record is None:
            raise ServingError(f"no surrogate stored under {key}")
        return record

    # ------------------------------------------------------------------
    def find_warm_start(self, spec: ProblemSpec):
        """Nearest stored adaptive sibling of ``spec`` for warm starts.

        A *sibling* is a stored entry with the same preset and the
        same canonical reduction block up to the relaxations of
        :func:`warm_reduction_signature` (same method/energy/caps and
        the same adaptive budget caps) whose parameters differ only
        numerically.  Among siblings, nearest means the smallest
        relative Euclidean distance over the numeric parameters; at
        equal distance an exact-``tol`` sibling outranks a
        tol-relaxed one, and remaining ties break on the cache key
        for determinism.

        The match is relaxed across chaos-``basis`` variants
        (refinement is basis-independent — the basis only changes the
        final fit — so an order-2 sibling may seed an order-adaptive
        build and vice versa) and across stopping tolerances (the
        index set transfers; certification does not — the pipeline
        disables it for cross-``tol`` seeds).  The pipeline records
        relaxed seeds as ``<key>:basis-relaxed`` /
        ``<key>:tol-relaxed`` in ``warm_start_source``.

        Parameters
        ----------
        spec : ProblemSpec
            The spec about to be built.  Must carry an adaptive block;
            fixed-grid builds have nothing to warm-start.

        Returns
        -------
        tuple or None
            ``(cache_key, sidecar)`` of the nearest sibling whose
            refinement metadata can seed a
            :class:`~repro.adaptive.driver.WarmStart`, or ``None``
            when no usable sibling exists.  Damaged entries are
            skipped, never raised.
        """
        target = spec.canonical()
        if target["reduction"].get("adaptive") is None:
            return None
        target_signature = warm_reduction_signature(target["reduction"])
        target_tol = adaptive_tol(target["reduction"])
        own_key = spec.cache_key()
        best = None
        for key in self.keys():
            if key == own_key:
                continue
            try:
                sidecar = self._read_sidecar(key)
            except (StoreCorruptionError, StoreSchemaError):
                continue
            if sidecar is None:
                continue
            refinement = sidecar.get("refinement")
            if not refinement or not (refinement.get("accepted")
                                      or refinement.get("trace")):
                continue
            stored = sidecar["spec"]
            if stored.get("preset") != target["preset"]:
                continue
            stored_reduction = stored.get("reduction") or {}
            if warm_reduction_signature(stored_reduction) \
                    != target_signature:
                continue
            distance = _param_distance(target["params"],
                                       stored.get("params") or {})
            if distance is None:
                continue
            tol_relaxed = int(adaptive_tol(stored_reduction)
                              != target_tol)
            rank = (distance, tol_relaxed, key)
            if best is None or rank < best[0]:
                best = (rank, key, sidecar)
        if best is None:
            return None
        return best[1], best[2]


def inventory_row(key: str, sidecar: dict, size_bytes: int) -> dict:
    """One ``inventory()`` listing row from a validated sidecar.

    Shared with the daemon's sqlite index, which caches these rows so
    an indexed listing is *identical* (not just equivalent) to a full
    sidecar scan — asserted in tests and in ``bench_daemon``.
    """
    spec = sidecar.get("spec") or {}
    reduction = spec.get("reduction") or {}
    adaptive = reduction.get("adaptive")
    created = float(sidecar.get("created_at", 0.0))
    return {
        "key": key,
        "preset": spec.get("preset"),
        "reduction": ("adaptive" if adaptive is not None
                      else f"level-{reduction.get('level', 2)}"),
        "basis": sidecar.get("basis") or {
            "kind": "total-degree", "order": 2, "size": None},
        "size_bytes": int(size_bytes),
        "num_runs": int(sidecar.get("num_runs", 0)),
        "created_at": created,
        "last_used": float(sidecar.get("last_used", created)),
    }


def warm_reduction_signature(reduction: dict) -> dict:
    """A canonical reduction block with ``basis`` and ``tol`` relaxed.

    Warm starts transfer the *refinement* state (accepted indices +
    indicators), and this signature — what ``find_warm_start`` (and
    the daemon's sqlite index) match on — drops exactly the adaptive
    settings that state transfers across:

    * ``basis`` — refinement is basis-independent: the ``basis`` mode
      only changes the final projection, never the grids, solves or
      termination, so chaos-basis variants are warm-compatible
      (``<key>:basis-relaxed`` provenance).
    * ``tol`` — the accepted index set transfers across stopping
      tolerances too; what does *not* transfer is the source's
      frontier certification, so the pipeline marks a cross-``tol``
      seed uncertifiable (``<key>:tol-relaxed`` provenance) and the
      driver always re-opens and re-measures the frontier instead of
      letting a looser-tol source certify a tighter build.

    The budget controls (``max_solves``/``max_level``) stay in the
    signature: a budget cap shapes *which* region the source was
    allowed to explore, so a differently-capped interior is not a
    sibling's.
    """
    adaptive = reduction.get("adaptive")
    if not isinstance(adaptive, dict):
        return dict(reduction)
    relaxed = {name: value for name, value in adaptive.items()
               if name not in ("basis", "tol")}
    return {**reduction, "adaptive": relaxed}


def adaptive_tol(reduction: dict):
    """The adaptive stopping tolerance of a canonical reduction block,
    as a float, or ``None`` for fixed-grid blocks.  Shared by the
    warm-start rankers (store scan and sqlite index) so "same tol"
    means the same thing everywhere."""
    adaptive = reduction.get("adaptive")
    if not isinstance(adaptive, dict) or adaptive.get("tol") is None:
        return None
    return float(adaptive["tol"])


def _param_distance(target: dict, stored: dict):
    """Relative Euclidean distance between two resolved param dicts.

    ``None`` marks incompatibility: different key sets, or any
    non-numeric parameter (variant, surface model, ...) that differs —
    those change the problem family, not just its numbers.  Booleans
    count as non-numeric.
    """
    if set(target) != set(stored):
        return None
    total = 0.0
    for name, x in target.items():
        y = stored[name]
        x_numeric = isinstance(x, (int, float)) \
            and not isinstance(x, bool)
        y_numeric = isinstance(y, (int, float)) \
            and not isinstance(y, bool)
        if x_numeric and y_numeric:
            scale = max(abs(float(x)), abs(float(y)), 1.0)
            total += ((float(x) - float(y)) / scale) ** 2
        elif x != y:
            return None
    return math.sqrt(total)
