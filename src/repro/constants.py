"""Physical constants used throughout the solver.

All constants are expressed in SI units.  The solver itself works in SI
with geometry typically specified in metres (helpers in :mod:`repro.units`
convert from the micrometre-scale dimensions quoted in the paper).
"""

from __future__ import annotations

import math

#: Vacuum permittivity [F/m].
EPS0 = 8.8541878128e-12

#: Vacuum permeability [H/m].
MU0 = 4.0e-7 * math.pi

#: Speed of light in vacuum [m/s].
C0 = 1.0 / math.sqrt(EPS0 * MU0)

#: Elementary charge [C].
Q = 1.602176634e-19

#: Boltzmann constant [J/K].
KB = 1.380649e-23

#: Default lattice temperature [K].
T_ROOM = 300.0

#: Thermal voltage kT/q at 300 K [V].
VT_ROOM = KB * T_ROOM / Q

#: Intrinsic carrier density of silicon at 300 K [1/m^3].
#: The commonly used value 1.45e10 cm^-3 expressed in SI.
NI_SILICON = 1.45e16


def thermal_voltage(temperature: float = T_ROOM) -> float:
    """Return the thermal voltage ``kT/q`` [V] at ``temperature`` [K].

    >>> round(thermal_voltage(300.0), 6)
    0.025852
    """
    if temperature <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    return KB * temperature / Q
