"""Current extraction.

All currents are complex phasors [A].  The link currents follow the
a -> b orientation of the link set; node-set outflows sum them with the
proper sign over the cut between a node set and its complement.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExtractionError
from repro.solver.ac import ACSolution


def node_set_outflow(solution: ACSolution, node_mask: np.ndarray) -> complex:
    """Total current flowing out of ``node_mask`` through its cut links.

    This is the discrete ``oint J . dS`` over the dual surface wrapping
    the node set; for a driven contact it equals the port current (with
    a minus sign for current *into* the structure).
    """
    node_mask = np.asarray(node_mask, dtype=bool)
    links = solution.geometry.links
    if node_mask.shape != (solution.structure.grid.num_nodes,):
        raise ExtractionError("node_mask must be a per-node boolean array")
    current = solution.link_total_current()
    a_in = node_mask[links.node_a] & ~node_mask[links.node_b]
    b_in = node_mask[links.node_b] & ~node_mask[links.node_a]
    return complex(current[a_in].sum() - current[b_in].sum())


def port_current(solution: ACSolution, contact: str) -> complex:
    """Current injected into the structure through a named contact.

    Defined as the negative outflow of the contact node set: a contact
    driven at +1 V against grounded neighbours *sources* current, and
    this function returns that sourced current with a positive real
    part for a passive structure.
    """
    node_ids = solution.structure.contact_node_ids(contact)
    mask = np.zeros(solution.structure.grid.num_nodes, dtype=bool)
    mask[node_ids] = True
    return node_set_outflow(solution, mask)


def metal_semiconductor_current(solution: ACSolution,
                                restrict_nodes=None) -> complex:
    """Current crossing the metal-semiconductor interface.

    Sums the total link current over every link from a metal node to a
    carrier (semiconductor) node, oriented metal -> semiconductor.  This
    is Table I's quantity J (as a total current; the paper's uA values
    are likewise integals over the interface).

    Parameters
    ----------
    solution:
        A solved AC sample.
    restrict_nodes:
        Optional iterable of metal node ids: only interface links whose
        metal endpoint is in this set are counted (e.g. just plug 1).
    """
    kinds = solution.structure.node_kinds()
    metal = kinds.metal
    carrier = kinds.semiconductor
    if restrict_nodes is not None:
        restrict = np.zeros(metal.size, dtype=bool)
        restrict[np.asarray(restrict_nodes, dtype=int)] = True
        metal = metal & restrict
    links = solution.geometry.links
    # A genuine contact link carries current through a semiconductor
    # quadrant; links whose endpoints merely straddle a thin dielectric
    # (e.g. a TSV liner) have zero semiconductor dual area and are not
    # part of the interface.
    through_semi = solution.system.semi_areas > 0.0
    a_metal = metal[links.node_a] & carrier[links.node_b] & through_semi
    b_metal = metal[links.node_b] & carrier[links.node_a] & through_semi
    if not np.any(a_metal | b_metal):
        raise ExtractionError(
            "no metal-semiconductor interface links found")
    current = solution.link_total_current()
    return complex(current[a_metal].sum() - current[b_metal].sum())
