"""Post-processing: the quantities the paper's tables report.

* interface / port currents (Table I's J through the
  metal-semiconductor interface);
* Maxwell capacitance matrix entries by Gauss-flux charge integration
  (Table II's C_T1, C_T1T2, C_T1Wk);
* field cross-sections (Fig. 2b).
"""

from repro.extraction.current import (
    port_current,
    node_set_outflow,
    metal_semiconductor_current,
)
from repro.extraction.capacitance import (
    conductor_labels,
    conductor_charge,
    capacitance_column,
)
from repro.extraction.field import potential_cross_section

__all__ = [
    "port_current",
    "node_set_outflow",
    "metal_semiconductor_current",
    "conductor_labels",
    "conductor_charge",
    "capacitance_column",
    "potential_cross_section",
]
