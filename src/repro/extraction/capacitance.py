"""Maxwell capacitance extraction by Gauss-flux charge integration.

Driving conductor ``j`` at 1 V with every other conductor grounded and
integrating the electric flux out of each conductor's wrapping dual
surface yields the Maxwell capacitance matrix column ``C_ij = Q_i``:
positive on the diagonal, negative off-diagonal — matching the sign
pattern of the paper's Table II.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components

from repro.errors import ExtractionError
from repro.geometry.structure import Structure
from repro.mesh.entities import LinkSet
from repro.solver.ac import ACSolution


def conductor_labels(structure: Structure, links: LinkSet) -> np.ndarray:
    """Label metal nodes by connected conductor.

    Returns a per-node int array: ``-1`` for non-metal nodes, otherwise
    a conductor component id.  Two metal nodes belong to the same
    conductor when a chain of links with metal endpoints joins them.
    """
    metal = structure.node_kinds().metal
    n = structure.grid.num_nodes
    # A link joins a conductor only when it runs along metal: both
    # endpoints metal AND at least one adjacent cell is metal.  Without
    # the cell condition a single coarse cell between two conductors
    # would merge them (both endpoints of the spanning link touch metal).
    metal_cells, _, _ = structure.cell_kind_masks()
    safe = np.clip(links.cells, 0, None)
    touches_metal_cell = np.any(metal_cells[safe] & (links.cells >= 0),
                                axis=1)
    both_metal = (metal[links.node_a] & metal[links.node_b]
                  & touches_metal_cell)
    a = links.node_a[both_metal]
    b = links.node_b[both_metal]
    adjacency = csr_matrix(
        (np.ones(a.size), (a, b)), shape=(n, n))
    num, labels = connected_components(adjacency, directed=False)
    out = np.full(n, -1, dtype=int)
    metal_ids = np.nonzero(metal)[0]
    # Re-label so conductor ids are dense over metal components only.
    raw = labels[metal_ids]
    _, dense = np.unique(raw, return_inverse=True)
    out[metal_ids] = dense
    return out


def conductor_mask_for_contact(structure: Structure, links: LinkSet,
                               contact: str) -> np.ndarray:
    """Boolean mask of the conductor containing ``contact``."""
    labels = conductor_labels(structure, links)
    ids = structure.contact_node_ids(contact)
    contact_labels = np.unique(labels[ids])
    contact_labels = contact_labels[contact_labels >= 0]
    if contact_labels.size == 0:
        raise ExtractionError(
            f"contact {contact!r} touches no metal nodes")
    if contact_labels.size > 1:
        raise ExtractionError(
            f"contact {contact!r} spans {contact_labels.size} distinct "
            f"conductors; split it into one contact per conductor")
    return labels == contact_labels[0]


def conductor_charge(solution: ACSolution,
                     conductor_mask: np.ndarray) -> complex:
    """Charge on a conductor from the outward electric flux [C]."""
    conductor_mask = np.asarray(conductor_mask, dtype=bool)
    links = solution.geometry.links
    flux = solution.link_dielectric_flux()
    a_in = conductor_mask[links.node_a] & ~conductor_mask[links.node_b]
    b_in = conductor_mask[links.node_b] & ~conductor_mask[links.node_a]
    if not np.any(a_in | b_in):
        raise ExtractionError("conductor has no surface links")
    return complex(flux[a_in].sum() - flux[b_in].sum())


def capacitance_column(solution: ACSolution, driven_contact: str,
                       contacts=None) -> dict:
    """One column of the Maxwell capacitance matrix [F].

    Parameters
    ----------
    solution:
        An AC solution where ``driven_contact`` was excited at some
        voltage and every other conductor grounded (0 V).
    driven_contact:
        The excited contact (its voltage normalizes the charges).
    contacts:
        Contact names to report; defaults to all structure contacts.

    Returns
    -------
    dict
        ``contact name -> C`` (complex; the real part is the
        capacitance reported in the paper's Table II).
    """
    structure = solution.structure
    links = solution.geometry.links
    drive = solution.excitations.get(driven_contact)
    if drive is None or drive == 0:
        raise ExtractionError(
            f"driven contact {driven_contact!r} must be excited at a "
            f"nonzero voltage in the solution")
    if contacts is None:
        contacts = sorted(structure.contacts)
    column = {}
    for name in contacts:
        mask = conductor_mask_for_contact(structure, links, name)
        column[name] = conductor_charge(solution, mask) / drive
    return column
