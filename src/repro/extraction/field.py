"""Field sampling: cross-sections of nodal solutions (Fig. 2b)."""

from __future__ import annotations

import numpy as np

from repro.errors import ExtractionError
from repro.solver.ac import ACSolution


def potential_cross_section(solution: ACSolution, axis: int,
                            coordinate: float):
    """Slice the potential on the grid plane nearest ``coordinate``.

    Parameters
    ----------
    solution:
        A solved sample.
    axis:
        Normal axis of the cutting plane (0/1/2).
    coordinate:
        Position along ``axis`` [m]; snapped to the nearest grid plane.

    Returns
    -------
    (u, v, values):
        The two in-plane coordinate arrays and the complex potential
        2-D array — exactly what Fig. 2(b) plots (as a magnitude map).
    """
    if axis not in (0, 1, 2):
        raise ExtractionError(f"axis must be 0, 1 or 2, got {axis}")
    grid = solution.structure.grid
    axes = (grid.xs, grid.ys, grid.zs)
    index = int(np.argmin(np.abs(axes[axis] - coordinate)))
    field = solution.potential_field()
    slicer = [slice(None)] * 3
    slicer[axis] = index
    values = field[tuple(slicer)]
    others = [a for a in range(3) if a != axis]
    return axes[others[0]], axes[others[1]], values
