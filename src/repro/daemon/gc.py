"""LRU garbage collection for the surrogate store.

``repro store gc`` bounds a store that a long-lived daemon would
otherwise grow forever: evict least-recently-used entries (by the
``last_used`` stamps every cache hit refreshes) until the store fits
under ``--max-entries`` / ``--max-bytes`` caps.

Safety contract — the GC must be runnable against a *live* store:

* Eviction order is strictly LRU, and the most-recently-used entry is
  never evicted, whatever the caps say: a GC bounds a working set, it
  does not empty one.
* Immediately before each unlink the entry's sidecar is re-read from
  disk; if its ``last_used`` moved since planning, the entry was hit
  in the meantime and is skipped (in use beats eligible).  An entry
  some process holds the build lock on is skipped the same way.
* Deletion removes the sidecar before the payload
  (:meth:`~repro.serving.store.SurrogateStore.delete`), so a reader
  racing the unlink sees a clean miss — worst case one spurious
  rebuild, never corruption or a torn entry.
* ``--dry-run`` plans and reports without touching a byte.

Size accounting uses payload (``.npz``) bytes — the sidecars are a
rounding error next to the coefficient arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    ServingError,
    StoreCorruptionError,
    StoreSchemaError,
)
from repro.obs.metrics import counter
from repro.serving.store import SurrogateStore
from repro.daemon.singleflight import release_lock, try_build_lock

#: Execution-only observability: entries actually unlinked by GC
#: passes in this process (dry runs never count).
_GC_EVICTIONS = counter(
    "repro_store_gc_evictions_total",
    "Store entries evicted by LRU garbage collection")


@dataclass
class GcPlan:
    """What a GC pass intends to do (before any disk mutation).

    ``evict`` is ordered oldest-first — the order deletions happen.
    ``keep`` is the surviving working set, newest-first.  ``damaged``
    rows are never counted against the caps and never auto-deleted:
    corruption is surfaced, not silently reaped (a damaged entry
    self-heals into a rebuild at its next ``ensure_surrogate``).
    """

    evict: list = field(default_factory=list)
    keep: list = field(default_factory=list)
    damaged: list = field(default_factory=list)

    @property
    def evict_bytes(self) -> int:
        return sum(row["size_bytes"] for row in self.evict)

    @property
    def keep_bytes(self) -> int:
        return sum(row["size_bytes"] for row in self.keep)


def plan_gc(inventory: list, max_entries: int = None,
            max_bytes: int = None) -> GcPlan:
    """Pure planning: which inventory rows must go to satisfy the caps.

    Parameters
    ----------
    inventory : list
        ``SurrogateStore.inventory()`` rows (newest use first —
        that ordering is the LRU ranking).
    max_entries : int, optional
        Keep at most this many entries (must be >= 1: the GC never
        deletes the most-recently-used entry).
    max_bytes : int, optional
        Keep at most this many payload bytes (best effort: the MRU
        entry survives even if it alone exceeds the cap).

    Returns
    -------
    GcPlan
    """
    if max_entries is None and max_bytes is None:
        raise ServingError(
            "gc needs at least one cap (max_entries or max_bytes)")
    if max_entries is not None and max_entries < 1:
        raise ServingError(
            f"max_entries must be >= 1, got {max_entries} "
            f"(a GC bounds the store, it never empties it)")
    if max_bytes is not None and max_bytes < 0:
        raise ServingError(f"max_bytes must be >= 0, got {max_bytes}")
    plan = GcPlan()
    live = []
    for row in inventory:
        (plan.damaged if "damaged" in row else live).append(row)
    total_bytes = sum(row["size_bytes"] for row in live)
    kept = len(live)
    # Walk oldest-first; an entry is evicted while any cap is still
    # violated, except the MRU entry (live[0]), which always stays.
    for row in reversed(live):
        over_entries = (max_entries is not None and kept > max_entries)
        over_bytes = (max_bytes is not None and total_bytes > max_bytes)
        if (over_entries or over_bytes) and row is not live[0]:
            plan.evict.append(row)
            kept -= 1
            total_bytes -= row["size_bytes"]
        else:
            plan.keep.append(row)
    plan.keep.reverse()  # back to newest-first
    return plan


def run_gc(store: SurrogateStore, max_entries: int = None,
           max_bytes: int = None, dry_run: bool = False) -> dict:
    """Plan and (unless ``dry_run``) execute an LRU eviction pass.

    Safe against a live daemon sharing the store: entries hit since
    planning, and entries some process is actively building, are
    skipped (reported under ``skipped_in_use``).

    Returns
    -------
    dict
        JSON-ready report: caps, before/after entry and byte counts,
        evicted keys (oldest first), skipped-in-use keys, damaged
        keys, and the ``dry_run`` flag.
    """
    inventory = store.inventory()
    plan = plan_gc(inventory, max_entries=max_entries,
                   max_bytes=max_bytes)
    evicted, skipped = [], []
    for row in plan.evict:
        key = row["key"]
        if dry_run:
            evicted.append(key)
            continue
        lock_fd = try_build_lock(store.root, key)
        if lock_fd is None:
            skipped.append(key)  # being (re)built right now
            continue
        try:
            try:
                sidecar = store.sidecar(key)
            except (StoreCorruptionError, StoreSchemaError):
                sidecar = None  # damaged since planning; leave it be
            if sidecar is None:
                skipped.append(key)
                continue
            if float(sidecar.get("last_used", 0.0)) \
                    > row["last_used"]:
                skipped.append(key)  # hit since planning: in use
                continue
            store.delete(key)
            evicted.append(key)
            _GC_EVICTIONS.inc()
        finally:
            release_lock(lock_fd)
    kept_rows = len(plan.keep) + len(skipped)
    kept_bytes = plan.keep_bytes + sum(
        row["size_bytes"] for row in plan.evict
        if row["key"] in set(skipped))
    return {
        "store": str(store.root),
        "caps": {"max_entries": max_entries, "max_bytes": max_bytes},
        "dry_run": bool(dry_run),
        "before": {"entries": len(plan.keep) + len(plan.evict),
                   "bytes": plan.keep_bytes + plan.evict_bytes},
        "after": {"entries": (len(plan.keep) + len(plan.evict)
                              if dry_run else kept_rows),
                  "bytes": (plan.keep_bytes + plan.evict_bytes
                            if dry_run else kept_bytes)},
        "evicted": evicted,
        "skipped_in_use": skipped,
        "damaged": [row["key"] for row in plan.damaged],
    }
