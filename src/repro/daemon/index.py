"""Sqlite index over the store's sidecars — fast, never authoritative.

A :class:`~repro.serving.store.SurrogateStore` of a few thousand
entries answers ``store ls`` and ``find_warm_start`` by reading (and
checksum-validating) every JSON sidecar — thousands of file reads per
listing.  :class:`StoreIndex` caches each sidecar's derived metadata
in one sqlite file inside the store directory, so those paths become
a single indexed query plus one directory scan.

The contract that keeps this safe:

* **Disk wins.**  The sidecars remain the single source of truth;
  the index is a cache of them.  Nothing is ever answered from the
  index that the disk would answer differently: :meth:`refresh`
  diffs a directory scan (names, mtimes, sizes — no JSON parsing)
  against the indexed state before every read path, and re-reads
  exactly the sidecars that changed.  ``find_warm_start`` re-reads
  its chosen sidecar from disk before returning it.
* **Self-healing.**  Deleting the index file, corrupting it, or
  editing sidecars behind the daemon's back costs one rebuild scan,
  never a wrong answer: every connection re-creates the schema if
  missing, and a sqlite-level error drops the index file and rebuilds
  it from the sidecars.
* **Crash-safe writes.**  The index is the only module allowed to
  touch sqlite (lint rule RL302) and every connection runs in WAL
  mode with ``synchronous=NORMAL`` — a torn index write is impossible
  by construction, and concurrent readers (a live daemon vs a CLI
  ``store gc``) never block each other.
"""

from __future__ import annotations

import json
import os
import sqlite3
from contextlib import closing
from pathlib import Path

from repro.errors import StoreCorruptionError, StoreSchemaError
from repro.serving.spec import canonical_json
from repro.serving.store import (
    _KEY_HEX,
    SurrogateStore,
    _param_distance,
    adaptive_tol,
    inventory_row,
    warm_reduction_signature,
)

#: Index file name inside the store root.  Starts with a dot and has
#: no ``.json`` suffix, so ``SurrogateStore.keys()`` (globbing
#: ``*.json`` with 64-hex stems) can never mistake it for an entry.
INDEX_DB_NAME = ".index.sqlite"

#: Bumped whenever the schema *or any cached derivation* changes —
#: e.g. when :func:`~repro.serving.store.warm_reduction_signature`
#: relaxes a new field, every cached ``warm_sig`` is silently wrong
#: even though the sidecars (and their mtimes) never moved, so the
#: mtime-diff refresh alone would keep answering from stale rows.  A
#: version mismatch drops the table and rebuilds from the sidecars.
_SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key            TEXT PRIMARY KEY,
    mtime_ns       INTEGER NOT NULL,
    sidecar_bytes  INTEGER NOT NULL,
    payload_bytes  INTEGER NOT NULL,
    last_used      REAL NOT NULL,
    preset         TEXT,
    warm_sig       TEXT,
    adaptive_tol   REAL,
    params_json    TEXT,
    has_refinement INTEGER NOT NULL DEFAULT 0,
    row_json       TEXT NOT NULL,
    damaged        TEXT
);
CREATE INDEX IF NOT EXISTS idx_entries_lru
    ON entries (last_used DESC, key ASC);
CREATE INDEX IF NOT EXISTS idx_entries_warm
    ON entries (preset, has_refinement);
"""


class StoreIndex:
    """The sqlite cache of one store directory's sidecar metadata.

    Parameters
    ----------
    root : str or pathlib.Path
        The store directory; the index lives at
        ``<root>/.index.sqlite``.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.path = self.root / INDEX_DB_NAME
        # Deliberately no eager connect: construction cannot fail, so
        # the owner's first (error-wrapped) operation is what meets a
        # corrupt or uncreatable index file — and recovers from it.

    def _connect(self) -> sqlite3.Connection:
        """A fresh connection with the safety pragmas applied.

        One connection per operation: cheap for an index this size,
        trivially correct across the daemon's request threads, and
        the schema is (re)created on every connect so a deleted index
        file heals on the next touch instead of at the next restart.
        """
        con = sqlite3.connect(self.path, timeout=10.0)
        con.execute("PRAGMA journal_mode=WAL")
        con.execute("PRAGMA synchronous=NORMAL")
        version = con.execute("PRAGMA user_version").fetchone()[0]
        if version != _SCHEMA_VERSION:
            # Stale schema (or a fresh file at version 0): cached
            # derivations like warm_sig may no longer match what the
            # current code would compute, so start over — the next
            # refresh rebuilds every row from the sidecars.
            con.execute("DROP TABLE IF EXISTS entries")
            con.execute(f"PRAGMA user_version = {_SCHEMA_VERSION:d}")
        con.executescript(_SCHEMA)
        return con

    def drop(self) -> None:
        """Delete the index file (recovery path; a refresh rebuilds).

        The WAL and shared-memory sidecar files go with it — sqlite
        recreates all three.
        """
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(f"{self.path}{suffix}")
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------
    def _scan_disk(self, store: SurrogateStore) -> dict:
        """Complete entries on disk: key -> (mtime_ns, sidecar_bytes).

        One directory scan, no JSON parsing — this is the cheap
        "did anything change?" pass that keeps the index honest.
        """
        sidecars = {}
        payloads = set()
        try:
            with os.scandir(self.root) as scan:
                for entry in scan:
                    name = entry.name
                    if name.endswith(".npz") \
                            and len(name) == _KEY_HEX + 4:
                        payloads.add(name[:-4])
                    elif name.endswith(".json") \
                            and len(name) == _KEY_HEX + 5:
                        try:
                            stat = entry.stat()
                        except OSError:
                            continue
                        sidecars[name[:-5]] = (stat.st_mtime_ns,
                                               stat.st_size)
        except FileNotFoundError:
            return {}
        return {key: meta for key, meta in sidecars.items()
                if key in payloads}

    def _index_row(self, store: SurrogateStore, key: str,
                   mtime_ns: int, sidecar_bytes: int) -> tuple:
        """Derive one index row by reading the sidecar from disk."""
        try:
            sidecar = store.sidecar(key)
        except (StoreCorruptionError, StoreSchemaError) as exc:
            row = {"key": key, "damaged": str(exc)}
            return (key, mtime_ns, sidecar_bytes, 0, 0.0, None, None,
                    None, None, 0, canonical_json(row), str(exc))
        if sidecar is None:
            return None
        payload_path = self.root / f"{key}.npz"
        try:
            payload_bytes = payload_path.stat().st_size
        except OSError:
            payload_bytes = 0
        row = inventory_row(key, sidecar, payload_bytes)
        spec = sidecar.get("spec") or {}
        refinement = sidecar.get("refinement")
        has_refinement = int(bool(refinement)
                             and bool(refinement.get("accepted")
                                      or refinement.get("trace")))
        reduction = spec.get("reduction") or {}
        warm_sig = canonical_json(warm_reduction_signature(reduction))
        return (key, mtime_ns, sidecar_bytes, payload_bytes,
                row["last_used"], spec.get("preset"), warm_sig,
                adaptive_tol(reduction),
                canonical_json(spec.get("params") or {}),
                has_refinement, canonical_json(row), None)

    def refresh(self, store: SurrogateStore) -> int:
        """Sync the index with the directory; returns changed rows.

        New and modified sidecars (detected by mtime+size, no content
        reads) are re-read and re-indexed; rows whose files vanished
        are dropped.  An unchanged store costs one directory scan and
        one indexed query — this is what makes calling ``refresh``
        before every indexed read affordable.
        """
        disk = self._scan_disk(store)
        with closing(self._connect()) as con, con:
            indexed = dict(con.execute(
                "SELECT key, mtime_ns || ':' || sidecar_bytes "
                "FROM entries").fetchall())
            stale = [key for key in sorted(disk)
                     if indexed.get(key)
                     != f"{disk[key][0]}:{disk[key][1]}"]
            gone = [key for key in sorted(indexed) if key not in disk]
            for key in gone:
                con.execute("DELETE FROM entries WHERE key = ?",
                            (key,))
            changed = len(gone)
            for key in stale:
                mtime_ns, sidecar_bytes = disk[key]
                row = self._index_row(store, key, mtime_ns,
                                      sidecar_bytes)
                if row is None:
                    continue
                con.execute(
                    "INSERT OR REPLACE INTO entries VALUES "
                    "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)", row)
                changed += 1
        return changed

    # ------------------------------------------------------------------
    def inventory_rows(self) -> list:
        """The cached listing, LRU-newest first (call refresh first)."""
        with closing(self._connect()) as con:
            rows = con.execute(
                "SELECT row_json FROM entries "
                "ORDER BY last_used DESC, key ASC").fetchall()
        return [json.loads(row_json) for (row_json,) in rows]

    def warm_candidates(self, preset: str, warm_sig: str) -> list:
        """Undamaged refinement-bearing siblings:
        (key, params_json, adaptive_tol)."""
        with closing(self._connect()) as con:
            return con.execute(
                "SELECT key, params_json, adaptive_tol FROM entries "
                "WHERE preset = ? AND warm_sig = ? "
                "AND has_refinement = 1 AND damaged IS NULL "
                "ORDER BY key ASC", (preset, warm_sig)).fetchall()

    def count(self) -> int:
        """Number of undamaged indexed entries."""
        with closing(self._connect()) as con:
            return con.execute(
                "SELECT COUNT(*) FROM entries "
                "WHERE damaged IS NULL").fetchone()[0]

    def remove(self, key: str) -> None:
        """Drop one row (after the files are gone from disk)."""
        with closing(self._connect()) as con, con:
            con.execute("DELETE FROM entries WHERE key = ?", (key,))


class IndexedSurrogateStore(SurrogateStore):
    """A :class:`~repro.serving.store.SurrogateStore` with the index.

    Byte-for-byte compatible with the plain store on disk — the index
    file is pure cache, and every mutation (``save`` / ``touch`` /
    ``delete``) updates both.  Read paths that scan sidecars in the
    plain store (``inventory``, ``find_warm_start``) become indexed
    lookups; entry reads (``get``/``load``) are untouched — they were
    already O(1) by cache key.

    Any sqlite-level failure degrades to the plain-store scan for
    that call and schedules a rebuild, so the index can never take
    the store down with it.
    """

    def __init__(self, root):
        super().__init__(root)
        self.index = StoreIndex(self.root)
        try:
            self.index.refresh(self)
        except sqlite3.Error:
            self._recover()

    def _recover(self) -> None:
        """Drop a damaged index file and rebuild it from the sidecars."""
        try:
            self.index.drop()
            self.index.refresh(self)
        except (sqlite3.Error, OSError):
            pass  # stay degraded; reads fall back to the sidecar scan

    def _reindex(self, key: str) -> None:
        """Refresh after a single-entry mutation (save/touch)."""
        try:
            self.index.refresh(self)
        except sqlite3.Error:
            self._recover()

    # -- mutations keep the index current --------------------------------
    def save(self, record) -> str:
        key = super().save(record)
        self._reindex(key)
        return key

    def touch(self, key: str, when: float = None) -> None:
        super().touch(key, when)
        self._reindex(key)

    def delete(self, key: str) -> None:
        super().delete(key)
        try:
            self.index.remove(key)
        except sqlite3.Error:
            self._recover()

    # -- indexed read paths ----------------------------------------------
    def inventory(self) -> list:
        """Indexed listing — identical rows to the sidecar scan.

        Cost: one directory scan (to catch out-of-band changes) plus
        one ordered query, instead of reading and checksum-validating
        every sidecar.  Falls back to the scan if sqlite misbehaves.
        """
        try:
            self.index.refresh(self)
            return self.index.inventory_rows()
        except sqlite3.Error:
            self._recover()
            return super().inventory()

    def find_warm_start(self, spec):
        """Indexed sibling lookup; the winning sidecar is re-read from
        disk (disk wins) so a stale index can cost a retry, never a
        wrong seed."""
        target = spec.canonical()
        if target["reduction"].get("adaptive") is None:
            return None
        try:
            self.index.refresh(self)
            warm_sig = canonical_json(
                warm_reduction_signature(target["reduction"]))
            candidates = self.index.warm_candidates(
                target["preset"], warm_sig)
        except sqlite3.Error:
            self._recover()
            return super().find_warm_start(spec)
        own_key = spec.cache_key()
        target_tol = adaptive_tol(target["reduction"])
        ranked = []
        for key, params_json, stored_tol in candidates:
            if key == own_key:
                continue
            distance = _param_distance(target["params"],
                                       json.loads(params_json))
            if distance is None:
                continue
            # Same rank the plain-store scan uses: nearest first, an
            # exact-tol sibling before a tol-relaxed one, then key.
            tol_relaxed = int(stored_tol != target_tol)
            ranked.append((distance, tol_relaxed, key))
        for rank in sorted(ranked):
            key = rank[-1]
            try:
                sidecar = self.sidecar(key)
            except (StoreCorruptionError, StoreSchemaError):
                continue
            if sidecar is None:
                continue
            refinement = sidecar.get("refinement")
            if not refinement or not (refinement.get("accepted")
                                      or refinement.get("trace")):
                continue
            return key, sidecar
        return None


def open_indexed_store(path=None) -> SurrogateStore:
    """Open the store at ``path`` with its index, degrading gracefully.

    A store directory where the index cannot be created (read-only
    mount, sqlite refusing the filesystem) still opens — as a plain
    scanning store — so tooling never fails just because the cache
    layer cannot exist.
    """
    from repro.serving.service import DEFAULT_STORE_PATH
    root = Path(path or DEFAULT_STORE_PATH).expanduser()
    try:
        return IndexedSurrogateStore(root)
    except (sqlite3.Error, OSError):
        return SurrogateStore(root)
