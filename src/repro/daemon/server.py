"""The always-on surrogate service: JSON over HTTP, stdlib only.

``repro serve`` wraps the batch front-end
(:func:`~repro.serving.service.serve_batch`) in a
:class:`http.server.ThreadingHTTPServer`, so clients stop paying
process startup per query and concurrent misses stop paying duplicate
builds:

* every build-on-miss routes through an in-process
  :class:`~repro.daemon.singleflight.SingleFlight` table (K concurrent
  misses on one spec -> one solve campaign) on top of the
  cross-process advisory lock ``ensure_surrogate`` already takes;
* the store is opened with its sqlite index
  (:mod:`~repro.daemon.index`), so inventory and warm-start lookups
  stay indexed at thousands of entries;
* per-request isolation is inherited from ``serve_batch``: a bad spec
  or a failed solve errors that request, never the batch, and an
  unexpected exception errors that HTTP request, never the server.

Endpoints (all JSON except ``/metrics``):

==============  ==============  ======================================
method          path            answer
==============  ==============  ======================================
GET             /health         liveness: status, uptime, store path,
                                entry count
GET             /stats          request/build/coalesce/hit/error
                                counters plus per-endpoint latency
                                histograms
GET             /store          the store inventory (indexed listing)
GET             /campaign       campaign catalog summaries
                                (:func:`repro.campaign.list_catalogs`)
GET             /campaign/<id>  one full campaign catalog document
GET             /metrics        Prometheus text exposition (counters,
                                gauges and latency histograms from
                                this daemon merged with the
                                process-global ``repro.obs`` registry)
POST            /query          a serve_batch request/batch document
POST            /shutdown       graceful stop (responds, then stops
                                accepting)
==============  ==============  ======================================

Observability: counters live in a per-instance
:class:`~repro.obs.metrics.MetricsRegistry` (so embedded daemons never
share counts), every request is timed into a per-endpoint latency
histogram, and request completions are routed through a structured
JSONL event log (``--access-log``) and the ``repro.daemon`` logger —
never ``BaseHTTPRequestHandler``'s bare stderr writes.  ``--quiet``
silences the per-request logger lines; the event log still records.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.campaign.catalog import list_catalogs, read_catalog
from repro.errors import CampaignError, ReproError, ServingError
from repro.daemon.index import open_indexed_store
from repro.daemon.singleflight import SingleFlight
from repro.obs.export import prometheus_text
from repro.obs.log import EventLog
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.serving.pipeline import BuildReport, ensure_surrogate
from repro.serving.service import serve_batch

logger = logging.getLogger("repro.daemon")

#: Largest accepted request body; a query document is small, and a
#: bound here keeps a misbehaving client from ballooning the process.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Routes the daemon answers; anything else is labelled "other" in the
#: per-endpoint metrics so label cardinality stays bounded no matter
#: what paths clients probe.
KNOWN_ENDPOINTS = ("/campaign", "/health", "/metrics", "/query",
                   "/shutdown", "/stats", "/store")


class ReproDaemon:
    """One serving process: store + index + single-flight + HTTP.

    Parameters
    ----------
    store_path : str or pathlib.Path, optional
        Store directory (default: the CLI's default store).  Opened
        with the sqlite index when the filesystem allows it.
    host, port : str, int
        Bind address.  ``port=0`` picks an ephemeral port (tests);
        the bound address is available as :attr:`address`.
    build_missing : bool, default True
        Build surrogates on cache misses.  ``False`` serves read-only:
        misses become per-request errors and zero solves ever run.
    warm_start : bool, default True
        Allow stored siblings to seed adaptive builds.
    engine_options : dict, optional
        Per-query :class:`~repro.serving.query.QueryEngine` overrides
        (``num_samples``, ``seed``, ``chunk_size``).
    access_log : str or pathlib.Path, optional
        Append one structured JSONL event per completed request here
        (:class:`~repro.obs.log.EventLog`).  ``None`` disables.
    quiet : bool, default False
        Suppress the per-request ``repro.daemon`` logger lines.  The
        access log, when configured, still records every request.
    """

    def __init__(self, store_path=None, host="127.0.0.1", port=0,
                 build_missing=True, warm_start=True,
                 engine_options=None, access_log=None, quiet=False):
        self.store = open_indexed_store(store_path)
        self.build_missing = bool(build_missing)
        self.warm_start = bool(warm_start)
        self.engine_options = engine_options
        self.quiet = bool(quiet)
        self.access_log = (EventLog(access_log)
                           if access_log is not None else None)
        self.flights = SingleFlight()
        # Per-instance registry: embedded daemons (tests run several in
        # one process) must not share counts.  The legacy /stats keys
        # map 1:1 onto these metrics via _count()/stats().
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests accepted, by endpoint")
        self._latency = self.metrics.histogram(
            "repro_http_request_seconds",
            "HTTP request wall time, by endpoint")
        self._daemon_counters = {
            name: self.metrics.counter(f"repro_daemon_{name}_total",
                                       help_text)
            for name, help_text in (
                ("queries", "Query responses produced"),
                ("errors", "Failed requests plus failed per-query "
                           "responses"),
                ("builds", "Surrogate builds led by this daemon"),
                ("build_solves", "Deterministic solves spent in builds "
                                 "led by this daemon"),
                ("coalesced_builds", "Build requests that waited on an "
                                     "in-flight identical build"),
                ("hits", "Ensure requests answered from the store"),
            )
        }
        self._uptime = self.metrics.gauge(
            "repro_daemon_uptime_seconds",
            "Seconds since this daemon started")
        self._in_flight = self.metrics.gauge(
            "repro_daemon_in_flight_builds",
            "Builds currently running or being waited on")
        self._entries = self.metrics.gauge(
            "repro_store_entries", "Entries in the surrogate store")
        self._started = time.monotonic()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self
        self._thread = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        return self._httpd.server_address[:2]

    def start(self) -> None:
        """Serve in a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-daemon",
            daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting, finish in-flight handlers, close the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self.access_log is not None:
            self.access_log.close()

    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self._daemon_counters[name].inc(amount)

    def _observe_request(self, method: str, path: str, status: int,
                         duration_s: float, client: str) -> None:
        """Per-request bookkeeping: metrics, access log, logger line.

        The endpoint label is the route for known paths and "other"
        for everything else, so probing clients cannot inflate label
        cardinality.
        """
        # Catalog routes carry the campaign id in the path; collapse
        # them onto the "/campaign" label so ids never become labels.
        endpoint = ("/campaign" if path.startswith("/campaign/")
                    else path)
        if endpoint not in KNOWN_ENDPOINTS:
            endpoint = "other"
        self._requests.inc(endpoint=endpoint)
        self._latency.observe(duration_s, endpoint=endpoint)
        if self.access_log is not None:
            self.access_log.write(
                "request", method=method, path=path, status=int(status),
                duration_s=duration_s, client=client)
        if not self.quiet:
            logger.info("%s %s %s -> %d in %.1f ms", client, method,
                        path, status, duration_s * 1e3)

    def _latency_stats(self) -> dict:
        """Per-endpoint latency summary for the ``/stats`` document."""
        snap = self._latency.snapshot()
        bounds = [*snap["buckets"], float("inf")]
        latency = {}
        for sample in snap["samples"]:
            latency[sample["labels"].get("endpoint", "other")] = {
                "count": sample["count"],
                "sum_s": sample["sum"],
                "buckets": {
                    ("+Inf" if le == float("inf") else repr(le)): n
                    for le, n in zip(bounds, sample["cumulative"])
                },
            }
        return latency

    def stats(self) -> dict:
        """A JSON-ready counter snapshot (the ``/stats`` document)."""
        counters = {name: int(metric.total())
                    for name, metric in self._daemon_counters.items()}
        return {
            **counters,
            "requests": int(self._requests.total()),
            "latency": self._latency_stats(),
            "uptime_s": time.monotonic() - self._started,
            "in_flight_builds": self.flights.in_flight(),
            "entries": len(self.store.keys()),
            "store": str(self.store.root),
            "build_missing": self.build_missing,
        }

    def metrics_text(self) -> str:
        """The ``/metrics`` document: Prometheus text exposition.

        Merges this daemon's registry (request/latency/legacy
        counters, scrape-time gauges) with the process-global
        ``repro.obs`` registry (store traffic, build volume, solver
        kernel counters).  Metric names never collide: the daemon
        registry owns the ``repro_daemon_*`` / ``repro_http_*`` /
        ``repro_store_entries`` names, the global one the rest.
        """
        self._uptime.set(time.monotonic() - self._started)
        self._in_flight.set(self.flights.in_flight())
        self._entries.set(len(self.store.keys()))
        return prometheus_text(self.metrics.snapshot()
                               + REGISTRY.snapshot())

    # ------------------------------------------------------------------
    def _ensure(self, spec) -> BuildReport:
        """The single-flight ``ensure`` seam handed to ``serve_batch``.

        Concurrent misses on one cache key coalesce: the leader runs
        ``ensure_surrogate`` (which holds the cross-process build
        lock), followers block on the flight and share its report —
        a coalesced response therefore reports the build it waited
        for, including its solve count.
        """
        key = spec.cache_key()
        if not self.build_missing:
            record = self.store.load(key)
            self.store.touch(key)
            self._count("hits")
            return BuildReport(record=record, built=False,
                               num_solves=0, wall_time=0.0)
        report, leader = self.flights.do(
            key,
            lambda: ensure_surrogate(spec, self.store,
                                     warm_start=self.warm_start))
        if not leader:
            self._count("coalesced_builds" if report.built else "hits")
        elif report.built:
            self._count("builds")
            self._count("build_solves", report.num_solves)
        else:
            self._count("hits")
        return report

    def handle_query(self, batch: dict) -> dict:
        """Answer one ``/query`` document (the serve_batch contract)."""
        result = serve_batch(batch, self.store,
                             build_missing=self.build_missing,
                             engine_options=self.engine_options,
                             ensure=self._ensure)
        responses = result["responses"]
        self._count("queries", len(responses))
        failed = sum(1 for r in responses if "error" in r)
        if failed:
            self._count("errors", failed)
        return result


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs to the owning :class:`ReproDaemon`."""

    server_version = "repro-daemon"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ReproDaemon:
        return self.server.app

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        # The stdlib writes per-request lines to stderr; request
        # completions go through app._observe_request (structured
        # event log + logger) instead, so only stdlib-internal
        # messages (errors) land here, and only at debug level.
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str) -> None:
        self._status = int(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._send_bytes(status, body, "application/json")

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServingError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw or b"{}")
        except ValueError as exc:
            raise ServingError(f"request body is not JSON: {exc}") \
                from exc

    # ------------------------------------------------------------------
    def _timed(self, method: str, route) -> None:
        """Run one verb handler, then record metrics + access log."""
        self._status = 0
        start = time.perf_counter()
        try:
            route()
        finally:
            self.app._observe_request(
                method, self.path, self._status,
                time.perf_counter() - start, self.address_string())

    def do_GET(self) -> None:
        self._timed("GET", self._route_get)

    def do_POST(self) -> None:
        self._timed("POST", self._route_post)

    def _route_get(self) -> None:
        try:
            if self.path == "/health":
                app = self.app
                self._send(200, {
                    "status": "ok",
                    "uptime_s": time.monotonic() - app._started,
                    "store": str(app.store.root),
                    "entries": len(app.store.keys()),
                })
            elif self.path == "/stats":
                self._send(200, self.app.stats())
            elif self.path == "/store":
                self._send(200, {
                    "store": str(self.app.store.root),
                    "entries": self.app.store.inventory(),
                })
            elif self.path == "/campaign":
                self._send(200, {
                    "store": str(self.app.store.root),
                    "campaigns": list_catalogs(self.app.store),
                })
            elif self.path.startswith("/campaign/"):
                campaign_id = self.path[len("/campaign/"):]
                try:
                    catalog = read_catalog(self.app.store,
                                           campaign_id)
                except CampaignError as exc:
                    # Unknown or malformed id: the resource does not
                    # exist, which is a 404, not a server fault.
                    self._send(404, {"error": str(exc)})
                else:
                    self._send(200, catalog)
            elif self.path == "/metrics":
                self._send_bytes(
                    200, self.app.metrics_text().encode(),
                    "text/plain; version=0.0.4; charset=utf-8")
            else:
                self._send(404, {"error": f"no route {self.path!r}"})
        except Exception as exc:  # per-request isolation
            logger.exception("GET %s failed", self.path)
            self.app._count("errors")
            self._send(500, {"error": str(exc)})

    def _route_post(self) -> None:
        try:
            if self.path == "/query":
                batch = self._read_body()
                self._send(200, self.app.handle_query(batch))
            elif self.path == "/shutdown":
                self._send(200, {"status": "shutting down"})
                threading.Thread(target=self.server.shutdown,
                                 daemon=True).start()
            else:
                self._send(404, {"error": f"no route {self.path!r}"})
        except ReproError as exc:
            # Malformed document / read-only miss at the top level:
            # the client's fault, say so with a 400.
            self.app._count("errors")
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # per-request isolation
            logger.exception("POST %s failed", self.path)
            self.app._count("errors")
            self._send(500, {"error": str(exc)})
