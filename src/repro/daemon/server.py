"""The always-on surrogate service: JSON over HTTP, stdlib only.

``repro serve`` wraps the batch front-end
(:func:`~repro.serving.service.serve_batch`) in a
:class:`http.server.ThreadingHTTPServer`, so clients stop paying
process startup per query and concurrent misses stop paying duplicate
builds:

* every build-on-miss routes through an in-process
  :class:`~repro.daemon.singleflight.SingleFlight` table (K concurrent
  misses on one spec -> one solve campaign) on top of the
  cross-process advisory lock ``ensure_surrogate`` already takes;
* the store is opened with its sqlite index
  (:mod:`~repro.daemon.index`), so inventory and warm-start lookups
  stay indexed at thousands of entries;
* per-request isolation is inherited from ``serve_batch``: a bad spec
  or a failed solve errors that request, never the batch, and an
  unexpected exception errors that HTTP request, never the server.

Endpoints (all JSON):

=======  ==========  ==================================================
method   path        answer
=======  ==========  ==================================================
GET      /health     liveness: status, uptime, store path, entry count
GET      /stats      request/build/coalesce/hit/error counters
GET      /store      the store inventory (indexed listing)
POST     /query      a serve_batch request/batch document
POST     /shutdown   graceful stop (responds, then stops accepting)
=======  ==========  ==================================================
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ReproError, ServingError
from repro.daemon.index import open_indexed_store
from repro.daemon.singleflight import SingleFlight
from repro.serving.pipeline import BuildReport, ensure_surrogate
from repro.serving.service import serve_batch

logger = logging.getLogger("repro.daemon")

#: Largest accepted request body; a query document is small, and a
#: bound here keeps a misbehaving client from ballooning the process.
MAX_BODY_BYTES = 16 * 1024 * 1024


class ReproDaemon:
    """One serving process: store + index + single-flight + HTTP.

    Parameters
    ----------
    store_path : str or pathlib.Path, optional
        Store directory (default: the CLI's default store).  Opened
        with the sqlite index when the filesystem allows it.
    host, port : str, int
        Bind address.  ``port=0`` picks an ephemeral port (tests);
        the bound address is available as :attr:`address`.
    build_missing : bool, default True
        Build surrogates on cache misses.  ``False`` serves read-only:
        misses become per-request errors and zero solves ever run.
    warm_start : bool, default True
        Allow stored siblings to seed adaptive builds.
    engine_options : dict, optional
        Per-query :class:`~repro.serving.query.QueryEngine` overrides
        (``num_samples``, ``seed``, ``chunk_size``).
    """

    def __init__(self, store_path=None, host="127.0.0.1", port=0,
                 build_missing=True, warm_start=True,
                 engine_options=None):
        self.store = open_indexed_store(store_path)
        self.build_missing = bool(build_missing)
        self.warm_start = bool(warm_start)
        self.engine_options = engine_options
        self.flights = SingleFlight()
        self._counter_lock = threading.Lock()
        self._counters = {
            "requests": 0, "queries": 0, "errors": 0,
            "builds": 0, "build_solves": 0,
            "coalesced_builds": 0, "hits": 0,
        }
        self._started = time.monotonic()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self
        self._thread = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        return self._httpd.server_address[:2]

    def start(self) -> None:
        """Serve in a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-daemon",
            daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting, finish in-flight handlers, close the socket."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += amount

    def stats(self) -> dict:
        """A JSON-ready counter snapshot (the ``/stats`` document)."""
        with self._counter_lock:
            counters = dict(self._counters)
        return {
            **counters,
            "uptime_s": time.monotonic() - self._started,
            "in_flight_builds": self.flights.in_flight(),
            "entries": len(self.store.keys()),
            "store": str(self.store.root),
            "build_missing": self.build_missing,
        }

    # ------------------------------------------------------------------
    def _ensure(self, spec) -> BuildReport:
        """The single-flight ``ensure`` seam handed to ``serve_batch``.

        Concurrent misses on one cache key coalesce: the leader runs
        ``ensure_surrogate`` (which holds the cross-process build
        lock), followers block on the flight and share its report —
        a coalesced response therefore reports the build it waited
        for, including its solve count.
        """
        key = spec.cache_key()
        if not self.build_missing:
            record = self.store.load(key)
            self.store.touch(key)
            self._count("hits")
            return BuildReport(record=record, built=False,
                               num_solves=0, wall_time=0.0)
        report, leader = self.flights.do(
            key,
            lambda: ensure_surrogate(spec, self.store,
                                     warm_start=self.warm_start))
        if not leader:
            self._count("coalesced_builds" if report.built else "hits")
        elif report.built:
            self._count("builds")
            self._count("build_solves", report.num_solves)
        else:
            self._count("hits")
        return report

    def handle_query(self, batch: dict) -> dict:
        """Answer one ``/query`` document (the serve_batch contract)."""
        result = serve_batch(batch, self.store,
                             build_missing=self.build_missing,
                             engine_options=self.engine_options,
                             ensure=self._ensure)
        responses = result["responses"]
        self._count("queries", len(responses))
        failed = sum(1 for r in responses if "error" in r)
        if failed:
            self._count("errors", failed)
        return result


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs to the owning :class:`ReproDaemon`."""

    server_version = "repro-daemon"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ReproDaemon:
        return self.server.app

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        logger.info("%s %s", self.address_string(), format % args)

    def _send(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServingError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw or b"{}")
        except ValueError as exc:
            raise ServingError(f"request body is not JSON: {exc}") \
                from exc

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        self.app._count("requests")
        try:
            if self.path == "/health":
                app = self.app
                self._send(200, {
                    "status": "ok",
                    "uptime_s": time.monotonic() - app._started,
                    "store": str(app.store.root),
                    "entries": len(app.store.keys()),
                })
            elif self.path == "/stats":
                self._send(200, self.app.stats())
            elif self.path == "/store":
                self._send(200, {
                    "store": str(self.app.store.root),
                    "entries": self.app.store.inventory(),
                })
            else:
                self._send(404, {"error": f"no route {self.path!r}"})
        except Exception as exc:  # per-request isolation
            logger.exception("GET %s failed", self.path)
            self.app._count("errors")
            self._send(500, {"error": str(exc)})

    def do_POST(self) -> None:
        self.app._count("requests")
        try:
            if self.path == "/query":
                batch = self._read_body()
                self._send(200, self.app.handle_query(batch))
            elif self.path == "/shutdown":
                self._send(200, {"status": "shutting down"})
                threading.Thread(target=self.server.shutdown,
                                 daemon=True).start()
            else:
                self._send(404, {"error": f"no route {self.path!r}"})
        except ReproError as exc:
            # Malformed document / read-only miss at the top level:
            # the client's fault, say so with a 400.
            self.app._count("errors")
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # per-request isolation
            logger.exception("POST %s failed", self.path)
            self.app._count("errors")
            self._send(500, {"error": str(exc)})
