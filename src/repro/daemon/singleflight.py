"""Single-flight build coalescing — one solve campaign per miss.

Two layers, matching the two ways a thundering herd reaches the
store:

* :class:`SingleFlight` — an in-process keyed-future table.  The
  daemon routes every build-on-miss through it, so K concurrent HTTP
  requests for the same missing :class:`~repro.serving.spec.ProblemSpec`
  cost exactly one build; the other K-1 threads block on the leader's
  flight and share its result (or its exception).
* :func:`build_lock` — a cross-process advisory file lock keyed by
  cache key.  ``ensure_surrogate`` takes it around the miss path, so
  two *processes* racing the same miss serialize: the loser re-checks
  the store after acquiring and finds the winner's entry (a hit, zero
  solves) instead of repeating the campaign.

Stdlib-only and free of any ``repro`` import so the serving layer can
use the lock without a circular dependency.  Locks are advisory:
readers never take them, and a crashed holder's lock dies with its
file descriptor (``flock``), so no stale-lock cleanup is ever needed.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from pathlib import Path

try:  # Linux/macOS; the Windows fallback below degrades to O_EXCL.
    import fcntl
except ImportError:  # pragma: no cover - not reachable on POSIX CI
    fcntl = None

#: Subdirectory of a store root holding the per-key build locks.
#: Lives apart from the entries, so ``SurrogateStore.keys()`` (which
#: globs ``<root>/*.json``) never sees a lock file.
LOCK_DIR_NAME = ".locks"


class _Flight:
    """One in-progress call: a latch plus its outcome."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result = None
        self.error = None


class SingleFlight:
    """Keyed duplicate-call suppression for concurrent threads.

    ``do(key, fn)`` runs ``fn`` if no flight for ``key`` is in
    progress (the caller becomes the *leader*), otherwise blocks until
    the leader finishes and returns its outcome.  The flight table
    entry is removed before waiters are released, so a call arriving
    *after* completion starts a fresh flight — coalescing applies to
    concurrent callers only, which is exactly the cache-stampede
    shape: later callers hit the store instead.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict = {}

    def do(self, key: str, fn) -> tuple:
        """Run ``fn()`` once per concurrent batch of callers of ``key``.

        Parameters
        ----------
        key : str
            Coalescing key (the spec cache key, for builds).
        fn : callable
            Zero-argument callable; executed by the leader only.

        Returns
        -------
        tuple
            ``(result, leader)`` — ``fn``'s return value and whether
            this caller executed it.  If the leader raised, every
            caller of the flight re-raises the same exception.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.result, False
        try:
            flight.result = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            flight.done.set()
        return flight.result, True

    def in_flight(self) -> int:
        """Number of builds currently executing (stats endpoint)."""
        with self._lock:
            return len(self._flights)


def _lock_path(store_root, key: str) -> Path:
    lock_dir = Path(store_root) / LOCK_DIR_NAME
    lock_dir.mkdir(parents=True, exist_ok=True)
    return lock_dir / f"{key}.lock"


@contextmanager
def build_lock(store_root, key: str):
    """Advisory cross-process lock for building ``key``.

    Blocks until the lock is held.  The lock file is left in place
    after release (unlinking it would race a third process that
    already opened the same path), and a holder that crashes releases
    the lock with its file descriptor — ``flock`` locks cannot go
    stale.  Readers never take this lock: it serializes *builds*
    only, so hits stay lock-free.

    Parameters
    ----------
    store_root : str or pathlib.Path
        The store directory; locks live in its ``.locks`` subdir.
    key : str
        The cache key being built.
    """
    path = _lock_path(store_root, key)
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)  # repro-lint: disable=RL301 -- lock files are zero-byte flock anchors, never written; a torn write is impossible
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


def try_build_lock(store_root, key: str):
    """Non-blocking probe: the lock's fd if acquired, else ``None``.

    The GC uses this to skip entries some process is actively
    (re)building — never evict what is being written.  Release with
    :func:`release_lock`.
    """
    path = _lock_path(store_root, key)
    fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)  # repro-lint: disable=RL301 -- lock files are zero-byte flock anchors, never written; a torn write is impossible
    if fcntl is None:  # pragma: no cover - POSIX CI always has fcntl
        return fd
    try:
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        os.close(fd)
        return None
    return fd


def release_lock(fd: int) -> None:
    """Release a lock handed out by :func:`try_build_lock`."""
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)
