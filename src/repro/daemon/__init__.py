"""repro.daemon — the always-on surrogate service.

Promotes the batch CLI (`repro build|query`) into a long-running
system: a JSON-over-HTTP daemon (:mod:`~repro.daemon.server`) wrapping
``serve_batch`` with per-request isolation, a single-flight build
queue so a thundering herd of identical misses costs one solve
campaign (:mod:`~repro.daemon.singleflight`), a sqlite index over the
store's sidecars so listings and warm-start lookups stay indexed at
thousands of entries (:mod:`~repro.daemon.index`), and LRU garbage
collection so the store is safe to leave running forever
(:mod:`~repro.daemon.gc`).  See ``docs/DAEMON.md``.

Exports resolve lazily (PEP 562), mirroring the top-level package:
importing :mod:`repro.daemon` costs nothing, and the serving layer
can import the stdlib-only lock module without a circular import.
"""

from __future__ import annotations

import importlib

#: Lazy export table: public name -> defining module.  ``__all__`` is
#: derived from it and RL5xx checks every entry resolves.
_EXPORTS = {
    "SingleFlight": "repro.daemon.singleflight",
    "build_lock": "repro.daemon.singleflight",
    "try_build_lock": "repro.daemon.singleflight",
    "release_lock": "repro.daemon.singleflight",
    "StoreIndex": "repro.daemon.index",
    "IndexedSurrogateStore": "repro.daemon.index",
    "open_indexed_store": "repro.daemon.index",
    "INDEX_DB_NAME": "repro.daemon.index",
    "ReproDaemon": "repro.daemon.server",
    "GcPlan": "repro.daemon.gc",
    "plan_gc": "repro.daemon.gc",
    "run_gc": "repro.daemon.gc",
}

__all__ = [*_EXPORTS]


def __getattr__(name: str):
    """Resolve a public name through the lazy export table (PEP 562)."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    """Advertise lazy exports alongside whatever already resolved."""
    return sorted(set(globals()) | set(_EXPORTS))
