"""Discrete electromagnetic operators on the Cartesian FVM grid.

Incidence matrices (gradient over links, curl over faces) and the
material-weighted coefficient averaging that turns per-cell properties
into per-link conductances — the discrete backbone of the paper's
equations (1) and (3).
"""

from repro.em.topology import FaceSet, gradient_matrix, curl_matrix
from repro.em.operators import (
    link_weighted_coefficients,
    link_material_areas,
    cell_property_array,
    scalar_laplacian,
)

__all__ = [
    "FaceSet",
    "gradient_matrix",
    "curl_matrix",
    "link_weighted_coefficients",
    "link_material_areas",
    "cell_property_array",
    "scalar_laplacian",
]
