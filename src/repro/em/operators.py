"""Material-weighted FVM operators.

The dual face pierced by a link is shared by up to four cells of
possibly different materials (metal / insulator / semiconductor).  The
flux through the face is assembled per quadrant: each adjacent cell
contributes its own coefficient times its quarter of the dual area.
This is how the hybrid-material coupling of the paper's eq. (1) is
realized on the Cartesian mesh.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import MaterialError
from repro.geometry.structure import Structure
from repro.mesh.dual import GridGeometry


def cell_property_array(structure: Structure, getter) -> np.ndarray:
    """Evaluate ``getter(material)`` for every cell.

    ``getter`` maps a :class:`~repro.materials.material.Material` to a
    scalar (possibly complex); the result is a per-cell array.
    """
    values = [getter(m) for m in structure.materials.materials]
    table = np.asarray(values)
    if table.ndim != 1:
        raise MaterialError("getter must return a scalar per material")
    return table[structure.cell_materials]


def link_weighted_coefficients(geometry: GridGeometry,
                               cell_values: np.ndarray) -> np.ndarray:
    """Quadrant-averaged coefficient times dual area, per link.

    Returns ``sum_q c_cell(q) * quad_area_q`` with units
    ``[c] * m^2``; dividing by the link length gives the link
    conductance-like coefficient ``c_l A_l / L_l`` used in the nodal
    balance equations.  Missing quadrants (domain boundary) contribute
    nothing, which *is* the natural (zero-flux) boundary condition.
    """
    cell_values = np.asarray(cell_values)
    cells = geometry.links.cells
    safe = np.clip(cells, 0, None)
    vals = cell_values[safe]
    vals = np.where(cells >= 0, vals, 0.0)
    return (vals * geometry.link_quadrant_areas).sum(axis=1)


def link_material_areas(geometry: GridGeometry,
                        cell_mask: np.ndarray) -> np.ndarray:
    """Dual-face area restricted to cells where ``cell_mask`` holds.

    Used for carrier fluxes, which only flow through the semiconductor
    part of a dual face.
    """
    cell_mask = np.asarray(cell_mask, dtype=bool)
    cells = geometry.links.cells
    safe = np.clip(cells, 0, None)
    inside = cell_mask[safe] & (cells >= 0)
    return np.where(inside, geometry.link_quadrant_areas, 0.0).sum(axis=1)


def scalar_laplacian(geometry: GridGeometry,
                     link_conductance: np.ndarray) -> sp.csr_matrix:
    """Assemble ``(N, N)`` nodal balance matrix from link conductances.

    Row ``i``: ``sum_l g_l (V_j - V_i)`` — the discrete
    ``div(c grad V)`` integrated over the dual cell of node ``i``.
    ``link_conductance`` is ``c_l A_l / L_l`` per link (real or
    complex).
    """
    link_conductance = np.asarray(link_conductance)
    links = geometry.links
    n = geometry.num_nodes
    a = links.node_a
    b = links.node_b
    rows = np.concatenate([a, a, b, b])
    cols = np.concatenate([b, a, a, b])
    data = np.concatenate([link_conductance, -link_conductance,
                           link_conductance, -link_conductance])
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))
