"""Grid topology: gradient and curl incidence matrices.

These are the metric-free building blocks of the discretization: the
gradient matrix maps nodal potentials to link voltages, and the curl
matrix maps link circulations to face fluxes.  The exactness identity
``C @ G = 0`` (curl of a gradient vanishes) holds by construction and is
asserted by the tests — it is what makes the A-V formulation consistent.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import MeshError
from repro.mesh.entities import LinkSet
from repro.mesh.grid import CartesianGrid


def gradient_matrix(links: LinkSet) -> sp.csr_matrix:
    """Sparse ``(L, N)`` matrix with ``(G V)_l = V_b - V_a``."""
    num_links = links.num_links
    rows = np.repeat(np.arange(num_links), 2)
    cols = np.empty(2 * num_links, dtype=int)
    cols[0::2] = links.node_a
    cols[1::2] = links.node_b
    data = np.empty(2 * num_links, dtype=float)
    data[0::2] = -1.0
    data[1::2] = 1.0
    return sp.csr_matrix((data, (rows, cols)),
                         shape=(num_links, links.grid.num_nodes))


def _flat(field_3d: np.ndarray) -> np.ndarray:
    return np.transpose(field_3d, (2, 1, 0)).ravel()


class FaceSet:
    """All primal faces of the grid, grouped by normal axis.

    Face ordering mirrors the link ordering: x-normal faces first, then
    y, then z, each block flattened with the x index fastest.  A face
    with normal ``a`` at lattice ``(i, j, k)`` spans the cell cross
    section in the two transverse axes ``t1 < t2``: it covers nodes
    ``(i, j..j+1, k..k+1)`` for ``a = 0`` and so on.
    """

    def __init__(self, grid: CartesianGrid):
        self.grid = grid
        nx, ny, nz = grid.shape
        self.counts = [nx * (ny - 1) * (nz - 1),
                       (nx - 1) * ny * (nz - 1),
                       (nx - 1) * (ny - 1) * nz]
        self.axis_offsets = np.array(
            [0, self.counts[0], self.counts[0] + self.counts[1]], dtype=int)
        self.num_faces = int(sum(self.counts))

    def face_lattice_shape(self, axis: int) -> tuple:
        if axis not in (0, 1, 2):
            raise MeshError(f"axis must be 0, 1 or 2, got {axis}")
        shape = list(self.grid.shape)
        for other in range(3):
            if other != axis:
                shape[other] -= 1
        return tuple(shape)

    def face_loop_links(self, links: LinkSet, axis: int):
        """The four boundary links of every ``axis``-normal face.

        Returns ``(link_ids, signs)`` of shape ``(F_axis, 4)`` tracing
        the closed loop: +t1 edge at t2-low, +t2 edge at t1-high,
        -t1 edge at t2-high, -t2 edge at t1-low.  Any closed loop makes
        ``C @ G = 0`` hold exactly.
        """
        t1, t2 = [a for a in range(3) if a != axis]
        shape = self.face_lattice_shape(axis)
        ranges = [np.arange(n) for n in shape]
        I, J, K = np.meshgrid(*ranges, indexing="ij")
        lattice = [I, J, K]

        def link_ids_for(edge_axis, shift_axis, shift):
            idx = [lattice[0], lattice[1], lattice[2]]
            if shift:
                idx = [c.copy() for c in idx]
                idx[shift_axis] = idx[shift_axis] + 1
            return _flat(links.link_id(edge_axis, idx[0], idx[1], idx[2]))

        loop = np.stack([
            link_ids_for(t1, t2, 0),   # +t1 at t2-low
            link_ids_for(t2, t1, 1),   # +t2 at t1-high
            link_ids_for(t1, t2, 1),   # -t1 at t2-high
            link_ids_for(t2, t1, 0),   # -t2 at t1-low
        ], axis=1)
        signs = np.tile(np.array([1.0, 1.0, -1.0, -1.0]), (loop.shape[0], 1))
        return loop, signs

    def face_adjacent_cells(self, axis: int):
        """Cells on the two sides of every ``axis``-normal face.

        Returns ``(F_axis, 2)`` flat cell ids, ``-1`` on domain
        boundaries; used to average the reluctivity onto faces.
        """
        shape = self.face_lattice_shape(axis)
        cell_shape = self.grid.cell_shape
        ranges = [np.arange(n) for n in shape]
        I, J, K = np.meshgrid(*ranges, indexing="ij")
        lattice = [I, J, K]
        out = np.full((lattice[0].size, 2), -1, dtype=int)
        for side, delta in enumerate((-1, 0)):
            idx = [c.copy() for c in lattice]
            idx[axis] = idx[axis] + delta
            valid = (idx[axis] >= 0) & (idx[axis] < cell_shape[axis])
            safe = [np.clip(c, 0, cell_shape[n] - 1)
                    for n, c in enumerate(idx)]
            ids = _flat(self.grid.cell_id(*safe))
            out[_flat(valid), side] = ids[_flat(valid)]
        return out


def curl_matrix(grid: CartesianGrid, links: LinkSet,
                faces: FaceSet = None) -> sp.csr_matrix:
    """Sparse ``(F, L)`` circulation matrix: ``(C A)_f = sum +- A_l``.

    Together with :func:`gradient_matrix` it satisfies ``C @ G = 0``.
    Metric factors (edge lengths, face areas) are applied separately by
    the Ampere assembler so the same topology serves perturbed grids.
    """
    if faces is None:
        faces = FaceSet(grid)
    rows_all = []
    cols_all = []
    data_all = []
    offset = 0
    for axis in range(3):
        loop, signs = faces.face_loop_links(links, axis)
        count = loop.shape[0]
        rows = np.repeat(np.arange(offset, offset + count), 4)
        rows_all.append(rows)
        cols_all.append(loop.ravel())
        data_all.append(signs.ravel())
        offset += count
    return sp.csr_matrix(
        (np.concatenate(data_all),
         (np.concatenate(rows_all), np.concatenate(cols_all))),
        shape=(faces.num_faces, links.num_links))
