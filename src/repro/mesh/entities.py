"""Link (edge) enumeration and link-cell adjacency.

The FVM assigns the vector potential A to link centres and integrates
fluxes across the dual surfaces pierced by the links (Section II.A of the
paper).  A :class:`LinkSet` enumerates all links of a grid in a canonical
order and records, for each link, the up-to-four cells that share it —
needed to average material coefficients onto links.

Canonical link ordering: all x-directed links first, then y, then z; each
axis block is flattened with the x index fastest, matching the node-id
convention of :class:`repro.mesh.grid.CartesianGrid`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError
from repro.mesh.grid import CartesianGrid


def _flat(field_3d: np.ndarray) -> np.ndarray:
    """Flatten an (na, nb, nc) lattice field with the first index fastest."""
    return np.transpose(field_3d, (2, 1, 0)).ravel()


class LinkSet:
    """All links of a Cartesian grid with their adjacency data.

    Attributes
    ----------
    axis:
        ``(L,)`` int array, 0/1/2: the direction of each link.
    node_a, node_b:
        ``(L,)`` flat node ids of the link endpoints (``a`` has the lower
        lattice index along ``axis``).
    cells:
        ``(L, 4)`` flat cell ids of the cells sharing each link, ``-1``
        where the link lies on the domain boundary and a quadrant is
        missing.  Quadrant order: ``(t1-, t2-), (t1+, t2-), (t1-, t2+),
        (t1+, t2+)`` where ``t1 < t2`` are the two transverse axes.
    axis_offsets:
        Start offset of each axis block in the canonical ordering.
    """

    def __init__(self, grid: CartesianGrid):
        self.grid = grid
        nx, ny, nz = grid.shape
        counts = [(nx - 1) * ny * nz, nx * (ny - 1) * nz, nx * ny * (nz - 1)]
        self.axis_offsets = np.array(
            [0, counts[0], counts[0] + counts[1]], dtype=int)
        self.num_links = int(sum(counts))

        axis_list = []
        node_a_list = []
        node_b_list = []
        cells_list = []
        for axis in range(3):
            a, b, cells = self._build_axis(axis)
            axis_list.append(np.full(a.size, axis, dtype=np.int8))
            node_a_list.append(a)
            node_b_list.append(b)
            cells_list.append(cells)
        self.axis = np.concatenate(axis_list)
        self.node_a = np.concatenate(node_a_list)
        self.node_b = np.concatenate(node_b_list)
        self.cells = np.vstack(cells_list)

    # ------------------------------------------------------------------
    def _build_axis(self, axis: int):
        grid = self.grid
        sizes = list(grid.shape)
        link_sizes = sizes.copy()
        link_sizes[axis] -= 1
        ranges = [np.arange(n) for n in link_sizes]
        I, J, K = np.meshgrid(*ranges, indexing="ij")

        idx_a = [I, J, K]
        idx_b = [I.copy(), J.copy(), K.copy()]
        idx_b[axis] = idx_b[axis] + 1
        node_a = _flat(grid.node_id(*idx_a))
        node_b = _flat(grid.node_id(*idx_b))

        # The four cells around the link: along `axis` the cell index
        # equals the link index; along each transverse axis it is the node
        # index or node index - 1.
        t1, t2 = [a for a in range(3) if a != axis]
        cell_shape = grid.cell_shape
        cells = np.full((node_a.size, 4), -1, dtype=int)
        lattice = [I, J, K]
        quadrants = [(-1, -1), (0, -1), (-1, 0), (0, 0)]
        for qpos, (d1, d2) in enumerate(quadrants):
            ci = [lattice[0].copy(), lattice[1].copy(), lattice[2].copy()]
            ci[t1] = ci[t1] + d1
            ci[t2] = ci[t2] + d2
            valid = ((ci[0] >= 0) & (ci[0] < cell_shape[0])
                     & (ci[1] >= 0) & (ci[1] < cell_shape[1])
                     & (ci[2] >= 0) & (ci[2] < cell_shape[2]))
            flat_valid = _flat(valid)
            safe = [np.clip(c, 0, cell_shape[n] - 1)
                    for n, c in enumerate(ci)]
            flat_ids = _flat(grid.cell_id(*safe))
            cells[flat_valid, qpos] = flat_ids[flat_valid]
        return node_a, node_b, cells

    # ------------------------------------------------------------------
    def axis_slice(self, axis: int) -> slice:
        """Slice of the canonical ordering covering one axis block."""
        if axis not in (0, 1, 2):
            raise MeshError(f"axis must be 0, 1 or 2, got {axis}")
        start = int(self.axis_offsets[axis])
        if axis == 2:
            stop = self.num_links
        else:
            stop = int(self.axis_offsets[axis + 1])
        return slice(start, stop)

    def link_id(self, axis: int, i, j, k):
        """Canonical link id from lattice indices; accepts arrays."""
        grid = self.grid
        sizes = list(grid.shape)
        sizes[axis] -= 1
        i = np.asarray(i)
        j = np.asarray(j)
        k = np.asarray(k)
        if (np.any(i < 0) or np.any(i >= sizes[0])
                or np.any(j < 0) or np.any(j >= sizes[1])
                or np.any(k < 0) or np.any(k >= sizes[2])):
            raise MeshError("link index out of range")
        local = i + sizes[0] * (j + sizes[1] * k)
        return int(self.axis_offsets[axis]) + local

    def links_touching_nodes(self, node_ids) -> np.ndarray:
        """Canonical ids of every link with at least one endpoint in
        ``node_ids``."""
        node_set = np.zeros(self.grid.num_nodes, dtype=bool)
        node_set[np.asarray(node_ids, dtype=int)] = True
        mask = node_set[self.node_a] | node_set[self.node_b]
        return np.nonzero(mask)[0]

    def __len__(self) -> int:
        return self.num_links
