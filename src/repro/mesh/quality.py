"""Mesh-validity diagnostics.

Fig. 1(a) of the paper shows the failure mode of the traditional
perturbation model: a displaced node crosses its neighbour, which "will
lead to the destruction of mesh and the error of calculation".  These
checks quantify that: along every grid line the perturbed coordinate must
stay strictly increasing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeshDestroyedError, MeshError
from repro.mesh.grid import CartesianGrid


@dataclass(frozen=True)
class MeshValidityReport:
    """Result of :func:`check_mesh_validity`.

    Attributes
    ----------
    valid:
        True when no node crossed a neighbour along any axis.
    num_violations:
        Number of adjacent node pairs with non-positive spacing.
    num_pairs:
        Total number of adjacent node pairs checked.
    min_spacing:
        Smallest directed spacing found [m]; negative when the mesh is
        destroyed.
    violations_per_axis:
        Tuple of violation counts along (x, y, z).
    """

    valid: bool
    num_violations: int
    num_pairs: int
    min_spacing: float
    violations_per_axis: tuple

    @property
    def violation_fraction(self) -> float:
        """Fraction of adjacent pairs that are inverted."""
        if self.num_pairs == 0:
            return 0.0
        return self.num_violations / self.num_pairs

    def require_valid(self) -> None:
        """Raise :class:`MeshDestroyedError` when the mesh is invalid."""
        if not self.valid:
            raise MeshDestroyedError(
                f"perturbation destroyed the mesh: {self.num_violations} "
                f"of {self.num_pairs} node pairs inverted "
                f"(min spacing {self.min_spacing:.3e} m)")


def check_mesh_validity(grid: CartesianGrid,
                        coords: np.ndarray) -> MeshValidityReport:
    """Check that perturbed coordinates keep every grid line monotone.

    Parameters
    ----------
    grid:
        The logical grid.
    coords:
        ``(N, 3)`` perturbed node coordinates.
    """
    coords = np.asarray(coords, dtype=float)
    if coords.shape != (grid.num_nodes, 3):
        raise MeshError(
            f"coords must have shape ({grid.num_nodes}, 3), "
            f"got {coords.shape}")
    fields = grid.flat_to_fields(coords)
    num_violations = 0
    num_pairs = 0
    min_spacing = np.inf
    per_axis = []
    for axis in range(3):
        spacing = np.diff(fields[axis], axis=axis)
        axis_violations = int(np.count_nonzero(spacing <= 0.0))
        per_axis.append(axis_violations)
        num_violations += axis_violations
        num_pairs += spacing.size
        if spacing.size:
            min_spacing = min(min_spacing, float(spacing.min()))
    if not np.isfinite(min_spacing):
        min_spacing = 0.0
    return MeshValidityReport(
        valid=num_violations == 0,
        num_violations=num_violations,
        num_pairs=num_pairs,
        min_spacing=min_spacing,
        violations_per_axis=tuple(per_axis),
    )
