"""Dual-mesh geometry on (possibly perturbed) node coordinates.

When the continuous-surface-variation model displaces nodes, "the original
standard cubes become irregular and the geometrical parameters (e.g. link
length, surface area, dual surface and dual volume) change
correspondingly" (paper, Section III.B).  This module recomputes those
parameters from the displaced node coordinate fields:

* **node volume** — the dual cell around each node, the product of the
  three half-spacings measured along the grid lines through the node;
* **link length** — Euclidean distance between the (displaced) endpoints;
* **link dual area** — the dual face pierced by the link, the product of
  the two transverse half-spacings averaged over the endpoints;
* **link quadrant areas** — the four quarters of the dual face, one per
  adjacent cell, used to average material coefficients onto links.

For an unperturbed tensor grid these formulas are exact (node volumes sum
to the domain volume, quadrant areas sum to the dual area); under
perturbation they are the natural first-order generalization, consistent
with the paper's treatment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeshError
from repro.mesh.entities import LinkSet
from repro.mesh.grid import CartesianGrid


def _one_sided_halves(field: np.ndarray, axis: int):
    """Half-distances to the previous/next node along ``axis``.

    Returns ``(minus, plus)`` arrays shaped like ``field``; at the domain
    boundary the missing side is zero.
    """
    half = 0.5 * np.diff(field, axis=axis)
    minus = np.zeros_like(field)
    plus = np.zeros_like(field)
    lead = [slice(None)] * field.ndim
    trail = [slice(None)] * field.ndim
    lead[axis] = slice(1, None)
    trail[axis] = slice(None, -1)
    minus[tuple(lead)] = half
    plus[tuple(trail)] = half
    return minus, plus


def _endpoint_average(field: np.ndarray, axis: int) -> np.ndarray:
    """Average of a nodal field over the endpoints of axis-``axis`` links."""
    lead = [slice(None)] * field.ndim
    trail = [slice(None)] * field.ndim
    lead[axis] = slice(1, None)
    trail[axis] = slice(None, -1)
    return 0.5 * (field[tuple(lead)] + field[tuple(trail)])


def _flat(field_3d: np.ndarray) -> np.ndarray:
    return np.transpose(field_3d, (2, 1, 0)).ravel()


@dataclass
class GridGeometry:
    """All FVM geometric parameters of a (possibly perturbed) grid.

    Attributes
    ----------
    grid:
        The logical grid.
    links:
        Canonical link enumeration.
    coords:
        ``(N, 3)`` node coordinates the geometry was computed from.
    node_volumes:
        ``(N,)`` dual-cell volumes [m^3].
    link_lengths:
        ``(L,)`` primal link lengths [m].
    link_dual_areas:
        ``(L,)`` dual-face areas [m^2].
    link_quadrant_areas:
        ``(L, 4)`` quarter areas matching ``links.cells`` quadrant order.
    half_spacings:
        Per-axis pair of ``(nx, ny, nz)`` arrays ``(minus, plus)``: the
        half-distance from each node to its previous/next neighbour
        along that axis (zero at the boundary side).  These generate the
        octant decomposition of the dual cells.
    """

    grid: CartesianGrid
    links: LinkSet
    coords: np.ndarray
    node_volumes: np.ndarray
    link_lengths: np.ndarray
    link_dual_areas: np.ndarray
    link_quadrant_areas: np.ndarray
    half_spacings: list

    @property
    def num_nodes(self) -> int:
        return self.grid.num_nodes

    @property
    def num_links(self) -> int:
        return self.links.num_links


def compute_geometry(grid: CartesianGrid, coords: np.ndarray = None,
                     links: LinkSet = None) -> GridGeometry:
    """Compute :class:`GridGeometry` for ``grid`` with optional perturbed
    ``coords`` (defaults to the nominal node coordinates).

    Raises
    ------
    MeshError
        If any link length or dual volume is non-positive, i.e. the
        coordinates describe a destroyed mesh.  Use
        :func:`repro.mesh.quality.check_mesh_validity` first for a
        diagnostic report rather than an exception.
    """
    if coords is None:
        coords = grid.node_coords()
    coords = np.asarray(coords, dtype=float)
    if coords.shape != (grid.num_nodes, 3):
        raise MeshError(
            f"coords must have shape ({grid.num_nodes}, 3), "
            f"got {coords.shape}")
    if links is None:
        links = LinkSet(grid)

    X, Y, Z = grid.flat_to_fields(coords)
    axis_fields = (X, Y, Z)

    # Directed spacings must stay positive: Euclidean link lengths and
    # half-spacing sums can mask an inverted node, so check explicitly.
    for axis in range(3):
        if np.any(np.diff(axis_fields[axis], axis=axis) <= 0.0):
            raise MeshError(
                "node ordering violated along axis "
                f"{axis}: the coordinates describe a destroyed mesh "
                "(see repro.mesh.quality for diagnostics)")

    # Per-node one-sided half spacings along each axis, measured on the
    # coordinate that varies along that axis.
    halves = [_one_sided_halves(axis_fields[a], a) for a in range(3)]
    full_halves = [m + p for (m, p) in halves]

    node_volumes_3d = full_halves[0] * full_halves[1] * full_halves[2]
    node_volumes = _flat(node_volumes_3d)
    if np.any(node_volumes <= 0.0):
        raise MeshError(
            "non-positive dual volume: the node coordinates describe a "
            "destroyed mesh (see repro.mesh.quality for diagnostics)")

    lengths_blocks = []
    areas_blocks = []
    quadrant_blocks = []
    for axis in range(3):
        # Axis-projected link length.  Under the per-axis displacement
        # fields of the surface-variation models, transverse links tilt;
        # using their Euclidean length would add a spurious O(shear^2)
        # conductance penalty that the axis-aligned dual areas cannot
        # compensate (the classic non-orthogonality error).  The
        # projected metric is exactly consistent with the product-form
        # dual areas: a pure shear leaves every flux coefficient
        # unchanged to first order, while genuine spacing changes are
        # fully captured.
        lengths = np.diff(axis_fields[axis], axis=axis)
        lengths_blocks.append(_flat(lengths))

        t1, t2 = [a for a in range(3) if a != axis]
        s1_minus = _endpoint_average(halves[t1][0], axis)
        s1_plus = _endpoint_average(halves[t1][1], axis)
        s2_minus = _endpoint_average(halves[t2][0], axis)
        s2_plus = _endpoint_average(halves[t2][1], axis)

        # Quadrant order must match LinkSet.cells:
        # (t1-, t2-), (t1+, t2-), (t1-, t2+), (t1+, t2+)
        quads = np.stack([
            _flat(s1_minus * s2_minus),
            _flat(s1_plus * s2_minus),
            _flat(s1_minus * s2_plus),
            _flat(s1_plus * s2_plus),
        ], axis=1)
        quadrant_blocks.append(quads)
        areas_blocks.append(quads.sum(axis=1))

    link_lengths = np.concatenate(lengths_blocks)
    link_dual_areas = np.concatenate(areas_blocks)
    link_quadrant_areas = np.vstack(quadrant_blocks)
    if np.any(link_lengths <= 0.0):
        raise MeshError(
            "non-positive link length: the node coordinates describe a "
            "destroyed mesh (see repro.mesh.quality for diagnostics)")

    return GridGeometry(
        grid=grid,
        links=links,
        coords=coords,
        node_volumes=node_volumes,
        link_lengths=link_lengths,
        link_dual_areas=link_dual_areas,
        link_quadrant_areas=link_quadrant_areas,
        half_spacings=halves,
    )


def node_masked_volumes(geometry: GridGeometry,
                        cell_mask: np.ndarray) -> np.ndarray:
    """Portion of each node's dual volume lying in masked cells.

    The dual cell of a node splits into up to eight octants, one per
    adjacent primal cell; this sums the octant volumes of the cells
    where ``cell_mask`` is True.  Used to weight the semiconductor
    charge and carrier storage terms by the semiconductor share of
    boundary-node dual cells.  Summing over an all-True mask recovers
    ``node_volumes`` exactly (asserted by the tests).
    """
    grid = geometry.grid
    cell_mask = np.asarray(cell_mask, dtype=bool)
    if cell_mask.shape != (grid.num_cells,):
        raise MeshError(
            f"cell_mask must have shape ({grid.num_cells},), "
            f"got {cell_mask.shape}")
    ncx, ncy, ncz = grid.cell_shape
    mask_3d = np.transpose(cell_mask.reshape(ncz, ncy, ncx), (2, 1, 0))
    nx, ny, nz = grid.shape
    out = np.zeros(grid.shape, dtype=float)
    halves = geometry.half_spacings
    # Octant (si, sj, sk): s = 0 selects the lower-side cell (index-1)
    # and the minus half-spacing, s = 1 the upper-side cell and plus half.
    node_slices = {0: slice(1, None), 1: slice(None, -1)}
    cell_slices = {0: slice(None), 1: slice(None)}
    for si in (0, 1):
        for sj in (0, 1):
            for sk in (0, 1):
                ns = (node_slices[si], node_slices[sj], node_slices[sk])
                cs = (cell_slices[si], cell_slices[sj], cell_slices[sk])
                h = (halves[0][si][ns] * halves[1][sj][ns]
                     * halves[2][sk][ns])
                out[ns] += np.where(mask_3d[cs], h, 0.0)
    return grid.flat_field(out)
