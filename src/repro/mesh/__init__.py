"""Structured Cartesian mesh with perturbed-geometry support.

The FVM of the paper (Section II.A) meshes the structure into cubes:
scalar unknowns (V, n, p) live on nodes, the vector potential A lives on
links, and fluxes cross the dual surfaces orthogonal to the links.  When
the continuous-surface-variation model displaces nodes, the cells become
irregular and all geometric parameters (link length, dual area, dual
volume) must be recomputed — that machinery lives in
:mod:`repro.mesh.dual` and :mod:`repro.mesh.perturbed`.
"""

from repro.mesh.grid import CartesianGrid
from repro.mesh.entities import LinkSet
from repro.mesh.dual import (
    GridGeometry,
    compute_geometry,
    node_masked_volumes,
)
from repro.mesh.perturbed import PerturbedGrid
from repro.mesh.quality import MeshValidityReport, check_mesh_validity
from repro.mesh.refine import graded_axis, uniform_axis

__all__ = [
    "CartesianGrid",
    "LinkSet",
    "GridGeometry",
    "compute_geometry",
    "node_masked_volumes",
    "PerturbedGrid",
    "MeshValidityReport",
    "check_mesh_validity",
    "graded_axis",
    "uniform_axis",
]
