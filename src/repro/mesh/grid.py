"""Tensor-product Cartesian grid.

Node numbering convention used everywhere in the package::

    node_id(i, j, k) = i + nx * j + nx * ny * k

with ``0 <= i < nx`` along x, similarly j along y, k along z.  Cells are
numbered the same way on the ``(nx-1, ny-1, nz-1)`` lattice; cell
``(i, j, k)`` spans nodes ``i..i+1``, ``j..j+1``, ``k..k+1``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError


def _validate_axis(values: np.ndarray, name: str) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise MeshError(f"{name} axis must be 1-D, got shape {values.shape}")
    if values.size < 2:
        raise MeshError(f"{name} axis needs at least 2 coordinates")
    if not np.all(np.diff(values) > 0.0):
        raise MeshError(f"{name} axis must be strictly increasing")
    return values


class CartesianGrid:
    """A structured grid defined by three strictly increasing axes.

    Parameters
    ----------
    xs, ys, zs:
        1-D arrays of node coordinates [m] along each axis.
    """

    def __init__(self, xs, ys, zs):
        self.xs = _validate_axis(xs, "x")
        self.ys = _validate_axis(ys, "y")
        self.zs = _validate_axis(zs, "z")

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def nx(self) -> int:
        return self.xs.size

    @property
    def ny(self) -> int:
        return self.ys.size

    @property
    def nz(self) -> int:
        return self.zs.size

    @property
    def shape(self) -> tuple:
        """Node lattice shape ``(nx, ny, nz)``."""
        return (self.nx, self.ny, self.nz)

    @property
    def cell_shape(self) -> tuple:
        """Cell lattice shape ``(nx-1, ny-1, nz-1)``."""
        return (self.nx - 1, self.ny - 1, self.nz - 1)

    @property
    def num_nodes(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def num_cells(self) -> int:
        return (self.nx - 1) * (self.ny - 1) * (self.nz - 1)

    @property
    def num_links(self) -> int:
        nx, ny, nz = self.shape
        return ((nx - 1) * ny * nz + nx * (ny - 1) * nz
                + nx * ny * (nz - 1))

    @property
    def extent(self) -> tuple:
        """Domain bounding box ``((x0, x1), (y0, y1), (z0, z1))``."""
        return ((self.xs[0], self.xs[-1]),
                (self.ys[0], self.ys[-1]),
                (self.zs[0], self.zs[-1]))

    @property
    def volume(self) -> float:
        """Total domain volume [m^3]."""
        return ((self.xs[-1] - self.xs[0])
                * (self.ys[-1] - self.ys[0])
                * (self.zs[-1] - self.zs[0]))

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def node_id(self, i, j, k):
        """Flat node id for lattice indices; accepts arrays."""
        i = np.asarray(i)
        j = np.asarray(j)
        k = np.asarray(k)
        if (np.any(i < 0) or np.any(i >= self.nx)
                or np.any(j < 0) or np.any(j >= self.ny)
                or np.any(k < 0) or np.any(k >= self.nz)):
            raise MeshError("node index out of range")
        return i + self.nx * (j + self.ny * k)

    def node_ijk(self, node_id):
        """Inverse of :meth:`node_id`; accepts arrays."""
        node_id = np.asarray(node_id)
        if np.any(node_id < 0) or np.any(node_id >= self.num_nodes):
            raise MeshError("node id out of range")
        i = node_id % self.nx
        j = (node_id // self.nx) % self.ny
        k = node_id // (self.nx * self.ny)
        return i, j, k

    def cell_id(self, i, j, k):
        """Flat cell id for lattice indices; accepts arrays."""
        ncx, ncy, ncz = self.cell_shape
        i = np.asarray(i)
        j = np.asarray(j)
        k = np.asarray(k)
        if (np.any(i < 0) or np.any(i >= ncx)
                or np.any(j < 0) or np.any(j >= ncy)
                or np.any(k < 0) or np.any(k >= ncz)):
            raise MeshError("cell index out of range")
        return i + ncx * (j + ncy * k)

    def cell_ijk(self, cell_id):
        """Inverse of :meth:`cell_id`; accepts arrays."""
        ncx, ncy, ncz = self.cell_shape
        cell_id = np.asarray(cell_id)
        if np.any(cell_id < 0) or np.any(cell_id >= self.num_cells):
            raise MeshError("cell id out of range")
        i = cell_id % ncx
        j = (cell_id // ncx) % ncy
        k = cell_id // (ncx * ncy)
        return i, j, k

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def node_coordinate_fields(self):
        """Return ``(X, Y, Z)`` arrays of shape ``(nx, ny, nz)``.

        ``X[i, j, k]`` is the x coordinate of node ``(i, j, k)``; for the
        unperturbed grid this is just a broadcast of the axes.
        """
        X, Y, Z = np.meshgrid(self.xs, self.ys, self.zs, indexing="ij")
        return X, Y, Z

    def node_coords(self) -> np.ndarray:
        """Return ``(num_nodes, 3)`` node coordinates in flat-id order."""
        X, Y, Z = self.node_coordinate_fields()
        return self.fields_to_flat(X, Y, Z)

    def fields_to_flat(self, X, Y, Z) -> np.ndarray:
        """Stack ``(nx, ny, nz)`` coordinate fields into ``(N, 3)``.

        The flattening follows the node-id convention (x fastest).
        """
        coords = np.empty((self.num_nodes, 3), dtype=float)
        coords[:, 0] = np.transpose(X, (2, 1, 0)).ravel()
        coords[:, 1] = np.transpose(Y, (2, 1, 0)).ravel()
        coords[:, 2] = np.transpose(Z, (2, 1, 0)).ravel()
        return coords

    def flat_to_fields(self, coords: np.ndarray):
        """Inverse of :meth:`fields_to_flat`."""
        coords = np.asarray(coords, dtype=float)
        if coords.shape != (self.num_nodes, 3):
            raise MeshError(
                f"coords must have shape ({self.num_nodes}, 3), "
                f"got {coords.shape}")
        shape_zyx = (self.nz, self.ny, self.nx)
        X = np.transpose(coords[:, 0].reshape(shape_zyx), (2, 1, 0))
        Y = np.transpose(coords[:, 1].reshape(shape_zyx), (2, 1, 0))
        Z = np.transpose(coords[:, 2].reshape(shape_zyx), (2, 1, 0))
        return X.copy(), Y.copy(), Z.copy()

    def flat_field(self, field_3d: np.ndarray) -> np.ndarray:
        """Flatten an ``(nx, ny, nz)`` nodal field into flat-id order."""
        field_3d = np.asarray(field_3d)
        if field_3d.shape != self.shape:
            raise MeshError(
                f"field must have shape {self.shape}, got {field_3d.shape}")
        return np.transpose(field_3d, (2, 1, 0)).ravel()

    def unflatten_field(self, field_flat: np.ndarray) -> np.ndarray:
        """Reshape a flat nodal field back to ``(nx, ny, nz)``."""
        field_flat = np.asarray(field_flat)
        if field_flat.shape != (self.num_nodes,):
            raise MeshError(
                f"field must have shape ({self.num_nodes},), "
                f"got {field_flat.shape}")
        shape_zyx = (self.nz, self.ny, self.nx)
        return np.transpose(field_flat.reshape(shape_zyx), (2, 1, 0)).copy()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def nodes_in_box(self, lo, hi, tol: float = 0.0) -> np.ndarray:
        """Flat ids of nodes inside the axis-aligned box ``[lo, hi]``."""
        coords = self.node_coords()
        lo = np.asarray(lo, dtype=float) - tol
        hi = np.asarray(hi, dtype=float) + tol
        inside = np.all((coords >= lo) & (coords <= hi), axis=1)
        return np.nonzero(inside)[0]

    def cells_in_box(self, lo, hi, tol: float = 0.0) -> np.ndarray:
        """Flat ids of cells whose centre lies inside ``[lo, hi]``."""
        cx = 0.5 * (self.xs[:-1] + self.xs[1:])
        cy = 0.5 * (self.ys[:-1] + self.ys[1:])
        cz = 0.5 * (self.zs[:-1] + self.zs[1:])
        CX, CY, CZ = np.meshgrid(cx, cy, cz, indexing="ij")
        lo = np.asarray(lo, dtype=float) - tol
        hi = np.asarray(hi, dtype=float) + tol
        inside = ((CX >= lo[0]) & (CX <= hi[0])
                  & (CY >= lo[1]) & (CY <= hi[1])
                  & (CZ >= lo[2]) & (CZ <= hi[2]))
        ii, jj, kk = np.nonzero(inside)
        return self.cell_id(ii, jj, kk)

    def boundary_node_ids(self, face: str) -> np.ndarray:
        """Flat ids of the nodes on one domain face.

        ``face`` is one of ``x-``, ``x+``, ``y-``, ``y+``, ``z-``, ``z+``.
        """
        axis_map = {"x": 0, "y": 1, "z": 2}
        if len(face) != 2 or face[0] not in axis_map or face[1] not in "+-":
            raise MeshError(f"bad face spec {face!r}")
        axis = axis_map[face[0]]
        sizes = self.shape
        index = sizes[axis] - 1 if face[1] == "+" else 0
        ranges = [np.arange(n) for n in sizes]
        ranges[axis] = np.array([index])
        I, J, K = np.meshgrid(*ranges, indexing="ij")
        return self.node_id(I.ravel(), J.ravel(), K.ravel())

    def __repr__(self) -> str:
        return (f"CartesianGrid(nx={self.nx}, ny={self.ny}, nz={self.nz}, "
                f"nodes={self.num_nodes}, links={self.num_links})")
