"""Perturbed grids: a logical Cartesian grid plus node displacements.

The stochastic geometry models (:mod:`repro.variation`) produce a
displacement field over the nodes; a :class:`PerturbedGrid` bundles it
with the base grid and hands out recomputed FVM geometry.  Material
assignment stays on the *logical* cells — as the paper notes, "different
material domains are only defined via the nodes on the material
interface", so displacing interface nodes is what moves the physical
shape.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError
from repro.mesh.dual import GridGeometry, compute_geometry
from repro.mesh.entities import LinkSet
from repro.mesh.grid import CartesianGrid
from repro.mesh.quality import check_mesh_validity


class PerturbedGrid:
    """A Cartesian grid whose nodes have been displaced.

    Parameters
    ----------
    grid:
        The logical (unperturbed) grid.
    displacement:
        ``(N, 3)`` displacement [m] added to every node coordinate; pass
        ``None`` for the identity (nominal) perturbation.
    links:
        Optional pre-built :class:`LinkSet` to share across many samples
        of the same logical grid (the stochastic drivers reuse one).
    """

    def __init__(self, grid: CartesianGrid, displacement: np.ndarray = None,
                 links: LinkSet = None):
        self.grid = grid
        if displacement is None:
            displacement = np.zeros((grid.num_nodes, 3), dtype=float)
        displacement = np.asarray(displacement, dtype=float)
        if displacement.shape != (grid.num_nodes, 3):
            raise MeshError(
                f"displacement must have shape ({grid.num_nodes}, 3), "
                f"got {displacement.shape}")
        self.displacement = displacement
        self.links = links if links is not None else LinkSet(grid)
        self._geometry = None

    # ------------------------------------------------------------------
    @classmethod
    def from_axis_displacement(cls, grid: CartesianGrid, node_ids,
                               axis: int, values,
                               links: LinkSet = None) -> "PerturbedGrid":
        """Build a perturbation that moves ``node_ids`` along one axis.

        This is the shape produced by surface-roughness models: interface
        nodes move along the interface normal.
        """
        if axis not in (0, 1, 2):
            raise MeshError(f"axis must be 0, 1 or 2, got {axis}")
        node_ids = np.asarray(node_ids, dtype=int)
        values = np.asarray(values, dtype=float)
        if node_ids.shape != values.shape:
            raise MeshError("node_ids and values must have the same shape")
        displacement = np.zeros((grid.num_nodes, 3), dtype=float)
        displacement[node_ids, axis] = values
        return cls(grid, displacement, links=links)

    # ------------------------------------------------------------------
    @property
    def coords(self) -> np.ndarray:
        """Perturbed ``(N, 3)`` node coordinates."""
        return self.grid.node_coords() + self.displacement

    def validity(self):
        """Mesh-validity diagnostics for the perturbed coordinates."""
        return check_mesh_validity(self.grid, self.coords)

    def geometry(self) -> GridGeometry:
        """FVM geometric parameters; cached after the first call."""
        if self._geometry is None:
            self._geometry = compute_geometry(
                self.grid, self.coords, links=self.links)
        return self._geometry

    def with_displacement(self, displacement: np.ndarray) -> "PerturbedGrid":
        """A new sample over the same logical grid (shares the LinkSet)."""
        return PerturbedGrid(self.grid, displacement, links=self.links)
