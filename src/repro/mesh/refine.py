"""Axis generators: uniform, breakpoint-aligned and graded spacings.

Geometry builders need grid lines that fall exactly on material
interfaces (so boxes of metal/insulator/semiconductor tile whole cells),
and the paper notes that "the mesh near the contact will be denser due to
the high occurrence of physical interactions there" — hence the graded
generator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import MeshError


def uniform_axis(start: float, stop: float, num_cells: int) -> np.ndarray:
    """``num_cells + 1`` equally spaced nodes covering ``[start, stop]``."""
    if stop <= start:
        raise MeshError(f"need stop > start, got [{start}, {stop}]")
    if num_cells < 1:
        raise MeshError(f"need at least one cell, got {num_cells}")
    return np.linspace(start, stop, num_cells + 1)


def axis_from_breakpoints(breakpoints, max_step: float) -> np.ndarray:
    """Node coordinates hitting every breakpoint exactly.

    Each segment between consecutive breakpoints is subdivided uniformly
    into ``ceil(length / max_step)`` cells, so no cell exceeds
    ``max_step`` and every material interface coincides with a grid line.

    Parameters
    ----------
    breakpoints:
        Strictly increasing coordinates that must appear as nodes.
    max_step:
        Upper bound on the cell size [m].
    """
    breakpoints = np.asarray(sorted({float(b) for b in breakpoints}))
    if breakpoints.size < 2:
        raise MeshError("need at least two distinct breakpoints")
    if max_step <= 0.0:
        raise MeshError(f"max_step must be positive, got {max_step}")
    nodes = [breakpoints[0]]
    for left, right in zip(breakpoints[:-1], breakpoints[1:]):
        length = right - left
        segments = max(1, int(math.ceil(length / max_step - 1e-12)))
        interior = np.linspace(left, right, segments + 1)[1:]
        nodes.extend(interior.tolist())
    return np.asarray(nodes)


def graded_axis(start: float, stop: float, num_cells: int, focus,
                strength: float = 3.0, width: float = None) -> np.ndarray:
    """Nodes concentrated near the ``focus`` coordinates.

    A node-density function ``w(x) = 1 + strength * sum_f exp(-|x-f|/width)``
    is integrated numerically and its CDF inverted at equispaced levels,
    which clusters nodes where ``w`` is large (near contacts/interfaces).

    Parameters
    ----------
    start, stop:
        Axis range.
    num_cells:
        Number of cells (nodes = ``num_cells + 1``).
    focus:
        Iterable of coordinates to refine around; must lie in the range.
    strength:
        Density contrast between focused and unfocused regions (>= 0).
    width:
        Decay length of the refinement; defaults to 10 % of the range.
    """
    if stop <= start:
        raise MeshError(f"need stop > start, got [{start}, {stop}]")
    if num_cells < 1:
        raise MeshError(f"need at least one cell, got {num_cells}")
    if strength < 0.0:
        raise MeshError(f"strength must be non-negative, got {strength}")
    focus = np.atleast_1d(np.asarray(focus, dtype=float))
    if np.any(focus < start) or np.any(focus > stop):
        raise MeshError("focus coordinates must lie inside the range")
    if width is None:
        width = 0.1 * (stop - start)
    if width <= 0.0:
        raise MeshError(f"width must be positive, got {width}")

    # Dense sampling for the density integral.
    samples = max(1000, 50 * num_cells)
    x = np.linspace(start, stop, samples)
    density = np.ones_like(x)
    for f in focus:
        density += strength * np.exp(-np.abs(x - f) / width)
    cdf = np.concatenate([[0.0], np.cumsum(
        0.5 * (density[1:] + density[:-1]) * np.diff(x))])
    cdf /= cdf[-1]
    levels = np.linspace(0.0, 1.0, num_cells + 1)
    nodes = np.interp(levels, cdf, x)
    nodes[0] = start
    nodes[-1] = stop
    if not np.all(np.diff(nodes) > 0.0):
        raise MeshError("graded axis generation produced a degenerate axis; "
                        "reduce strength or num_cells")
    return nodes
