"""Unit helpers.

The paper specifies geometry in micrometres, frequencies in GHz, currents
in microamperes and capacitances in femtofarads.  The solver works in SI
internally; these helpers make example and benchmark code read like the
paper.
"""

from __future__ import annotations

import math

#: One micrometre [m].
UM = 1.0e-6

#: One nanometre [m].
NM = 1.0e-9

#: One gigahertz [Hz].
GHZ = 1.0e9

#: One femtofarad [F].
FF = 1.0e-15

#: One microampere [A].
UA = 1.0e-6

#: Doping helper: 1/cm^3 expressed in 1/m^3.
PER_CM3 = 1.0e6


def um(value: float) -> float:
    """Convert micrometres to metres."""
    return value * UM


def nm(value: float) -> float:
    """Convert nanometres to metres."""
    return value * NM


def ghz(value: float) -> float:
    """Convert gigahertz to hertz."""
    return value * GHZ


def angular_frequency(frequency_hz: float) -> float:
    """Return ``2*pi*f`` for a frequency in hertz."""
    return 2.0 * math.pi * frequency_hz


def to_femtofarad(capacitance_f: float) -> float:
    """Convert farads to femtofarads."""
    return capacitance_f / FF


def to_microampere(current_a: float) -> float:
    """Convert amperes to microamperes."""
    return current_a / UA


def per_cm3(value: float) -> float:
    """Convert a density given per cubic centimetre to per cubic metre."""
    return value * PER_CM3
