"""Perturbation groups — Section IV.B's variable bookkeeping.

The paper organizes the correlated random variables into groups:

* each TSV facet is a group of locally correlated roughness nodes
  ("we divide the perturbed nodes into 8 groups (each TSV has 4 facets
  and there are 2 TSVs in total)");
* coplanar facets of different TSVs are merged ("if two surfaces from
  different TSVs lie in the same plane, it is more reasonable to merge
  them into a larger group");
* the random doping profile forms one more group.

Each group carries its own covariance and is reduced independently by
(w)PFA; the reduced variables of all groups concatenate into the
``d``-dimensional vector the sparse grid is built on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StochasticError
from repro.geometry.builders import FacetSpec
from repro.geometry.structure import Structure
from repro.mesh.grid import CartesianGrid
from repro.variation.covariance import covariance_matrix


@dataclass
class PerturbationGroup:
    """One group of correlated scalar perturbation variables.

    Attributes
    ----------
    name:
        Identifier (facet name, merged-plane name, or ``"doping"``).
    kind:
        ``"geometry"`` (node displacements along ``axis`` [m]) or
        ``"doping"`` (relative doping multipliers, dimensionless).
    node_ids:
        Flat grid node ids carrying the perturbation.
    coords:
        ``(n, 3)`` nominal coordinates of those nodes (for covariance).
    covariance:
        ``(n, n)`` covariance of the group's variables.
    axis:
        Displacement axis for geometry groups; ``None`` for doping.
    """

    name: str
    kind: str
    node_ids: np.ndarray
    coords: np.ndarray
    covariance: np.ndarray
    axis: int = None

    def __post_init__(self) -> None:
        self.node_ids = np.asarray(self.node_ids, dtype=int)
        self.coords = np.asarray(self.coords, dtype=float)
        self.covariance = np.asarray(self.covariance, dtype=float)
        n = self.node_ids.size
        if self.kind not in ("geometry", "doping"):
            raise StochasticError(f"unknown group kind {self.kind!r}")
        if self.kind == "geometry" and self.axis not in (0, 1, 2):
            raise StochasticError(
                f"geometry group {self.name!r} needs a valid axis")
        if n == 0:
            raise StochasticError(f"group {self.name!r} is empty")
        if self.coords.shape != (n, 3):
            raise StochasticError(
                f"group {self.name!r}: coords shape {self.coords.shape} "
                f"does not match {n} nodes")
        if self.covariance.shape != (n, n):
            raise StochasticError(
                f"group {self.name!r}: covariance shape "
                f"{self.covariance.shape} does not match {n} nodes")

    @property
    def size(self) -> int:
        """Number of correlated variables in the group."""
        return self.node_ids.size


def merge_coplanar_facets(facets) -> list:
    """Merge facets sharing the same (axis, plane coordinate).

    Returns a list of lists; each inner list holds the facets of one
    merged plane, in input order.  Single facets come back as singleton
    lists, so callers can treat everything uniformly.
    """
    merged = {}
    order = []
    for facet in facets:
        if not isinstance(facet, FacetSpec):
            raise StochasticError("merge_coplanar_facets expects FacetSpec")
        key = (facet.axis, round(float(facet.coordinate), 15))
        if key not in merged:
            merged[key] = []
            order.append(key)
        merged[key].append(facet)
    return [merged[key] for key in order]


def geometry_groups_from_facets(grid: CartesianGrid, facets, sigma: float,
                                eta: float, kernel: str = "exponential",
                                merge_coplanar: bool = True) -> list:
    """Build geometry :class:`PerturbationGroup` objects from facets.

    Parameters
    ----------
    grid:
        The logical grid the facets live on.
    facets:
        Iterable of :class:`~repro.geometry.builders.FacetSpec`.
    sigma:
        Roughness standard deviation [m] (paper: sigma_G).
    eta:
        Correlation length [m] (paper: 0.7 um for roughness).
    kernel:
        Covariance kernel family.
    merge_coplanar:
        Merge facets on the same plane into one larger group, as the
        paper does for the coplanar TSV walls.
    """
    facet_sets = (merge_coplanar_facets(facets) if merge_coplanar
                  else [[f] for f in facets])
    coords_all = grid.node_coords()
    groups = []
    for facet_list in facet_sets:
        node_ids = np.unique(np.concatenate(
            [f.node_ids(grid) for f in facet_list]))
        coords = coords_all[node_ids]
        cov = covariance_matrix(coords, sigma, eta, kernel)
        name = "+".join(f.name for f in facet_list)
        groups.append(PerturbationGroup(
            name=name,
            kind="geometry",
            node_ids=node_ids,
            coords=coords,
            covariance=cov,
            axis=facet_list[0].axis,
        ))
    return groups


def doping_group(structure: Structure, sigma_rel: float, eta: float,
                 kernel: str = "exponential",
                 max_nodes: int = None) -> PerturbationGroup:
    """Build the RDF group over the structure's semiconductor nodes.

    Parameters
    ----------
    structure:
        The structure whose doped region fluctuates.
    sigma_rel:
        Relative doping standard deviation (paper: 0.1 for "10 %
        perturbation").
    eta:
        Correlation length [m] (paper: 0.5 um).
    max_nodes:
        Optional cap on the number of RDF nodes, matching the paper's
        practice of modelling the RDF on a subset (72 nodes in example A,
        128 in example B).  Nodes are chosen by uniform striding through
        the semiconductor node list, which keeps the subset spatially
        spread out and deterministic.
    """
    if sigma_rel <= 0.0:
        raise StochasticError(
            f"sigma_rel must be positive, got {sigma_rel}")
    node_ids = structure.semiconductor_node_ids()
    if node_ids.size == 0:
        raise StochasticError("structure has no semiconductor nodes")
    if max_nodes is not None and node_ids.size > max_nodes:
        stride_ids = np.linspace(0, node_ids.size - 1, max_nodes)
        node_ids = node_ids[np.unique(stride_ids.astype(int))]
    coords = structure.grid.node_coords()[node_ids]
    cov = covariance_matrix(coords, sigma_rel, eta, kernel)
    return PerturbationGroup(
        name="doping",
        kind="doping",
        node_ids=node_ids,
        coords=coords,
        covariance=cov,
        axis=None,
    )
