"""Traditional direct-perturbation model — the Fig. 1(a) baseline.

In the earlier variational A-V solver the geometrical variation "will
lead to a direct perturbation over the coordinates and the nodes are
supposed to randomly fluctuate between their upper and lower neighbor
nodes"; when the fluctuation grows, "it is highly possible for a node to
exceed the upper or lower boundary, which will lead to the destruction
of mesh" (Section III.A).  This class reproduces that behaviour so the
Fig. 1 comparison and the CSV ablation can be run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError, StochasticError
from repro.mesh.grid import CartesianGrid
from repro.mesh.perturbed import PerturbedGrid


class NaiveSurfaceModel:
    """Displace only the interface nodes, leaving neighbours fixed."""

    def __init__(self, grid: CartesianGrid):
        self.grid = grid

    def displacement_field(self, anchors_by_axis: dict) -> np.ndarray:
        """``(N, 3)`` displacement: anchor values verbatim, zero elsewhere.

        Same signature as
        :meth:`repro.variation.csv_model.ContinuousSurfaceModel.displacement_field`
        so the two models are drop-in interchangeable in experiments.
        """
        displacement = np.zeros((self.grid.num_nodes, 3), dtype=float)
        for axis, (node_ids, values) in anchors_by_axis.items():
            if axis not in (0, 1, 2):
                raise MeshError(f"axis must be 0, 1 or 2, got {axis}")
            node_ids = np.asarray(node_ids, dtype=int)
            values = np.asarray(values, dtype=float)
            if node_ids.shape != values.shape:
                raise StochasticError(
                    "node_ids and values must have the same shape")
            displacement[node_ids, axis] += values
        return displacement

    def perturbed_grid(self, anchors_by_axis: dict,
                       links=None) -> PerturbedGrid:
        """Build the (possibly destroyed!) perturbed grid for one sample.

        Unlike the CSV model this can produce an invalid mesh; callers
        should inspect ``perturbed_grid(...).validity()`` — that is the
        entire point of the Fig. 1 experiment.
        """
        displacement = self.displacement_field(anchors_by_axis)
        return PerturbedGrid(self.grid, displacement, links=links)
