"""Sampling of correlated Gaussian perturbations."""

from __future__ import annotations

import numpy as np

from repro.errors import StochasticError
from repro.variation.covariance import covariance_matrix


def stable_cholesky(covariance: np.ndarray, jitter: float = 1e-12,
                    max_tries: int = 8) -> np.ndarray:
    """Cholesky factor with escalating diagonal jitter.

    Exponential-kernel covariance matrices are often numerically
    semi-definite once nodes nearly coincide; a relative jitter on the
    diagonal restores positive definiteness without visibly changing the
    samples.
    """
    covariance = np.asarray(covariance, dtype=float)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise StochasticError(
            f"covariance must be square, got {covariance.shape}")
    if not np.allclose(covariance, covariance.T, rtol=1e-10, atol=0.0):
        raise StochasticError("covariance must be symmetric")
    scale = max(float(np.max(np.abs(np.diag(covariance)))), 1e-300)
    bump = jitter * scale
    for _ in range(max_tries):
        try:
            return np.linalg.cholesky(
                covariance + bump * np.eye(covariance.shape[0]))
        except np.linalg.LinAlgError:
            bump *= 100.0
    raise StochasticError(
        "covariance is not positive semi-definite even after jitter")


class GaussianRandomField:
    """A zero-mean multivariate Gaussian over fixed sample locations.

    Parameters
    ----------
    coords:
        ``(n, k)`` locations of the field samples.
    sigma:
        Marginal standard deviation.
    eta:
        Correlation length.
    kernel:
        Kernel family name (see :mod:`repro.variation.covariance`).
    """

    def __init__(self, coords: np.ndarray, sigma: float, eta: float,
                 kernel: str = "exponential"):
        self.coords = np.asarray(coords, dtype=float)
        if self.coords.ndim != 2 or self.coords.shape[0] == 0:
            raise StochasticError(
                f"coords must be a non-empty 2-D array, "
                f"got {self.coords.shape}")
        self.sigma = float(sigma)
        self.eta = float(eta)
        self.kernel = kernel
        self.covariance = covariance_matrix(self.coords, self.sigma,
                                            self.eta, kernel)
        self._chol = None

    @property
    def size(self) -> int:
        """Number of correlated scalar variables."""
        return self.coords.shape[0]

    @property
    def cholesky(self) -> np.ndarray:
        if self._chol is None:
            self._chol = stable_cholesky(self.covariance)
        return self._chol

    def sample(self, rng: np.random.Generator,
               num_samples: int = 1) -> np.ndarray:
        """Draw ``num_samples`` field realizations, shape ``(m, n)``."""
        if num_samples < 1:
            raise StochasticError(
                f"num_samples must be >= 1, got {num_samples}")
        z = rng.standard_normal((num_samples, self.size))
        return z @ self.cholesky.T

    def transform(self, standard_normals: np.ndarray) -> np.ndarray:
        """Map iid standard normals to correlated samples.

        Accepts shape ``(n,)`` or ``(m, n)``; used by collocation drivers
        that control the underlying normals explicitly.
        """
        z = np.asarray(standard_normals, dtype=float)
        if z.shape[-1] != self.size:
            raise StochasticError(
                f"expected trailing dimension {self.size}, got {z.shape}")
        return z @ self.cholesky.T
