"""Random doping fluctuation (RDF) model.

The paper perturbs the uniform doping profile by a correlated 10 %
multivariate-Gaussian field with correlation length eta = 0.5 um.  A
:class:`RandomDopingModel` converts a vector of relative perturbations
``xi`` (one per RDF node) into a :class:`NodePerturbedDoping` profile
with per-node multipliers ``1 + xi``, clipped to a small positive floor
so an extreme Monte-Carlo tail sample cannot produce negative doping.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StochasticError
from repro.materials.doping import DopingProfile, NodePerturbedDoping
from repro.variation.groups import PerturbationGroup


class RandomDopingModel:
    """Maps RDF perturbation vectors to doping profiles.

    Parameters
    ----------
    base_profile:
        The nominal doping profile.
    group:
        The RDF :class:`PerturbationGroup` (kind ``"doping"``).
    num_nodes:
        Total node count of the grid.
    floor:
        Minimum allowed multiplier (default 0.05); samples are clipped
        here, which for a 10 % sigma field is a > 9-sigma event and so
        statistically invisible while keeping every sample physical.
    """

    def __init__(self, base_profile: DopingProfile,
                 group: PerturbationGroup, num_nodes: int,
                 floor: float = 0.05):
        if group.kind != "doping":
            raise StochasticError(
                f"RandomDopingModel needs a doping group, got {group.kind!r}")
        if not 0.0 < floor < 1.0:
            raise StochasticError(f"floor must be in (0, 1), got {floor}")
        self.base_profile = base_profile
        self.group = group
        self.num_nodes = int(num_nodes)
        self.floor = float(floor)

    def profile_for(self, xi: np.ndarray) -> NodePerturbedDoping:
        """Doping profile for one relative-perturbation sample ``xi``."""
        xi = np.asarray(xi, dtype=float)
        if xi.shape != (self.group.size,):
            raise StochasticError(
                f"xi must have shape ({self.group.size},), got {xi.shape}")
        multipliers = np.clip(1.0 + xi, self.floor, None)
        return NodePerturbedDoping(
            base=self.base_profile,
            node_ids=self.group.node_ids,
            multipliers=multipliers,
            num_nodes=self.num_nodes,
        )
