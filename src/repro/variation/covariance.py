"""Covariance kernels for correlated process variations.

The paper generates surface-roughness and doping perturbations "with the
multivariate Gaussian distribution" and a correlation length ``eta``
(0.7 um for roughness, 0.5 um for RDF in Section IV).  The kernel family
is configurable; the exponential kernel is the default as it is the
standard roughness model in the interconnect-variation literature the
paper builds on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StochasticError


def _pairwise_distances(coords: np.ndarray) -> np.ndarray:
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2:
        raise StochasticError(f"coords must be 2-D, got {coords.shape}")
    diff = coords[:, None, :] - coords[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def exponential_kernel(distances: np.ndarray, sigma: float,
                       eta: float) -> np.ndarray:
    """``sigma^2 exp(-d / eta)`` — Ornstein-Uhlenbeck roughness kernel."""
    if sigma < 0.0:
        raise StochasticError(f"sigma must be non-negative, got {sigma}")
    if eta <= 0.0:
        raise StochasticError(f"eta must be positive, got {eta}")
    return sigma * sigma * np.exp(-np.asarray(distances, dtype=float) / eta)


def squared_exponential_kernel(distances: np.ndarray, sigma: float,
                               eta: float) -> np.ndarray:
    """``sigma^2 exp(-(d / eta)^2)`` — smooth (Gaussian) kernel."""
    if sigma < 0.0:
        raise StochasticError(f"sigma must be non-negative, got {sigma}")
    if eta <= 0.0:
        raise StochasticError(f"eta must be positive, got {eta}")
    d = np.asarray(distances, dtype=float) / eta
    return sigma * sigma * np.exp(-d * d)


_KERNELS = {
    "exponential": exponential_kernel,
    "squared_exponential": squared_exponential_kernel,
}


def covariance_matrix(coords: np.ndarray, sigma: float, eta: float,
                      kernel: str = "exponential") -> np.ndarray:
    """Dense covariance matrix of a stationary field at ``coords``.

    Parameters
    ----------
    coords:
        ``(n, k)`` sample locations (k = 2 or 3).
    sigma:
        Marginal standard deviation.
    eta:
        Correlation length [same units as coords].
    kernel:
        ``"exponential"`` (default) or ``"squared_exponential"``.
    """
    try:
        kernel_fn = _KERNELS[kernel]
    except KeyError as exc:
        raise StochasticError(
            f"unknown kernel {kernel!r}; choose from {sorted(_KERNELS)}"
        ) from exc
    return kernel_fn(_pairwise_distances(coords), sigma, eta)
