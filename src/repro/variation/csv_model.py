"""Continuous surface variation (CSV) model — Section III.A of the paper.

The traditional model perturbs only the interface nodes; when the
perturbation exceeds the local mesh step a node can cross its neighbour
and destroy the mesh (Fig. 1a).  The CSV model instead *propagates* the
interface perturbation to the other nodes along the fluctuating
direction so that "all the nodes will fluctuate continuously and the
possible overlapping can be avoided" (Fig. 1b):

* between two perturbed interfaces the displacement is the linear
  interpolation of the two interface values (paper eq. 6 — note the
  printed equation swaps the two weights; we use the orientation that
  actually satisfies ``xi(x_l) = xi_l`` and ``xi(x_r) = xi_r``);
* outside the interfaces it decays linearly to zero at the domain
  boundary (paper eq. 7): ``xi_i = xi_{l,r} (b - x_i) / (b - x_{l,r})``.

Both cases are the same rule once the domain boundaries are treated as
anchors with zero perturbation, which is how the implementation works:
along every grid line parallel to the perturbation axis, anchor values
(interfaces and boundaries) are interpolated piecewise-linearly in the
*nominal* coordinate.

Because the interpolation is monotone between anchors and the anchors
themselves keep their relative order as long as each interface
perturbation is smaller than the distance to the *next interface or
boundary* (not to the next mesh node!), the mesh survives perturbations
far larger than the local mesh step — exactly the property the paper
claims for the new model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError, StochasticError
from repro.mesh.grid import CartesianGrid
from repro.mesh.perturbed import PerturbedGrid


def propagate_axis_displacement(grid: CartesianGrid, axis: int,
                                anchor_node_ids, anchor_values,
                                ) -> np.ndarray:
    """Propagate interface perturbations along one axis (CSV model).

    Parameters
    ----------
    grid:
        The logical grid.
    axis:
        The fluctuation direction (the interface normal), 0/1/2.
    anchor_node_ids:
        Flat ids of the perturbed interface nodes.
    anchor_values:
        Displacement [m] of each anchor node along ``axis``.

    Returns
    -------
    numpy.ndarray
        ``(num_nodes,)`` axis-displacement for *every* node: anchors keep
        their values, nodes on grid lines through anchors are linearly
        interpolated between the anchors and zero-valued domain
        boundaries, and nodes on lines without anchors stay at zero.
    """
    if axis not in (0, 1, 2):
        raise MeshError(f"axis must be 0, 1 or 2, got {axis}")
    anchor_node_ids = np.asarray(anchor_node_ids, dtype=int)
    anchor_values = np.asarray(anchor_values, dtype=float)
    if anchor_node_ids.shape != anchor_values.shape:
        raise StochasticError(
            "anchor_node_ids and anchor_values must have the same shape")
    if anchor_node_ids.size == 0:
        return np.zeros(grid.num_nodes, dtype=float)
    if (np.any(anchor_node_ids < 0)
            or np.any(anchor_node_ids >= grid.num_nodes)):
        raise MeshError("anchor node id out of range")
    unique_ids, first_index = np.unique(anchor_node_ids, return_index=True)
    if unique_ids.size != anchor_node_ids.size:
        raise StochasticError(
            "duplicate anchor nodes: merge facet groups before propagating")

    # Work on (n_axis, n_lines) matrices: one column per grid line
    # parallel to `axis`.
    xi = np.full(grid.shape, np.nan)
    is_anchor = np.zeros(grid.shape, dtype=bool)
    i, j, k = grid.node_ijk(anchor_node_ids)
    xi[i, j, k] = anchor_values
    is_anchor[i, j, k] = True

    order = [axis] + [a for a in range(3) if a != axis]
    xi_lines = np.transpose(xi, order).reshape(grid.shape[axis], -1)
    anchor_lines = np.transpose(is_anchor, order).reshape(
        grid.shape[axis], -1)

    axes = (grid.xs, grid.ys, grid.zs)
    coords_axis = axes[axis]
    n_axis, n_lines = xi_lines.shape

    # Domain boundaries are zero anchors unless an interface sits exactly
    # on the boundary plane (then the interface value wins).
    for boundary in (0, n_axis - 1):
        free = ~anchor_lines[boundary]
        xi_lines[boundary, free] = 0.0
        anchor_lines[boundary, free] = True

    # Forward sweep: last anchor value/position below each node.
    below_val = np.empty((n_axis, n_lines))
    below_pos = np.empty((n_axis, n_lines))
    cur_val = xi_lines[0].copy()
    cur_pos = np.full(n_lines, coords_axis[0])
    for idx in range(n_axis):
        hit = anchor_lines[idx]
        cur_val = np.where(hit, xi_lines[idx], cur_val)
        cur_pos = np.where(hit, coords_axis[idx], cur_pos)
        below_val[idx] = cur_val
        below_pos[idx] = cur_pos

    # Backward sweep: next anchor value/position above each node.
    above_val = np.empty((n_axis, n_lines))
    above_pos = np.empty((n_axis, n_lines))
    cur_val = xi_lines[-1].copy()
    cur_pos = np.full(n_lines, coords_axis[-1])
    for idx in range(n_axis - 1, -1, -1):
        hit = anchor_lines[idx]
        cur_val = np.where(hit, xi_lines[idx], cur_val)
        cur_pos = np.where(hit, coords_axis[idx], cur_pos)
        above_val[idx] = cur_val
        above_pos[idx] = cur_pos

    # Piecewise-linear interpolation in the nominal coordinate.
    x = coords_axis[:, None]
    span = above_pos - below_pos
    with np.errstate(invalid="ignore", divide="ignore"):
        t = np.where(span > 0.0, (x - below_pos) / np.where(span == 0.0,
                                                            1.0, span), 0.0)
    interp = below_val + t * (above_val - below_val)
    interp = np.where(anchor_lines, xi_lines, interp)

    # Lines without any interface anchor interpolate between two zero
    # boundaries and are already exactly zero.
    result_3d = interp.reshape([grid.shape[a] for a in order])
    inverse = np.argsort(order)
    return grid.flat_field(np.transpose(result_3d, inverse))


class ContinuousSurfaceModel:
    """Builds :class:`PerturbedGrid` samples with the CSV propagation.

    Parameters
    ----------
    grid:
        The logical grid all samples share.

    Usage: call :meth:`displacement_field` with per-axis anchor sets
    (typically produced by :mod:`repro.variation.groups`), or
    :meth:`perturbed_grid` to get a ready FVM sample.
    """

    def __init__(self, grid: CartesianGrid):
        self.grid = grid

    def displacement_field(self, anchors_by_axis: dict) -> np.ndarray:
        """Full ``(N, 3)`` displacement from per-axis anchors.

        ``anchors_by_axis`` maps an axis (0/1/2) to a pair
        ``(node_ids, values)``.  Axes may be combined: x-roughness on TSV
        walls and z-roughness on plug interfaces superpose.
        """
        displacement = np.zeros((self.grid.num_nodes, 3), dtype=float)
        for axis, (node_ids, values) in anchors_by_axis.items():
            displacement[:, axis] += propagate_axis_displacement(
                self.grid, axis, node_ids, values)
        return displacement

    def perturbed_grid(self, anchors_by_axis: dict,
                       links=None) -> PerturbedGrid:
        """Build the perturbed grid for one roughness sample."""
        displacement = self.displacement_field(anchors_by_axis)
        return PerturbedGrid(self.grid, displacement, links=links)
