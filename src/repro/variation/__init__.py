"""Process-variation models.

Two geometric models (the traditional direct perturbation of Fig. 1(a)
and the paper's continuous-surface-variation model of Fig. 1(b)),
the random-doping-fluctuation model, correlated Gaussian random fields
with correlation length eta, and the grouping machinery of Section IV.B.
"""

from repro.variation.covariance import (
    exponential_kernel,
    squared_exponential_kernel,
    covariance_matrix,
)
from repro.variation.random_field import GaussianRandomField
from repro.variation.csv_model import (
    ContinuousSurfaceModel,
    propagate_axis_displacement,
)
from repro.variation.naive_model import NaiveSurfaceModel
from repro.variation.doping_variation import RandomDopingModel
from repro.variation.groups import (
    PerturbationGroup,
    geometry_groups_from_facets,
    merge_coplanar_facets,
    doping_group,
)

__all__ = [
    "exponential_kernel",
    "squared_exponential_kernel",
    "covariance_matrix",
    "GaussianRandomField",
    "ContinuousSurfaceModel",
    "propagate_axis_displacement",
    "NaiveSurfaceModel",
    "RandomDopingModel",
    "PerturbationGroup",
    "geometry_groups_from_facets",
    "merge_coplanar_facets",
    "doping_group",
]
