"""Rule registry for :mod:`repro.lint`.

Rules register themselves at import time through the
:func:`file_rule` / :func:`project_rule` decorators; the engine then
runs every registered rule (or a ``--select`` subset) over the parsed
tree(s).  A *file rule* sees one file at a time; a *project rule* sees
the whole parsed module index at once (cross-module contracts such as
export resolution or the strip-site registry need the full picture).

Each rule carries an id (``RL###`` — stable, referenced by
suppressions), a short kebab-case name, a severity and a one-line
description shown by ``python -m repro.lint --list-rules``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lint.diagnostics import ERROR, SEVERITIES


@dataclass(frozen=True)
class Rule:
    """One registered rule.

    ``check`` (file rules) takes a ``FileContext`` and yields
    diagnostics; ``project_check`` (project rules) takes a mapping of
    module name to ``FileContext``.  ``scope`` optionally restricts a
    file rule to modules for which ``scope(module_name)`` is true —
    the store-atomicity family, for example, only patrols the serving
    layer.  Meta rules (suppression hygiene, parse errors) have
    neither callable: the engine emits them itself.
    """

    id: str
    name: str
    severity: str
    description: str
    check: callable = None
    project_check: callable = None
    scope: callable = None


_REGISTRY: dict = {}


def _register(rule: Rule) -> Rule:
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule.id}")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"bad severity {rule.severity!r} for {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule


def meta_rule(id: str, name: str, severity: str,
              description: str) -> Rule:
    """Register a rule the engine itself emits (no checker callable)."""
    return _register(Rule(id=id, name=name, severity=severity,
                          description=description))


def file_rule(id: str, name: str, description: str,
              severity: str = ERROR, scope: callable = None):
    """Decorator: register ``fn(ctx) -> iterable[Diagnostic]``."""
    def decorate(fn):
        _register(Rule(id=id, name=name, severity=severity,
                       description=description, check=fn, scope=scope))
        return fn
    return decorate


def project_rule(id: str, name: str, description: str,
                 severity: str = ERROR):
    """Decorator: register ``fn(index) -> iterable[Diagnostic]``."""
    def decorate(fn):
        _register(Rule(id=id, name=name, severity=severity,
                       description=description, project_check=fn))
        return fn
    return decorate


def get_rule(rule_id: str) -> Rule:
    """Look a registered rule up by id (unknown ids raise KeyError)."""
    return _REGISTRY[rule_id]


def is_registered(rule_id: str) -> bool:
    """True when ``rule_id`` names a registered rule."""
    return rule_id in _REGISTRY


def all_rules() -> list:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]
