"""Inline suppression directives with mandatory reasons.

Syntax (trailing on the offending line, or as a standalone comment on
the line directly above it)::

    canonical["workers"] = n  # repro-lint: disable=RL101 -- wire form, stripped downstream
    # repro-lint: disable=RL201,RL202 -- replaying a recorded trace
    statement_on_next_line()

The reason after ``--`` is required: a suppression is a deliberate,
documented exception, not an off switch.  Directives with no (or an
empty) reason are reported as :data:`RL001` and do **not** silence
anything; unknown rule ids are :data:`RL002`; directives that matched
no finding are :data:`RL003` (stale suppressions rot into false
documentation).  Meta diagnostics themselves cannot be suppressed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.lint.diagnostics import ERROR, WARNING, Diagnostic
from repro.lint.registry import is_registered, meta_rule

RL000 = meta_rule(
    "RL000", "parse-error", ERROR,
    "file could not be parsed; nothing else was checked").id
RL001 = meta_rule(
    "RL001", "invalid-suppression", ERROR,
    "suppression directive is malformed or missing the required "
    "'-- reason'").id
RL002 = meta_rule(
    "RL002", "unknown-rule-in-suppression", WARNING,
    "suppression names a rule id that does not exist").id
RL003 = meta_rule(
    "RL003", "unused-suppression", WARNING,
    "suppression matched no finding; delete it or fix the reason "
    "it was added").id

_DIRECTIVE_RE = re.compile(r"#\s*repro-lint:")
_PARSE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)"
    r"(?:\s+--\s+(.*\S))?\s*$")

#: Meta rules may not be suppressed (a suppression problem silencing
#: its own report would be unfixable).
_UNSUPPRESSIBLE = frozenset({RL000, RL001, RL002, RL003})


@dataclass
class Directive:
    """One parsed ``disable=`` comment."""

    line: int          # line the directive applies to
    comment_line: int  # line the comment physically sits on
    rules: tuple
    reason: str
    used: set = field(default_factory=set)


class Suppressions:
    """Per-file directive table with usage tracking."""

    def __init__(self, directives, meta_diagnostics):
        self._by_line = {}
        for directive in directives:
            self._by_line.setdefault(directive.line, []).append(directive)
        self.meta_diagnostics = list(meta_diagnostics)
        self._path = None

    def suppresses(self, diagnostic: Diagnostic) -> bool:
        """True (and marks the directive used) if a valid directive
        covers this finding's rule on this finding's line."""
        if diagnostic.rule in _UNSUPPRESSIBLE:
            return False
        for directive in self._by_line.get(diagnostic.line, ()):
            if diagnostic.rule in directive.rules:
                directive.used.add(diagnostic.rule)
                return True
        return False

    def unused(self, path: str):
        """RL003 diagnostics for directives that silenced nothing."""
        for directives in self._by_line.values():
            for directive in directives:
                for rule_id in directive.rules:
                    if rule_id in directive.used:
                        continue
                    if not is_registered(rule_id):
                        continue  # already reported as RL002
                    yield Diagnostic(
                        file=path, line=directive.comment_line, col=0,
                        rule=RL003, severity=WARNING,
                        message=f"suppression of {rule_id} matched no "
                                f"finding on line {directive.line}; "
                                f"delete the stale directive")


def parse_suppressions(comments: dict, lines: list,
                       path: str) -> Suppressions:
    """Build the directive table from a ``{line: comment}`` map.

    ``comments`` maps 1-based line numbers to the comment token text
    on that line (from :func:`repro.lint.engine.collect_comments`);
    ``lines`` is the source split into lines, used to decide whether a
    directive is trailing (applies to its own line) or standalone
    (applies to the next line).
    """
    directives = []
    meta = []
    for line_number in sorted(comments):
        comment = comments[line_number]
        if not _DIRECTIVE_RE.search(comment):
            continue
        match = _PARSE_RE.search(comment)
        if not match:
            meta.append(Diagnostic(
                file=path, line=line_number, col=0, rule=RL001,
                severity=ERROR,
                message="malformed repro-lint directive; expected "
                        "'# repro-lint: disable=RL### -- reason'"))
            continue
        rule_ids = tuple(part.strip() for part in
                         match.group(1).split(",") if part.strip())
        reason = (match.group(2) or "").strip()
        if not rule_ids:
            meta.append(Diagnostic(
                file=path, line=line_number, col=0, rule=RL001,
                severity=ERROR,
                message="repro-lint directive disables no rules"))
            continue
        if not reason:
            meta.append(Diagnostic(
                file=path, line=line_number, col=0, rule=RL001,
                severity=ERROR,
                message=f"suppression of {', '.join(rule_ids)} has no "
                        f"reason; write '-- <why this exception is "
                        f"deliberate>' (the directive is ignored "
                        f"until it does)"))
            continue
        for rule_id in rule_ids:
            if not is_registered(rule_id):
                meta.append(Diagnostic(
                    file=path, line=line_number, col=0, rule=RL002,
                    severity=WARNING,
                    message=f"suppression names unknown rule "
                            f"{rule_id!r}"))
        source_line = lines[line_number - 1] if \
            line_number <= len(lines) else ""
        standalone = source_line.lstrip().startswith("#")
        target = line_number + 1 if standalone else line_number
        directives.append(Directive(
            line=target, comment_line=line_number, rules=rule_ids,
            reason=reason))
    return Suppressions(directives, meta)
