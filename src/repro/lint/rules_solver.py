"""Solver-backend confinement rules (RL7xx).

The backend seam (:mod:`repro.solver.backends`) is the only place an
iterative linear solver is allowed to run, because it is the only
place that *certifies* one: every Krylov solution is checked against
the explicit row-equilibrated residual ``‖R(Ax − b)‖ ≤ tol·‖Rb‖``
with an LU fallback on non-convergence, the tolerance is part of the
serving cache key, and
the solve is counted under a bounded backend label.  A ``gmres`` call
sprinkled anywhere else would produce results in an uncertified,
unkeyed tolerance class — the exact aliasing the identity layer
exists to prevent.

- **RL701**: ``scipy.sparse.linalg``'s iterative solvers
  (:data:`repro.lint.contracts.ITERATIVE_SOLVER_NAMES`) may be
  imported or called only inside
  :data:`repro.lint.contracts.ITERATIVE_SOLVER_HOME_MODULES`.
"""

from __future__ import annotations

import ast

from repro.lint.contracts import (
    ITERATIVE_SOLVER_HOME_MODULES,
    ITERATIVE_SOLVER_NAMES,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import call_qual
from repro.lint.registry import file_rule, get_rule

_SPARSE_LINALG = "scipy.sparse.linalg"
_ITERATIVE_QUALS = frozenset(
    f"{_SPARSE_LINALG}.{name}" for name in ITERATIVE_SOLVER_NAMES)


def _iterative_imports(tree):
    """Yield ``(node, name)`` for every iterative-solver from-import."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module == _SPARSE_LINALG:
            for alias in node.names:
                if alias.name in ITERATIVE_SOLVER_NAMES:
                    yield node, alias.name


@file_rule(
    "RL701", "iterative-solver-confinement",
    "scipy's iterative solvers may only be used inside the certified "
    "backend seam (repro.solver.backends)",
    scope=lambda module: module not in ITERATIVE_SOLVER_HOME_MODULES)
def check_iterative_solver_confinement(ctx):
    rule = get_rule("RL701")
    for node, name in _iterative_imports(ctx.tree):
        yield Diagnostic(
            file=ctx.path, line=node.lineno, col=node.col_offset,
            rule=rule.id, severity=rule.severity,
            message=f"import of {_SPARSE_LINALG}.{name} outside the "
                    f"backend seam; iterative solves must go through "
                    f"repro.solver.backends, where the residual is "
                    f"certified and the tolerance is cache-keyed")
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            qual = call_qual(ctx, node)
            if qual in _ITERATIVE_QUALS:
                yield Diagnostic(
                    file=ctx.path, line=node.lineno,
                    col=node.col_offset,
                    rule=rule.id, severity=rule.severity,
                    message=f"call to {qual}() outside the backend "
                            f"seam; iterative solves must go through "
                            f"repro.solver.backends, where the "
                            f"residual is certified and the tolerance "
                            f"is cache-keyed")
