"""Observability firewall rules (RL6xx).

``repro.obs`` is execution-only by contract: counters, spans and logs
describe how a build *ran*, never what it *is*.  The moment a metric
or a span attribute flows into ``canonical()`` / ``cache_key()``,
instrumentation starts splitting cache keys — the exact failure mode
the identity/execution separation (RL1xx) exists to prevent.  This
family fences the package off mechanically:

- **RL601**: a declared identity module
  (:data:`repro.lint.contracts.IDENTITY_MODULES`) must not import
  ``repro.obs`` at all, at any level.
- **RL602**: no module may *use* ``repro.obs`` — a call, a name bound
  from it, or a late import — inside a function named in
  :data:`repro.lint.contracts.IDENTITY_FUNCTIONS`.

Together with the RL201 clock exemption being confined to
:data:`repro.lint.contracts.CLOCK_EXEMPT_MODULES`, these keep the
tracer's wall clocks strictly on the execution side of the firewall.
"""

from __future__ import annotations

import ast

from repro.lint.contracts import (
    IDENTITY_FUNCTIONS,
    IDENTITY_MODULES,
    OBS_PACKAGE,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import call_qual, enclosing_functions
from repro.lint.registry import file_rule, get_rule


def _is_obs(qual) -> bool:
    """True when a dotted name lives under the observability package."""
    return qual is not None and (
        qual == OBS_PACKAGE or qual.startswith(OBS_PACKAGE + "."))


def _obs_imports(tree):
    """Yield ``(node, imported_name)`` for every obs import statement."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_obs(alias.name):
                    yield node, alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if _is_obs(node.module):
                yield node, node.module


@file_rule(
    "RL601", "obs-in-identity-module",
    "identity modules (canonical forms feeding cache keys) must not "
    "import the execution-only observability package",
    scope=lambda module: module in IDENTITY_MODULES)
def check_obs_in_identity_module(ctx):
    rule = get_rule("RL601")
    for node, imported in _obs_imports(ctx.tree):
        yield Diagnostic(
            file=ctx.path, line=node.lineno, col=node.col_offset,
            rule=rule.id, severity=rule.severity,
            message=f"identity module {ctx.module} imports {imported}; "
                    f"{OBS_PACKAGE} is execution-only and must stay "
                    f"out of modules that define cache-key identity")


def _obs_local_names(ctx):
    """Local names this file binds to anything under ``repro.obs``."""
    return frozenset(
        local for local, target in ctx.import_aliases.items()
        if _is_obs(target))


def _in_identity_function(node):
    """The enclosing identity-form function's name, or ``None``."""
    for function in enclosing_functions(node):
        if function.name in IDENTITY_FUNCTIONS:
            return function.name
    return None


@file_rule(
    "RL602", "obs-in-identity-function",
    "identity-form functions (canonical/to_dict/cache_key) must not "
    "touch the observability package")
def check_obs_in_identity_function(ctx):
    rule = get_rule("RL602")
    obs_names = _obs_local_names(ctx)

    def flag(node, what):
        function = _in_identity_function(node)
        if function is None:
            return
        yield Diagnostic(
            file=ctx.path, line=node.lineno, col=node.col_offset,
            rule=rule.id, severity=rule.severity,
            message=f"{what} inside {function}(); identity forms feed "
                    f"cache keys, and {OBS_PACKAGE} is execution-only "
                    f"— instrument the call site, not the identity")

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_obs(alias.name):
                    yield from flag(node, f"import of {alias.name}")
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and _is_obs(node.module):
            yield from flag(node, f"import of {node.module}")
        elif isinstance(node, ast.Call):
            qual = call_qual(ctx, node)
            if _is_obs(qual):
                yield from flag(node, f"call to {qual}()")
        elif isinstance(node, ast.Name) \
                and isinstance(node.ctx, ast.Load) \
                and node.id in obs_names:
            # Skip the callee of a Call — already flagged above with
            # the richer qualified name.
            parent = getattr(node, "parent", None)
            if isinstance(parent, ast.Call) and parent.func is node:
                continue
            if isinstance(parent, ast.Attribute):
                grand = getattr(parent, "parent", None)
                if isinstance(grand, ast.Call) and grand.func is parent:
                    continue
            yield from flag(node, f"use of {node.id} (bound from "
                                  f"{ctx.import_aliases[node.id]})")
