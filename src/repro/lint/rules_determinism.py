"""Determinism rules (RL2xx).

The solver's contract is bitwise reproducibility: same spec, same
surrogate, on any machine, any core count, any day.  Ambient entropy —
wall clocks, process-global RNG state, urandom — breaks that silently,
usually months later when two "identical" builds stop comparing equal.
Wall-clock time has exactly one sanctioned job here: stamping the
``created_at``/``last_used`` provenance fields, which are documented
as non-identity metadata (see :data:`repro.lint.contracts.TIMESTAMP_FIELDS`).
"""

from __future__ import annotations

import ast

from repro.lint.contracts import (
    CLOCK_EXEMPT_MODULES,
    LEGACY_NP_RANDOM,
    NONDETERMINISTIC_CALLS,
    TIMESTAMP_FIELDS,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ancestors, call_qual
from repro.lint.registry import file_rule, get_rule

_ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate"})


def _timestamp_slot_names(target):
    """Names a value lands in, for allowlist matching."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Attribute):
        yield target.attr
    elif isinstance(target, ast.Subscript) \
            and isinstance(target.slice, ast.Constant):
        yield target.slice.value
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _timestamp_slot_names(element)


def _in_timestamp_slot(node) -> bool:
    """True when the call's value flows into a declared stamp field.

    Covers ``created_at = ... time.time()``, ``d["last_used"] = ...``
    and ``f(created_at=time.time())`` — the allowlisted provenance
    stamping sites.  Anything else (loop seeds, tolerances, file
    names) is a determinism leak.
    """
    for parent in ancestors(node):
        if isinstance(parent, ast.keyword) \
                and parent.arg in TIMESTAMP_FIELDS:
            return True
        if isinstance(parent, ast.Assign):
            for target in parent.targets:
                if TIMESTAMP_FIELDS.intersection(
                        _timestamp_slot_names(target)):
                    return True
        if isinstance(parent, (ast.AnnAssign, ast.AugAssign)):
            if TIMESTAMP_FIELDS.intersection(
                    _timestamp_slot_names(parent.target)):
                return True
        if isinstance(parent, ast.stmt):
            # Statement boundary: no enclosing slot can claim it.
            return False
    return False


def _forbidden(qual: str):
    """Reason string when ``qual`` is a nondeterministic entry point."""
    if qual is None:
        return None
    if qual in NONDETERMINISTIC_CALLS:
        return f"{qual}() reads ambient state"
    if qual.startswith("random.") or qual == "random":
        return ("the stdlib 'random' module is process-global state; "
                "derive a np.random.default_rng(seed) stream instead")
    for prefix in ("numpy.random.", "np.random."):
        if qual.startswith(prefix) \
                and qual[len(prefix):] in LEGACY_NP_RANDOM:
            return (f"legacy module-level numpy RNG ({qual}) mutates "
                    f"global state; use np.random.default_rng(seed) / "
                    f"SeedSequence.spawn")
    return None


@file_rule(
    "RL201", "nondeterministic-call",
    "wall clocks, urandom or global RNG state inside identity/solver "
    "paths (only created_at/last_used stamping is allowlisted)")
def check_nondeterministic_call(ctx):
    rule = get_rule("RL201")
    if ctx.module in CLOCK_EXEMPT_MODULES:
        # The tracer and event log exist to read the clock; RL601
        # separately guarantees neither can reach an identity form.
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        reason = _forbidden(call_qual(ctx, node))
        if reason is None:
            continue
        if _in_timestamp_slot(node):
            continue
        yield Diagnostic(
            file=ctx.path, line=node.lineno, col=node.col_offset,
            rule=rule.id, severity=rule.severity,
            message=f"nondeterministic call: {reason}; identical "
                    f"builds must be bitwise-identical (wall-clock "
                    f"is allowed only when stamping "
                    f"{sorted(TIMESTAMP_FIELDS)})")


def _is_set_construct(node) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) \
        and isinstance(node.func, ast.Name) \
        and node.func.id in ("set", "frozenset")


def _iter_sources(tree):
    """(iterable-expression, anchor-node) pairs of every iteration."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter, node


@file_rule(
    "RL202", "unordered-set-iteration",
    "iterating a set construct feeds hash-order into ordered output; "
    "wrap it in sorted()")
def check_unordered_set_iteration(ctx):
    rule = get_rule("RL202")
    seen = set()

    def flag(node):
        key = (node.lineno, node.col_offset)
        if key in seen:
            return
        seen.add(key)
        yield Diagnostic(
            file=ctx.path, line=node.lineno, col=node.col_offset,
            rule=rule.id, severity=rule.severity,
            message="iteration over a set follows hash order, which "
                    "is not stable across processes (PYTHONHASHSEED) "
                    "or value provenance; wrap the set in sorted() "
                    "before it feeds ordered output")

    for iterable, _ in _iter_sources(ctx.tree):
        if _is_set_construct(iterable):
            yield from flag(iterable)
        # enumerate(set(...)) in a for-loop header
        if isinstance(iterable, ast.Call) \
                and isinstance(iterable.func, ast.Name) \
                and iterable.func.id in _ORDER_SENSITIVE_WRAPPERS \
                and iterable.args \
                and _is_set_construct(iterable.args[0]):
            yield from flag(iterable.args[0])
    # list(set(...)) / tuple(set(...)) anywhere: materializes hash
    # order into a sequence.
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_SENSITIVE_WRAPPERS \
                and node.args and _is_set_construct(node.args[0]):
            yield from flag(node.args[0])
