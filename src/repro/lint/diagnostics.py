"""Diagnostic records and output formatting for :mod:`repro.lint`.

A :class:`Diagnostic` is one finding: file, 1-based line, 0-based
column, rule id, severity and a human message.  Text output is the
familiar ``path:line:col: RULE severity: message`` shape (one finding
per line, stable sort), and :func:`format_json` emits the
machine-readable document the CI annotation step and future tooling
consume without parsing text.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

#: Findings with this severity fail the lint run (exit code 1).
ERROR = "error"
#: Reported but non-fatal unless ``--strict``.
WARNING = "warning"

SEVERITIES = (ERROR, WARNING)

#: Version of the ``--json`` document layout.
JSON_VERSION = 1


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, anchored to a file position.

    The field order (file, line, col, rule) doubles as the sort
    order, so reports are deterministic regardless of rule execution
    order.
    """

    file: str
    line: int
    col: int
    rule: str
    severity: str
    message: str


def counts(diagnostics) -> dict:
    """``{"error": n, "warning": m}`` tally of a diagnostic list."""
    tally = {ERROR: 0, WARNING: 0}
    for diagnostic in diagnostics:
        tally[diagnostic.severity] = tally.get(diagnostic.severity, 0) + 1
    return tally


def format_text(diagnostics) -> str:
    """Human-readable report, one ``path:line:col`` finding per line."""
    lines = [
        f"{d.file}:{d.line}:{d.col}: {d.rule} {d.severity}: {d.message}"
        for d in sorted(diagnostics)
    ]
    tally = counts(diagnostics)
    if lines:
        lines.append(
            f"found {tally[ERROR]} error(s), {tally[WARNING]} warning(s)")
    return "\n".join(lines)


def format_json(diagnostics) -> str:
    """Machine-readable report (sorted findings + counts)."""
    return json.dumps({
        "version": JSON_VERSION,
        "counts": counts(diagnostics),
        "diagnostics": [asdict(d) for d in sorted(diagnostics)],
    }, indent=2, sort_keys=True)
