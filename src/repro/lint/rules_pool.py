"""Process-pool safety rules (RL4xx).

Callables that cross a process boundary are pickled by reference:
lambdas and closures raise ``PicklingError`` — but only at runtime, on
a machine with more than one core, which is exactly where CI isn't.
The rule statically rejects lambdas and nested functions at every
declared pool entry point (``.submit``/``.map`` on pool-ish receivers,
``ProcessPoolExecutor(initializer=...)``,
``ParallelWaveEvaluator(problem_builder)``), so the single-core
container catches what only an 8-core box would have crashed on.
"""

from __future__ import annotations

import ast

from repro.lint.contracts import POOL_CONSTRUCTORS, POOL_RECEIVER_HINTS
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import dotted_name, enclosing_functions
from repro.lint.registry import file_rule, get_rule


def _local_callables(func) -> set:
    """Names bound to nested defs or lambdas inside ``func``."""
    names = set()
    for node in ast.walk(func):
        if node is func:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _pool_receiver(call: ast.Call) -> bool:
    if not isinstance(call.func, ast.Attribute) \
            or call.func.attr not in ("submit", "map"):
        return False
    receiver = dotted_name(call.func.value)
    if receiver is None:
        return False
    tail = receiver.split(".")[-1].lower()
    return any(hint in tail for hint in POOL_RECEIVER_HINTS)


def _boundary_args(call: ast.Call):
    """Expressions of ``call`` that must be picklable callables."""
    if _pool_receiver(call):
        if call.args:
            yield call.args[0]
        return
    callee = dotted_name(call.func)
    if callee is None:
        return
    name = callee.split(".")[-1]
    spec = POOL_CONSTRUCTORS.get(name)
    if spec is None:
        return
    positions, keywords = spec
    for position in positions:
        if len(call.args) > position:
            yield call.args[position]
    for keyword in call.keywords:
        if keyword.arg in keywords:
            yield keyword.value


@file_rule(
    "RL401", "unpicklable-pool-callable",
    "a lambda or nested function crosses a process-pool boundary; "
    "only module-level callables pickle")
def check_unpicklable_pool_callable(ctx):
    rule = get_rule("RL401")
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        locals_in_scope = set()
        for func in enclosing_functions(node):
            locals_in_scope |= _local_callables(func)
        for expression in _boundary_args(node):
            bad = None
            for inner in ast.walk(expression):
                if isinstance(inner, ast.Lambda):
                    bad = (inner, "a lambda")
                    break
                if isinstance(inner, ast.Name) \
                        and inner.id in locals_in_scope:
                    bad = (inner, f"nested function {inner.id!r}")
                    break
            if bad is None:
                continue
            culprit, what = bad
            yield Diagnostic(
                file=ctx.path, line=culprit.lineno,
                col=culprit.col_offset, rule=rule.id,
                severity=rule.severity,
                message=f"{what} is handed to a process-pool "
                        f"boundary; closures do not pickle, so this "
                        f"raises PicklingError on any multi-worker "
                        f"run — hoist it to a module-level function "
                        f"(functools.partial over one is fine)")
