"""The repo's machine-checked invariant contracts.

This module is the single declared source of truth the rule families
check against.  When a future PR adds a new execution-only knob, a new
timestamp field or a new pool entry point, it must be registered here
— the lint rules read these tables, so the registration *is* the
enforcement.  Everything here mirrors an invariant the repo documents
(docs/ARCHITECTURE.md, docs/ADAPTIVE.md, the spec/store docstrings);
docs/LINT.md catalogues the rules built on top.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fields that change how a surrogate is *built* but not what is
#: built.  They must never reach an identity form (``canonical()`` /
#: ``to_dict()`` default) or any hash-fed JSON: a leaked knob splits
#: the cache key across core counts or warm-start policies, so the
#: same surrogate is rebuilt N times and ``find_warm_start`` goes
#: blind to its own siblings.
EXECUTION_ONLY_FIELDS = {
    "workers": "process count for collocation waves (bitwise-neutral)",
    "warm_start": "seeding policy for adaptive builds (tol-neutral)",
}

#: Function names that produce identity forms.  Execution-only fields
#: may only appear inside them in strip idioms (``del d[f]`` /
#: ``d.pop(f)`` / a ``!= f`` comprehension guard) or under an explicit
#: ``include_<field>`` opt-in branch (the sanctioned wire-form escape
#: hatch, e.g. ``AdaptiveConfig.to_dict(include_workers=True)``).
IDENTITY_FUNCTIONS = ("canonical", "to_dict", "cache_key")


@dataclass(frozen=True)
class StripContract:
    """A declared strip obligation: ``cls.func`` must remove ``field``
    at ``min_sites`` distinct places.  Deleting any one strip site in
    the source drops the count below the contract and fails the lint
    run — the machine-checked version of "the ``workers`` knob must
    be stripped from ``canonical()``" (CHANGES.md, PR 4).
    """

    cls: str
    func: str
    field: str
    min_sites: int
    where: str


#: The strip sites the current architecture requires.
STRIP_CONTRACTS = (
    StripContract(
        cls="ProblemSpec", func="canonical", field="workers",
        min_sites=2,
        where="the top-level reduction dict (del) and the nested "
              "adaptive block (comprehension filter)"),
)

#: The only slots wall-clock time may flow into: usage/provenance
#: stamps that are deliberately *not* part of any identity or result.
TIMESTAMP_FIELDS = frozenset({"created_at", "last_used",
                              "updated_at"})

#: Modules whose *job* is reading the clock: the span tracer stamps
#: wall/monotonic origins on every span and the structured event log
#: timestamps every record.  Both live strictly on the execution side
#: of the identity firewall (see OBS_PACKAGE below), so RL201's
#: wall-clock ban does not apply inside them — anywhere else it does.
CLOCK_EXEMPT_MODULES = ("repro.obs.log", "repro.obs.trace")

#: The observability package.  Everything under it is execution-only
#: by contract: counters, spans and logs describe how a build *ran*,
#: never what it *is*.  RL601 keeps it out of identity forms — an
#: identity module importing repro.obs, or an identity function
#: (IDENTITY_FUNCTIONS) touching it, would put instrumentation one
#: refactor away from perturbing a cache key.
OBS_PACKAGE = "repro.obs"

#: Modules that define surrogate identity (canonical forms feeding
#: cache keys).  They must not import the observability package at
#: all; execution modules may, but never inside IDENTITY_FUNCTIONS.
IDENTITY_MODULES = ("repro.serving.spec",)

#: Fully-qualified callables that read ambient nondeterministic state.
#: ``random.*`` and legacy ``numpy.random.*`` are matched by prefix
#: (see rules_determinism); these are the exact-name bans.
NONDETERMINISTIC_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
})

#: Legacy module-level numpy RNG entry points (global mutable state —
#: never reproducible across call orders).  ``default_rng`` /
#: ``Generator`` / ``SeedSequence`` are the sanctioned replacements.
LEGACY_NP_RANDOM = frozenset({
    "seed", "rand", "randn", "random", "randint", "random_integers",
    "random_sample", "ranf", "sample", "choice", "shuffle",
    "permutation", "normal", "standard_normal", "uniform", "get_state",
    "set_state",
})

#: Hash constructors whose input must be canonical (sorted-key) JSON
#: when it comes from ``json.dumps``.
HASH_CONSTRUCTORS = frozenset({
    "hashlib.sha256", "hashlib.sha1", "hashlib.sha512", "hashlib.md5",
    "hashlib.blake2b", "hashlib.blake2s", "hashlib.new",
})

#: Modules patrolled by the store-atomicity family: every persistent
#: write under the store layer — serving, the daemon subsystem that
#: mutates the same store (index, gc, server) *and* the campaign
#: layer that writes catalogs into it — must go through the
#: unique-tmp+rename helper, or a torn write becomes silently wrong
#: statistics.
STORE_LAYER_PREFIXES = ("repro.serving", "repro.daemon",
                        "repro.campaign")

#: The only modules allowed to open sqlite connections, and the pragma
#: statements every connection there must configure.  The sqlite index
#: is a *cache* over the sidecars (disk wins, the index self-heals);
#: WAL mode keeps a crashed writer from corrupting the db file for
#: concurrent readers, and an explicit synchronous level documents the
#: declared durability tradeoff.  A ``sqlite3.connect`` anywhere else
#: in the store layer means someone is growing a second source of
#: truth.
SQLITE_INDEX_MODULES = ("repro.daemon.index",)
SQLITE_REQUIRED_PRAGMAS = ("journal_mode=WAL", "synchronous=NORMAL")

#: A function whose name contains one of these substrings IS an
#: atomic-write helper: raw file operations are its job.
ATOMIC_WRITER_NAMES = ("atomic_write",)

#: The only modules allowed to touch scipy's iterative solvers.  The
#: backend seam (``SolverBackend``) certifies every iterative solution
#: — explicit residual check, LU fallback on non-convergence, labeled
#: counters — and the serving identity layer hashes the tolerance into
#: the cache key.  A ``gmres`` call anywhere else would be an
#: uncertified, unkeyed tolerance class leaking into results.
ITERATIVE_SOLVER_HOME_MODULES = ("repro.solver.backends",)

#: The scipy.sparse.linalg entry points the confinement rule patrols.
ITERATIVE_SOLVER_NAMES = frozenset({
    "bicg", "bicgstab", "cg", "cgs", "gcrotmk", "gmres", "lgmres",
    "minres", "qmr", "tfqmr", "lsqr", "lsmr",
})

#: Receivers whose ``.submit`` / ``.map`` cross a process boundary
#: (matched as a case-insensitive substring of the receiver name).
POOL_RECEIVER_HINTS = ("pool", "executor")

#: Constructors that take a callable which must survive pickling:
#: mapping of constructor name to the argument positions/keywords to
#: inspect.
POOL_CONSTRUCTORS = {
    "ProcessPoolExecutor": ((), ("initializer",)),
    "ParallelWaveEvaluator": ((0,), ("problem_builder",)),
}
