"""repro.lint — AST-based invariant checker for this repository.

The codebase's load-bearing guarantees (bitwise-identical parallel and
warm builds, process-stable cache keys, corruption-safe store writes,
picklable pool callables, a documented public API) were enforced by
convention and sampled by tests; this package enforces them
mechanically on every file, every commit.  It is stdlib-only by
design: the CI lint job runs ``python -m repro.lint src/repro``
without installing the scientific stack.

Rule families (full catalog in ``docs/LINT.md``):

- **RL0xx** meta: parse errors and suppression hygiene (reasons are
  mandatory, stale suppressions are flagged).
- **RL1xx** identity/execution separation: execution-only knobs never
  reach ``canonical()``/``to_dict()`` forms, declared strip sites must
  keep existing, hash-fed ``json.dumps`` must sort keys.
- **RL2xx** determinism: no wall clocks / global RNG state outside
  the ``created_at``/``last_used`` stamping allowlist; no iteration
  over raw sets into ordered output.
- **RL3xx** store atomicity: every write under ``repro.serving`` and
  ``repro.daemon`` goes through the unique-tmp+rename helper, and
  sqlite stays confined to the WAL-configured sidecar index.
- **RL4xx** pool safety: only module-level callables cross process
  boundaries.
- **RL5xx** public-API drift: ``__all__`` entries must resolve and be
  documented.
- **RL6xx** observability firewall: the execution-only ``repro.obs``
  package never reaches identity modules or ``canonical()`` /
  ``cache_key()`` forms, so instrumentation can never perturb a
  cache key.
- **RL7xx** solver-backend confinement: scipy's iterative solvers run
  only inside the certified backend seam
  (``repro.solver.backends``), where residuals are checked, failures
  fall back to the direct LU, and tolerances are cache-keyed.

Suppress a deliberate exception inline, with a reason::

    thing()  # repro-lint: disable=RL201 -- why this one is safe
"""

from repro.lint.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    counts,
    format_json,
    format_text,
)
from repro.lint.registry import all_rules, get_rule, is_registered

# Importing the rule modules registers every rule; the engine then
# discovers them through the registry.
from repro.lint import rules_identity  # noqa: F401
from repro.lint import rules_determinism  # noqa: F401
from repro.lint import rules_store  # noqa: F401
from repro.lint import rules_pool  # noqa: F401
from repro.lint import rules_api  # noqa: F401
from repro.lint import rules_obs  # noqa: F401
from repro.lint import rules_solver  # noqa: F401

from repro.lint.engine import (
    FileContext,
    lint_files,
    lint_paths,
    lint_source,
)

__all__ = [
    "ERROR",
    "WARNING",
    "Diagnostic",
    "FileContext",
    "all_rules",
    "counts",
    "format_json",
    "format_text",
    "get_rule",
    "is_registered",
    "lint_files",
    "lint_paths",
    "lint_source",
]
