"""Identity/execution separation and canonical-hash rules (RL1xx).

The store's headline guarantee — one surrogate per cache key,
bitwise-stable across processes and core counts — holds only while
(a) execution-only knobs never leak into identity forms, (b) the
declared strip sites keep existing, and (c) every hash-fed
``json.dumps`` sorts its keys.  These three rules machine-check the
conventions PRs 2/4/5 established by hand.
"""

from __future__ import annotations

import ast
import re

from repro.lint.contracts import (
    EXECUTION_ONLY_FIELDS,
    HASH_CONSTRUCTORS,
    IDENTITY_FUNCTIONS,
    STRIP_CONTRACTS,
)
from repro.lint.diagnostics import ERROR, Diagnostic
from repro.lint.engine import ancestors, call_qual
from repro.lint.registry import file_rule, get_rule, project_rule

_HASHY_NAME_RE = re.compile(r"canonical|cache_key|_hash|hash_|hashed")


def _identity_functions(tree):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name in IDENTITY_FUNCTIONS:
            yield node


def _guarded_by_include(node, field: str) -> bool:
    """True when an ``include_<field>`` opt-in test guards the node.

    ``AdaptiveConfig.to_dict(include_workers=True)`` is the sanctioned
    wire-form escape hatch: adding the field back is explicit at every
    call site, so the default identity form stays clean.
    """
    opt_in = f"include_{field}"
    for parent in ancestors(node):
        if isinstance(parent, (ast.If, ast.IfExp)):
            for name in ast.walk(parent.test):
                if isinstance(name, ast.Name) and name.id == opt_in:
                    return True
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
    return False


@file_rule(
    "RL101", "execution-field-in-identity",
    "an execution-only field (workers, warm_start, ...) is written "
    "into a canonical()/to_dict() identity form")
def check_execution_field_in_identity(ctx):
    """Flag execution-only fields *added* to an identity dict."""
    rule = get_rule("RL101")
    for func in _identity_functions(ctx.tree):
        for node in ast.walk(func):
            hits = []
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) \
                            and key.value in EXECUTION_ONLY_FIELDS:
                        hits.append((key, key.value))
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) \
                        and node.func.id == "dict":
                    for keyword in node.keywords:
                        if keyword.arg in EXECUTION_ONLY_FIELDS:
                            hits.append((keyword.value, keyword.arg))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.slice, ast.Constant) \
                            and target.slice.value \
                            in EXECUTION_ONLY_FIELDS:
                        hits.append((target, target.slice.value))
            for hit, field in hits:
                if _guarded_by_include(hit, field):
                    continue
                yield Diagnostic(
                    file=ctx.path, line=hit.lineno, col=hit.col_offset,
                    rule=rule.id, severity=rule.severity,
                    message=f"execution-only field {field!r} is "
                            f"written into identity form "
                            f"{func.name}(); it would split the "
                            f"cache key across "
                            f"{EXECUTION_ONLY_FIELDS[field]} — strip "
                            f"it, or gate it behind an "
                            f"include_{field}= opt-in parameter")


def _strip_sites(func, field: str) -> int:
    """Count recognized strip idioms for ``field`` inside ``func``."""
    count = 0
    for node in ast.walk(func):
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.slice, ast.Constant) \
                        and target.slice.value == field:
                    count += 1
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "pop" and node.args \
                and isinstance(node.args[0], ast.Constant) \
                and node.args[0].value == field:
            count += 1
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if any(isinstance(op, (ast.Eq, ast.NotEq, ast.In,
                                   ast.NotIn)) for op in node.ops) \
                    and any(isinstance(operand, ast.Constant)
                            and operand.value == field
                            for operand in operands):
                count += 1
    return count


@project_rule(
    "RL102", "missing-strip-site",
    "a declared identity function no longer strips an execution-only "
    "field at every registered site")
def check_strip_contracts(index):
    """Verify every :data:`~repro.lint.contracts.STRIP_CONTRACTS`."""
    rule = get_rule("RL102")
    for contract in STRIP_CONTRACTS:
        for ctx in index.values():
            for node in ast.walk(ctx.tree):
                if not (isinstance(node, ast.ClassDef)
                        and node.name == contract.cls):
                    continue
                funcs = [item for item in node.body
                         if isinstance(item, (ast.FunctionDef,
                                              ast.AsyncFunctionDef))
                         and item.name == contract.func]
                if not funcs:
                    yield Diagnostic(
                        file=ctx.path, line=node.lineno,
                        col=node.col_offset, rule=rule.id,
                        severity=rule.severity,
                        message=f"{contract.cls} no longer defines "
                                f"{contract.func}(), which is "
                                f"contracted to strip "
                                f"{contract.field!r}; update the "
                                f"strip contract in "
                                f"repro/lint/contracts.py if the "
                                f"identity boundary moved")
                    continue
                for func in funcs:
                    found = _strip_sites(func, contract.field)
                    if found < contract.min_sites:
                        yield Diagnostic(
                            file=ctx.path, line=func.lineno,
                            col=func.col_offset, rule=rule.id,
                            severity=rule.severity,
                            message=f"{contract.cls}.{contract.func}"
                                    f"() must strip execution-only "
                                    f"field {contract.field!r} at "
                                    f"{contract.min_sites} site(s) "
                                    f"({contract.where}); found "
                                    f"{found} — a missing strip "
                                    f"splits the cache key on core "
                                    f"count")


def _dumps_calls(ctx, root):
    for node in ast.walk(root):
        if isinstance(node, ast.Call) and call_qual(ctx, node) in (
                "json.dumps", "json.dump"):
            yield node


def _has_sort_keys(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "sort_keys":
            return isinstance(keyword.value, ast.Constant) \
                and keyword.value.value is True
    return False


@file_rule(
    "RL103", "unsorted-hash-json",
    "json.dumps feeding a hash (or inside a canonical/cache-key "
    "function) lacks sort_keys=True")
def check_unsorted_hash_json(ctx):
    """Hash inputs must be canonical: dict order is arbitrary."""
    rule = get_rule("RL103")
    flagged = set()

    def flag(call):
        key = (call.lineno, call.col_offset)
        if key in flagged or _has_sort_keys(call):
            return
        flagged.add(key)
        yield Diagnostic(
            file=ctx.path, line=call.lineno, col=call.col_offset,
            rule=rule.id, severity=rule.severity,
            message="json.dumps feeding a hash/identity path must "
                    "pass sort_keys=True: dict insertion order is an "
                    "accident of construction, and two processes "
                    "building the same spec would hash to different "
                    "cache keys")

    # Case 1: dumps nested directly inside a hash constructor call.
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) \
                and call_qual(ctx, node) in HASH_CONSTRUCTORS:
            for arg in [*node.args,
                        *[kw.value for kw in node.keywords]]:
                for call in _dumps_calls(ctx, arg):
                    yield from flag(call)
    # Case 2: any dumps inside a function that hashes or whose name
    # marks it as a canonical/cache-key producer.
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        hashy = _HASHY_NAME_RE.search(node.name) is not None
        if not hashy:
            hashy = any(isinstance(inner, ast.Call)
                        and call_qual(ctx, inner) in HASH_CONSTRUCTORS
                        for inner in ast.walk(node))
        if not hashy:
            continue
        for call in _dumps_calls(ctx, node):
            yield from flag(call)
