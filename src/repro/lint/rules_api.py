"""Public-API drift rules (RL5xx).

``__all__`` is the published contract: every name there must resolve
to something real (through from-imports or the top-level package's
lazy ``_EXPORTS`` table) and must carry documentation, or the API
surface drifts — exports that raise ``AttributeError``, lazy-table
entries missing from ``__all__``, documented-by-nobody entry points.
Resolution chases re-export chains across the parsed module index, so
the rule sees through ``repro/__init__`` -> ``repro.mesh`` ->
``repro.mesh.grid``.
"""

from __future__ import annotations

import ast

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import get_rule, project_rule

_LAZY_TABLE_NAMES = ("_EXPORTS", "_LAZY_EXPORTS")
_MAX_CHAIN = 8


def _module_package(ctx):
    """Package a module's relative imports resolve against."""
    module = ctx.module or ""
    if ctx.path.endswith("__init__.py"):
        return module
    return module.rsplit(".", 1)[0] if "." in module else ""


def _resolve_relative(ctx, node: ast.ImportFrom):
    if node.level == 0:
        return node.module
    package = _module_package(ctx)
    parts = package.split(".") if package else []
    ascend = node.level - 1
    if ascend > len(parts):
        return None
    base = parts[:len(parts) - ascend]
    if node.module:
        base.append(node.module)
    return ".".join(base) or None


def module_exports(ctx) -> dict:
    """Map of top-level name to ``(kind, payload)`` for one module.

    Kinds: ``"def"`` (function/class node), ``"assign"`` (Assign
    node), ``"import"`` (``(target_module, original_name)``),
    ``"module"`` (a submodule import) and ``"lazy"`` (an entry of the
    ``_EXPORTS`` table, payload ``(target_module, name)``).
    """
    exports = {}
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            exports[node.name] = ("def", node)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    exports[target.id] = ("assign", node)
            if len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id in _LAZY_TABLE_NAMES \
                    and isinstance(node.value, ast.Dict):
                for key, value in zip(node.value.keys,
                                      node.value.values):
                    if isinstance(key, ast.Constant) \
                            and isinstance(value, ast.Constant):
                        exports[key.value] = (
                            "lazy", (value.value, key.value))
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            exports[node.target.id] = ("assign", node)
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(ctx, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                exports[local] = ("import", (target, alias.name))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                exports[local] = ("module", alias.name)
    return exports


def declared_all(ctx):
    """``(names, node)`` from a literal ``__all__``, or ``None``.

    Understands the lazy-package idiom ``[*_EXPORTS, "__version__"]``
    by expanding the starred table's keys.
    """
    exports = None
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) \
                and any(isinstance(t, ast.Name) and t.id == "__all__"
                        for t in node.targets) \
                and isinstance(node.value, (ast.List, ast.Tuple)):
            names = []
            for element in node.value.elts:
                if isinstance(element, ast.Constant) \
                        and isinstance(element.value, str):
                    names.append(element.value)
                elif isinstance(element, ast.Starred) \
                        and isinstance(element.value, ast.Name) \
                        and element.value.id in _LAZY_TABLE_NAMES:
                    if exports is None:
                        exports = module_exports(ctx)
                    names.extend(
                        name for name, (kind, _) in exports.items()
                        if kind == "lazy")
            return names, node
    return None


def _is_init(ctx) -> bool:
    return ctx.path.endswith("__init__.py") or ctx.module == "<init>"


def _resolve(index, ctx, name, _depth=0):
    """Chase ``name`` through re-export chains to its definition.

    Returns ``(ctx, kind, payload)`` at the terminal, ``None`` when
    the chain leaves the parsed index (external or partial lint — not
    an error), or ``("missing", ctx, name)`` when a module in the
    index genuinely lacks the name.
    """
    if _depth > _MAX_CHAIN:
        return None
    exports = module_exports(ctx)
    if name not in exports:
        return ("missing", ctx, name)
    kind, payload = exports[name]
    if kind in ("import", "lazy"):
        target_module, original = payload
        target_ctx = index.get(target_module)
        if target_ctx is None:
            return None
        return _resolve(index, target_ctx, original, _depth + 1)
    return (ctx, kind, payload)


@project_rule(
    "RL501", "export-drift",
    "__all__ names a symbol that does not exist / resolve, is "
    "duplicated, or the lazy export table disagrees with __all__")
def check_export_drift(index):
    rule = get_rule("RL501")
    for ctx in index.values():
        if not _is_init(ctx):
            continue
        declared = declared_all(ctx)
        if declared is None:
            continue
        names, node = declared
        seen = set()
        for name in names:
            if name in seen:
                yield Diagnostic(
                    file=ctx.path, line=node.lineno,
                    col=node.col_offset, rule=rule.id,
                    severity=rule.severity,
                    message=f"__all__ lists {name!r} more than once")
                continue
            seen.add(name)
            resolved = _resolve(index, ctx, name)
            if resolved is not None and resolved[0] == "missing":
                _, missing_ctx, missing = resolved
                where = missing_ctx.module or missing_ctx.path
                detail = "" if missing_ctx is ctx else \
                    f" (chain dead-ends in {where} looking for " \
                    f"{missing!r})"
                yield Diagnostic(
                    file=ctx.path, line=node.lineno,
                    col=node.col_offset, rule=rule.id,
                    severity=rule.severity,
                    message=f"__all__ exports {name!r} but nothing "
                            f"defines it{detail}; importing it would "
                            f"raise at first use")
        exports = module_exports(ctx)
        for name, (kind, _) in exports.items():
            if kind == "lazy" and name not in seen:
                yield Diagnostic(
                    file=ctx.path, line=node.lineno,
                    col=node.col_offset, rule=rule.id,
                    severity=rule.severity,
                    message=f"lazy export table lists {name!r} but "
                            f"__all__ does not; the public surface "
                            f"and the table must agree")


def _has_attribute_doc(target_ctx, node) -> bool:
    """Attribute docs: a string statement after the assign, a ``#:``
    comment above it, or a trailing ``#:`` on the same line."""
    body = getattr(getattr(node, "parent", None), "body", None)
    if body and node in body:
        position = body.index(node)
        if position + 1 < len(body):
            following = body[position + 1]
            if isinstance(following, ast.Expr) \
                    and isinstance(following.value, ast.Constant) \
                    and isinstance(following.value.value, str):
                return True
    for line in (node.lineno - 1, node.lineno):
        comment = target_ctx.comments.get(line, "")
        if comment.startswith("#:"):
            return True
    return False


@project_rule(
    "RL502", "undocumented-export",
    "a name exported through __init__.py resolves to a definition "
    "with no docstring")
def check_undocumented_export(index):
    rule = get_rule("RL502")
    reported = set()
    for ctx in index.values():
        if not _is_init(ctx):
            continue
        declared = declared_all(ctx)
        if declared is None:
            continue
        names, _ = declared
        for name in names:
            if name.startswith("__") and name.endswith("__"):
                continue
            resolved = _resolve(index, ctx, name)
            if resolved is None or resolved[0] == "missing":
                continue  # RL501's problem
            target_ctx, kind, payload = resolved
            if kind == "module":
                continue
            key = (target_ctx.path, name)
            if key in reported:
                continue
            if kind == "def":
                if ast.get_docstring(payload) is not None:
                    continue
                line, col = payload.lineno, payload.col_offset
                what = "docstring"
            else:  # assign
                if _has_attribute_doc(target_ctx, payload):
                    continue
                line, col = payload.lineno, payload.col_offset
                what = "'#:' comment or attribute docstring"
            reported.add(key)
            yield Diagnostic(
                file=target_ctx.path, line=line, col=col,
                rule=rule.id, severity=rule.severity,
                message=f"{name!r} is exported through "
                        f"{ctx.module or ctx.path} but has no {what}; "
                        f"public API must document itself")
