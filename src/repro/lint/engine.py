"""Parsing and rule-execution engine for :mod:`repro.lint`.

One :class:`FileContext` per file: source, AST (with parent links),
comment map, import-alias table and the parsed suppression directives.
:func:`run` executes every registered (or selected) rule — file rules
per context, project rules once over the whole module index — then
filters findings through the suppression tables and appends the
suppression-hygiene meta diagnostics.

Everything here is stdlib-only on purpose: the CI lint job runs
``python -m repro.lint`` without installing the scientific stack.
"""

from __future__ import annotations

import ast
import io
import tokenize
from pathlib import Path

from repro.lint.diagnostics import ERROR, Diagnostic
from repro.lint.registry import all_rules
from repro.lint.suppress import RL000, parse_suppressions

# ----------------------------------------------------------------------
# AST helpers shared by the rule modules


def attach_parents(tree: ast.AST) -> None:
    """Give every node a ``.parent`` link (the engine does this once)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node


def ancestors(node: ast.AST):
    """Yield parents from the node outward to the module."""
    while True:
        node = getattr(node, "parent", None)
        if node is None:
            return
        yield node


def dotted_name(node: ast.AST):
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def collect_import_aliases(tree: ast.Module) -> dict:
    """Map of local name to the fully-qualified name it binds.

    ``import numpy as np`` gives ``{"np": "numpy"}``; ``from datetime
    import datetime`` gives ``{"datetime": "datetime.datetime"}``.
    Used to expand call qualnames before matching them against the
    contract tables, so ``import time as _t; _t.time()`` cannot dodge
    the determinism family.
    """
    aliases = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def expand_qual(ctx: "FileContext", qual: str):
    """Expand a dotted name's first segment through the import table."""
    if qual is None:
        return None
    head, _, rest = qual.partition(".")
    target = ctx.import_aliases.get(head)
    if target is None:
        return qual
    return f"{target}.{rest}" if rest else target


def call_qual(ctx: "FileContext", call: ast.Call):
    """Fully-expanded dotted name of a call's target, or ``None``."""
    return expand_qual(ctx, dotted_name(call.func))


def enclosing_functions(node: ast.AST) -> list:
    """Innermost-first list of enclosing function definitions."""
    return [parent for parent in ancestors(node)
            if isinstance(parent, (ast.FunctionDef,
                                   ast.AsyncFunctionDef))]


def enclosing_class(node: ast.AST):
    """Nearest enclosing ClassDef, or ``None``."""
    for parent in ancestors(node):
        if isinstance(parent, ast.ClassDef):
            return parent
    return None


def collect_comments(source: str) -> dict:
    """``{line: comment_text}`` for every comment token.

    Tokenization failures (the file already failed ``ast.parse`` or
    uses something exotic) degrade to an empty map rather than
    erroring: suppressions are then simply not honored for that file.
    """
    comments = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return {}
    return comments


# ----------------------------------------------------------------------


class FileContext:
    """Everything the rules need to know about one parsed file."""

    def __init__(self, source: str, path: str, module: str = None):
        self.source = source
        self.path = path
        self.module = module
        self.lines = source.splitlines()
        self.parse_error = None
        try:
            self.tree = ast.parse(source, filename=path)
        except (SyntaxError, ValueError) as exc:
            self.tree = ast.Module(body=[], type_ignores=[])
            self.parse_error = Diagnostic(
                file=path, line=getattr(exc, "lineno", 1) or 1, col=0,
                rule=RL000, severity=ERROR,
                message=f"could not parse file: {exc}")
        attach_parents(self.tree)
        self.import_aliases = collect_import_aliases(self.tree)
        self.comments = collect_comments(source)
        self.suppressions = parse_suppressions(
            self.comments, self.lines, path)


def derive_module(path) -> str:
    """Dotted module name for a file path, if it sits under ``repro``.

    ``src/repro/serving/store.py`` maps to ``repro.serving.store`` and
    package ``__init__.py`` files map to the package itself; files
    outside a ``repro`` tree get ``None`` (scoped rules then skip
    them, everything else still runs).
    """
    parts = list(Path(path).parts)
    if "repro" not in parts:
        return None
    start = len(parts) - 1 - parts[::-1].index("repro")
    tail = parts[start:]
    if tail[-1] == "__init__.py":
        tail = tail[:-1]
    elif tail[-1].endswith(".py"):
        tail[-1] = tail[-1][:-3]
    return ".".join(tail)


def _selected(select):
    if not select:
        return None
    if isinstance(select, str):
        select = select.split(",")
    return frozenset(part.strip() for part in select if part.strip())


def run(contexts: list, select=None) -> list:
    """Run all (or ``select``-ed) rules over the parsed contexts."""
    wanted = _selected(select)
    index = {}
    for ctx in contexts:
        index[ctx.module or ctx.path] = ctx
    raw = []
    for ctx in contexts:
        if ctx.parse_error is not None:
            raw.append(ctx.parse_error)
            continue
        for rule in all_rules():
            if rule.check is None:
                continue
            if wanted is not None and rule.id not in wanted:
                continue
            if rule.scope is not None and not rule.scope(ctx.module):
                continue
            raw.extend(rule.check(ctx))
    for rule in all_rules():
        if rule.project_check is None:
            continue
        if wanted is not None and rule.id not in wanted:
            continue
        raw.extend(rule.project_check(index))

    by_path = {ctx.path: ctx for ctx in contexts}
    kept = []
    for diagnostic in raw:
        ctx = by_path.get(diagnostic.file)
        if ctx is not None and ctx.suppressions.suppresses(diagnostic):
            continue
        kept.append(diagnostic)
    for ctx in contexts:
        kept.extend(ctx.suppressions.meta_diagnostics)
        kept.extend(ctx.suppressions.unused(ctx.path))
    return sorted(kept)


def lint_source(source: str, path: str = "<snippet>",
                module: str = None, select=None) -> list:
    """Lint one in-memory source blob (the fixture-test entry point)."""
    if module is None:
        module = derive_module(path)
    return run([FileContext(source, path, module)], select=select)


def lint_files(paths, select=None) -> list:
    """Lint an explicit list of files together (one shared index)."""
    contexts = []
    for path in paths:
        source = Path(path).read_text(encoding="utf-8")
        contexts.append(FileContext(source, str(path),
                                    derive_module(path)))
    return run(contexts, select=select)


def iter_python_files(paths):
    """Expand files/directories into a sorted, deduplicated file list."""
    seen = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            seen.extend(sorted(path.rglob("*.py")))
        else:
            seen.append(path)
    unique = []
    for path in seen:
        if path not in unique:
            unique.append(path)
    return unique


def lint_paths(paths, select=None) -> list:
    """Lint files and/or directory trees (the CLI entry point)."""
    return lint_files(iter_python_files(paths), select=select)
