"""CLI for :mod:`repro.lint`.

Usage::

    python -m repro.lint [paths ...]    # default: src/repro
    python -m repro.lint --json src/repro
    python -m repro.lint --list-rules
    python -m repro.lint --select RL201,RL301 src/repro/serving

Exit codes: 0 clean (warnings allowed unless ``--strict``), 1 when
findings fail the run, 2 on usage errors or unreadable paths.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint import (
    ERROR,
    all_rules,
    counts,
    format_json,
    format_text,
)
from repro.lint.engine import lint_paths


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        kind = "meta" if rule.check is None \
            and rule.project_check is None else (
            "project" if rule.project_check else "file")
        lines.append(f"{rule.id}  {rule.severity:7}  {kind:7}  "
                     f"{rule.name}: {rule.description}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker: determinism, "
                    "identity/execution separation, store atomicity, "
                    "pool safety and public-API drift "
                    "(see docs/LINT.md)")
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files and/or directories to lint "
             "(default: src/repro)")
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable output (file/line/rule/message)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (meta rules always "
             "run)")
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings also fail the run")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2

    diagnostics = lint_paths(args.paths, select=args.select)
    if args.json:
        print(format_json(diagnostics))
    elif diagnostics:
        print(format_text(diagnostics))
    else:
        print("repro.lint: clean")
    tally = counts(diagnostics)
    failing = tally[ERROR] + (tally["warning"] if args.strict else 0)
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
