"""Store-atomicity rules (RL3xx).

Every persistent byte under the store layer goes through the
unique-tmp+rename helper (``SurrogateStore._atomic_write``): a bare
``open(path, "w")`` that dies mid-write leaves a torn file that reads
as corruption at best and as silently wrong statistics at worst.  The
family patrols ``repro.serving`` *and* ``repro.daemon`` — the
pipeline, service, daemon and gc layers must hand bytes to the store,
never touch disk themselves (RL301) — and confines sqlite to the one
sidecar-index module, where every connection must declare WAL
journaling and its synchronous level (RL302): the index is a cache
over the sidecars, and a second ad-hoc database is a second source of
truth waiting to disagree.
"""

from __future__ import annotations

import ast

from repro.lint.contracts import (
    ATOMIC_WRITER_NAMES,
    SQLITE_INDEX_MODULES,
    SQLITE_REQUIRED_PRAGMAS,
    STORE_LAYER_PREFIXES,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import call_qual, dotted_name, enclosing_functions
from repro.lint.registry import file_rule, get_rule

_WRITE_MODE_CHARS = set("wax+")
_PATH_WRITER_ATTRS = ("write_text", "write_bytes")
_COPY_CALLS = frozenset({
    "shutil.copy", "shutil.copy2", "shutil.copyfile", "shutil.move",
})
_NP_SAVERS = frozenset({
    "numpy.save", "numpy.savez", "numpy.savez_compressed",
    "np.save", "np.savez", "np.savez_compressed",
})
_STDOUT_STREAMS = frozenset({"sys.stdout", "sys.stderr"})


def _in_atomic_writer(node) -> bool:
    return any(
        any(marker in func.name for marker in ATOMIC_WRITER_NAMES)
        for func in enclosing_functions(node))


def _write_mode(call: ast.Call):
    """The mode argument of an ``open``-family call, if any.

    Returns the mode string, ``None`` when the call is read-only
    (no mode argument), or ``"?"`` when the mode is not a literal —
    which the rule treats as a write, conservatively.
    """
    mode = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return None
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return "?"


def _is_store_scope(module) -> bool:
    return bool(module) and module.startswith(STORE_LAYER_PREFIXES)


@file_rule(
    "RL301", "nonatomic-store-write",
    "a file write under the store/serving layer bypasses the "
    "unique-tmp+rename atomic helper",
    scope=_is_store_scope)
def check_nonatomic_store_write(ctx):
    rule = get_rule("RL301")

    def flag(node, what):
        return Diagnostic(
            file=ctx.path, line=node.lineno, col=node.col_offset,
            rule=rule.id, severity=rule.severity,
            message=f"{what} bypasses the atomic unique-tmp+rename "
                    f"helper; a crash mid-write leaves a torn store "
                    f"entry (route the bytes through "
                    f"SurrogateStore._atomic_write)")

    bytesio_names = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and isinstance(node.value,
                                                       ast.Call):
            if call_qual(ctx, node.value) in ("io.BytesIO",
                                              "io.StringIO"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bytesio_names.add(target.id)

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if _in_atomic_writer(node):
            continue
        qual = call_qual(ctx, node)
        func = node.func

        if qual in ("open", "io.open", "os.fdopen") or (
                isinstance(func, ast.Attribute) and func.attr == "open"):
            mode = _write_mode(node)
            if mode is not None and (mode == "?"
                                     or _WRITE_MODE_CHARS & set(mode)):
                yield flag(node, f"open(..., {mode!r})"
                           if mode != "?" else
                           "open(...) with a non-literal mode")
        elif isinstance(func, ast.Attribute) \
                and func.attr in _PATH_WRITER_ATTRS:
            yield flag(node, f".{func.attr}(...)")
        elif qual in _COPY_CALLS:
            yield flag(node, f"{qual}(...)")
        elif qual in _NP_SAVERS:
            first = node.args[0] if node.args else None
            if isinstance(first, ast.Name) \
                    and first.id in bytesio_names:
                continue  # serializing into memory, not onto disk
            yield flag(node, f"{qual}(...) writing straight to disk")
        elif qual == "json.dump":
            stream = node.args[1] if len(node.args) >= 2 else None
            if dotted_name(stream) in _STDOUT_STREAMS:
                continue
            yield flag(node, "json.dump(...) onto a file handle")


@file_rule(
    "RL302", "sqlite-outside-index",
    "sqlite is confined to the sidecar-index module, and every "
    "connection there must declare WAL journaling and its "
    "synchronous level",
    scope=_is_store_scope)
def check_sqlite_outside_index(ctx):
    """The sqlite index is a rebuildable cache, never a second store.

    Outside :data:`~repro.lint.contracts.SQLITE_INDEX_MODULES`, any
    ``sqlite3.connect`` in the store layer is flagged: a second
    database is a second source of truth, and its writes bypass both
    the atomic-sidecar contract and the index's self-heal path.
    Inside the index module, a file that connects must also configure
    each of :data:`~repro.lint.contracts.SQLITE_REQUIRED_PRAGMAS`
    somewhere — a non-WAL or unsynchronized-by-accident connection
    can corrupt the db file under the daemon's concurrent readers.
    """
    rule = get_rule("RL302")
    connects = [
        node for node in ast.walk(ctx.tree)
        if isinstance(node, ast.Call)
        and call_qual(ctx, node) == "sqlite3.connect"]
    if not connects:
        return
    if ctx.module not in SQLITE_INDEX_MODULES:
        for node in connects:
            yield Diagnostic(
                file=ctx.path, line=node.lineno, col=node.col_offset,
                rule=rule.id, severity=rule.severity,
                message="sqlite3.connect outside the sidecar-index "
                        "module grows a second source of truth; the "
                        "store's only database is the rebuildable "
                        "index in "
                        + ", ".join(SQLITE_INDEX_MODULES))
        return
    pragmas_seen = " ".join(
        node.value for node in ast.walk(ctx.tree)
        if isinstance(node, ast.Constant)
        and isinstance(node.value, str))
    for pragma in SQLITE_REQUIRED_PRAGMAS:
        if pragma not in pragmas_seen:
            node = connects[0]
            yield Diagnostic(
                file=ctx.path, line=node.lineno, col=node.col_offset,
                rule=rule.id, severity=rule.severity,
                message=f"sqlite connection never configures "
                        f"'PRAGMA {pragma}'; the index must declare "
                        f"WAL journaling and its synchronous level "
                        f"on every connection")
