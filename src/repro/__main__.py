"""Command-line interface: inspection, nominal solves, surrogate serving.

Usage::

    python -m repro structures            # registered structures/presets
    python -m repro info tsv --json       # structure inventory
    python -m repro solve metalplug       # nominal coupled solve
    python -m repro build request.json    # build/fetch surrogates
    python -m repro query request.json    # answer statistical queries
    python -m repro serve --port 8787     # always-on JSON/HTTP daemon
    python -m repro store ls              # surrogate store inventory
    python -m repro store gc --max-entries 100   # LRU eviction
    python -m repro campaign run grid.json       # chained sweep campaign
    python -m repro campaign status              # campaign catalogs
    python -m repro campaign query ID q.json     # sweep answer table

``build`` and ``query`` take JSON request files (see
:mod:`repro.serving.service`) and emit JSON responses on stdout, so the
system is scriptable as a service.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import logging
import sys

from repro.errors import ReproError
from repro.extraction import capacitance_column, port_current
from repro.geometry import build_metalplug_structure, build_tsv_structure
from repro.reporting import format_kv_block
from repro.solver import AVSolver
from repro.units import to_femtofarad, to_microampere

STRUCTURES = {
    "metalplug": build_metalplug_structure,
    "tsv": build_tsv_structure,
}

#: Length of a cache key / campaign id (sha256 hex digits); used to
#: tell a literal campaign id apart from a grid file path.
_KEY_HEX = 64

#: Contact names per structure, kept static so the ``structures``
#: inventory command answers without building full meshes (tested
#: against the builders in tests/test_cli.py).
STRUCTURE_CONTACTS = {
    "metalplug": ("plug1", "plug2"),
    "tsv": ("tsv1", "tsv2", "w1", "w2", "w3", "w4"),
}


def _build(name: str):
    try:
        return STRUCTURES[name]()
    except KeyError:
        raise SystemExit(
            f"unknown structure {name!r}; choose from "
            f"{sorted(STRUCTURES)}") from None


def _emit_json(payload) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def cmd_info(args) -> int:
    structure = _build(args.structure)
    if args.json:
        kinds = structure.node_kinds()
        _emit_json({
            "structure": args.structure,
            "grid_shape": list(structure.grid.shape),
            "num_nodes": int(structure.grid.num_nodes),
            "materials": [m.name for m in structure.materials.materials],
            "metal_nodes": int(kinds.num_metal),
            "semiconductor_nodes": int(kinds.num_semiconductor),
            "insulator_nodes": int(kinds.num_insulator),
            "contacts": sorted(structure.contacts),
        })
    else:
        print(structure.summary())
    return 0


def cmd_structures(args) -> int:
    from repro.serving import list_presets
    if args.json:
        _emit_json({
            "structures": {
                name: list(STRUCTURE_CONTACTS[name])
                for name in sorted(STRUCTURES)},
            "presets": [{
                "name": preset.name,
                "description": preset.description,
                "defaults": preset.defaults,
            } for preset in list_presets()],
        })
        return 0
    rows = [(name, ", ".join(STRUCTURE_CONTACTS[name]))
            for name in sorted(STRUCTURES)]
    print(format_kv_block(rows, title="registered structures (contacts)"))
    rows = [(preset.name, preset.description)
            for preset in list_presets()]
    print(format_kv_block(rows, title="serving presets"))
    return 0


def cmd_solve(args) -> int:
    structure = _build(args.structure)
    solver = AVSolver(structure, frequency=args.frequency)
    contacts = sorted(structure.contacts)
    driven = contacts[0]
    excitation = {name: (1.0 if name == driven else 0.0)
                  for name in contacts}
    solution = solver.solve(excitation)
    rows = [("frequency [Hz]", f"{args.frequency:.3e}"),
            ("driven contact", driven)]
    payload = {"structure": args.structure, "frequency": args.frequency,
               "driven_contact": driven}
    if args.structure == "tsv":
        column = capacitance_column(solution, driven)
        payload["capacitance_fF"] = {
            name: to_femtofarad(column[name].real) for name in contacts}
        for name in contacts:
            rows.append((f"C[{name}, {driven}] [fF]",
                         f"{to_femtofarad(column[name].real):+.4f}"))
    else:
        currents = {name: port_current(solution, name)
                    for name in contacts}
        payload["current_uA"] = {
            name: to_microampere(abs(current))
            for name, current in currents.items()}
        for name in contacts:
            rows.append((f"I({name}) [uA]",
                         f"{to_microampere(abs(currents[name])):.4f}"))
    if args.json:
        _emit_json(payload)
    else:
        print(format_kv_block(rows,
                              title=f"nominal solve: {args.structure}"))
    return 0


def _overlay_adaptive(spec, args):
    """Apply ``--adaptive``/``--tol``/... build flags onto one spec.

    Identity flags (``--tol``/``--max-solves``/``--max-level``/
    ``--basis``) overlay (and win over) whatever adaptive block the
    request file carries, producing a new spec — and hence a new cache
    key, so adaptive and fixed builds of the same problem never alias.
    ``--workers`` is different: it is an execution knob for *both*
    collocation modes (the fixed level-2 grid parallelizes as one
    wave), lands at the reduction level and never enters the cache key
    — the same surrogate is built bit for bit on any core count.
    """
    from repro.serving.spec import ProblemSpec
    overrides = {}
    if args.tol is not None:
        overrides["tol"] = args.tol
    if args.max_solves is not None:
        overrides["max_solves"] = args.max_solves
    if args.max_level is not None:
        overrides["max_level"] = args.max_level
    if args.basis is not None:
        overrides["basis"] = args.basis
    if not args.adaptive and not overrides and args.workers is None:
        return spec
    reduction = dict(spec.reduction)
    if args.adaptive or overrides:
        adaptive = dict(reduction.get("adaptive") or {})
        adaptive.update(overrides)
        reduction["adaptive"] = adaptive
    if args.workers is not None:
        reduction["workers"] = args.workers
    return ProblemSpec(preset=spec.preset, params=spec.params,
                       reduction=reduction)


def _overlay_solver(spec, args):
    """Apply ``--solver-backend``/``--solver-tol`` onto one spec.

    Both are identity flags: a non-default backend (or tolerance)
    produces a new spec and hence a new cache key, because an
    iterative build certifies a *tolerance class* rather than the
    direct solve's bitwise result.  ``--solver-tol`` implies the
    Krylov backend (a tolerance has no meaning for ``lu``).
    """
    from repro.serving.spec import ProblemSpec
    if args.solver_backend is None and args.solver_tol is None:
        return spec
    reduction = dict(spec.reduction)
    solver = dict(reduction.get("solver") or {})
    if args.solver_backend is not None:
        solver["backend"] = args.solver_backend
    if args.solver_tol is not None:
        solver.setdefault("backend", "krylov")
        solver["tol"] = args.solver_tol
    reduction["solver"] = solver
    return ProblemSpec(preset=spec.preset, params=spec.params,
                       reduction=reduction)


def cmd_build(args) -> int:
    from repro.serving import ensure_surrogate, open_store
    from repro.serving.service import load_request_file, parse_request
    from repro.serving.spec import ProblemSpec
    data = load_request_file(args.request)
    if isinstance(data, dict) and "requests" in data:
        specs = [parse_request(req)[0] for req in data["requests"]]
    elif isinstance(data, dict) and "spec" in data:
        specs = [parse_request(data)[0]]
    else:
        specs = [ProblemSpec.from_dict(data)]
    specs = [_overlay_adaptive(spec, args) for spec in specs]
    specs = [_overlay_solver(spec, args) for spec in specs]
    store = open_store(args.store)
    stack = contextlib.ExitStack()
    tracer = None
    if args.profile:
        # One tracer across the whole invocation: every build's span
        # tree lands in a single Chrome trace-event file.
        from repro.obs import Tracer, activate
        tracer = Tracer()
        stack.enter_context(activate(tracer))
    reports = []
    with stack:
        for spec in specs:
            report = ensure_surrogate(
                spec, store, rebuild=args.rebuild,
                warm_start=not args.no_warm_start)
            entry = {
                "cache_key": report.cache_key,
                "preset": spec.preset,
                "built": report.built,
                "num_solves": report.num_solves,
                "num_runs": report.record.num_runs,
                "wall_time": report.wall_time,
                "timings": report.timings,
                "output_names": report.record.output_names,
                "adaptive": report.record.refinement is not None,
                "basis": report.record.pce.basis.describe(),
            }
            if report.record.refinement is not None:
                refinement = report.record.refinement
                entry["termination"] = refinement.get("termination")
                entry["error_estimate"] = \
                    refinement.get("error_estimate")
                entry["num_indices"] = \
                    len(refinement.get("indices") or [])
                entry["warm_start_source"] = report.warm_start_source
            reports.append(entry)
    out = {"store": str(store.root), "builds": reports}
    if tracer is not None:
        from repro.obs import write_chrome_trace
        write_chrome_trace(args.profile, tracer)
        out["profile"] = args.profile
    _emit_json(out)
    return 0


def cmd_store_ls(args) -> int:
    import time as _time
    from repro.daemon import open_indexed_store
    store = open_indexed_store(args.store)
    entries = store.inventory()
    if args.json:
        _emit_json({"store": str(store.root), "entries": entries})
        return 0
    if not entries:
        print(f"store {store.root}: empty")
        return 0
    rows = []
    for entry in entries:
        if "damaged" in entry:
            rows.append((entry["key"][:16],
                         f"DAMAGED: {entry['damaged']}"))
            continue
        basis = entry["basis"]
        last_used = _time.strftime(
            "%Y-%m-%d %H:%M", _time.localtime(entry["last_used"]))
        rows.append((
            entry["key"][:16],
            f"{entry['preset']}  {entry['reduction']}  "
            f"basis={basis['kind']}:{basis['order']}  "
            f"{entry['size_bytes']} B  runs={entry['num_runs']}  "
            f"last used {last_used}"))
    print(format_kv_block(
        rows, title=f"surrogate store {store.root} "
                    f"({len(entries)} entries)"))
    return 0


def cmd_store_gc(args) -> int:
    from repro.daemon import open_indexed_store, run_gc
    store = open_indexed_store(args.store)
    report = run_gc(store, max_entries=args.max_entries,
                    max_bytes=args.max_bytes, dry_run=args.dry_run)
    if args.json:
        _emit_json(report)
        return 0
    verb = "would evict" if args.dry_run else "evicted"
    rows = [
        ("store", report["store"]),
        ("caps", f"entries<={args.max_entries}  "
                 f"bytes<={args.max_bytes}"),
        ("before", f"{report['before']['entries']} entries, "
                   f"{report['before']['bytes']} B"),
        ("after", f"{report['after']['entries']} entries, "
                  f"{report['after']['bytes']} B"),
        (verb, str(len(report["evicted"]))),
    ]
    if report["skipped_in_use"]:
        rows.append(("skipped (in use)",
                     str(len(report["skipped_in_use"]))))
    if report["damaged"]:
        rows.append(("damaged (kept)", str(len(report["damaged"]))))
    print(format_kv_block(rows, title="store gc"))
    return 0


def cmd_serve(args) -> int:
    import signal
    from repro.daemon import ReproDaemon
    daemon = ReproDaemon(store_path=args.store, host=args.host,
                         port=args.port,
                         build_missing=not args.no_build,
                         access_log=args.access_log,
                         quiet=args.quiet)
    host, port = daemon.address
    logging.basicConfig(
        level=logging.WARNING if args.quiet else logging.INFO,
        format="%(asctime)s %(name)s %(message)s")

    def _stop(signum, frame):
        # shutdown() blocks until serve_forever returns, so it must
        # run off the serving thread the signal interrupted.
        import threading
        threading.Thread(target=daemon.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    print(f"repro daemon listening on http://{host}:{port} "
          f"(store {daemon.store.root})", flush=True)
    daemon.serve_forever()
    return 0


def cmd_query(args) -> int:
    from repro.serving import open_store, serve_batch
    from repro.serving.service import load_request_file
    batch = load_request_file(args.request)
    store = open_store(args.store)
    result = serve_batch(batch, store,
                         build_missing=not args.no_build)
    _emit_json(result)
    return 1 if any("error" in r for r in result["responses"]) else 0


def _resolve_campaign_id(target: str, store) -> str:
    """A 64-hex campaign id, from an id or a grid file path.

    ``repro campaign status|query`` accept either form: a literal id
    (as printed by ``campaign run``) is used as-is, anything else is
    read as a grid JSON file and hashed — so the same file that ran a
    campaign also addresses its catalog.
    """
    if len(target) == _KEY_HEX and all(c in "0123456789abcdef"
                                       for c in target):
        return target
    from repro.campaign import CampaignGrid
    from repro.serving.service import load_request_file
    return CampaignGrid.from_dict(
        load_request_file(target)).campaign_id()


def cmd_campaign_run(args) -> int:
    from repro.campaign import run_campaign
    from repro.serving import open_store
    from repro.serving.service import load_request_file
    grid = load_request_file(args.grid)
    store = open_store(args.store)
    progress = None
    if not args.quiet:
        def progress(row):
            print(f"[{row['status']:>6}] {row['key'][:16]}  "
                  f"solves={row['num_solves']}  "
                  f"warm={(row['warm_source'] or '-')[:16]}",
                  file=sys.stderr, flush=True)
    catalog = run_campaign(grid, store, workers=args.workers,
                           segment_workers=args.segment_workers,
                           warm_start=not args.no_warm_start,
                           rebuild=args.rebuild, progress=progress)
    totals = catalog["totals"]
    if args.json:
        _emit_json(catalog)
    else:
        rows = [
            ("campaign", catalog["campaign"]),
            ("store", str(store.root)),
            ("members", str(totals["members"])),
            ("built / hits / failed",
             f"{totals['built']} / {totals['hits']} / "
             f"{totals['failed']}"),
            ("warm-started", str(totals["warm_started"])),
            ("total solves", str(totals["total_solves"])),
        ]
        print(format_kv_block(rows, title="campaign run"))
    return 1 if totals["failed"] else 0


def cmd_campaign_status(args) -> int:
    from repro.campaign import list_catalogs, read_catalog
    from repro.serving import open_store
    store = open_store(args.store)
    if args.target is None:
        campaigns = list_catalogs(store)
        if args.json:
            _emit_json({"store": str(store.root),
                        "campaigns": campaigns})
            return 0
        if not campaigns:
            print(f"store {store.root}: no campaigns")
            return 0
        rows = []
        for row in campaigns:
            if "damaged" in row:
                rows.append((row["campaign"][:16],
                             f"DAMAGED: {row['damaged']}"))
                continue
            totals = row.get("totals") or {}
            rows.append((
                row["campaign"][:16],
                f"{row.get('name') or row.get('preset')}  "
                f"{totals.get('built', 0)}+{totals.get('hits', 0)}"
                f"/{totals.get('members', 0)} built+hit  "
                f"solves={totals.get('total_solves', 0)}"))
        print(format_kv_block(
            rows, title=f"campaigns in {store.root} "
                        f"({len(campaigns)})"))
        return 0
    catalog = read_catalog(store,
                           _resolve_campaign_id(args.target, store))
    if args.json:
        _emit_json(catalog)
        return 0
    rows = []
    for member in catalog.get("members") or []:
        detail = f"{member['status']}  solves={member['num_solves']}"
        if member.get("warm_source"):
            detail += f"  warm={member['warm_source'][:16]}"
        if member.get("error"):
            detail += f"  error: {member['error']}"
        rows.append((member["key"][:16], detail))
    totals = catalog.get("totals") or {}
    rows.append(("totals",
                 f"{totals.get('built', 0)} built, "
                 f"{totals.get('hits', 0)} hits, "
                 f"{totals.get('failed', 0)} failed, "
                 f"{totals.get('pending', 0)} pending; "
                 f"{totals.get('total_solves', 0)} solves"))
    print(format_kv_block(
        rows, title=f"campaign {catalog.get('campaign', '?')[:16]} "
                    f"({catalog.get('name') or catalog.get('preset')})"))
    return 0


def cmd_campaign_query(args) -> int:
    from repro.campaign import query_campaign, read_catalog
    from repro.errors import CampaignError
    from repro.serving import open_store
    from repro.serving.service import load_request_file
    store = open_store(args.store)
    catalog = read_catalog(store,
                           _resolve_campaign_id(args.target, store))
    data = load_request_file(args.request)
    if isinstance(data, list):
        queries = data
    elif isinstance(data, dict) and "queries" in data:
        queries = data["queries"]
    else:
        raise CampaignError(
            f"campaign query file {args.request} must be a list of "
            f"queries or a mapping with a 'queries' list")
    result = query_campaign(catalog, store, queries,
                            num_samples=args.num_samples,
                            seed=args.seed)
    _emit_json(result)
    return 1 if any("error" in member
                    for member in result["members"]) else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="variation-aware EM-semiconductor coupled solver "
                    "(DATE'12 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="print a structure inventory")
    p_info.add_argument("structure", choices=sorted(STRUCTURES))
    p_info.add_argument("--json", action="store_true",
                        help="machine-readable output")
    p_info.set_defaults(func=cmd_info)

    p_structures = sub.add_parser(
        "structures",
        help="list registered structures and serving presets")
    p_structures.add_argument("--json", action="store_true",
                              help="machine-readable output")
    p_structures.set_defaults(func=cmd_structures)

    p_solve = sub.add_parser("solve", help="run a nominal coupled solve")
    p_solve.add_argument("structure", choices=sorted(STRUCTURES))
    p_solve.add_argument("--frequency", type=float, default=1.0e9,
                         help="excitation frequency in Hz (default 1e9)")
    p_solve.add_argument("--json", action="store_true",
                         help="machine-readable output")
    p_solve.set_defaults(func=cmd_solve)

    p_build = sub.add_parser(
        "build",
        help="build (or fetch) surrogates from a JSON spec/request file")
    p_build.add_argument("request", help="JSON file: a spec, a request, "
                                         "or a batch of requests")
    p_build.add_argument("--store", default=None,
                         help="surrogate store directory "
                              "(default ~/.cache/repro/surrogates)")
    p_build.add_argument("--rebuild", action="store_true",
                         help="rebuild even on a cache hit; implies a "
                              "cold build (stored results are not "
                              "trusted, so none may seed it)")
    p_build.add_argument("--adaptive", action="store_true",
                         help="collocate with the dimension-adaptive "
                              "engine instead of the fixed level-2 grid")
    p_build.add_argument("--tol", type=float, default=None,
                         help="adaptive: relative error tolerance "
                              "(implies --adaptive)")
    p_build.add_argument("--max-solves", type=int, default=None,
                         help="adaptive: hard cap on deterministic "
                              "solves (implies --adaptive)")
    p_build.add_argument("--max-level", type=int, default=None,
                         help="adaptive: cap on the total refinement "
                              "level of any index (implies --adaptive)")
    p_build.add_argument("--basis", choices=("order2", "adaptive"),
                         default=None,
                         help="adaptive: chaos truncation — 'order2' "
                              "keeps the paper's quadratic basis, "
                              "'adaptive' lets the accepted index set "
                              "grow it (implies --adaptive; part of "
                              "the cache key)")
    p_build.add_argument("--solver-backend", choices=("lu", "krylov"),
                         default=None,
                         help="linear-solver backend for the "
                              "deterministic solves: 'lu' (direct, "
                              "the default) or 'krylov' (iterative, "
                              "preconditioned by reused "
                              "factorizations); a non-default choice "
                              "is part of the cache key")
    p_build.add_argument("--solver-tol", type=float, default=None,
                         help="krylov: certified relative residual of "
                              "every deterministic solve (implies "
                              "--solver-backend krylov; part of the "
                              "cache key)")
    p_build.add_argument("--workers", type=int, default=None,
                         help="evaluate collocation points on N worker "
                              "processes — refinement waves and the "
                              "fixed level-2 grid alike "
                              "(bitwise-identical result, never part "
                              "of the cache key)")
    p_build.add_argument("--no-warm-start", action="store_true",
                         help="adaptive: refine from the root index "
                              "even when a stored sibling surrogate "
                              "could seed the build")
    p_build.add_argument("--profile", default=None, metavar="TRACE",
                         help="write a Chrome trace-event JSON of the "
                              "build's span tree (open in "
                              "chrome://tracing or Perfetto); never "
                              "changes what is built or stored")
    p_build.set_defaults(func=cmd_build)

    p_query = sub.add_parser(
        "query",
        help="answer statistical queries from a JSON request file")
    p_query.add_argument("request", help="JSON request/batch file")
    p_query.add_argument("--store", default=None,
                         help="surrogate store directory")
    p_query.add_argument("--no-build", action="store_true",
                         help="fail on a cache miss instead of building")
    p_query.set_defaults(func=cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="run the always-on surrogate daemon (JSON over HTTP)")
    p_serve.add_argument("--store", default=None,
                         help="surrogate store directory "
                              "(default ~/.cache/repro/surrogates)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="bind port; 0 picks an ephemeral port "
                              "(default 8787)")
    p_serve.add_argument("--no-build", action="store_true",
                         help="serve read-only: cache misses become "
                              "per-request errors, zero solves run")
    p_serve.add_argument("--access-log", default=None, metavar="PATH",
                         help="append one structured JSONL event per "
                              "request (method, path, status, "
                              "duration) to this file")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress per-request log lines; the "
                              "access log still records")
    p_serve.set_defaults(func=cmd_serve)

    p_store = sub.add_parser(
        "store",
        help="inspect the surrogate store")
    store_sub = p_store.add_subparsers(dest="store_command",
                                       required=True)
    p_store_ls = store_sub.add_parser(
        "ls",
        help="list stored surrogates (cheap: sidecar metadata only)")
    p_store_ls.add_argument("--store", default=None,
                            help="surrogate store directory "
                                 "(default ~/.cache/repro/surrogates)")
    p_store_ls.add_argument("--json", action="store_true",
                            help="machine-readable output")
    p_store_ls.set_defaults(func=cmd_store_ls)
    p_store_gc = store_sub.add_parser(
        "gc",
        help="evict least-recently-used surrogates until the store "
             "fits under the caps (safe against a live daemon)")
    p_store_gc.add_argument("--store", default=None,
                            help="surrogate store directory "
                                 "(default ~/.cache/repro/surrogates)")
    p_store_gc.add_argument("--max-entries", type=int, default=None,
                            help="keep at most N entries (>= 1; the "
                                 "most-recently-used entry always "
                                 "survives)")
    p_store_gc.add_argument("--max-bytes", type=int, default=None,
                            help="keep at most N payload bytes (best "
                                 "effort: the MRU entry survives even "
                                 "when it alone exceeds the cap)")
    p_store_gc.add_argument("--dry-run", action="store_true",
                            help="plan and report without deleting "
                                 "anything")
    p_store_gc.add_argument("--json", action="store_true",
                            help="machine-readable report")
    p_store_gc.set_defaults(func=cmd_store_gc)

    p_campaign = sub.add_parser(
        "campaign",
        help="run and inspect sweep campaigns (warm-start-chained "
             "build fleets over a parameter grid)")
    campaign_sub = p_campaign.add_subparsers(dest="campaign_command",
                                             required=True)
    p_campaign_run = campaign_sub.add_parser(
        "run",
        help="execute a campaign grid: plan the warm-start chains, "
             "build every member, write the catalog into the store")
    p_campaign_run.add_argument(
        "grid", help="campaign grid JSON file (preset, axes/points, "
                     "base_params, reduction)")
    p_campaign_run.add_argument(
        "--store", default=None,
        help="surrogate store directory "
             "(default ~/.cache/repro/surrogates)")
    p_campaign_run.add_argument(
        "--workers", type=int, default=None,
        help="per-build collocation worker processes (execution "
             "only, never part of any cache key)")
    p_campaign_run.add_argument(
        "--segment-workers", type=int, default=None,
        help="fan independent chain segments over up to N threads; "
             "builds inside a segment stay sequential so every "
             "chained warm start finds its predecessor on disk")
    p_campaign_run.add_argument(
        "--no-warm-start", action="store_true",
        help="build every member cold (the chain degenerates to a "
             "plain ordered sweep)")
    p_campaign_run.add_argument(
        "--rebuild", action="store_true",
        help="force cold rebuilds even for already-stored members")
    p_campaign_run.add_argument(
        "--quiet", action="store_true",
        help="suppress per-member progress lines on stderr")
    p_campaign_run.add_argument(
        "--json", action="store_true",
        help="emit the full catalog document instead of the summary")
    p_campaign_run.set_defaults(func=cmd_campaign_run)
    p_campaign_status = campaign_sub.add_parser(
        "status",
        help="show a campaign catalog (or list all campaigns in the "
             "store)")
    p_campaign_status.add_argument(
        "target", nargs="?", default=None,
        help="campaign id or grid JSON file; omit to list every "
             "campaign in the store")
    p_campaign_status.add_argument(
        "--store", default=None,
        help="surrogate store directory "
             "(default ~/.cache/repro/surrogates)")
    p_campaign_status.add_argument(
        "--json", action="store_true",
        help="machine-readable output")
    p_campaign_status.set_defaults(func=cmd_campaign_status)
    p_campaign_query = campaign_sub.add_parser(
        "query",
        help="answer statistical queries against every campaign "
             "member and tabulate by the sweep's varying parameters")
    p_campaign_query.add_argument(
        "target", help="campaign id or grid JSON file")
    p_campaign_query.add_argument(
        "request", help="JSON file: a list of queries, or a mapping "
                        "with a 'queries' list")
    p_campaign_query.add_argument(
        "--store", default=None,
        help="surrogate store directory "
             "(default ~/.cache/repro/surrogates)")
    p_campaign_query.add_argument(
        "--num-samples", type=int, default=None,
        help="Monte Carlo sample count per member engine "
             "(default: the query engine's own)")
    p_campaign_query.add_argument(
        "--seed", type=int, default=None,
        help="sampling seed per member engine (default: the query "
             "engine's own)")
    p_campaign_query.set_defaults(func=cmd_campaign_query)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
