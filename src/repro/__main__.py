"""Command-line interface: quick inspection and nominal solves.

Usage::

    python -m repro info metalplug        # structure inventory
    python -m repro info tsv
    python -m repro solve metalplug       # nominal coupled solve
    python -m repro solve tsv             # nominal capacitance column
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.extraction import capacitance_column, port_current
from repro.geometry import build_metalplug_structure, build_tsv_structure
from repro.reporting import format_kv_block
from repro.solver import AVSolver
from repro.units import to_femtofarad, to_microampere

STRUCTURES = {
    "metalplug": build_metalplug_structure,
    "tsv": build_tsv_structure,
}


def _build(name: str):
    try:
        return STRUCTURES[name]()
    except KeyError:
        raise SystemExit(
            f"unknown structure {name!r}; choose from "
            f"{sorted(STRUCTURES)}")


def cmd_info(args) -> int:
    structure = _build(args.structure)
    print(structure.summary())
    return 0


def cmd_solve(args) -> int:
    structure = _build(args.structure)
    solver = AVSolver(structure, frequency=args.frequency)
    contacts = sorted(structure.contacts)
    driven = contacts[0]
    excitation = {name: (1.0 if name == driven else 0.0)
                  for name in contacts}
    solution = solver.solve(excitation)
    rows = [("frequency [Hz]", f"{args.frequency:.3e}"),
            ("driven contact", driven)]
    if args.structure == "tsv":
        column = capacitance_column(solution, driven)
        for name in contacts:
            rows.append((f"C[{name}, {driven}] [fF]",
                         f"{to_femtofarad(column[name].real):+.4f}"))
    else:
        for name in contacts:
            current = port_current(solution, name)
            rows.append((f"I({name}) [uA]",
                         f"{to_microampere(abs(current)):.4f}"))
    print(format_kv_block(rows, title=f"nominal solve: {args.structure}"))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="variation-aware EM-semiconductor coupled solver "
                    "(DATE'12 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="print a structure inventory")
    p_info.add_argument("structure", choices=sorted(STRUCTURES))
    p_info.set_defaults(func=cmd_info)

    p_solve = sub.add_parser("solve", help="run a nominal coupled solve")
    p_solve.add_argument("structure", choices=sorted(STRUCTURES))
    p_solve.add_argument("--frequency", type=float, default=1.0e9,
                         help="excitation frequency in Hz (default 1e9)")
    p_solve.set_defaults(func=cmd_solve)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
