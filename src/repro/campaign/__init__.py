"""repro.campaign — sweep campaigns: warm-start-chained build fleets.

A campaign takes a parameter grid over one preset
(:class:`~repro.campaign.grid.CampaignGrid`), orders the member
builds along deterministic nearest-neighbor chains
(:func:`~repro.campaign.plan.plan_campaign`) so each build
warm-starts from its already-built nearest predecessor, executes the
chains (:func:`~repro.campaign.executor.run_campaign`) with the
store-wide sibling search as fallback, and leaves behind a queryable
catalog document inside the store (:mod:`~repro.campaign.catalog`,
:func:`~repro.campaign.query.query_campaign`).  The ``repro campaign
run|status|query`` CLI and the daemon's ``/campaign`` endpoints sit
on these.  See ``docs/CAMPAIGN.md``.
"""

from repro.campaign.grid import CAMPAIGN_VERSION, CampaignGrid
from repro.campaign.plan import (
    PLAN_VERSION,
    CampaignPlan,
    PlanMember,
    plan_campaign,
)
from repro.campaign.catalog import (
    CATALOG_SCHEMA_VERSION,
    catalog_path,
    catalog_summary,
    list_catalogs,
    read_catalog,
    write_catalog,
)
from repro.campaign.executor import run_campaign
from repro.campaign.query import campaign_varying, query_campaign

__all__ = [
    "CAMPAIGN_VERSION",
    "CampaignGrid",
    "PLAN_VERSION",
    "CampaignPlan",
    "PlanMember",
    "plan_campaign",
    "CATALOG_SCHEMA_VERSION",
    "catalog_path",
    "catalog_summary",
    "list_catalogs",
    "read_catalog",
    "write_catalog",
    "run_campaign",
    "campaign_varying",
    "query_campaign",
]
