"""Campaign catalogs: the queryable on-disk record of a sweep.

A catalog is one JSON document per campaign, living inside the store
it populated (``<store>/campaigns/<campaign-id>.json``) and rewritten
atomically after every member resolution.  It records the grid, the
planned chain and the per-member outcome (status, solve count, actual
warm source, termination), so ``repro campaign status`` answers
without touching a single payload and a campaign killed mid-run picks
itself back up: the rerun plans identically, already-built members
come back as zero-solve hits, and the catalog converges to the same
document.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.errors import CampaignError
from repro.serving.spec import canonical_json

#: Catalog document layout version; mismatched documents are rejected
#: rather than reinterpreted.
CATALOG_SCHEMA_VERSION = 1

#: Store subdirectory that holds campaign catalogs — beside the
#: surrogate entries, so GC tooling and backups see one tree.
CAMPAIGN_DIR = "campaigns"

_ID_HEX = 64


def campaign_dir(store) -> Path:
    """The store's catalog directory (created on demand)."""
    path = Path(store.root) / CAMPAIGN_DIR
    path.mkdir(parents=True, exist_ok=True)
    return path


def catalog_path(store, campaign_id: str) -> Path:
    """Where ``campaign_id``'s catalog lives inside ``store``.

    The id is validated as 64-hex first, so a hostile or mistyped id
    can never escape the campaigns directory.
    """
    if not isinstance(campaign_id, str) or len(campaign_id) != _ID_HEX \
            or any(c not in "0123456789abcdef" for c in campaign_id):
        raise CampaignError(
            f"malformed campaign id {campaign_id!r} (expected 64 hex "
            f"digits — see 'repro campaign status' for known ids)")
    return campaign_dir(store) / f"{campaign_id}.json"


def _atomic_write_catalog(path: Path, text: str) -> None:
    """Unique-tmp+rename write — the store layer's atomicity contract.

    Mirrors ``SurrogateStore._atomic_write``: a campaign killed in the
    middle of a catalog rewrite leaves the previous complete document,
    never a torn one.
    """
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def write_catalog(store, catalog: dict) -> Path:
    """Persist a catalog document atomically; returns its path."""
    campaign_id = catalog.get("campaign")
    path = catalog_path(store, campaign_id)
    _atomic_write_catalog(path, canonical_json(catalog) + "\n")
    return path


def read_catalog(store, campaign_id: str) -> dict:
    """Load one catalog document.

    Raises :class:`~repro.errors.CampaignError` for unknown ids,
    unreadable documents and unsupported layout versions — a status
    query must never silently misreport a sweep.
    """
    path = catalog_path(store, campaign_id)
    try:
        catalog = json.loads(path.read_text())
    except FileNotFoundError:
        raise CampaignError(
            f"no campaign catalog under {campaign_id}") from None
    except (OSError, ValueError) as exc:
        raise CampaignError(
            f"unreadable campaign catalog {campaign_id}: {exc}"
        ) from exc
    version = catalog.get("catalog_version")
    if version != CATALOG_SCHEMA_VERSION:
        raise CampaignError(
            f"campaign catalog {campaign_id} was written under "
            f"layout {version!r}; this build reads "
            f"{CATALOG_SCHEMA_VERSION}")
    return catalog


def catalog_summary(catalog: dict) -> dict:
    """The one-line status row of a catalog (listings, daemon)."""
    return {
        "campaign": catalog.get("campaign"),
        "name": catalog.get("name"),
        "preset": catalog.get("preset"),
        "totals": catalog.get("totals") or {},
        "updated_at": catalog.get("updated_at"),
    }


def list_catalogs(store) -> list:
    """Summaries of every catalog in the store, newest update first.

    Damaged documents are reported as ``{"campaign", "damaged"}`` rows
    instead of raising — a listing must describe the store it has.
    """
    rows = []
    directory = Path(store.root) / CAMPAIGN_DIR
    for path in sorted(directory.glob("*.json")):
        if len(path.stem) != _ID_HEX:
            continue
        try:
            rows.append(catalog_summary(read_catalog(store, path.stem)))
        except CampaignError as exc:
            rows.append({"campaign": path.stem, "damaged": str(exc)})
    rows.sort(key=lambda row: (-(row.get("updated_at") or 0.0),
                               row["campaign"]))
    return rows
