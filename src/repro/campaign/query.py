"""Campaign-wide statistical queries: one answer table per sweep.

``query_campaign`` fans a JSON query list over every member of a
finished (or partially finished) campaign through the same vectorized
:class:`~repro.serving.query.QueryEngine` the request front-end uses,
and tabulates the answers by the parameters that actually vary across
the grid — the sweep's axes — so ``repro campaign query`` emits a
ready-to-plot table instead of N disconnected reports.
"""

from __future__ import annotations

from repro.errors import (
    CampaignError,
    StoreCorruptionError,
    StoreSchemaError,
)
from repro.serving.query import QueryEngine
from repro.serving.spec import canonical_json


def campaign_varying(catalog: dict) -> list:
    """Parameter names that vary across the catalog's members, sorted.

    These are the sweep's effective axes — the columns a campaign
    answer table is keyed by.  Computed from the catalog's canonical
    member params, so a parameter that only *looks* different (int vs
    int-valued float) does not count as varying.
    """
    members = catalog.get("members") or []
    names = sorted({name for row in members
                    for name in (row.get("params") or {})})
    varying = []
    for name in names:
        values = {canonical_json((row.get("params") or {}).get(name))
                  for row in members}
        if len(values) > 1:
            varying.append(name)
    return varying


def query_campaign(catalog: dict, store, queries,
                   num_samples: int = None, seed: int = None) -> dict:
    """Answer ``queries`` against every member of a campaign.

    Parameters
    ----------
    catalog : dict
        A campaign catalog document
        (:func:`~repro.campaign.catalog.read_catalog`).
    store : SurrogateStore
        The store the campaign populated.
    queries : list of dict
        JSON queries in the request front-end format
        (:meth:`~repro.serving.query.QueryEngine.answer`).
    num_samples, seed : int, optional
        Sampling controls forwarded to the
        :class:`~repro.serving.query.QueryEngine` (defaults are the
        engine's own).

    Returns
    -------
    dict
        ``{"campaign", "varying", "queries", "members"}`` where each
        member row carries its varying-parameter values plus either
        ``answers`` (one per query, in order) or an ``error`` string
        (member not built yet, failed, or its entry is damaged) —
        a partial sweep yields a partial table, never an exception.
    """
    if not isinstance(queries, (list, tuple)) or not queries:
        raise CampaignError(
            "campaign query needs a non-empty list of query dicts")
    options = {}
    if num_samples is not None:
        options["num_samples"] = int(num_samples)
    if seed is not None:
        options["seed"] = int(seed)
    varying = campaign_varying(catalog)
    members = []
    for row in catalog.get("members") or []:
        key = row.get("key")
        params = row.get("params") or {}
        entry = {
            "key": key,
            "params": {name: params.get(name) for name in varying},
            "status": row.get("status"),
        }
        try:
            record = store.get(key)
        except (StoreCorruptionError, StoreSchemaError) as exc:
            record = None
            entry["error"] = f"damaged store entry: {exc}"
        if record is not None:
            engine = QueryEngine(record, **options)
            entry["answers"] = [engine.answer(query)
                                for query in queries]
        elif "error" not in entry:
            entry["error"] = "not built"
        members.append(entry)
    return {
        "campaign": catalog.get("campaign"),
        "varying": varying,
        "queries": [dict(query) for query in queries],
        "members": members,
    }
