"""Campaign grids: a sweep's declarative parameter space.

A :class:`CampaignGrid` names one preset, one shared analysis
(reduction) configuration and a parameter grid — the cartesian
product of ``axes`` overlaid on ``base_params``, plus an optional
explicit ``points`` list — and expands it into the member
:class:`~repro.serving.spec.ProblemSpec` identities.  Like a spec it
is pure data (JSON in, JSON out), so grids cross process boundaries
and live in request files, and the *sorted canonical member list*
hashes into a deterministic campaign id: the same grid written with
different dict orderings, a different axes declaration of the same
point set, duplicated points, a different worker count or a different
human-readable ``name`` is the same campaign.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

from repro.errors import CampaignError
from repro.serving.spec import ProblemSpec, canonical_json

#: Bump when the campaign identity layout changes; hashed into every
#: campaign id so catalogs written under old semantics never alias.
CAMPAIGN_VERSION = 1

_GRID_FIELDS = ("preset", "axes", "points", "base_params",
                "reduction", "name")


def _check_mapping(value, what: str) -> dict:
    if value is None:
        return {}
    if not isinstance(value, dict) or any(
            not isinstance(key, str) for key in value):
        raise CampaignError(
            f"campaign {what} must be a mapping with string keys, "
            f"got {value!r}")
    return dict(value)


@dataclass
class CampaignGrid:
    """One sweep campaign's identity: preset + grid + analysis config.

    Parameters
    ----------
    preset : str
        Registered preset name every member builds against.
    axes : dict, optional
        Mapping of parameter name to the list of values it sweeps.
        Members are the cartesian product over the axes (expanded in
        sorted-name order, each axis in its listed value order).
    points : list, optional
        Explicit parameter-override dicts, appended after the axes
        product — an escape hatch for irregular grids.
    base_params : dict, optional
        Overrides shared by every member; axis values and points
        overlay these.
    reduction : dict, optional
        The shared analysis block (see
        :class:`~repro.serving.spec.ProblemSpec`), typically carrying
        the adaptive stopping controls that make warm-start chaining
        worthwhile.
    name : str, optional
        Human-readable label.  Carried into the catalog but *not*
        hashed: renaming a campaign does not re-run it.
    """

    preset: str
    axes: dict = field(default_factory=dict)
    points: list = field(default_factory=list)
    base_params: dict = field(default_factory=dict)
    reduction: dict = field(default_factory=dict)
    name: str = None

    def __post_init__(self) -> None:
        if not self.preset or not isinstance(self.preset, str):
            raise CampaignError(
                f"campaign preset must be a name, got {self.preset!r}")
        self.axes = _check_mapping(self.axes, "axes")
        for axis, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise CampaignError(
                    f"campaign axis {axis!r} must be a non-empty "
                    f"list of values, got {values!r}")
            self.axes[axis] = list(values)
        if self.points is None:
            self.points = []
        if not isinstance(self.points, (list, tuple)):
            raise CampaignError(
                f"campaign points must be a list of parameter "
                f"mappings, got {self.points!r}")
        self.points = [_check_mapping(point, "point")
                       for point in self.points]
        self.base_params = _check_mapping(self.base_params,
                                          "base_params")
        self.reduction = _check_mapping(self.reduction, "reduction")
        if self.name is not None and not isinstance(self.name, str):
            raise CampaignError(
                f"campaign name must be a string, got {self.name!r}")
        if not self.axes and not self.points:
            raise CampaignError(
                "campaign grid is empty: declare at least one axis "
                "or one explicit point")

    # ------------------------------------------------------------------
    def expand(self) -> list:
        """The member specs, deduplicated by cache key (first wins).

        The axes product comes first (sorted axis names, listed value
        order), then the explicit points.  Two members that canonical-
        ize to the same spec — an axis point repeated as an explicit
        point, say — collapse into one: a campaign never builds the
        same surrogate twice by construction.
        """
        combos = []
        names = sorted(self.axes)
        if names:
            for values in itertools.product(
                    *(self.axes[name] for name in names)):
                combos.append(dict(zip(names, values)))
        combos.extend(dict(point) for point in self.points)
        members = []
        seen = set()
        for overrides in combos:
            spec = ProblemSpec(
                preset=self.preset,
                params={**self.base_params, **overrides},
                reduction=dict(self.reduction))
            key = spec.cache_key()
            if key not in seen:
                seen.add(key)
                members.append(spec)
        return members

    def campaign_id(self) -> str:
        """Deterministic content address of the campaign.

        The sha256 of the *sorted canonical member list* — exactly the
        identities the member cache keys hash — so the id is invariant
        under dict ordering, axes-vs-points phrasing, member
        permutation, duplicate members, worker counts and the human
        ``name``.  A re-run of the same grid therefore finds (and
        resumes) its own catalog.
        """
        members = sorted((spec.canonical() for spec in self.expand()),
                         key=canonical_json)
        doc = {"campaign_version": CAMPAIGN_VERSION, "members": members}
        return hashlib.sha256(
            canonical_json(doc).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Sparse JSON form for round-tripping (``name`` kept)."""
        doc = {
            "preset": self.preset,
            "axes": {axis: list(values)
                     for axis, values in self.axes.items()},
            "points": [dict(point) for point in self.points],
            "base_params": dict(self.base_params),
            "reduction": dict(self.reduction),
        }
        if self.name is not None:
            doc["name"] = self.name
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignGrid":
        """Validate and build a grid from its JSON form."""
        if not isinstance(data, dict):
            raise CampaignError(
                f"campaign grid must be a mapping, got "
                f"{type(data).__name__}")
        unknown = set(data) - set(_GRID_FIELDS)
        if unknown:
            raise CampaignError(
                f"unknown campaign grid fields {sorted(unknown)}; "
                f"valid: {sorted(_GRID_FIELDS)}")
        if "preset" not in data:
            raise CampaignError("campaign grid is missing the preset")
        return cls(preset=data["preset"],
                   axes=data.get("axes") or {},
                   points=data.get("points") or [],
                   base_params=data.get("base_params") or {},
                   reduction=data.get("reduction") or {},
                   name=data.get("name"))
