"""Deterministic nearest-neighbor build chains over a campaign.

``plan_campaign`` turns a campaign's member specs into an execution
plan: members are grouped into *segments* (maximal sets that can
warm-start each other — same preset, same relaxed reduction signature,
parameters differing only numerically), and each segment is ordered
along a greedy nearest-neighbor chain on the same relative-parameter
distance :meth:`~repro.serving.store.SurrogateStore.find_warm_start`
ranks by, so every build's designated warm source is its nearest
*already-built* predecessor.  All ties break on cache keys, so the
plan is byte-stable: the same member set — in any order, from any
dict phrasing, at any worker count — plans identically.

Segments are independent by construction (no member of one can seed a
member of another), which is what lets the executor fan them out over
threads without changing any build's seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.serving.spec import canonical_json
from repro.serving.store import (
    _param_distance,
    warm_reduction_signature,
)

#: Bump when the serialized plan layout changes (catalog consumers
#: key off it).
PLAN_VERSION = 1


@dataclass(frozen=True)
class PlanMember:
    """One scheduled build inside a campaign plan.

    ``key`` is the member spec's cache key; ``params`` its canonical
    (fully resolved, normalized) parameters.  ``warm_source`` is the
    cache key of the chain predecessor this build should warm-start
    from — ``None`` for segment roots and for non-adaptive members,
    which have no refinement state to transfer.  ``segment`` numbers
    the independent chain the member belongs to and ``position`` its
    global execution slot (parents always precede children).
    """

    key: str
    params: dict
    warm_source: str = None
    segment: int = 0
    position: int = 0


@dataclass
class CampaignPlan:
    """An ordered, segmented campaign execution plan.

    ``members`` is the flat execution order (chain parents before
    children); ``specs`` maps each member key back to its live
    :class:`~repro.serving.spec.ProblemSpec` for the executor.
    """

    members: list = field(default_factory=list)
    specs: dict = field(default_factory=dict)

    def segments(self) -> list:
        """Members grouped by segment id, in segment order.

        Each inner list preserves chain order, so running the lists
        concurrently (one worker per segment) executes every chain
        exactly as the sequential plan would.
        """
        groups = {}
        for member in self.members:
            groups.setdefault(member.segment, []).append(member)
        return [groups[segment] for segment in sorted(groups)]

    def to_dict(self) -> dict:
        """Canonical JSON form of the plan (what the catalog stores).

        Deterministic by construction: serializing with
        :func:`~repro.serving.spec.canonical_json` yields the same
        bytes for the same member set however it was phrased.
        """
        return {
            "plan_version": PLAN_VERSION,
            "members": [
                {"key": member.key,
                 "params": member.params,
                 "warm_source": member.warm_source,
                 "segment": member.segment}
                for member in self.members],
        }


def _chain_distance(canon: dict, a: str, b: str) -> float:
    distance = _param_distance(canon[a]["params"], canon[b]["params"])
    # Unreachable within a segment (the grouping token pins the key
    # set and every non-numeric value), kept as a defensive ceiling.
    return math.inf if distance is None else distance


def plan_campaign(specs) -> CampaignPlan:
    """Plan a campaign: segment the members and chain each segment.

    Parameters
    ----------
    specs : iterable of ProblemSpec
        The member identities (duplicates by cache key collapse,
        first occurrence wins).

    Returns
    -------
    CampaignPlan
        Byte-stable plan: members grouped into warm-compatible
        segments, each segment chained greedily — the root is the
        segment's smallest cache key, and every subsequent member is
        the unvisited one nearest (relative parameter distance, then
        cache key) to the already-visited set, warm-started from its
        nearest visited neighbor (nearest, then smallest key).

    Notes
    -----
    The distance is exactly the one
    :meth:`~repro.serving.store.SurrogateStore.find_warm_start` ranks
    candidates by, and the segment compatibility test is exactly its
    sibling gate (preset, :func:`warm_reduction_signature`,
    numeric-only parameter difference) — so a planned chain seed is
    always one the pipeline would accept, and the store-wide fallback
    only fires when the predecessor's entry is missing or damaged at
    build time.
    """
    by_key = {}
    for spec in specs:
        by_key.setdefault(spec.cache_key(), spec)
    canon = {key: spec.canonical() for key, spec in by_key.items()}

    # Group into warm-compatible segments.  The token pins everything
    # the sibling gate checks: preset, the relaxed reduction
    # signature, the parameter name set and every non-numeric value
    # (booleans count as non-numeric, matching _param_distance).
    groups = {}
    for key in sorted(by_key):
        doc = canon[key]
        params = doc["params"]
        fixed = {name: value for name, value in params.items()
                 if isinstance(value, bool)
                 or not isinstance(value, (int, float))}
        token = canonical_json({
            "preset": doc["preset"],
            "names": sorted(params),
            "fixed": fixed,
            "reduction": warm_reduction_signature(doc["reduction"]),
        })
        groups.setdefault(token, []).append(key)

    members = []
    specs_by_key = {}
    ordered = sorted(groups.values(), key=lambda keys: keys[0])
    for segment, keys in enumerate(ordered):
        adaptive = canon[keys[0]]["reduction"].get("adaptive") \
            is not None
        root = keys[0]
        chain = [(root, None)]
        # Prim-style growth: every unvisited member tracks its nearest
        # visited neighbor; each step admits the globally nearest
        # (then smallest-key) candidate and lets the newcomer contest
        # the others' neighbors (strictly nearer, or equally near with
        # a smaller key, wins).
        nearest = {key: (_chain_distance(canon, key, root), root)
                   for key in keys[1:]}
        while nearest:
            key = min(nearest,
                      key=lambda k: (nearest[k][0], k))
            _, parent = nearest.pop(key)
            chain.append((key, parent))
            for other, (best, best_parent) in nearest.items():
                distance = _chain_distance(canon, other, key)
                if distance < best or (distance == best
                                       and key < best_parent):
                    nearest[other] = (distance, key)
        for key, parent in chain:
            members.append(PlanMember(
                key=key,
                params=canon[key]["params"],
                warm_source=parent if adaptive else None,
                segment=segment,
                position=len(members)))
            specs_by_key[key] = by_key[key]
    return CampaignPlan(members=members, specs=specs_by_key)
