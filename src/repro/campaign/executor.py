"""Run a campaign: warm-start-chained builds over a planned grid.

``run_campaign`` expands the grid, plans the deterministic
nearest-neighbor chains (:mod:`~repro.campaign.plan`) and resolves
every member through the one serving entry point
(:func:`~repro.serving.pipeline.ensure_surrogate`), handing each
build its chain predecessor as the designated warm source — with the
store-wide sibling search as fallback when the predecessor's entry is
missing, damaged or failed.  After every member the campaign catalog
is atomically rewritten, so progress is durable: a killed campaign
re-run plans identically and already-built members return as
zero-solve hits.

Independent segments may fan out over a small thread pool
(``segment_workers``); builds inside a segment stay sequential, so
every member's designated seed is already on disk when its build
starts and per-member determinism is untouched.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import Lock

from repro.campaign.catalog import (
    CATALOG_SCHEMA_VERSION,
    write_catalog,
)
from repro.campaign.grid import CampaignGrid
from repro.campaign.plan import plan_campaign
from repro.errors import ReproError
from repro.obs.metrics import counter
from repro.obs.trace import span
from repro.serving.pipeline import ensure_surrogate
from repro.serving.spec import ProblemSpec, canonical_json

#: Execution-only observability (process-global registry): campaign
#: volume, member outcomes and the solves the sweeps spent.
_CAMPAIGN_RUNS = counter(
    "repro_campaign_runs_total", "Campaign executions started")
_CAMPAIGN_MEMBERS = counter(
    "repro_campaign_members_total",
    "Campaign member resolutions, by 'outcome' label "
    "(built / hit / failed)")
_CAMPAIGN_SOLVES = counter(
    "repro_campaign_solves_total",
    "Deterministic coupled solves spent resolving campaign members")


@dataclass
class _RunState:
    """Shared mutable state of one campaign execution.

    Module-level worker functions take this explicitly, so the
    segment fan-out hands the pool only picklable top-level callables.
    """

    plan: object
    store: object
    catalog: dict
    rows: dict
    workers: int = None
    warm_start: bool = True
    rebuild: bool = False
    progress: object = None
    lock: Lock = field(default_factory=Lock)


def _flush_locked(state: _RunState) -> None:
    """Rewrite the catalog from the current rows (caller holds lock)."""
    members = [state.rows[member.key] for member in state.plan.members]
    totals = {
        "members": len(members),
        "built": sum(1 for row in members if row["status"] == "built"),
        "hits": sum(1 for row in members if row["status"] == "hit"),
        "failed": sum(1 for row in members
                      if row["status"] == "failed"),
        "pending": sum(1 for row in members
                       if row["status"] == "pending"),
        "total_solves": sum(row["num_solves"] for row in members),
        "warm_started": sum(1 for row in members
                            if row["warm_source"]),
    }
    state.catalog["members"] = members
    state.catalog["totals"] = totals
    state.catalog["updated_at"] = time.time()
    write_catalog(state.store, state.catalog)


def _member_spec(state: _RunState, member) -> ProblemSpec:
    """The member's spec, with the execution-time worker override.

    ``workers`` is execution-only (stripped from every cache key), so
    the override changes wall time, never identity.
    """
    spec = state.plan.specs[member.key]
    if state.workers is None:
        return spec
    return ProblemSpec(preset=spec.preset, params=dict(spec.params),
                       reduction={**spec.reduction,
                                  "workers": state.workers})


def _run_member(state: _RunState, member) -> None:
    """Resolve one plan member and commit its catalog row."""
    row = state.rows[member.key]
    try:
        with span("campaign_member", cache_key=member.key,
                  segment=member.segment):
            report = ensure_surrogate(
                _member_spec(state, member), state.store,
                rebuild=state.rebuild,
                warm_start=state.warm_start,
                warm_source=member.warm_source)
    except ReproError as exc:
        # One diverged or misconfigured member must not sink the
        # sweep: record the failure and let the chain fall back to
        # the store-wide sibling search for its children.
        outcome = "failed"
        update = {"status": "failed", "error": str(exc)}
    else:
        refinement = report.record.refinement or {}
        outcome = "built" if report.built else "hit"
        update = {
            "status": outcome,
            "num_solves": report.num_solves,
            "warm_source": report.warm_start_source,
            "termination": refinement.get("termination"),
            "error_estimate": refinement.get("error_estimate"),
        }
        _CAMPAIGN_SOLVES.inc(report.num_solves)
    _CAMPAIGN_MEMBERS.inc(outcome=outcome)
    with state.lock:
        row.update(update)
        _flush_locked(state)
        snapshot = dict(row)
    if state.progress is not None:
        state.progress(snapshot)


def _run_segment(state: _RunState, members) -> None:
    """Run one chain segment strictly in plan order."""
    for member in members:
        _run_member(state, member)


def run_campaign(grid, store, workers: int = None,
                 segment_workers: int = None, warm_start: bool = True,
                 rebuild: bool = False, progress=None) -> dict:
    """Execute a campaign and return its final catalog document.

    Parameters
    ----------
    grid : CampaignGrid or dict
        The sweep to run (a mapping is validated through
        :meth:`CampaignGrid.from_dict`).
    store : SurrogateStore
        Store to resolve members against; the catalog is written into
        its ``campaigns/`` directory after every member.
    workers : int, optional
        Per-build collocation worker count, overriding the grid's
        reduction block at execution time only (never the identity).
    segment_workers : int, optional
        Fan independent chain segments over up to this many threads.
        Members *within* a segment always run sequentially — chained
        warm starts need the predecessor on disk.
    warm_start : bool, default True
        Allow warm-started builds; ``False`` runs every member cold
        (the chain degenerates to a plain ordered sweep).
    rebuild : bool, default False
        Force cold rebuilds even for stored members.
    progress : callable, optional
        Called with each member's catalog row as it resolves.

    Returns
    -------
    dict
        The catalog document (also durably stored — see
        :func:`~repro.campaign.catalog.read_catalog`).
    """
    if isinstance(grid, dict):
        grid = CampaignGrid.from_dict(grid)
    plan = plan_campaign(grid.expand())
    catalog = {
        "catalog_version": CATALOG_SCHEMA_VERSION,
        "campaign": grid.campaign_id(),
        "name": grid.name,
        "preset": grid.preset,
        "grid": grid.to_dict(),
        "plan": plan.to_dict(),
    }
    catalog["created_at"] = time.time()
    rows = {}
    for member in plan.members:
        rows[member.key] = {
            "key": member.key,
            "params": member.params,
            "segment": member.segment,
            "planned_warm_source": member.warm_source,
            "status": "pending",
            "num_solves": 0,
            "warm_source": None,
            "termination": None,
            "error_estimate": None,
        }
    state = _RunState(plan=plan, store=store, catalog=catalog,
                      rows=rows, workers=workers,
                      warm_start=warm_start, rebuild=rebuild,
                      progress=progress)
    _CAMPAIGN_RUNS.inc()
    with state.lock:
        _flush_locked(state)
    segments = plan.segments()
    fan_out = min(segment_workers or 1, len(segments))
    if fan_out > 1:
        with ThreadPoolExecutor(max_workers=fan_out) as pool:
            futures = [pool.submit(_run_segment, state, members)
                       for members in segments]
            for future in futures:
                future.result()
    else:
        for members in segments:
            _run_segment(state, members)
    # Hand back plain JSON data, detached from the executor's state.
    return json.loads(canonical_json(state.catalog))
