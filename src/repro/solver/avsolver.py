"""The user-facing coupled A-V solver facade.

One :class:`AVSolver` instance owns a structure and a frequency and
solves deterministic samples: the nominal geometry, a perturbed-grid
sample from the variation models, and/or a perturbed doping profile.
The link topology and nominal geometry are cached so thousands of
stochastic samples share the expensive invariants.

Per *sample* (one geometry + doping pair) the solver additionally
caches the DC equilibrium and the assembled :class:`ACSystem`, which in
turn caches one LU factorization per pinned-contact set.  Repeated
solves on the same sample — per-port drives, full-wave correction
passes, repeated QoI extractions — therefore skip the Newton
equilibrium, the 3N x 3N assembly and the factorization entirely;
:meth:`AVSolver.solve_ports` solves all port drives as one multi-RHS
pass.
"""

from __future__ import annotations


from repro.errors import GeometryError
from repro.geometry.structure import Structure
from repro.materials.doping import DopingProfile
from repro.mesh.dual import GridGeometry, compute_geometry
from repro.mesh.entities import LinkSet
from repro.mesh.perturbed import PerturbedGrid
from repro.solver.ac import ACSolution, ACSystem
from repro.solver.ampere import AmpereSystem, staggered_correction
from repro.solver.backends import resolve_backend
from repro.solver.dc import solve_equilibrium


class AVSolver:
    """Coupled frequency-domain EM-semiconductor solver.

    Parameters
    ----------
    structure:
        The material layout (see :mod:`repro.geometry.builders`).
    frequency:
        Excitation frequency [Hz] (the paper uses 1e9).
    recombination:
        Include SRH recombination in the carrier equations.
    full_wave:
        Run the Ampere vector-potential pass and re-solve with the
        induced EMF (eq. 3 coupling); off by default because the
        correction is negligible at 1 GHz on micrometre structures.
    backend:
        Linear-solver backend designation (see
        :mod:`repro.solver.backends`).  Resolved *once* here and shared
        by every sample's :class:`ACSystem`, so a stateful backend
        (``"krylov"``) can precondition sample ``m`` with sample
        ``m-1``'s factorization.

    Example
    -------
    >>> from repro.geometry import build_metalplug_structure
    >>> solver = AVSolver(build_metalplug_structure(), frequency=1e9)
    >>> solution = solver.solve({"plug1": 1.0, "plug2": 0.0})
    """

    def __init__(self, structure: Structure, frequency: float,
                 recombination: bool = True, full_wave: bool = False,
                 backend=None):
        if frequency <= 0.0:
            raise GeometryError(
                f"frequency must be positive, got {frequency}")
        self.structure = structure
        self.frequency = float(frequency)
        self.recombination = recombination
        self.full_wave = full_wave
        self._backend = resolve_backend(backend)
        self.links = LinkSet(structure.grid)
        self._nominal_geometry = None
        self._ampere = None
        # One-sample cache: (geometry arg, doping arg, ACSystem).  Keyed
        # by *object identity* of the sample arguments — a new perturbed
        # grid or doping profile is a new sample; re-solving the same
        # objects (sweeps, per-port drives, full-wave passes) reuses the
        # equilibrium, the assembly and the cached factorizations.
        self._sample_cache = None

    # ------------------------------------------------------------------
    @property
    def nominal_geometry(self) -> GridGeometry:
        """FVM geometry of the unperturbed grid (cached)."""
        if self._nominal_geometry is None:
            self._nominal_geometry = compute_geometry(
                self.structure.grid, links=self.links)
        return self._nominal_geometry

    def geometry_for(self, sample) -> GridGeometry:
        """Resolve a geometry argument.

        ``sample`` may be ``None`` (nominal), a
        :class:`~repro.mesh.perturbed.PerturbedGrid`, or a ready
        :class:`~repro.mesh.dual.GridGeometry`.
        """
        if sample is None:
            return self.nominal_geometry
        if isinstance(sample, PerturbedGrid):
            return sample.geometry()
        if isinstance(sample, GridGeometry):
            return sample
        raise GeometryError(
            f"cannot interpret geometry sample of type {type(sample)!r}")

    # ------------------------------------------------------------------
    def system_for(self, geometry=None,
                   doping_profile: DopingProfile = None) -> ACSystem:
        """The assembled :class:`ACSystem` of one sample (cached).

        The cache holds the most recent sample, identified by object
        identity of the ``geometry`` and ``doping_profile`` arguments;
        passing a different perturbed grid or doping sample invalidates
        it and triggers a fresh equilibrium solve and assembly.
        """
        cached = self._sample_cache
        if (cached is not None and cached[0] is geometry
                and cached[1] is doping_profile):
            return cached[2]
        grid_geometry = self.geometry_for(geometry)
        equilibrium = solve_equilibrium(
            self.structure, grid_geometry, doping_profile=doping_profile)
        system = ACSystem(self.structure, grid_geometry, equilibrium,
                          self.frequency,
                          recombination=self.recombination,
                          backend=self._backend)
        self._sample_cache = (geometry, doping_profile, system)
        return system

    # ------------------------------------------------------------------
    def solve(self, excitations: dict, geometry=None,
              doping_profile: DopingProfile = None) -> ACSolution:
        """Solve one deterministic sample.

        Parameters
        ----------
        excitations:
            Mapping ``contact name -> complex voltage phasor``.
        geometry:
            Optional perturbed grid / geometry (default: nominal).
        doping_profile:
            Optional RDF doping sample (default: structure doping).
        """
        system = self.system_for(geometry, doping_profile)
        solution = system.solve(excitations)
        if self.full_wave:
            solution = self._full_wave_pass(system, solution)
        return solution

    def solve_ports(self, ports, geometry=None,
                    doping_profile: DopingProfile = None) -> list:
        """Solve all unit port drives of one sample in a single batch.

        One equilibrium, one assembly, one LU factorization and one
        multi-RHS solve cover every port; see
        :meth:`ACSystem.solve_ports`.  Returns one
        :class:`ACSolution` per port, in ``ports`` order.
        """
        system = self.system_for(geometry, doping_profile)
        solutions = system.solve_ports(ports)
        if self.full_wave:
            solutions = [self._full_wave_pass(system, solution)
                         for solution in solutions]
        return solutions

    # ------------------------------------------------------------------
    def _full_wave_pass(self, system: ACSystem,
                        solution: ACSolution) -> ACSolution:
        """One staggered Ampere iteration (see solver.ampere)."""
        if self._ampere is None:
            self._ampere = AmpereSystem(self.structure,
                                        self.nominal_geometry,
                                        backend=self._backend)
        return staggered_correction(system, self._ampere, solution)
