"""DC operating point: the nonlinear-Poisson thermal-equilibrium solve.

The paper's structures are passive (no DC bias), so the operating point
is thermal equilibrium: carrier densities follow the Boltzmann relations
``n = ni exp(V/VT)``, ``p = ni exp(-V/VT)`` and the potential solves the
nonlinear Poisson equation

    div(eps grad V) + q (p(V) - n(V) + N_net) = 0

with ohmic metal-semiconductor contacts pinned at the charge-neutral
equilibrium potential.  The damped Newton-Raphson here is the nonlinear
solve of the paper's eq. (8) specialized to zero bias; every stochastic
sample re-runs it because the RDF perturbation changes ``N_net`` and the
geometric perturbation changes the FVM coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.constants import Q
from repro.em.operators import (
    cell_property_array,
    link_weighted_coefficients,
    scalar_laplacian,
)
from repro.errors import MaterialError
from repro.geometry.structure import Structure
from repro.materials.doping import DopingProfile
from repro.materials.physics import (
    equilibrium_carriers,
    equilibrium_potential,
)
from repro.materials.material import Semiconductor
from repro.mesh.dual import GridGeometry, node_masked_volumes
from repro.solver.newton import NewtonOptions, damped_newton


@dataclass
class EquilibriumState:
    """The DC operating point the AC system linearizes around.

    All nodal arrays are in flat node order; carrier arrays are zero
    outside the carrier (semiconductor + ohmic-contact) node set.
    """

    potential: np.ndarray
    n0: np.ndarray
    p0: np.ndarray
    net_doping: np.ndarray
    carrier_mask: np.ndarray
    semi_node_volumes: np.ndarray
    vt: float
    ni: float
    iterations: int

    @property
    def has_semiconductor(self) -> bool:
        return bool(np.any(self.carrier_mask))


def node_net_doping(structure: Structure,
                    doping_profile: DopingProfile = None) -> np.ndarray:
    """Net doping at every node, honouring an optional profile override.

    The override is how one RDF sample enters a deterministic solve: the
    stochastic driver passes the perturbed
    :class:`~repro.materials.doping.NodePerturbedDoping`.
    """
    if doping_profile is None:
        return structure.net_doping_at_nodes()
    kinds = structure.node_kinds()
    mask = kinds.semiconductor | kinds.ohmic_contact
    values = np.zeros(structure.grid.num_nodes, dtype=float)
    if np.any(mask):
        coords = structure.grid.node_coords()
        values[mask] = doping_profile.net_doping(coords)[mask]
    return values


def solve_equilibrium(structure: Structure, geometry: GridGeometry,
                      doping_profile: DopingProfile = None,
                      newton_options: NewtonOptions = None,
                      ) -> EquilibriumState:
    """Solve the zero-bias operating point on (possibly perturbed)
    ``geometry``.

    Returns a trivial all-zero state when the structure contains no
    semiconductor (the capacitance-only fast path).
    """
    grid = structure.grid
    kinds = structure.node_kinds()
    carrier_mask = kinds.semiconductor | kinds.ohmic_contact
    num_nodes = grid.num_nodes

    if not np.any(carrier_mask):
        zeros = np.zeros(num_nodes)
        return EquilibriumState(
            potential=zeros, n0=zeros.copy(), p0=zeros.copy(),
            net_doping=zeros.copy(), carrier_mask=carrier_mask,
            semi_node_volumes=zeros.copy(),
            vt=0.0, ni=0.0, iterations=0)

    material = structure.primary_semiconductor()
    if not isinstance(material, Semiconductor):
        raise MaterialError("primary semiconductor lookup failed")
    from repro.constants import thermal_voltage
    vt = thermal_voltage(material.temperature)
    ni = material.ni

    net_doping = node_net_doping(structure, doping_profile)

    eps_cells = cell_property_array(structure, lambda m: m.permittivity)
    g_eps = (link_weighted_coefficients(geometry, eps_cells)
             / geometry.link_lengths)
    laplacian = scalar_laplacian(geometry, g_eps)

    _, semi_cells, _ = structure.cell_kind_masks()
    semi_volumes = node_masked_volumes(geometry, semi_cells)

    # Dirichlet: all metal nodes.  Ohmic contacts sit at the local
    # charge-neutral equilibrium potential; isolated metals at 0.
    dirichlet_mask = kinds.metal
    dirichlet_values = np.zeros(num_nodes)
    ohmic = kinds.ohmic_contact
    dirichlet_values[ohmic] = equilibrium_potential(
        net_doping[ohmic], ni, vt)

    free = ~dirichlet_mask
    free_ids = np.nonzero(free)[0]
    lap_ff = laplacian[free_ids][:, free_ids].tocsr()
    rhs_dirichlet = laplacian[free_ids][:, np.nonzero(dirichlet_mask)[0]] \
        @ dirichlet_values[dirichlet_mask]

    carrier_free = carrier_mask[free]
    doping_free = net_doping[free]
    volumes_free = semi_volumes[free]

    def residual_jacobian(v_free):
        residual = lap_ff @ v_free + rhs_dirichlet
        charge_slope = np.zeros_like(v_free)
        if np.any(carrier_free):
            n, p = equilibrium_carriers(v_free[carrier_free], ni, vt)
            rho = Q * (p - n + doping_free[carrier_free])
            residual = residual.copy()
            residual[carrier_free] += rho * volumes_free[carrier_free]
            charge_slope[carrier_free] = (-Q * (n + p) / vt
                                          * volumes_free[carrier_free])
        jacobian = lap_ff + sp.diags(charge_slope)
        return residual, jacobian

    if newton_options is None:
        # Potential updates capped at ~40 thermal voltages: large enough
        # to cross a junction in a few steps, small enough to stay on
        # the Boltzmann exponential's representable range.
        newton_options = NewtonOptions(max_iterations=60,
                                       update_tolerance=1e-10,
                                       max_step=1.0)

    v0_free = np.where(carrier_free,
                       equilibrium_potential(doping_free, ni, vt), 0.0)
    v_free, iterations = damped_newton(residual_jacobian, v0_free,
                                       newton_options)

    potential = dirichlet_values.copy()
    potential[free] = v_free
    n0 = np.zeros(num_nodes)
    p0 = np.zeros(num_nodes)
    n0[carrier_mask], p0[carrier_mask] = equilibrium_carriers(
        potential[carrier_mask], ni, vt)
    return EquilibriumState(
        potential=potential, n0=n0, p0=p0, net_doping=net_doping,
        carrier_mask=carrier_mask, semi_node_volumes=semi_volumes,
        vt=vt, ni=ni, iterations=iterations)
