"""Damped Newton-Raphson iteration.

The paper solves the discretized nonlinear system with Newton-Raphson
(eq. 8).  In this reproduction the nonlinear solve is the DC operating
point (nonlinear Poisson / drift-diffusion); the AC system is its exact
linearization and needs a single linear solve.  The generic driver here
is shared and unit-tested on scalar and vector problems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError
from repro.solver.linear import solve_sparse


@dataclass(frozen=True)
class NewtonOptions:
    """Tuning knobs for :func:`damped_newton`.

    Attributes
    ----------
    max_iterations:
        Hard iteration cap before raising :class:`ConvergenceError`.
    update_tolerance:
        Converged when ``max |dx|`` drops below this (same units as x).
    max_step:
        Elementwise cap on the Newton update (potential updates are
        capped at a few thermal voltages — the classic TCAD damping).
        ``None`` disables the cap.
    armijo_shrink:
        Step-halving factor for the residual-decrease line search.
    max_halvings:
        How many times the step may be halved per iteration.
    """

    max_iterations: int = 50
    update_tolerance: float = 1e-10
    max_step: float = None
    armijo_shrink: float = 0.5
    max_halvings: int = 12


def damped_newton(residual_jacobian, x0: np.ndarray,
                  options: NewtonOptions = None) -> tuple:
    """Solve ``R(x) = 0`` with damped Newton.

    Parameters
    ----------
    residual_jacobian:
        Callable ``x -> (R, J)`` with ``R`` an ``(n,)`` array and ``J``
        sparse ``(n, n)``.
    x0:
        Initial guess (not modified).
    options:
        :class:`NewtonOptions`; defaults are sensible for potentials in
        volts.

    Returns
    -------
    (x, iterations):
        The converged solution and the number of Newton steps taken.

    Raises
    ------
    ConvergenceError
        When the iteration cap is reached or the line search stalls.
    """
    if options is None:
        options = NewtonOptions()
    x = np.array(x0, dtype=float, copy=True)
    if x.ndim != 1:
        raise ConvergenceError("x0 must be a 1-D array")
    if x.size == 0:
        return x, 0

    residual, jacobian = residual_jacobian(x)
    res_norm = float(np.linalg.norm(residual))
    for iteration in range(1, options.max_iterations + 1):
        dx = solve_sparse(sp.csr_matrix(jacobian), -residual)
        if options.max_step is not None:
            peak = float(np.max(np.abs(dx)))
            if peak > options.max_step:
                dx *= options.max_step / peak

        # Line search: accept the first step that reduces the residual
        # norm (or the full step on the final fallback).
        step = 1.0
        accepted = False
        for _ in range(options.max_halvings + 1):
            x_try = x + step * dx
            res_try, jac_try = residual_jacobian(x_try)
            try_norm = float(np.linalg.norm(res_try))
            if try_norm <= res_norm or not np.isfinite(res_norm):
                accepted = True
                break
            step *= options.armijo_shrink
        if not accepted:
            raise ConvergenceError(
                "Newton line search failed to reduce the residual",
                iterations=iteration, residual=res_norm)

        x = x_try
        residual, jacobian = res_try, jac_try
        res_norm = try_norm
        update = float(np.max(np.abs(step * dx)))
        if update < options.update_tolerance:
            return x, iteration

    raise ConvergenceError(
        f"Newton did not converge in {options.max_iterations} iterations "
        f"(last update {update:.3e}, residual {res_norm:.3e})",
        iterations=options.max_iterations, residual=res_norm)
