"""The coupled A-V solver.

* :mod:`repro.solver.linear` — equilibrated sparse LU.
* :mod:`repro.solver.newton` — damped Newton-Raphson (paper eq. 8).
* :mod:`repro.solver.dc` — nonlinear-Poisson equilibrium operating point.
* :mod:`repro.solver.ac` — frequency-domain coupled {V, n, p} system.
* :mod:`repro.solver.ampere` — optional full-wave vector-potential pass.
* :mod:`repro.solver.avsolver` — the user-facing facade.
"""

from repro.solver.linear import SparseFactor, solve_sparse
from repro.solver.newton import NewtonOptions, damped_newton
from repro.solver.dc import EquilibriumState, solve_equilibrium
from repro.solver.ac import ACSolution, ACSystem
from repro.solver.avsolver import AVSolver

__all__ = [
    "SparseFactor",
    "solve_sparse",
    "NewtonOptions",
    "damped_newton",
    "EquilibriumState",
    "solve_equilibrium",
    "ACSolution",
    "ACSystem",
    "AVSolver",
]
