"""The coupled A-V solver.

* :mod:`repro.solver.linear` — equilibrated sparse LU.
* :mod:`repro.solver.backends` — pluggable linear-solver backends
  (the ``"lu"`` reference path and the factor-reuse-preconditioned
  ``"krylov"`` path; see ``docs/SOLVER.md``).
* :mod:`repro.solver.newton` — damped Newton-Raphson (paper eq. 8).
* :mod:`repro.solver.dc` — nonlinear-Poisson equilibrium operating point.
* :mod:`repro.solver.ac` — frequency-domain coupled {V, n, p} system.
* :mod:`repro.solver.ampere` — optional full-wave vector-potential pass.
* :mod:`repro.solver.avsolver` — the user-facing facade.
"""

from repro.solver.linear import SparseFactor, solve_sparse
from repro.solver.backends import (
    KrylovBackend,
    LUBackend,
    SolverBackend,
    SolverConfig,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.solver.newton import NewtonOptions, damped_newton
from repro.solver.dc import EquilibriumState, solve_equilibrium
from repro.solver.ac import ACSolution, ACSystem
from repro.solver.avsolver import AVSolver

__all__ = [
    "SparseFactor",
    "solve_sparse",
    "SolverBackend",
    "SolverConfig",
    "LUBackend",
    "KrylovBackend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "list_backends",
    "resolve_backend",
    "NewtonOptions",
    "damped_newton",
    "EquilibriumState",
    "solve_equilibrium",
    "ACSolution",
    "ACSystem",
    "AVSolver",
]
