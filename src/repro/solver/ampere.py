"""Vector-potential (Ampere) pass — the full-wave part of eq. (3).

The modified Ampere equation couples the magnetic vector potential A to
the total current computed by the V/n/p system:

    curl(1/mu curl A) = J_total,   J_total = (sigma + j w eps) E + J_carrier

Discretely, A lives on links as edge line-integrals [V s]; the curl-curl
operator is ``C^T diag(nu * dualLen_f / area_f) C`` with ``C`` the
metric-free circulation matrix.  The induced EMF ``j w A_e`` then feeds
back into every link voltage of the V/n/p system (see
:meth:`repro.solver.ac.ACSystem.solve`).

Two numerical realities of open-port A-V solvers are handled explicitly:

* the port currents make the discrete current field non-solenoidal at
  the driven contacts, so the right-hand side is Helmholtz-projected
  onto the divergence-free subspace before the solve (the irrotational
  component generates no magnetic field);
* the curl-curl nullspace (discrete gradients) is regularized with a
  small Tikhonov term — a numerical gauge fixing.

At the paper's 1 GHz and micrometre scales the induction correction is
parts-per-billion of the link voltages, so a single staggered A-pass
(quasi-static solve, Ampere solve, one corrected re-solve) is a
converged fixed-point iteration; this is the solver's ``full_wave``
mode.  Face metric factors use the nominal grid.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.constants import MU0
from repro.em.operators import cell_property_array
from repro.em.topology import FaceSet, curl_matrix
from repro.errors import ExtractionError
from repro.geometry.structure import Structure
from repro.mesh.dual import GridGeometry
from repro.solver.backends import resolve_backend
from repro.solver.linear import solve_sparse


def _axis_spacings(axis_coords: np.ndarray) -> np.ndarray:
    return np.diff(axis_coords)


def _dual_half_lengths(axis_coords: np.ndarray) -> np.ndarray:
    """Dual segment length at every node plane along one axis."""
    d = np.diff(axis_coords)
    out = np.empty(axis_coords.size)
    out[0] = d[0] / 2.0
    out[-1] = d[-1] / 2.0
    out[1:-1] = (d[:-1] + d[1:]) / 2.0
    return out


def _flat(field_3d: np.ndarray) -> np.ndarray:
    return np.transpose(field_3d, (2, 1, 0)).ravel()


class AmpereSystem:
    """Curl-curl system for the vector potential on the nominal grid."""

    def __init__(self, structure: Structure, geometry: GridGeometry,
                 gauge_regularization: float = 1e-8, backend=None):
        self._backend = resolve_backend(backend)
        self.structure = structure
        self.geometry = geometry
        self.links = geometry.links
        self.faces = FaceSet(structure.grid)
        self.curl = curl_matrix(structure.grid, self.links, self.faces)
        self._build_face_factors()
        self._build_curl_curl(gauge_regularization)
        self._build_divergence()
        # Both operators are frequency- and excitation-independent, so
        # their LU factorizations are built once (lazily) and reused by
        # every staggered pass of a sweep or multi-port study.
        self._projection_factor = None
        self._curl_curl_factor = None

    # ------------------------------------------------------------------
    def _build_face_factors(self) -> None:
        grid = self.structure.grid
        axes = (grid.xs, grid.ys, grid.zs)
        nu_cells = cell_property_array(
            self.structure, lambda m: 1.0 / (MU0 * m.mu_r))

        factors = []
        for axis in range(3):
            t1, t2 = [a for a in range(3) if a != axis]
            shape = self.faces.face_lattice_shape(axis)
            # Primal face area: product of the transverse cell spacings.
            idx = np.meshgrid(*[np.arange(n) for n in shape],
                              indexing="ij")
            d1 = _axis_spacings(axes[t1])[idx[t1]]
            d2 = _axis_spacings(axes[t2])[idx[t2]]
            area = d1 * d2
            dual_len = _dual_half_lengths(axes[axis])[idx[axis]]
            # Face reluctivity: mean of the two adjacent cells.
            adj = self.faces.face_adjacent_cells(axis)
            nu_vals = np.where(adj >= 0, nu_cells[np.clip(adj, 0, None)],
                               np.nan)
            nu_face = np.nanmean(nu_vals, axis=1)
            factors.append(nu_face * _flat(dual_len / area))
        self.face_factors = np.concatenate(factors)

    def _build_curl_curl(self, gauge_regularization: float) -> None:
        weight = sp.diags(self.face_factors)
        kmat = (self.curl.T @ weight @ self.curl).tocsr()
        diag_scale = float(np.mean(np.abs(kmat.diagonal())))
        if diag_scale == 0.0:
            raise ExtractionError("degenerate curl-curl operator")
        self.curl_curl = kmat
        self.gauge = gauge_regularization * diag_scale

    def _build_divergence(self) -> None:
        links = self.links
        n = self.structure.grid.num_nodes
        num_links = links.num_links
        rows = np.concatenate([links.node_a, links.node_b])
        cols = np.concatenate([np.arange(num_links)] * 2)
        data = np.concatenate([np.ones(num_links), -np.ones(num_links)])
        self.div = sp.csr_matrix((data, (rows, cols)),
                                 shape=(n, num_links))

    # ------------------------------------------------------------------
    def solenoidal_projection(self, link_current: np.ndarray) -> np.ndarray:
        """Remove the irrotational (port-sourced) current component.

        Solves the grounded graph-Laplacian problem
        ``D D^T phi = D I`` and returns ``I - D^T phi``, which has zero
        discrete divergence at every node.
        """
        link_current = np.asarray(link_current, dtype=complex)
        divergence = self.div @ link_current
        if self._projection_factor is None:
            laplacian = (self.div @ self.div.T).tolil()
            # Ground node 0 to fix the nullspace of the graph Laplacian.
            laplacian[0, :] = 0.0
            laplacian[0, 0] = 1.0
            self._projection_factor = self._backend.factorize(
                laplacian.tocsr(), key="ampere.projection")
        rhs = divergence.copy()
        rhs[0] = 0.0
        phi = self._projection_factor.solve(rhs)
        projected = link_current - self.div.T @ phi
        return projected

    def solve_vector_potential(self, link_current: np.ndarray,
                               admittance_feedback: np.ndarray = None,
                               omega: float = None) -> np.ndarray:
        """Solve for the edge line-integrals of A [V s].

        Parameters
        ----------
        link_current:
            Total link currents from the quasi-static solve [A].
        admittance_feedback:
            Optional per-link ``dI/d(link voltage)`` used to include the
            self-consistent ``-dI/dv * j w A`` term; requires ``omega``.
        omega:
            Angular frequency for the feedback term.
        """
        if admittance_feedback is not None and omega is None:
            raise ExtractionError(
                "omega is required with admittance_feedback")
        rhs = self.solenoidal_projection(link_current)
        if admittance_feedback is not None:
            # Frequency-dependent matrix: no reusable factorization.
            matrix = (self.curl_curl + self.gauge * sp.eye(
                self.links.num_links, format="csr")
                - sp.diags(np.asarray(admittance_feedback,
                                      dtype=complex) * 1j * omega))
            return solve_sparse(matrix.tocsr(), rhs)
        if self._curl_curl_factor is None:
            self._curl_curl_factor = self._backend.factorize(
                (self.curl_curl + self.gauge * sp.eye(
                    self.links.num_links, format="csr")).tocsr(),
                key="ampere.curl_curl")
        return self._curl_curl_factor.solve(rhs)


def staggered_correction(system, ampere: AmpereSystem, solution):
    """One staggered full-wave pass over a quasi-static solution.

    Computes the total link currents, solves the Ampere system for the
    vector potential, and re-solves the coupled system with the induced
    EMF ``j w A`` on every link.  The re-solve reuses the
    :class:`~repro.solver.ac.ACSystem`'s cached factorization (same
    pinned-contact set), and the Ampere operators are factorized once
    per :class:`AmpereSystem`, so repeated passes cost only triangular
    solves.
    """
    current = system.link_total_current(solution)
    vector_potential = ampere.solve_vector_potential(current)
    emf = 1j * system.omega * vector_potential
    corrected = system.solve(solution.excitations, link_emf=emf)
    corrected.vector_potential = np.asarray(vector_potential)
    return corrected
