"""Pluggable linear-solver backends (the ``SolverBackend`` seam).

Every deterministic solve in the repo funnels through one seam: a
*backend* turns a square sparse matrix into a *factor* — an object
answering ``solve(rhs)`` for ``(n,)`` and ``(n, k)`` right-hand sides —
and the callers (:class:`~repro.solver.ac.ACSystem`,
:class:`~repro.solver.ampere.AmpereSystem`,
:func:`~repro.solver.sweep.frequency_sweep`) never know which one they
got.  Two backends ship:

* ``"lu"`` — the reference: :class:`~repro.solver.linear.SparseFactor`
  exactly as before the seam existed.  Bitwise-identical results, by
  construction (the backend returns the ``SparseFactor`` itself).
* ``"krylov"`` — GMRES / BiCGSTAB (scipy) preconditioned by an
  *existing* ``SparseFactor``: the previous frequency of a sweep, the
  previous sample of a stochastic study, or a coarser mesh.  The first
  ``factorize`` under a reuse ``key`` is a plain LU (there is nothing
  to reuse yet); later calls under the same key run the iterative
  solver with that LU as the preconditioner and the LU-applied RHS as
  the initial guess.  Every solution is *certified*: the explicit
  row-equilibrated residual ``‖R(Ax − b)‖ ≤ tol·‖Rb‖`` is checked
  (``R`` normalizes each equation by its largest coefficient — the
  scaling the direct path factors under), and on non-convergence the
  backend falls back to a fresh LU (which also becomes the new seed)
  — a stale seed costs time, never correctness.

The registry (:func:`register_backend` / :func:`get_backend`) is the
extension point for the ROADMAP's multi-fidelity mesh ladder; the
conformance suite in ``tests/test_solver_backends.py`` auto-enrolls
every registered backend.

Identity rule (see ``docs/SOLVER.md``): the default ``"lu"`` backend is
*omitted* from a spec's canonical form, so every pre-seam cache key
survives byte-for-byte; any other backend (or tolerance) hashes apart
and is recorded in the store sidecar.  The ``REPRO_SOLVER_BACKEND``
environment variable only steers *direct* solver use where no backend
was chosen — serving builds always pin an explicit resolved backend,
so the store can never be split by an environment leak.
"""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SingularSystemError, SolverBackendError
from repro.obs.metrics import counter
from repro.solver.linear import SparseFactor, _max_abs_rows

#: Environment variable naming the default backend for *direct* solver
#: use (``resolve_backend(None)``).  Serving/store builds ignore it.
BACKEND_ENV_VAR = "REPRO_SOLVER_BACKEND"

#: Execution-only observability.  Factorizations are labeled by the
#: backend that performed them — label values are registered backend
#: names, so the cardinality is bounded by the registry.
_BACKEND_FACTORIZATIONS = counter(
    "repro_solver_backend_factorizations_total",
    "Direct LU factorizations performed, labeled by solver backend")
_KRYLOV_SOLVES = counter(
    "repro_solver_krylov_solves_total",
    "Krylov right-hand-side solves by outcome "
    "(converged / fallback / direct)")
_KRYLOV_ITERATIONS = counter(
    "repro_solver_krylov_iterations_total",
    "Inner Krylov iterations across all preconditioned solves")

_KRYLOV_METHODS = ("gmres", "bicgstab")


@dataclass(frozen=True)
class SolverConfig:
    """Pure-data backend selection: picklable, JSON-round-trippable.

    This is the form that crosses process boundaries (worker pools
    receive it inside a rebuilt problem) and the form a
    :class:`~repro.serving.spec.ProblemSpec` validates and hashes.

    Parameters
    ----------
    backend:
        Registered backend name (``"lu"`` or ``"krylov"``).
    tol:
        Krylov: certified row-equilibrated relative residual
        ``‖R(Ax − b)‖ / ‖Rb‖``.
    maxiter:
        Krylov: inner-iteration budget before the LU fallback.
    method:
        Krylov: ``"gmres"`` (default) or ``"bicgstab"``.
    """

    backend: str = "lu"
    tol: float = 1.0e-10
    maxiter: int = 200
    method: str = "gmres"

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise SolverBackendError(
                f"unknown solver backend {self.backend!r}; "
                f"registered: {list_backends()}")
        if not isinstance(self.tol, float) or not 0.0 < self.tol < 1.0:
            raise SolverBackendError(
                f"tol must be a float in (0, 1), got {self.tol!r}")
        if not isinstance(self.maxiter, int) \
                or isinstance(self.maxiter, bool) or self.maxiter < 1:
            raise SolverBackendError(
                f"maxiter must be a positive integer, got "
                f"{self.maxiter!r}")
        if self.method not in _KRYLOV_METHODS:
            raise SolverBackendError(
                f"unknown Krylov method {self.method!r}; "
                f"valid: {list(_KRYLOV_METHODS)}")
        if self.backend == "lu":
            # A tolerance or iteration budget has no effect on a direct
            # solve; accepting one would either silently drop it from
            # the cache key or split the key over a no-op — reject, the
            # same way spec validation rejects level/fit on an
            # adaptive build.
            defaults = SolverConfig.__dataclass_fields__
            for name in ("tol", "maxiter", "method"):
                if getattr(self, name) != defaults[name].default:
                    raise SolverBackendError(
                        f"{name}={getattr(self, name)!r} has no effect "
                        f"on the direct 'lu' backend; drop it or pick "
                        f"an iterative backend")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Full resolved form (every field explicit) for hashing."""
        return {"backend": self.backend, "tol": self.tol,
                "maxiter": self.maxiter, "method": self.method}

    @classmethod
    def from_dict(cls, data: dict) -> "SolverConfig":
        """Build from a (possibly sparse) mapping; unknowns rejected."""
        if not isinstance(data, dict):
            raise SolverBackendError(
                f"solver config must be a mapping, got "
                f"{type(data).__name__}")
        unknown = set(data) - {"backend", "tol", "maxiter", "method"}
        if unknown:
            raise SolverBackendError(
                f"unknown solver settings {sorted(unknown)}; valid: "
                f"['backend', 'maxiter', 'method', 'tol']")
        normalized = dict(data)
        if "tol" in normalized \
                and isinstance(normalized["tol"], int) \
                and not isinstance(normalized["tol"], bool):
            normalized["tol"] = float(normalized["tol"])
        return cls(**normalized)


class SolverBackend:
    """Base class of the seam: ``factorize`` a matrix into a factor.

    A *factor* is any object with ``solve(rhs)``, ``shape`` and
    ``dtype`` — the :class:`~repro.solver.linear.SparseFactor`
    interface.  ``key`` is an opaque hashable reuse hint: calls that
    share a key solve *related* matrices (same pinned-contact set
    across frequencies or samples), which is what makes factor reuse
    as a preconditioner possible.  Backends are free to ignore it.
    """

    name = "abstract"

    def __init__(self, config: SolverConfig = None):
        self.config = config if config is not None \
            else SolverConfig(backend=self.name)

    def factorize(self, matrix, key=None):
        """Return a solve-ready factor for a square sparse matrix."""
        raise NotImplementedError


class LUBackend(SolverBackend):
    """The reference backend: equilibrated SuperLU, exactly pre-seam.

    ``factorize`` returns the :class:`SparseFactor` itself — no
    wrapper, no extra arithmetic — so results are bitwise-identical to
    the code before the seam existed (the conformance suite asserts
    this against :func:`~repro.solver.linear.solve_sparse`).
    """

    name = "lu"

    def factorize(self, matrix, key=None):
        """Direct LU factorization; the reuse ``key`` is ignored."""
        factor = SparseFactor(matrix)
        _BACKEND_FACTORIZATIONS.inc(backend=self.name)
        return factor


class KrylovBackend(SolverBackend):
    """GMRES/BiCGSTAB preconditioned by a reused ``SparseFactor``.

    Stateful on purpose: the backend instance remembers the last LU it
    built per reuse ``key`` (``_seeds``).  A sweep or stochastic study
    passes *one* instance through every
    :class:`~repro.solver.ac.ACSystem` it creates, so frequency ``k``
    is preconditioned by frequency ``k-1``'s factorization and sample
    ``m`` by sample ``m-1``'s.  Cold calls (no seed, or a seed of the
    wrong size) do a direct LU and record it as the new seed.

    Correctness is certified per right-hand side: the explicit
    row-equilibrated residual must satisfy ``‖R(Ax − b)‖ ≤ tol·‖Rb‖``
    or the factor falls back to a fresh LU of the *current* matrix,
    which replaces the seed
    (``repro_solver_krylov_solves_total{outcome="fallback"}``
    counts these).  A Krylov build therefore degrades to LU speed,
    never to a wrong answer.
    """

    name = "krylov"

    def __init__(self, config: SolverConfig = None):
        super().__init__(config if config is not None
                         else SolverConfig(backend="krylov"))
        if self.config.backend != self.name:
            raise SolverBackendError(
                f"config names backend {self.config.backend!r}, "
                f"expected {self.name!r}")
        self._seeds = {}

    def factorize(self, matrix, key=None):
        """LU when cold, seed-preconditioned Krylov factor when warm."""
        matrix = matrix.tocsr()
        seed = self._seeds.get(key) if key is not None else None
        if seed is None or seed.shape != matrix.shape:
            factor = SparseFactor(matrix)
            _BACKEND_FACTORIZATIONS.inc(backend=self.name)
            if key is not None:
                self._seeds[key] = factor
            return factor

        def refresh(fresh_factor):
            self._seeds[key] = fresh_factor

        return _KrylovFactor(matrix, seed, self.config, refresh)


class _KrylovFactor:
    """Solve-ready Krylov wrapper around one matrix and one LU seed.

    Matches the :class:`~repro.solver.linear.SparseFactor` solve
    contract: ``(n,)`` / ``(n, k)`` right-hand sides, complex RHS
    against a real matrix split into real/imaginary solves, ``n == 0``
    early return, :class:`~repro.errors.SingularSystemError` on shape
    mismatch.  Multi-RHS solves iterate column by column, so a stacked
    solve equals the stacked single solves *exactly*.
    """

    def __init__(self, matrix, seed: SparseFactor,
                 config: SolverConfig, on_refresh):
        self.shape = matrix.shape
        self.dtype = matrix.dtype
        self._matrix = matrix
        self._seed = seed
        self._config = config
        self._on_refresh = on_refresh
        self._direct = None
        self._scaled = None

    # ------------------------------------------------------------------
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Certified iterative solve (LU fallback on non-convergence)."""
        rhs = np.asarray(rhs)
        n = self.shape[0]
        if rhs.shape[0] != n:
            raise SingularSystemError(
                f"rhs length {rhs.shape[0]} does not match matrix "
                f"size {n}")
        if n == 0:
            return np.zeros(rhs.shape,
                            dtype=np.result_type(self.dtype, rhs.dtype))
        if (np.iscomplexobj(rhs)
                and not np.issubdtype(self.dtype, np.complexfloating)):
            # Mirror SparseFactor: a complex RHS against a real matrix
            # is two real solves, keeping dtype promotion identical.
            return (self.solve(np.ascontiguousarray(rhs.real))
                    + 1j * self.solve(np.ascontiguousarray(rhs.imag)))
        if rhs.ndim == 1:
            return self._solve_column(rhs)
        columns = [self._solve_column(np.ascontiguousarray(rhs[:, j]))
                   for j in range(rhs.shape[1])]
        return np.column_stack(columns) if columns else \
            np.zeros(rhs.shape, dtype=np.result_type(self.dtype,
                                                     rhs.dtype))

    # ------------------------------------------------------------------
    def _solve_column(self, b: np.ndarray) -> np.ndarray:
        if self._direct is not None:
            _KRYLOV_SOLVES.inc(outcome="direct")
            return self._direct.solve(b)
        x = self._try_krylov(b)
        if x is not None:
            _KRYLOV_SOLVES.inc(outcome="converged")
            return x
        # Certification failed: factor the current matrix directly and
        # promote it to the new seed so later calls skip the stale one.
        _KRYLOV_SOLVES.inc(outcome="fallback")
        self._direct = SparseFactor(self._matrix)
        _BACKEND_FACTORIZATIONS.inc(backend="krylov")
        self._on_refresh(self._direct)
        return self._direct.solve(b)

    def _scaled_system(self):
        """The matrix in equilibrated coordinates, computed once.

        The coupled A-V matrix mixes entries across ~30 orders of
        magnitude; a Krylov recurrence on the raw matrix breaks down
        in floating point no matter how good the preconditioner is.
        The iteration therefore runs on the same row/col max-scaled
        system the direct path factors: ``Ã = R A C`` with
        ``R = diag(row_scale)``, ``C = diag(col_scale)``.  Returns
        ``None`` for a structurally singular matrix (empty row) —
        the fallback's ``SparseFactor`` then raises the proper error.
        """
        if self._scaled is None:
            row_max = _max_abs_rows(self._matrix)
            if np.any(row_max == 0.0):
                return None
            row_scale = 1.0 / row_max
            scaled = sp.diags(row_scale) @ self._matrix
            col_max = _max_abs_rows(scaled.T.tocsr())
            col_max[col_max == 0.0] = 1.0
            col_scale = 1.0 / col_max
            scaled = (scaled @ sp.diags(col_scale)).tocsr()
            self._scaled = (scaled, row_scale, col_scale)
        return self._scaled

    def _try_krylov(self, b: np.ndarray):
        """One preconditioned solve; ``None`` unless certified."""
        config = self._config
        system = self._scaled_system()
        if system is None:
            return None
        scaled, row_scale, col_scale = system
        seed = self._seed

        # In scaled coordinates ``Ã = R A C``, the seed approximates
        # ``Ã⁻¹ ≈ C⁻¹ A_seed⁻¹ R⁻¹``; the warm start is the seed's own
        # solution of the *original* system, re-expressed in scaled
        # coordinates.
        def apply_seed(v):
            return seed.solve(v / row_scale) / col_scale

        op_dtype = np.result_type(scaled.dtype, seed.dtype)
        preconditioner = spla.LinearOperator(
            self.shape, matvec=apply_seed, dtype=op_dtype)
        b_scaled = row_scale * b
        x0 = seed.solve(b) / col_scale
        iterations = [0]

        def count(_):
            iterations[0] += 1

        solver = getattr(spla, config.method)
        kwargs = dict(_tolerance_kwargs(solver, config.tol),
                      x0=x0, M=preconditioner, callback=count)
        if config.method == "gmres":
            # Budget = total inner iterations, split into restart
            # cycles; the callback then ticks once per inner step.
            restart = min(30, config.maxiter)
            kwargs["restart"] = restart
            kwargs["maxiter"] = -(-config.maxiter // restart)
            kwargs["callback_type"] = "pr_norm"
        else:
            kwargs["maxiter"] = config.maxiter
        try:
            y, info = solver(scaled, b_scaled, **kwargs)
        except Exception:  # scipy breakdowns -> certified fallback
            return None
        _KRYLOV_ITERATIONS.inc(iterations[0])
        if info != 0:
            return None
        # Certify against a recomputed row-equilibrated residual
        # ``‖R(Ax − b)‖ ≤ tol·‖Rb‖`` — each equation normalized by its
        # largest coefficient, the tightest norm the *direct* path
        # itself satisfies on these matrices (whose raw entries span
        # tens of orders of magnitude).  Recomputed from the original
        # matrix, not trusted from the solver's own convergence flag.
        x = col_scale * np.asarray(y)
        residual = np.linalg.norm(row_scale * (self._matrix @ x - b))
        if not np.isfinite(residual) \
                or residual > config.tol * np.linalg.norm(b_scaled):
            return None
        return x


def _tolerance_kwargs(solver, tol: float) -> dict:
    """Relative-tolerance kwargs across the scipy rename (tol->rtol)."""
    if "rtol" in inspect.signature(solver).parameters:
        return {"rtol": tol, "atol": 0.0}
    return {"tol": tol, "atol": 0.0}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS = {}


def register_backend(name: str, factory) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is called as ``factory(config)`` with a
    :class:`SolverConfig` (or ``None`` for defaults) and must return a
    :class:`SolverBackend`.  Registering a name twice is rejected —
    silently replacing a backend would change what existing call sites
    solve with.
    """
    if not name or not isinstance(name, str):
        raise SolverBackendError(f"backend name must be a string, "
                                 f"got {name!r}")
    if name in _BACKENDS:
        raise SolverBackendError(
            f"backend {name!r} is already registered")
    _BACKENDS[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (test harness hygiene)."""
    if name in ("lu", "krylov"):
        raise SolverBackendError(
            f"the built-in backend {name!r} cannot be unregistered")
    _BACKENDS.pop(name, None)


def get_backend(name: str):
    """The registered factory for ``name``."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise SolverBackendError(
            f"unknown solver backend {name!r}; registered: "
            f"{list_backends()}") from None


def list_backends() -> list:
    """Sorted names of every registered backend."""
    return sorted(_BACKENDS)


def resolve_backend(backend=None) -> SolverBackend:
    """Normalize any backend designation to a live instance.

    Accepts ``None`` (the :data:`BACKEND_ENV_VAR` environment variable
    if set, else ``"lu"``), a registered name, a config mapping, a
    :class:`SolverConfig`, or an already-live :class:`SolverBackend`
    (returned unchanged — this is how one stateful instance is shared
    across the systems of a sweep).  Anything resolved from a spec is
    a :class:`SolverConfig`, so the environment variable can never
    reach a serving build.
    """
    if isinstance(backend, SolverBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "lu"
    if isinstance(backend, str):
        backend = SolverConfig(backend=backend)
    elif isinstance(backend, dict):
        backend = SolverConfig.from_dict(backend)
    if not isinstance(backend, SolverConfig):
        raise SolverBackendError(
            f"cannot interpret solver backend designation "
            f"{backend!r} of type {type(backend).__name__}")
    return get_backend(backend.backend)(backend)


register_backend("lu", LUBackend)
register_backend("krylov", KrylovBackend)
