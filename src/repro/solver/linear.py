"""Sparse linear solves with equilibration.

The coupled system mixes metal conductances (~1e8 S/m), dielectric
admittances (~1e-2 S/m at 1 GHz) and carrier-flux coefficients scaled by
densities of 1e21 m^-3, so the raw matrix spans ~30 orders of magnitude.
Row/column max-equilibration before the LU keeps SuperLU's pivoting
healthy; the scaling is undone on the solution so callers never see it.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SingularSystemError


def _max_abs_rows(matrix: sp.csr_matrix) -> np.ndarray:
    """Max |entry| per row of a CSR matrix (dense-free)."""
    absmat = abs(matrix)
    out = np.zeros(matrix.shape[0])
    # CSR: reduce over each row's data slice.
    indptr = absmat.indptr
    data = absmat.data
    for_rows = np.flatnonzero(np.diff(indptr))
    out[for_rows] = np.maximum.reduceat(data, indptr[for_rows])
    return out


def solve_sparse(matrix: sp.spmatrix, rhs: np.ndarray,
                 equilibrate: bool = True) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` via equilibrated sparse LU.

    Parameters
    ----------
    matrix:
        Square sparse matrix (real or complex).
    rhs:
        Right-hand side, shape ``(n,)`` or ``(n, k)``.
    equilibrate:
        Apply row & column max-scaling before factorizing (default on).

    Raises
    ------
    SingularSystemError
        When the factorization fails or produces non-finite values —
        typically a destroyed mesh sample or missing boundary condition.
    """
    matrix = matrix.tocsr()
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise SingularSystemError(
            f"matrix must be square, got {matrix.shape}")
    rhs = np.asarray(rhs)
    if rhs.shape[0] != n:
        raise SingularSystemError(
            f"rhs length {rhs.shape[0]} does not match matrix size {n}")
    if n == 0:
        return np.zeros_like(rhs)
    if np.iscomplexobj(rhs) and not np.iscomplexobj(matrix.data):
        # SuperLU cannot mix a real factorization with a complex RHS.
        matrix = matrix.astype(complex)

    if equilibrate:
        row_max = _max_abs_rows(matrix)
        if np.any(row_max == 0.0):
            empty = int(np.count_nonzero(row_max == 0.0))
            raise SingularSystemError(
                f"{empty} empty matrix rows: some unknowns have no "
                f"equation (check boundary conditions)")
        dr = sp.diags(1.0 / row_max)
        scaled = dr @ matrix
        col_max = _max_abs_rows(scaled.T.tocsr())
        col_max[col_max == 0.0] = 1.0
        dc = sp.diags(1.0 / col_max)
        scaled = (scaled @ dc).tocsc()
        scaled_rhs = dr @ rhs
    else:
        scaled = matrix.tocsc()
        scaled_rhs = rhs
        dc = None

    try:
        lu = spla.splu(scaled)
        y = lu.solve(np.asarray(scaled_rhs))
    except RuntimeError as exc:
        raise SingularSystemError(f"sparse LU failed: {exc}") from exc
    if not np.all(np.isfinite(y)):
        raise SingularSystemError("solution contains non-finite values")
    x = dc @ y if dc is not None else y
    return x
