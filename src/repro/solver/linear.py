"""Sparse linear solves with equilibration and factorization reuse.

The coupled system mixes metal conductances (~1e8 S/m), dielectric
admittances (~1e-2 S/m at 1 GHz) and carrier-flux coefficients scaled by
densities of 1e21 m^-3, so the raw matrix spans ~30 orders of magnitude.
Row/column max-equilibration before the LU keeps SuperLU's pivoting
healthy; the scaling is undone on the solution so callers never see it.

Two entry points:

* :class:`SparseFactor` — factorize once, solve many right-hand sides
  (``(n,)`` or ``(n, k)`` multi-RHS).  This is the reuse substrate for
  multi-port / multi-excitation solves where the matrix is fixed and
  only the Dirichlet data changes.
* :func:`solve_sparse` — the one-shot convenience wrapper (factorize,
  solve, discard), kept for callers with a single right-hand side.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import SingularSystemError
from repro.obs.metrics import counter
from repro.obs.trace import span

#: Execution-only observability: factorizations and triangular solves
#: performed by this process (reuse shows up as solves >> factorizations).
_FACTORIZATIONS = counter(
    "repro_solver_factorizations_total",
    "Sparse LU factorizations performed (SparseFactor constructions)")
_SOLVES = counter(
    "repro_solver_solves_total",
    "Triangular back-substitutions through an existing factorization")


def _max_abs_rows(matrix: sp.csr_matrix) -> np.ndarray:
    """Max |entry| per row of a CSR matrix (dense-free)."""
    absmat = abs(matrix)
    out = np.zeros(matrix.shape[0])
    # CSR: reduce over each row's data slice.
    indptr = absmat.indptr
    data = absmat.data
    for_rows = np.flatnonzero(np.diff(indptr))
    out[for_rows] = np.maximum.reduceat(data, indptr[for_rows])
    return out


class SparseFactor:
    """Reusable equilibrated sparse LU factorization of a square matrix.

    Factorizes once in ``__init__`` (row/column max-equilibration plus a
    SuperLU decomposition) and answers any number of :meth:`solve` calls
    against the same matrix — the expensive part of a multi-port or
    multi-excitation study is thereby paid once per matrix instead of
    once per right-hand side.

    Parameters
    ----------
    matrix:
        Square sparse matrix (real or complex).
    equilibrate:
        Apply row & column max-scaling before factorizing (default on).

    Raises
    ------
    SingularSystemError
        When the matrix is non-square, has empty rows, or the
        factorization fails — typically a destroyed mesh sample or a
        missing boundary condition.
    """

    def __init__(self, matrix: sp.spmatrix, equilibrate: bool = True):
        matrix = matrix.tocsr()
        if matrix.shape[0] != matrix.shape[1]:
            raise SingularSystemError(
                f"matrix must be square, got {matrix.shape}")
        self.shape = matrix.shape
        self.dtype = matrix.dtype
        n = matrix.shape[0]
        if n == 0:
            self._lu = None
            self._row_scale = None
            self._col_scale = None
            return

        with span("factorize", n=n):
            if equilibrate:
                row_max = _max_abs_rows(matrix)
                if np.any(row_max == 0.0):
                    empty = int(np.count_nonzero(row_max == 0.0))
                    raise SingularSystemError(
                        f"{empty} empty matrix rows: some unknowns have "
                        f"no equation (check boundary conditions)")
                row_scale = 1.0 / row_max
                scaled = sp.diags(row_scale) @ matrix
                col_max = _max_abs_rows(scaled.T.tocsr())
                col_max[col_max == 0.0] = 1.0
                col_scale = 1.0 / col_max
                scaled = (scaled @ sp.diags(col_scale)).tocsc()
            else:
                scaled = matrix.tocsc()
                row_scale = None
                col_scale = None
            self._row_scale = row_scale
            self._col_scale = col_scale

            try:
                self._lu = spla.splu(scaled)
            except RuntimeError as exc:
                raise SingularSystemError(
                    f"sparse LU failed: {exc}") from exc
        _FACTORIZATIONS.inc()

    # ------------------------------------------------------------------
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against one or many right-hand sides.

        Parameters
        ----------
        rhs:
            Shape ``(n,)`` for a single right-hand side or ``(n, k)``
            for ``k`` of them solved in one multi-RHS pass; the result
            has the same shape.  A complex ``rhs`` against a real
            factorization is handled by solving the real and imaginary
            parts separately (the factorization is not redone).

        Raises
        ------
        SingularSystemError
            On a shape mismatch or a non-finite solution (the
            factorization was numerically singular).
        """
        rhs = np.asarray(rhs)
        n = self.shape[0]
        if rhs.shape[0] != n:
            raise SingularSystemError(
                f"rhs length {rhs.shape[0]} does not match matrix "
                f"size {n}")
        if n == 0:
            return np.zeros(rhs.shape,
                            dtype=np.result_type(self.dtype, rhs.dtype))

        if (np.iscomplexobj(rhs)
                and not np.issubdtype(self.dtype, np.complexfloating)):
            # SuperLU cannot mix a real factorization with a complex
            # RHS; solve the parts separately through the same LU.
            return (self.solve(np.ascontiguousarray(rhs.real))
                    + 1j * self.solve(np.ascontiguousarray(rhs.imag)))

        num_rhs = 1 if rhs.ndim == 1 else int(rhs.shape[1])
        with span("back_substitute", n=n, num_rhs=num_rhs):
            if self._row_scale is not None:
                scale = (self._row_scale if rhs.ndim == 1
                         else self._row_scale[:, None])
                scaled_rhs = scale * rhs
            else:
                scaled_rhs = rhs
            y = self._lu.solve(np.asarray(scaled_rhs))
            if not np.all(np.isfinite(y)):
                raise SingularSystemError(
                    "solution contains non-finite values")
            _SOLVES.inc()
            if self._col_scale is not None:
                scale = (self._col_scale if y.ndim == 1
                         else self._col_scale[:, None])
                return scale * y
            return y


def solve_sparse(matrix: sp.spmatrix, rhs: np.ndarray,
                 equilibrate: bool = True) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` via equilibrated sparse LU.

    Thin one-shot wrapper over :class:`SparseFactor`; callers that solve
    the same matrix repeatedly should hold a :class:`SparseFactor`
    instead so the factorization is reused.

    Parameters
    ----------
    matrix:
        Square sparse matrix (real or complex).
    rhs:
        Right-hand side, shape ``(n,)`` or ``(n, k)``.
    equilibrate:
        Apply row & column max-scaling before factorizing (default on).

    Raises
    ------
    SingularSystemError
        When the factorization fails or produces non-finite values —
        typically a destroyed mesh sample or missing boundary condition.
    """
    matrix = matrix.tocsr()
    rhs = np.asarray(rhs)
    if np.iscomplexobj(rhs) and not np.iscomplexobj(matrix.data):
        # Factor in complex arithmetic up front: the one-shot path knows
        # its RHS, so this beats two real solves.
        matrix = matrix.astype(complex)
    return SparseFactor(matrix, equilibrate=equilibrate).solve(rhs)
