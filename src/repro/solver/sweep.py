"""Frequency sweeps and port admittance extraction.

A small utility layer over :class:`~repro.solver.avsolver.AVSolver`:
solve the same structure across a frequency list, collecting the port
admittance matrix ``Y(f)`` (port currents per unit drive).  Useful for
model-order studies and for locating the dielectric-relaxation
crossover of the doped substrate — the physics that makes the paper's
1 GHz operating point interesting for TSVs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.extraction.current import port_current
from repro.geometry.structure import Structure
from repro.solver.avsolver import AVSolver


@dataclass
class SweepResult:
    """Port admittance across frequency.

    Attributes
    ----------
    frequencies:
        ``(F,)`` sweep frequencies [Hz].
    ports:
        Ordered port (contact) names.
    admittance:
        ``(F, P, P)`` complex matrix: ``admittance[k, i, j]`` is the
        current into port ``i`` when port ``j`` is driven at 1 V and
        the others grounded, at frequency ``k``.
    """

    frequencies: np.ndarray
    ports: list
    admittance: np.ndarray

    def port_index(self, name: str) -> int:
        try:
            return self.ports.index(name)
        except ValueError as exc:
            raise GeometryError(
                f"unknown port {name!r}; ports: {self.ports}") from exc

    def input_admittance(self, port: str) -> np.ndarray:
        """``Y_ii(f)`` of one port, shape ``(F,)``."""
        i = self.port_index(port)
        return self.admittance[:, i, i]

    def transfer_admittance(self, into: str, driven: str) -> np.ndarray:
        """``Y_ij(f)``: current into ``into`` per volt on ``driven``."""
        return self.admittance[:, self.port_index(into),
                               self.port_index(driven)]

    def effective_capacitance(self, port: str) -> np.ndarray:
        """``Im(Y_ii) / w``: the engineering capacitance of a port."""
        omega = 2.0 * np.pi * self.frequencies
        return self.input_admittance(port).imag / omega


def frequency_sweep(structure: Structure, frequencies, ports=None,
                    recombination: bool = True,
                    full_wave: bool = False) -> SweepResult:
    """Solve the structure at each frequency, driving each port in turn.

    Parameters
    ----------
    structure:
        The structure to characterize.
    frequencies:
        Iterable of frequencies [Hz].
    ports:
        Contact names to treat as ports (default: all contacts, sorted).
    recombination, full_wave:
        Forwarded to :class:`AVSolver`.
    """
    frequencies = np.asarray(sorted(float(f) for f in frequencies))
    if frequencies.size == 0:
        raise GeometryError("at least one frequency is required")
    if ports is None:
        ports = sorted(structure.contacts)
    ports = list(ports)
    if not ports:
        raise GeometryError("at least one port is required")

    admittance = np.zeros((frequencies.size, len(ports), len(ports)),
                          dtype=complex)
    for k, frequency in enumerate(frequencies):
        solver = AVSolver(structure, frequency=frequency,
                          recombination=recombination,
                          full_wave=full_wave)
        for j, driven in enumerate(ports):
            excitation = {name: (1.0 if name == driven else 0.0)
                          for name in ports}
            solution = solver.solve(excitation)
            for i, port in enumerate(ports):
                admittance[k, i, j] = port_current(solution, port)
    return SweepResult(frequencies=frequencies, ports=ports,
                       admittance=admittance)
