"""Frequency sweeps and port admittance extraction.

A small utility layer over the solver stack: solve the same structure
across a frequency list, collecting the port admittance matrix ``Y(f)``
(port currents per unit drive).  Useful for model-order studies and for
locating the dielectric-relaxation crossover of the doped substrate —
the physics that makes the paper's 1 GHz operating point interesting
for TSVs.

The sweep is batched end-to-end: the DC equilibrium (frequency
independent) is solved once for the whole sweep, each frequency
assembles one :class:`~repro.solver.ac.ACSystem` and factorizes its
restricted matrix once, and all ``P`` port drives go through that
single LU as one multi-RHS solve (:meth:`ACSystem.solve_ports`).  With
``P`` ports and ``F`` frequencies this costs 1 equilibrium + ``F``
factorizations instead of the ``P x F`` equilibria and factorizations
of a per-port rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.extraction.current import port_current
from repro.geometry.structure import Structure
from repro.mesh.dual import compute_geometry
from repro.mesh.entities import LinkSet
from repro.solver.ac import ACSystem
from repro.solver.ampere import AmpereSystem, staggered_correction
from repro.solver.backends import resolve_backend
from repro.solver.dc import solve_equilibrium


@dataclass
class SweepResult:
    """Port admittance across frequency.

    Attributes
    ----------
    frequencies:
        ``(F,)`` sweep frequencies [Hz].
    ports:
        Ordered port (contact) names.
    admittance:
        ``(F, P, P)`` complex matrix: ``admittance[k, i, j]`` is the
        current into port ``i`` when port ``j`` is driven at 1 V and
        the others grounded, at frequency ``k``.
    """

    frequencies: np.ndarray
    ports: list
    admittance: np.ndarray

    def port_index(self, name: str) -> int:
        try:
            return self.ports.index(name)
        except ValueError as exc:
            raise GeometryError(
                f"unknown port {name!r}; ports: {self.ports}") from exc

    def input_admittance(self, port: str) -> np.ndarray:
        """``Y_ii(f)`` of one port, shape ``(F,)``."""
        i = self.port_index(port)
        return self.admittance[:, i, i]

    def transfer_admittance(self, into: str, driven: str) -> np.ndarray:
        """``Y_ij(f)``: current into ``into`` per volt on ``driven``."""
        return self.admittance[:, self.port_index(into),
                               self.port_index(driven)]

    def effective_capacitance(self, port: str) -> np.ndarray:
        """``Im(Y_ii) / w``: the engineering capacitance of a port."""
        omega = 2.0 * np.pi * self.frequencies
        return self.input_admittance(port).imag / omega


def frequency_sweep(structure: Structure, frequencies, ports=None,
                    recombination: bool = True,
                    full_wave: bool = False,
                    backend=None) -> SweepResult:
    """Characterize the structure across frequency, all ports batched.

    One DC equilibrium serves the whole sweep; per frequency the
    coupled system is assembled and factorized once and every port
    drive is solved against that single factorization (the full-wave
    correction pass, when enabled, also reuses it).

    Parameters
    ----------
    structure:
        The structure to characterize.
    frequencies:
        Iterable of frequencies [Hz].  Duplicates are solved once: the
        result's frequency axis is the *unique sorted* frequency list,
        so ``result.frequencies.size`` may be smaller than the input.
    ports:
        Contact names to treat as ports (default: all contacts, sorted).
    recombination:
        Include the SRH linearization (forwarded to :class:`ACSystem`).
    full_wave:
        Add the staggered Ampere (induction EMF) correction per port.
    backend:
        Linear-solver backend designation (see
        :mod:`repro.solver.backends`).  Resolved once for the whole
        sweep and shared by every per-frequency system, so the
        ``"krylov"`` backend preconditions frequency ``k`` with
        frequency ``k-1``'s factorization — nearby frequencies differ
        by a smooth ``j w`` perturbation, which is exactly where a
        reused LU preconditioner converges in a handful of iterations.
    """
    frequencies = np.unique(
        np.asarray([float(f) for f in frequencies], dtype=float))
    if frequencies.size == 0:
        raise GeometryError("at least one frequency is required")
    if ports is None:
        ports = sorted(structure.contacts)
    ports = list(ports)
    if not ports:
        raise GeometryError("at least one port is required")

    backend = resolve_backend(backend)
    links = LinkSet(structure.grid)
    geometry = compute_geometry(structure.grid, links=links)
    equilibrium = solve_equilibrium(structure, geometry)
    ampere = AmpereSystem(structure, geometry, backend=backend) \
        if full_wave else None

    admittance = np.zeros((frequencies.size, len(ports), len(ports)),
                          dtype=complex)
    for k, frequency in enumerate(frequencies):
        system = ACSystem(structure, geometry, equilibrium, frequency,
                          recombination=recombination, backend=backend)
        solutions = system.solve_ports(ports)
        if full_wave:
            solutions = [staggered_correction(system, ampere, solution)
                         for solution in solutions]
        for j, solution in enumerate(solutions):
            for i, port in enumerate(ports):
                admittance[k, i, j] = port_current(solution, port)
    return SweepResult(frequencies=frequencies, ports=ports,
                       admittance=admittance)
