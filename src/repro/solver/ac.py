"""Frequency-domain coupled EM-semiconductor system.

This is the discrete form of the paper's equations (1)-(2) linearized
around the DC operating point — exactly the Jacobian structure of
eq. (8):

* **metal nodes** carry total-current continuity: conduction +
  displacement current through every dual-face quadrant, plus the
  carrier currents through semiconductor quadrants (the
  ``dF/d{p,n}`` coupling blocks);
* **semiconductor / insulator nodes** carry Gauss's law with the free
  AC charge ``q (dp - dn)`` weighted by the semiconductor share of the
  dual cell;
* **free semiconductor nodes** carry the linearized electron / hole
  continuity equations with Scharfetter-Gummel fluxes, carrier storage
  ``j w dn`` and SRH recombination;
* **ohmic contact nodes** (metal touching semiconductor) pin the AC
  excess carriers to zero.

All fluxes follow the *outflow* convention (see
:mod:`repro.semiconductor.scharfetter_gummel` for the link-oriented
flux definitions).  The optional ``link_emf`` argument adds the
``j w A`` induction voltage of the full-wave mode to every link
(see :mod:`repro.solver.ampere`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.constants import Q
from repro.em.operators import (
    cell_property_array,
    link_material_areas,
    link_weighted_coefficients,
)
from repro.errors import ExtractionError, GeometryError
from repro.geometry.structure import Structure
from repro.materials.physics import srh_derivatives
from repro.mesh.dual import GridGeometry, node_masked_volumes
from repro.semiconductor.scharfetter_gummel import (
    electron_flux_linearization,
    hole_flux_linearization,
)
from repro.solver.backends import resolve_backend
from repro.solver.dc import EquilibriumState


@dataclass
class ACSolution:
    """Result of one frequency-domain solve.

    Nodal phasors in flat node order; ``n`` and ``p`` are the AC excess
    carrier densities (zero outside the semiconductor).
    """

    structure: Structure
    geometry: GridGeometry
    equilibrium: EquilibriumState
    omega: float
    excitations: dict
    potential: np.ndarray
    n: np.ndarray
    p: np.ndarray
    system: "ACSystem"
    vector_potential: np.ndarray = None

    def link_total_current(self) -> np.ndarray:
        """Total AC current through each link's dual face [A], oriented
        from ``node_a`` to ``node_b`` (conduction + displacement +
        carrier currents)."""
        return self.system.link_total_current(self)

    def link_dielectric_flux(self) -> np.ndarray:
        """Electric (D-field) flux through each dual face [C], oriented
        a -> b; the Gauss-law flux used for charge integration."""
        return self.system.link_dielectric_flux(self)

    def potential_field(self) -> np.ndarray:
        """Potential reshaped to the ``(nx, ny, nz)`` node lattice."""
        return self.structure.grid.unflatten_field(self.potential)


@dataclass
class _RestrictedSystem:
    """The solve-ready restriction for one set of pinned contacts.

    Everything here depends only on *which* contacts are pinned (the
    Dirichlet node set), not on their voltages, so one instance serves
    every excitation — and every right-hand side — over that set.
    """

    unknown: np.ndarray
    free_v: np.ndarray
    free_carriers: np.ndarray
    dirichlet_ids: np.ndarray
    coupling: sp.csr_matrix
    #: Solve-ready factor from the system's backend (a SparseFactor on
    #: the "lu" path, a preconditioned Krylov factor otherwise).
    factor: object


class ACSystem:
    """Assembles and solves the coupled system for one sample.

    Parameters
    ----------
    structure:
        Material layout (logical grid).
    geometry:
        FVM geometry, possibly from a perturbed grid sample.
    equilibrium:
        DC operating point matching the same doping sample.
    frequency:
        Excitation frequency [Hz].
    recombination:
        Include the SRH linearization (on by default).
    backend:
        Linear-solver backend designation (name, config mapping,
        :class:`~repro.solver.backends.SolverConfig` or live
        :class:`~repro.solver.backends.SolverBackend`); default the
        direct ``"lu"`` path.  Passing one *live* backend instance to
        several systems (as :func:`~repro.solver.sweep.frequency_sweep`
        and :class:`~repro.solver.avsolver.AVSolver` do) is what lets
        the ``"krylov"`` backend reuse a previous factorization as its
        preconditioner.
    """

    def __init__(self, structure: Structure, geometry: GridGeometry,
                 equilibrium: EquilibriumState, frequency: float,
                 recombination: bool = True, backend=None):
        if frequency <= 0.0:
            raise GeometryError(
                f"frequency must be positive, got {frequency}")
        self.structure = structure
        self.geometry = geometry
        self.equilibrium = equilibrium
        self.omega = 2.0 * np.pi * frequency
        self.recombination = recombination
        self._backend = resolve_backend(backend)
        # Restricted system + LU per *set* of pinned contacts: the
        # matrix restriction depends only on which contacts are pinned,
        # never on their voltages, so every excitation over the same
        # contact set shares one factorization.
        self._factor_cache = {}
        self._build_coefficients()
        self._assemble()

    # ------------------------------------------------------------------
    def _build_coefficients(self) -> None:
        structure = self.structure
        geometry = self.geometry
        omega = self.omega
        kinds = structure.node_kinds()
        self.kinds = kinds
        self.num_nodes = structure.grid.num_nodes

        eps_cells = cell_property_array(structure,
                                        lambda m: m.permittivity)
        sigma_cells = cell_property_array(structure, lambda m: m.sigma)
        lengths = geometry.link_lengths
        self.link_lengths = lengths
        self.g_eps = (link_weighted_coefficients(geometry, eps_cells)
                      / lengths)
        self.g_tot = (link_weighted_coefficients(
            geometry, sigma_cells + 1j * omega * eps_cells) / lengths)

        _, semi_cells, _ = structure.cell_kind_masks()
        self.semi_areas = link_material_areas(geometry, semi_cells)
        self.semi_volumes = node_masked_volumes(geometry, semi_cells)

        eq = self.equilibrium
        self.has_carriers = eq.has_semiconductor
        links = geometry.links
        self.carrier_links = np.nonzero(self.semi_areas > 0.0)[0]
        if self.has_carriers and self.carrier_links.size:
            material = structure.primary_semiconductor()
            a = links.node_a[self.carrier_links]
            b = links.node_b[self.carrier_links]
            carrier_ok = eq.carrier_mask[a] & eq.carrier_mask[b]
            if not np.all(carrier_ok):
                raise GeometryError(
                    "link with semiconductor quadrants has an endpoint "
                    "without carrier data; node classification is "
                    "inconsistent")
            u0 = (eq.potential[b] - eq.potential[a]) / eq.vt
            lcl = lengths[self.carrier_links]
            self.lin_n = electron_flux_linearization(
                eq.n0[a], eq.n0[b], u0, material.mu_n, eq.vt, lcl)
            self.lin_p = hole_flux_linearization(
                eq.p0[a], eq.p0[b], u0, material.mu_p, eq.vt, lcl)
            if self.recombination:
                du_dn, du_dp = srh_derivatives(
                    eq.n0, eq.p0, eq.ni, material.tau_n, material.tau_p)
            else:
                du_dn = np.zeros(self.num_nodes)
                du_dp = np.zeros(self.num_nodes)
            self.du_dn = du_dn
            self.du_dp = du_dp
        else:
            self.lin_n = None
            self.lin_p = None
            self.du_dn = np.zeros(self.num_nodes)
            self.du_dp = np.zeros(self.num_nodes)

    # ------------------------------------------------------------------
    def _assemble(self) -> None:
        """Build the global (3N x 3N) matrix in COO form.

        Global unknown ids: ``V_i = i``, ``n_i = N + i``,
        ``p_i = 2N + i``.  Restriction to the actual unknown set happens
        at solve time, once the Dirichlet data is known.
        """
        geometry = self.geometry
        links = geometry.links
        n_nodes = self.num_nodes
        a = links.node_a
        b = links.node_b
        metal = self.kinds.metal

        rows = []
        cols = []
        vals = []

        def add(r, c, v):
            rows.append(np.asarray(r))
            cols.append(np.asarray(c))
            vals.append(np.asarray(v, dtype=complex))

        # --- V-V conduction / Gauss terms (row-dependent coefficient) --
        g_row_a = np.where(metal[a], self.g_tot, self.g_eps + 0j)
        g_row_b = np.where(metal[b], self.g_tot, self.g_eps + 0j)
        add(a, a, g_row_a)
        add(a, b, -g_row_a)
        add(b, b, g_row_b)
        add(b, a, -g_row_b)

        eq = self.equilibrium
        cl = self.carrier_links
        if self.lin_n is not None and cl.size:
            ca_ = a[cl]
            cb_ = b[cl]
            area = self.semi_areas[cl]

            def add_flux_rows(row_ids, sign, lin, col_offset):
                """Outflow of a carrier flux into continuity rows.

                ``sign`` is +1 for rows at the a-endpoints, -1 at b.
                """
                add(row_ids, col_offset + ca_, sign * area * lin.coef_a)
                add(row_ids, col_offset + cb_, sign * area * lin.coef_b)
                add(row_ids, cb_, sign * area * lin.coef_dv)
                add(row_ids, ca_, -sign * area * lin.coef_dv)

            # Electron / hole continuity rows (at both link endpoints;
            # rows of Dirichlet carrier nodes are discarded at solve
            # time, so assembling them unconditionally is safe).
            add_flux_rows(n_nodes + ca_, +1.0, self.lin_n, n_nodes)
            add_flux_rows(n_nodes + cb_, -1.0, self.lin_n, n_nodes)
            add_flux_rows(2 * n_nodes + ca_, +1.0, self.lin_p,
                          2 * n_nodes)
            add_flux_rows(2 * n_nodes + cb_, -1.0, self.lin_p,
                          2 * n_nodes)

            # Carrier currents into *metal* (total-current) rows:
            # I_carrier = q (F_p - F_n) * A_semi, outflow convention.
            for row_ids, sign in ((ca_, +1.0), (cb_, -1.0)):
                row_metal = metal[row_ids]
                s = np.where(row_metal, sign, 0.0)
                add(row_ids, 2 * n_nodes + ca_,
                    s * Q * area * self.lin_p.coef_a)
                add(row_ids, 2 * n_nodes + cb_,
                    s * Q * area * self.lin_p.coef_b)
                add(row_ids, n_nodes + ca_,
                    -s * Q * area * self.lin_n.coef_a)
                add(row_ids, n_nodes + cb_,
                    -s * Q * area * self.lin_n.coef_b)
                dv_coef = Q * area * (self.lin_p.coef_dv
                                      - self.lin_n.coef_dv)
                add(row_ids, cb_, s * dv_coef)
                add(row_ids, ca_, -s * dv_coef)

        # --- nodal (diagonal-ish) terms -------------------------------
        carrier_nodes = np.nonzero(eq.carrier_mask)[0]
        if carrier_nodes.size:
            vol = self.semi_volumes[carrier_nodes]
            jw = 1j * self.omega
            # Gauss rows of non-metal carrier nodes: -q(dp - dn) vol.
            gauss_nodes = carrier_nodes[~metal[carrier_nodes]]
            gvol = self.semi_volumes[gauss_nodes]
            add(gauss_nodes, n_nodes + gauss_nodes, Q * gvol)
            add(gauss_nodes, 2 * n_nodes + gauss_nodes, -Q * gvol)
            # Carrier storage + recombination.
            add(n_nodes + carrier_nodes, n_nodes + carrier_nodes,
                (jw + self.du_dn[carrier_nodes]) * vol)
            add(n_nodes + carrier_nodes, 2 * n_nodes + carrier_nodes,
                self.du_dp[carrier_nodes] * vol)
            add(2 * n_nodes + carrier_nodes, 2 * n_nodes + carrier_nodes,
                (jw + self.du_dp[carrier_nodes]) * vol)
            add(2 * n_nodes + carrier_nodes, n_nodes + carrier_nodes,
                self.du_dn[carrier_nodes] * vol)

        rows = np.concatenate([np.ravel(r) for r in rows])
        cols = np.concatenate([np.ravel(c) for c in cols])
        vals = np.concatenate([np.ravel(v) for v in vals])
        self.global_matrix = sp.csr_matrix(
            (vals, (rows, cols)), shape=(3 * n_nodes, 3 * n_nodes))

    # ------------------------------------------------------------------
    def _partition(self, contacts):
        """Split global ids into unknown and Dirichlet sets.

        Depends only on *which* contacts are pinned; the pinned
        voltages live in :meth:`_dirichlet_values`.
        """
        dirichlet_v = np.zeros(self.num_nodes, dtype=bool)
        for contact in contacts:
            dirichlet_v[self.structure.contact_node_ids(contact)] = True
        if not np.any(dirichlet_v):
            raise GeometryError(
                "at least one contact excitation is required")

        free_v = np.nonzero(~dirichlet_v)[0]
        free_carriers = np.nonzero(self.kinds.semiconductor)[0]
        unknown = np.concatenate([
            free_v,
            self.num_nodes + free_carriers,
            2 * self.num_nodes + free_carriers,
        ])
        dirichlet_ids = np.nonzero(dirichlet_v)[0]
        return unknown, free_v, free_carriers, dirichlet_ids

    def _restricted_system(self, excitations) -> "_RestrictedSystem":
        """Partition + restricted matrices + LU for a pinned-contact set.

        Cached under ``frozenset(excitations)``: every drive over the
        same contact set — any voltages, any number of right-hand
        sides — reuses the same factorization.
        """
        key = frozenset(excitations)
        cached = self._factor_cache.get(key)
        if cached is not None:
            return cached
        unknown, free_v, free_carriers, dirichlet_ids = \
            self._partition(excitations)
        matrix = self.global_matrix
        restricted = _RestrictedSystem(
            unknown=unknown,
            free_v=free_v,
            free_carriers=free_carriers,
            dirichlet_ids=dirichlet_ids,
            coupling=matrix[unknown][:, dirichlet_ids].tocsr(),
            # The reuse key names the pinned-contact set: across
            # frequencies or samples, the same set yields the same
            # restriction pattern, so a shared backend instance can
            # precondition this solve with its previous factorization.
            factor=self._backend.factorize(
                matrix[unknown][:, unknown], key=key),
        )
        self._factor_cache[key] = restricted
        return restricted

    def _dirichlet_values(self, excitations: dict,
                          dirichlet_ids: np.ndarray) -> np.ndarray:
        """Pinned voltages in ``dirichlet_ids`` order."""
        values = np.zeros(self.num_nodes, dtype=complex)
        for contact, voltage in excitations.items():
            values[self.structure.contact_node_ids(contact)] = voltage
        return values[dirichlet_ids]

    def _emf_rhs(self, link_emf: np.ndarray) -> np.ndarray:
        """Global RHS from induction EMF on links (full-wave mode).

        ``link_emf`` is ``j w A_l L_l`` added to every link voltage
        ``V_b - V_a``; every matrix term that multiplies that pattern
        contributes ``coef * emf`` moved to the right-hand side.
        """
        geometry = self.geometry
        links = geometry.links
        n_nodes = self.num_nodes
        a = links.node_a
        b = links.node_b
        metal = self.kinds.metal
        rhs = np.zeros(3 * n_nodes, dtype=complex)

        g_row_a = np.where(metal[a], self.g_tot, self.g_eps + 0j)
        g_row_b = np.where(metal[b], self.g_tot, self.g_eps + 0j)
        np.add.at(rhs, a, g_row_a * link_emf)
        np.add.at(rhs, b, -g_row_b * link_emf)

        cl = self.carrier_links
        if self.lin_n is not None and cl.size:
            ca_ = a[cl]
            cb_ = b[cl]
            area = self.semi_areas[cl]
            emf = link_emf[cl]
            np.add.at(rhs, n_nodes + ca_,
                      -area * self.lin_n.coef_dv * emf)
            np.add.at(rhs, n_nodes + cb_,
                      area * self.lin_n.coef_dv * emf)
            np.add.at(rhs, 2 * n_nodes + ca_,
                      -area * self.lin_p.coef_dv * emf)
            np.add.at(rhs, 2 * n_nodes + cb_,
                      area * self.lin_p.coef_dv * emf)
            dv_coef = Q * area * (self.lin_p.coef_dv - self.lin_n.coef_dv)
            metal_a = metal[ca_]
            metal_b = metal[cb_]
            np.add.at(rhs, ca_, np.where(metal_a, -dv_coef * emf, 0.0))
            np.add.at(rhs, cb_, np.where(metal_b, dv_coef * emf, 0.0))
        return rhs

    # ------------------------------------------------------------------
    def solve(self, excitations: dict,
              link_emf: np.ndarray = None) -> ACSolution:
        """Solve for one set of contact voltages.

        The restriction and LU factorization are cached per pinned
        contact set, so repeated solves over the same contacts (other
        voltages, full-wave correction passes, per-port drives) skip
        straight to the triangular solves.

        Parameters
        ----------
        excitations:
            Mapping ``contact name -> complex voltage phasor``; every
            named contact is pinned, everything else floats.
        link_emf:
            Optional per-link induction voltage ``j w A_l L_l`` from a
            previous Ampere pass (full-wave correction).
        """
        restricted = self._restricted_system(excitations)
        dirichlet_vals = self._dirichlet_values(
            excitations, restricted.dirichlet_ids)
        rhs = -(restricted.coupling @ dirichlet_vals)
        if link_emf is not None:
            link_emf = np.asarray(link_emf, dtype=complex)
            if link_emf.shape != (self.geometry.num_links,):
                raise ExtractionError(
                    f"link_emf must have shape "
                    f"({self.geometry.num_links},)")
            rhs = rhs + self._emf_rhs(link_emf)[restricted.unknown]
        x = restricted.factor.solve(rhs)
        return self._make_solution(restricted, dirichlet_vals, x,
                                   dict(excitations), link_emf)

    def solve_ports(self, ports, drive: complex = 1.0) -> list:
        """Solve every unit port drive with one shared factorization.

        Port ``j``'s excitation pins port ``j`` at ``drive`` volts and
        every other port at 0 — the standard admittance /
        Maxwell-capacitance drive pattern.  All ``P`` right-hand sides
        go through a single multi-RHS triangular solve against the one
        LU of the shared pinned-contact set, so the cost is one
        factorization plus ``P`` cheap back-substitutions instead of
        ``P`` factorizations.

        Parameters
        ----------
        ports:
            Ordered contact names; all of them are pinned in every
            excitation.
        drive:
            Voltage phasor of the driven port (default 1 V).

        Returns
        -------
        list
            ``P`` :class:`ACSolution` objects, one per driven port, in
            ``ports`` order; each is identical to what ``solve`` would
            return for the corresponding single excitation.
        """
        ports = list(ports)
        if not ports:
            raise GeometryError("at least one port is required")
        if len(set(ports)) != len(ports):
            raise GeometryError(f"duplicate port names in {ports}")
        restricted = self._restricted_system(ports)
        port_excitations = [
            {name: (drive if name == driven else 0.0) for name in ports}
            for driven in ports]
        values = np.column_stack([
            self._dirichlet_values(exc, restricted.dirichlet_ids)
            for exc in port_excitations])
        rhs = -(restricted.coupling @ values)
        x = restricted.factor.solve(rhs)
        return [
            self._make_solution(restricted, values[:, j], x[:, j],
                                port_excitations[j], None)
            for j in range(len(ports))]

    def _make_solution(self, restricted: _RestrictedSystem,
                       dirichlet_vals: np.ndarray, x: np.ndarray,
                       excitations: dict,
                       link_emf) -> ACSolution:
        """Scatter a restricted solution vector back to nodal arrays."""
        n_nodes = self.num_nodes
        free_v = restricted.free_v
        free_carriers = restricted.free_carriers
        potential = np.zeros(n_nodes, dtype=complex)
        potential[restricted.dirichlet_ids] = dirichlet_vals
        potential[free_v] = x[:free_v.size]
        n_ac = np.zeros(n_nodes, dtype=complex)
        p_ac = np.zeros(n_nodes, dtype=complex)
        n_ac[free_carriers] = x[free_v.size:free_v.size
                                + free_carriers.size]
        p_ac[free_carriers] = x[free_v.size + free_carriers.size:]
        solution = ACSolution(
            structure=self.structure,
            geometry=self.geometry,
            equilibrium=self.equilibrium,
            omega=self.omega,
            excitations=excitations,
            potential=potential,
            n=n_ac,
            p=p_ac,
            system=self,
        )
        solution._link_emf = link_emf
        return solution

    # ------------------------------------------------------------------
    # Post-processing helpers
    # ------------------------------------------------------------------
    def _link_voltage(self, solution: ACSolution) -> np.ndarray:
        """Per-link ``V_b - V_a`` including the induction EMF if any."""
        links = self.geometry.links
        dv = solution.potential[links.node_b] \
            - solution.potential[links.node_a]
        emf = getattr(solution, "_link_emf", None)
        if emf is not None:
            dv = dv + emf
        return dv

    def link_total_current(self, solution: ACSolution) -> np.ndarray:
        """Total current a -> b through each dual face [A]."""
        dv = self._link_voltage(solution)
        current = -self.g_tot * dv
        cl = self.carrier_links
        if self.lin_n is not None and cl.size:
            links = self.geometry.links
            a = links.node_a[cl]
            b = links.node_b[cl]
            dvc = dv[cl]
            f_n = (self.lin_n.coef_a * solution.n[a]
                   + self.lin_n.coef_b * solution.n[b]
                   + self.lin_n.coef_dv * dvc)
            f_p = (self.lin_p.coef_a * solution.p[a]
                   + self.lin_p.coef_b * solution.p[b]
                   + self.lin_p.coef_dv * dvc)
            current[cl] = current[cl] + Q * self.semi_areas[cl] * (f_p - f_n)
        return current

    def link_dielectric_flux(self, solution: ACSolution) -> np.ndarray:
        """Electric flux (D dot dS) a -> b through each dual face [C]."""
        return -self.g_eps * self._link_voltage(solution)
