"""Probabilists' Hermite polynomials and multivariate chaos bases.

The paper expands the unknown vector in D-dimensional Hermite
polynomials up to second order (eq. 4) and recovers mean/variance from
the coefficients (eq. 5).  The probabilists' normalization is used:
``He_0 = 1``, ``He_1 = x``, ``He_2 = x^2 - 1`` with
``<He_k^2> = k!`` under the standard Gaussian weight.

Beyond the paper's quadratic basis, :class:`HermiteBasis` also accepts
an *explicit* multi-index set — the order-adaptive truncations the
dimension-adaptive engine derives from its accepted level indices
(``repro.adaptive``) — and the 1-D helpers
(:func:`hermite_values_upto`, :func:`hermite_triple_product`) cover
the higher orders those bases need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import StochasticError


def hermite_values_upto(order: int, x) -> np.ndarray:
    """All ``He_0 .. He_order`` at ``x``, stacked on a new leading axis.

    One pass of the three-term recurrence
    ``He_{k+1} = x He_k - k He_{k-1}`` — forward-stable for the
    moderate orders a collocation basis uses (the recurrence
    coefficients are exact small integers, so no cancellation beyond
    the polynomials' own conditioning enters).  Returns shape
    ``(order + 1,) + shape(x)``.
    """
    if order < 0:
        raise StochasticError(f"order must be >= 0, got {order}")
    x = np.asarray(x, dtype=float)
    values = np.empty((order + 1,) + x.shape)
    values[0] = 1.0
    if order >= 1:
        values[1] = x
    for k in range(1, order):
        values[k + 1] = x * values[k] - k * values[k - 1]
    return values


def hermite_value(order: int, x):
    """Probabilists' Hermite polynomial ``He_order`` evaluated at ``x``."""
    return hermite_values_upto(order, x)[order]


def hermite_norm_squared(multi_index) -> float:
    """``<He_i1 ... He_iD ^2>`` under the standard Gaussian = prod(i_k!)."""
    return float(np.prod([math.factorial(int(i)) for i in multi_index]))


def hermite_triple_product(i: int, j: int, k: int) -> float:
    """``<He_i He_j He_k>`` under the standard Gaussian weight.

    The linearization formula: with ``s = (i + j + k) / 2``,

        ``<He_i He_j He_k> = i! j! k! / ((s-i)! (s-j)! (s-k)!)``

    when ``i + j + k`` is even and the triangle inequality
    ``s >= max(i, j, k)`` holds, else 0.  These are the Galerkin
    coupling coefficients of products of chaos expansions.
    """
    for order in (i, j, k):
        if order < 0:
            raise StochasticError(f"order must be >= 0, got {order}")
    total = i + j + k
    if total % 2:
        return 0.0
    s = total // 2
    if s < max(i, j, k):
        return 0.0
    return (math.factorial(i) * math.factorial(j) * math.factorial(k)
            / (math.factorial(s - i) * math.factorial(s - j)
               * math.factorial(s - k)))


def multi_indices_upto(dim: int, order: int) -> list:
    """All multi-indices with total order ``<= order``, graded order.

    For ``order = 2`` this is the paper's quadratic basis:
    1 constant + ``d`` linear + ``d`` pure-quadratic + ``C(d,2)`` cross
    terms = ``(d+1)(d+2)/2`` coefficients.
    """
    if dim < 1:
        raise StochasticError(f"dim must be >= 1, got {dim}")
    if order < 0:
        raise StochasticError(f"order must be >= 0, got {order}")
    indices = [tuple([0] * dim)]
    for total in range(1, order + 1):
        indices.extend(_compositions(dim, total))
    return indices


def _compositions(dim: int, total: int) -> list:
    """Multi-indices of exactly ``total`` over ``dim`` slots."""
    if dim == 1:
        return [(total,)]
    out = []
    for head in range(total, -1, -1):
        for tail in _compositions(dim - 1, total - head):
            out.append((head,) + tail)
    return out


def _validated_indices(dim: int, indices) -> list:
    """Normalize an explicit multi-index set: int tuples, deduped,
    sorted by (total degree, lexicographic) with the constant first."""
    seen = set()
    out = []
    for index in indices:
        index = tuple(int(a) for a in index)
        if len(index) != dim or any(a < 0 for a in index):
            raise StochasticError(
                f"basis index must be {dim} non-negative orders, "
                f"got {index}")
        if index in seen:
            continue
        seen.add(index)
        out.append(index)
    if (0,) * dim not in seen:
        raise StochasticError(
            "an explicit basis must contain the constant index "
            "(the mean is its coefficient)")
    return sorted(out, key=lambda a: (sum(a), a))


@dataclass
class HermiteBasis:
    """A multivariate Hermite basis.

    Parameters
    ----------
    dim:
        Number of stochastic directions.
    order:
        Total-degree truncation (the paper's basis is ``order=2``).
        Ignored when ``indices`` is given.
    indices:
        Optional *explicit* multi-index set (anisotropic / order-
        adaptive truncation).  Normalized to graded-lexicographic
        order with the constant index first; ``order`` then reports
        the largest total degree present.  ``truncation`` records
        which flavor was built (``"total"`` or ``"explicit"``).
    """

    dim: int
    order: int = 2
    indices: list = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.indices is None:
            self.indices = multi_indices_upto(self.dim, self.order)
            self.truncation = "total"
        else:
            if self.dim < 1:
                raise StochasticError(
                    f"dim must be >= 1, got {self.dim}")
            self.indices = _validated_indices(self.dim, self.indices)
            self.truncation = "explicit"
            self.order = max(sum(index) for index in self.indices)
        self.norms_squared = np.array(
            [hermite_norm_squared(ix) for ix in self.indices])
        self._max_axis_order = max(
            max(index) for index in self.indices)

    @property
    def size(self) -> int:
        return len(self.indices)

    def describe(self) -> dict:
        """JSON-ready basis identity for sidecars and responses."""
        return {
            "kind": ("total-degree" if self.truncation == "total"
                     else "explicit"),
            "order": int(self.order),
            "size": int(self.size),
        }

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """Design matrix ``(num_points, size)`` of basis values.

        ``points`` has shape ``(num_points, dim)`` (a single point may
        be passed as ``(dim,)``).
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != self.dim:
            raise StochasticError(
                f"points must have {self.dim} columns, got {points.shape}")
        # Precompute 1-D values for each order and dimension once.
        per_order = hermite_values_upto(self._max_axis_order, points)
        out = np.empty((points.shape[0], self.size))
        for col, index in enumerate(self.indices):
            vals = np.ones(points.shape[0])
            for axis, order in enumerate(index):
                if order:
                    vals = vals * per_order[order][:, axis]
            out[:, col] = vals
        return out
