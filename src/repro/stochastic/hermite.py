"""Probabilists' Hermite polynomials and the quadratic chaos basis.

The paper expands the unknown vector in D-dimensional Hermite
polynomials up to second order (eq. 4) and recovers mean/variance from
the coefficients (eq. 5).  The probabilists' normalization is used:
``He_0 = 1``, ``He_1 = x``, ``He_2 = x^2 - 1`` with
``<He_k^2> = k!`` under the standard Gaussian weight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import StochasticError


def hermite_value(order: int, x):
    """Probabilists' Hermite polynomial ``He_order`` evaluated at ``x``.

    Uses the stable three-term recurrence
    ``He_{k+1} = x He_k - k He_{k-1}``.
    """
    if order < 0:
        raise StochasticError(f"order must be >= 0, got {order}")
    x = np.asarray(x, dtype=float)
    if order == 0:
        return np.ones_like(x)
    prev = np.ones_like(x)
    cur = x.copy()
    for k in range(1, order):
        prev, cur = cur, x * cur - k * prev
    return cur


def hermite_norm_squared(multi_index) -> float:
    """``<He_i1 ... He_iD ^2>`` under the standard Gaussian = prod(i_k!)."""
    return float(np.prod([math.factorial(int(i)) for i in multi_index]))


def multi_indices_upto(dim: int, order: int) -> list:
    """All multi-indices with total order ``<= order``, graded order.

    For ``order = 2`` this is the paper's quadratic basis:
    1 constant + ``d`` linear + ``d`` pure-quadratic + ``C(d,2)`` cross
    terms = ``(d+1)(d+2)/2`` coefficients.
    """
    if dim < 1:
        raise StochasticError(f"dim must be >= 1, got {dim}")
    if order < 0:
        raise StochasticError(f"order must be >= 0, got {order}")
    indices = [tuple([0] * dim)]
    for total in range(1, order + 1):
        indices.extend(_compositions(dim, total))
    return indices


def _compositions(dim: int, total: int) -> list:
    """Multi-indices of exactly ``total`` over ``dim`` slots."""
    if dim == 1:
        return [(total,)]
    out = []
    for head in range(total, -1, -1):
        for tail in _compositions(dim - 1, total - head):
            out.append((head,) + tail)
    return out


@dataclass
class HermiteBasis:
    """A multivariate Hermite basis of fixed dimension and order."""

    dim: int
    order: int = 2

    def __post_init__(self) -> None:
        self.indices = multi_indices_upto(self.dim, self.order)
        self.norms_squared = np.array(
            [hermite_norm_squared(ix) for ix in self.indices])

    @property
    def size(self) -> int:
        return len(self.indices)

    def evaluate(self, points: np.ndarray) -> np.ndarray:
        """Design matrix ``(num_points, size)`` of basis values.

        ``points`` has shape ``(num_points, dim)`` (a single point may
        be passed as ``(dim,)``).
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != self.dim:
            raise StochasticError(
                f"points must have {self.dim} columns, got {points.shape}")
        # Precompute 1-D values for each order and dimension once.
        max_order = self.order
        per_order = [np.ones_like(points)]
        if max_order >= 1:
            per_order.append(points.copy())
        for k in range(1, max_order):
            per_order.append(points * per_order[k] - k * per_order[k - 1])
        out = np.empty((points.shape[0], self.size))
        for col, index in enumerate(self.indices):
            vals = np.ones(points.shape[0])
            for axis, order in enumerate(index):
                if order:
                    vals = vals * per_order[order][:, axis]
            out[:, col] = vals
        return out
