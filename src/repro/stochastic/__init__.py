"""Stochastic machinery: the statistical side of the paper.

Hermite polynomial chaos (Section II.B), sparse-grid Gauss-Hermite
collocation after Zhu et al., PFA / weighted-PFA variable reduction
(Section III.C), the SSCM driver that builds the quadratic statistical
model, and the Monte-Carlo reference driver.
"""

from repro.stochastic.hermite import (
    hermite_value,
    hermite_values_upto,
    hermite_norm_squared,
    hermite_triple_product,
    multi_indices_upto,
    HermiteBasis,
)
from repro.stochastic.gauss_hermite import gauss_hermite_rule
from repro.stochastic.sparse_grid import (
    SparseGrid,
    smolyak_sparse_grid,
    paper_point_count,
    tensor_grid,
)
from repro.stochastic.pce import PolynomialChaos, QuadraticPCE
from repro.stochastic.pfa import pfa_reduce, ReductionMap
from repro.stochastic.wpfa import wpfa_reduce
from repro.stochastic.reduction import ReducedSpace, reduce_groups
from repro.stochastic.sscm import SSCMResult, run_sscm
from repro.stochastic.montecarlo import MonteCarloResult, run_monte_carlo
from repro.stochastic.sobol import (
    main_effect_indices,
    total_effect_indices,
    group_indices,
    group_indices_from_reduced_space,
)

__all__ = [
    "hermite_value",
    "hermite_values_upto",
    "hermite_norm_squared",
    "hermite_triple_product",
    "multi_indices_upto",
    "HermiteBasis",
    "gauss_hermite_rule",
    "SparseGrid",
    "smolyak_sparse_grid",
    "paper_point_count",
    "tensor_grid",
    "PolynomialChaos",
    "QuadraticPCE",
    "pfa_reduce",
    "wpfa_reduce",
    "ReductionMap",
    "ReducedSpace",
    "reduce_groups",
    "SSCMResult",
    "run_sscm",
    "MonteCarloResult",
    "run_monte_carlo",
    "main_effect_indices",
    "total_effect_indices",
    "group_indices",
    "group_indices_from_reduced_space",
]
