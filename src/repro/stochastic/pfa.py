"""Principal factor analysis (PFA) — the baseline variable reduction.

PFA de-correlates the ``n`` correlated perturbation variables of a
group and truncates to the ``p`` dominant factors: an eigendecomposition
of the covariance kept to an energy fraction.  The reduced map
``xi = B zeta`` reconstructs correlated perturbations from ``p``
independent standard normals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StochasticError


@dataclass
class ReductionMap:
    """Linear map from reduced normals to correlated perturbations.

    ``xi = matrix @ zeta`` with ``zeta ~ N(0, I_p)``.

    Attributes
    ----------
    matrix:
        ``(n, p)`` reconstruction matrix.
    eigenvalues:
        Full spectrum of the (weighted) covariance, descending.
    energy_captured:
        Fraction of total (weighted) variance retained by ``p`` factors.
    """

    matrix: np.ndarray
    eigenvalues: np.ndarray
    energy_captured: float

    @property
    def full_size(self) -> int:
        return self.matrix.shape[0]

    @property
    def reduced_size(self) -> int:
        return self.matrix.shape[1]

    def reconstruct(self, zeta: np.ndarray) -> np.ndarray:
        """Map reduced variables to full perturbation vectors.

        Accepts ``(p,)`` or ``(m, p)``; returns ``(n,)`` or ``(m, n)``.
        """
        zeta = np.asarray(zeta, dtype=float)
        if zeta.shape[-1] != self.reduced_size:
            raise StochasticError(
                f"expected trailing dimension {self.reduced_size}, "
                f"got {zeta.shape}")
        return zeta @ self.matrix.T

    def reduced_covariance(self) -> np.ndarray:
        """Covariance of the reconstructed perturbations ``B B^T``."""
        return self.matrix @ self.matrix.T


def _choose_rank(eigenvalues: np.ndarray, energy: float,
                 max_variables: int) -> int:
    total = eigenvalues.sum()
    if total <= 0.0:
        raise StochasticError("covariance has no variance to reduce")
    cumulative = np.cumsum(eigenvalues) / total
    rank = int(np.searchsorted(cumulative, energy) + 1)
    rank = min(rank, eigenvalues.size)
    if max_variables is not None:
        rank = min(rank, int(max_variables))
    return max(rank, 1)


def pfa_reduce(covariance: np.ndarray, energy: float = 0.95,
               max_variables: int = None) -> ReductionMap:
    """Classic PFA: eigendecompose and truncate the covariance.

    Parameters
    ----------
    covariance:
        ``(n, n)`` symmetric PSD covariance of the correlated variables.
    energy:
        Variance fraction to retain (the truncation threshold).
    max_variables:
        Optional hard cap on ``p`` (the paper reports fixed reduced
        counts such as 128 -> 6).
    """
    covariance = np.asarray(covariance, dtype=float)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise StochasticError(
            f"covariance must be square, got {covariance.shape}")
    if not 0.0 < energy <= 1.0:
        raise StochasticError(f"energy must be in (0, 1], got {energy}")
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = np.clip(eigenvalues[order], 0.0, None)
    eigenvectors = eigenvectors[:, order]
    rank = _choose_rank(eigenvalues, energy, max_variables)
    matrix = eigenvectors[:, :rank] * np.sqrt(eigenvalues[:rank])
    captured = float(eigenvalues[:rank].sum() / eigenvalues.sum())
    return ReductionMap(matrix=matrix, eigenvalues=eigenvalues,
                        energy_captured=captured)
