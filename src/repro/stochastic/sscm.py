"""Sparse-grid spectral stochastic collocation (SSCM) driver.

Section II.B of the paper: expand the quantity of interest in a
second-order Hermite chaos, evaluate the deterministic solver at the
sparse-grid collocation points, project to get the coefficients, and
read the mean and variance off the expansion (eqs. 4-5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import StochasticError
from repro.obs.trace import span
from repro.stochastic.hermite import HermiteBasis
from repro.stochastic.pce import QuadraticPCE
from repro.stochastic.sparse_grid import SparseGrid, smolyak_sparse_grid


@dataclass
class SSCMResult:
    """Quadratic statistical model plus run accounting.

    Attributes
    ----------
    pce:
        The fitted :class:`~repro.stochastic.pce.QuadraticPCE`.
    num_runs:
        Deterministic solver evaluations used (the sparse-grid size).
    wall_time:
        Seconds spent evaluating the solver.
    grid:
        The sparse grid used.
    """

    pce: QuadraticPCE
    num_runs: int
    wall_time: float
    grid: SparseGrid

    @property
    def mean(self) -> np.ndarray:
        return self.pce.mean

    @property
    def std(self) -> np.ndarray:
        return self.pce.std

    @property
    def output_names(self):
        return self.pce.output_names


def run_sscm(solve_fn, dim: int, output_names=None, order: int = 2,
             level: int = 2, grid: SparseGrid = None,
             fit: str = "quadrature", progress=None,
             solve_many=None) -> SSCMResult:
    """Build the quadratic statistical model by sparse-grid collocation.

    Parameters
    ----------
    solve_fn:
        Callable ``zeta (dim,) -> QoI vector``; one deterministic
        coupled solve per call.
    dim:
        Number of reduced independent variables ``d``.
    output_names:
        Labels of the QoI components.
    order:
        Chaos order (2 in the paper).
    level:
        Smolyak level (2 supports the quadratic chaos).
    grid:
        Optional pre-built grid (e.g. a tensor grid for ablations).
    fit:
        ``"quadrature"`` (spectral projection, the paper's method) or
        ``"regression"`` (least squares on the same points).
    progress:
        Optional callable ``(completed, total) -> None``.
    solve_many:
        Optional batched evaluator ``(n, dim) points -> (n, outputs)``
        — the whole fixed grid is one wave, so a
        :class:`~repro.analysis.parallel.ParallelWaveEvaluator` plugs
        in unchanged (bitwise-identical to the per-point loop, which
        stays the default).
    """
    if grid is None:
        grid = smolyak_sparse_grid(dim, level=level)
    if grid.dim != dim:
        raise StochasticError(
            f"grid dimension {grid.dim} does not match dim {dim}")
    start = time.perf_counter()
    total = grid.num_points
    with span("collocation", points=total):
        if solve_many is not None:
            values = np.atleast_2d(np.asarray(solve_many(grid.points),
                                              dtype=float))
            if values.shape[0] != total:
                raise StochasticError(
                    f"solve_many returned {values.shape[0]} rows for "
                    f"{total} points")
            if progress is not None:
                progress(total, total)
        else:
            values = []
            for k, point in enumerate(grid.points):
                values.append(np.atleast_1d(np.asarray(solve_fn(point),
                                                       dtype=float)))
                if progress is not None:
                    progress(k + 1, total)
            values = np.vstack(values)
    wall = time.perf_counter() - start

    basis = HermiteBasis(dim, order=order)
    with span("fit", method=fit, terms=len(basis.indices)):
        if fit == "quadrature":
            pce = QuadraticPCE.fit_quadrature(basis, grid.points,
                                              grid.weights, values,
                                              output_names=output_names)
        elif fit == "regression":
            pce = QuadraticPCE.fit_regression(basis, grid.points, values,
                                              output_names=output_names)
        else:
            raise StochasticError(f"unknown fit method {fit!r}")
    return SSCMResult(pce=pce, num_runs=total, wall_time=wall, grid=grid)
