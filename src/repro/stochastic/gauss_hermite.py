"""Gauss-Hermite quadrature for the standard Gaussian measure.

Rules integrate exactly against ``exp(-x^2/2)/sqrt(2 pi)``: an
``m``-point rule is exact for polynomials of degree ``2m - 1``.
Built on ``numpy.polynomial.hermite_e`` (probabilists' convention) with
the weights normalized to sum to 1.
"""

from __future__ import annotations

import numpy as np
from numpy.polynomial.hermite_e import hermegauss

from repro.errors import StochasticError


def gauss_hermite_rule(num_points: int):
    """Nodes and weights of the ``num_points``-point rule.

    Returns
    -------
    (nodes, weights):
        Both ``(num_points,)``; weights sum to 1 and the rule integrates
        standard-normal moments exactly up to degree ``2 m - 1``.
    """
    if num_points < 1:
        raise StochasticError(
            f"num_points must be >= 1, got {num_points}")
    if num_points == 1:
        return np.zeros(1), np.ones(1)
    nodes, weights = hermegauss(num_points)
    weights = weights / weights.sum()
    # Symmetrize: hermegauss returns symmetric nodes up to roundoff;
    # force the midpoint of odd rules to exactly zero so nested sparse
    # grids dedupe the shared centre point.
    if num_points % 2 == 1:
        nodes[num_points // 2] = 0.0
    return nodes, weights
