"""Gauss-Hermite quadrature for the standard Gaussian measure.

Rules integrate exactly against ``exp(-x^2/2)/sqrt(2 pi)``: an
``m``-point rule is exact for polynomials of degree ``2m - 1``.
Built on ``numpy.polynomial.hermite_e`` (probabilists' convention) with
the weights normalized to sum to 1.
"""

from __future__ import annotations

import numpy as np
from numpy.polynomial.hermite_e import hermegauss

from repro.errors import StochasticError

#: 1-D rule sizes of the first levels of the sparse-grid hierarchy.
_LEVEL_SIZES = (1, 3, 5)


def rule_size_for_level(level: int) -> int:
    """1-D rule size at a hierarchy level: 1, 3, 5, 9, 17, ...

    Levels beyond the tabulated ones double the polynomial-exactness
    degree (``m -> 2m - 1``), matching the growth the Smolyak
    construction assumes.
    """
    if level < 0:
        raise StochasticError(f"level must be >= 0, got {level}")
    if level < len(_LEVEL_SIZES):
        return _LEVEL_SIZES[level]
    return 2 * rule_size_for_level(level - 1) - 1


def gauss_hermite_rule(num_points: int):
    """Nodes and weights of the ``num_points``-point rule.

    Returns
    -------
    (nodes, weights):
        Both ``(num_points,)``; weights sum to 1 and the rule integrates
        standard-normal moments exactly up to degree ``2 m - 1``.
    """
    if num_points < 1:
        raise StochasticError(
            f"num_points must be >= 1, got {num_points}")
    if num_points == 1:
        return np.zeros(1), np.ones(1)
    nodes, weights = hermegauss(num_points)
    weights = weights / weights.sum()
    # Symmetrize: hermegauss returns symmetric nodes up to roundoff;
    # force the midpoint of odd rules to exactly zero so nested sparse
    # grids dedupe the shared centre point.
    if num_points % 2 == 1:
        nodes[num_points // 2] = 0.0
    return nodes, weights


class NodeTable:
    """Shared 1-D node identity across the rule hierarchy.

    Coincident nodes of different rules — in practice the exact-zero
    centre every odd rule shares — must merge to *one* multivariate
    grid point.  The table assigns every distinct 1-D node value a
    small integer id, with identity defined by the exact float value
    (``gauss_hermite_rule`` forces odd-rule centres to exactly 0.0, so
    the only mathematically coincident nodes compare equal bitwise).
    Tensor points keyed by id tuples therefore merge exactly: no
    decimal rounding, no aliasing of close-but-distinct nodes, no
    splitting of coincident ones.
    """

    def __init__(self):
        self._rules = {}
        self._id_by_value = {}
        self._values = []

    def node_id(self, value: float) -> int:
        """Id of a node value, registering it on first sight."""
        value = float(value)
        node = self._id_by_value.get(value)
        if node is None:
            node = len(self._values)
            self._id_by_value[value] = node
            self._values.append(value)
        return node

    def value(self, node_id: int) -> float:
        return self._values[node_id]

    def rule(self, level: int):
        """``(nodes, weights, ids)`` of the rule at a hierarchy level."""
        cached = self._rules.get(level)
        if cached is None:
            nodes, weights = gauss_hermite_rule(rule_size_for_level(level))
            ids = tuple(self.node_id(x) for x in nodes)
            cached = (nodes, weights, ids)
            self._rules[level] = cached
        return cached

    def tensor_rule(self, levels):
        """``(keys, weights)`` of the tensor rule of a level multi-index.

        Point keys are tuples of node ids — inactive axes sit on the
        shared centre node — and weights are the products of the 1-D
        weights, enumerated in deterministic tensor order.  The one
        tensor enumeration both the fixed Smolyak construction and the
        adaptive incremental grids build on, so their point identities
        can never diverge.
        """
        from itertools import product
        centre = self.rule(0)[2][0]
        active = [axis for axis, level in enumerate(levels) if level > 0]
        pools = []
        for axis in active:
            _, axis_weights, ids = self.rule(levels[axis])
            pools.append(list(zip(ids, axis_weights)))
        keys, weights = [], []
        for combo in product(*pools):
            key = [centre] * len(levels)
            weight = 1.0
            for axis, (node, node_weight) in zip(active, combo):
                key[axis] = node
                weight *= node_weight
            keys.append(tuple(key))
            weights.append(weight)
        return keys, weights
